"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on modern pip requires PEP 660 wheel builds; this
shim keeps the legacy ``--no-use-pep517`` editable path working offline.
"""

from setuptools import setup

setup()
