"""Ablation: the §7 extension's design choices, measured.

Two ablations the paper's future-work section motivates:

* **radix width** — run the sort with every candidate width on both
  devices and verify the probe-driven tuner picks the fastest feasible
  one (the paper's hand-tuned 8/4 split emerges automatically);
* **grouping strategy** — boundary-scan grouping on sorted inputs vs.
  the hash path, isolating the paper's "hashing is Ocelot's major
  shortcoming" observation.
"""

import numpy as np
import pytest

from repro import cl
from repro.kernels import KERNEL_LIBRARY
from repro.monetdb import Catalog, MALBuilder, run_program
from repro.ocelot import OcelotBackend, autotune, rewrite_for_ocelot

pytestmark = pytest.mark.slow


def _sort_plan():
    builder = MALBuilder("ablate_sort")
    a = builder.bind("t", "a")
    out, order = builder.emit("algebra", "sort", (a, False), n_results=2)
    count = builder.emit("aggr", "count", (order,))
    return rewrite_for_ocelot(builder.returns([("n", count)]))


def _catalog(n=1 << 19, distinct=None, seed=23):
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    domain = distinct if distinct else 1 << 30
    catalog.create_table(
        "t", {"a": rng.integers(0, domain, n).astype(np.int32)}
    )
    return catalog


def _sort_time(kind: str, bits: int, data_scale: float = 128.0) -> float:
    catalog = _catalog()
    backend = OcelotBackend(catalog, kind, data_scale=data_scale)
    if bits > 6 and kind == "gpu":
        # the real device could not even hold the counters; the harness
        # still measures it to show what the tuner avoids
        pass
    backend.engine.radix_bits = bits
    backend.engine.program = cl.build(
        backend.engine.context, KERNEL_LIBRARY, {"RADIX_BITS": bits}
    )
    plan = _sort_plan()
    run_program(plan, backend)
    return run_program(plan, backend).elapsed


@pytest.mark.parametrize("kind,expected_bits", [("cpu", 8), ("gpu", 4)])
def test_ablation_radix_width(kind, expected_bits, benchmark):
    times = {bits: _sort_time(kind, bits) for bits in (2, 4, 8)}
    print(f"\n== ablation: radix width on {kind} (simulated s) ==")
    for bits, seconds in times.items():
        print(f"  {bits} bits: {seconds * 1e3:9.2f} ms")
    catalog = _catalog()
    report = autotune(
        OcelotBackend(catalog, kind, data_scale=128.0).engine
    )
    print(f"  tuner picked: {report.radix_bits} bits")
    assert report.radix_bits == expected_bits
    feasible = {
        b: t for b, t in times.items()
        if (1 << b) * 4 <= report.characteristics.local_mem_bytes
        / report.characteristics.work_group_size
    }
    assert times[min(feasible, key=feasible.get)] == min(feasible.values())
    # the tuned width is at least as fast as the other feasible choices
    assert times[report.radix_bits] <= 1.05 * min(feasible.values())
    benchmark.pedantic(lambda: _sort_time(kind, expected_bits),
                       rounds=1, iterations=1)


def test_ablation_sorted_vs_hash_grouping(benchmark):
    """Boundary-scan grouping removes the hash build entirely."""
    catalog = _catalog(distinct=100)
    values = catalog.bat("t", "a").values
    pre_sorted = np.sort(values)
    sorted_catalog = Catalog()
    sorted_catalog.create_table("t", {"a": pre_sorted})
    # mark as sorted, as MonetDB's properties would
    sorted_catalog.bat("t", "a").sorted = True

    def group_elapsed(cat):
        backend = OcelotBackend(cat, "cpu", data_scale=128.0)
        builder = MALBuilder("g")
        a = builder.bind("t", "a")
        gids, n = builder.emit("group", "group", (a,), n_results=2)
        plan = rewrite_for_ocelot(builder.returns([("n", n)]))
        run_program(plan, backend)
        result = run_program(plan, backend)
        overhead = backend.engine.device.profile.framework_overhead_s
        return result.elapsed - overhead, result.columns["n"][0]

    hash_time, hash_groups = group_elapsed(catalog)
    sorted_time, sorted_groups = group_elapsed(sorted_catalog)
    print("\n== ablation: grouping strategy (CPU, 100 groups) ==")
    print(f"  hash path:     {hash_time * 1e3:9.2f} ms")
    print(f"  boundary path: {sorted_time * 1e3:9.2f} ms")
    assert hash_groups == sorted_groups == 100
    assert sorted_time < hash_time / 3
    benchmark.pedantic(lambda: group_elapsed(sorted_catalog),
                       rounds=1, iterations=1)
