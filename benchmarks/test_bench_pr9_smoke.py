"""PR 9 perf smoke: observability must be free when off.

Not a paper figure and *not* marked slow: this module runs in the fast
tier-1 loop so every push records the observability layer's headline
numbers into the machine-readable benchmark report
(``REPRO_BENCH_JSON``, archived by CI as ``BENCH_PR9.json``):

* off-mode overhead on Q1/Q6/Q12 — the instrumented interpreter with
  tracing *off* A/B'd against a baseline stepper with the tracer hooks
  edited out, wall-clock min-of-N (acceptance: < 5% aggregate);
* trace=on vs trace=off — identical results and identical *simulated*
  time (tracing is an observer, never a participant);
* one Chrome trace of TPC-H Q1 on the heterogeneous pool, written next
  to the report (``trace_q1_het.json``) and archived by CI, plus the
  EXPLAIN ANALYZE profile's reconciliation numbers in the report.
"""

import json
import os
import time

import numpy as np
import pytest

import repro
from conftest import emit
from repro import tpch
from repro.bench.harness import Measurement, Series
from repro.monetdb.bat import BAT
from repro.monetdb.interpreter import ProgramRun
from repro.morsel.run import MorselRun

SF = 0.05
QUERIES = ("Q1", "Q6", "Q12")
ROUNDS = 9

#: where the Chrome trace artifact lands (CI archives it)
TRACE_ARTIFACT = os.environ.get("REPRO_TRACE_ARTIFACT",
                                "trace_q1_het.json")


@pytest.fixture(autouse=True)
def _unforced_tracing(monkeypatch):
    """A global ``REPRO_TRACE`` would trace the off arm of the A/B."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)


# -- the baseline steppers -------------------------------------------------------
#
# Copies of the untraced fast paths with the tracer hooks removed —
# what the interpreter looked like before PR 9.  The A/B below measures
# exactly what the always-compiled-in hooks cost when tracing is off.

def _baseline_step(self) -> bool:
    if self.done:
        return False
    instruction = self.program.instructions[self._pc]
    if instruction.op == "morsel.run":
        return self._step_morsel(instruction)
    fn = self.backend.resolve(instruction.op)
    args = [self.resolve_arg(a) for a in instruction.args]
    out = fn(*args)
    self._assign(instruction, out)
    self._release_dead(self._pc)
    self._pc += 1
    return not self.done


def _baseline_morsel_step(self) -> bool:
    lo = self._lo
    hi = min(lo + self.spec.size, self._n)
    slices = {}
    for name, value in self._slots.items():
        slices[name] = (
            self.backend.slice_base(value, lo, hi)
            if name in self._sliced_names and isinstance(value, BAT)
            else value
        )
    local: dict = {}
    with self.backend.morsel_scope():
        for member in self.spec.members:
            self._execute(member, local, slices)
        self._harvest(local, slices, lo)
    self._release_locals(local, slices)
    self._lo = hi
    if hi < self._n:
        return True
    self._finalize()
    return False


def _timed(con, sql) -> float:
    t0 = time.perf_counter()
    con.execute(sql)
    return time.perf_counter() - t0


def test_trace_off_overhead_under_five_percent():
    db = repro.tpch_database(sf=SF)
    con = db.connect("MS")
    sqls = {q: tpch.WORKLOAD[q] for q in QUERIES}
    for sql in sqls.values():                      # warm plans + caches
        con.execute(sql)

    instrumented = {q: float("inf") for q in QUERIES}
    baseline = {q: float("inf") for q in QUERIES}
    originals = (ProgramRun.step, MorselRun._step_morsel)
    for _ in range(ROUNDS):                        # interleave the arms
        for q, sql in sqls.items():
            instrumented[q] = min(instrumented[q], _timed(con, sql))
        ProgramRun.step = _baseline_step
        MorselRun._step_morsel = _baseline_morsel_step
        try:
            for q, sql in sqls.items():
                baseline[q] = min(baseline[q], _timed(con, sql))
        finally:
            ProgramRun.step, MorselRun._step_morsel = originals

    ratio = sum(instrumented.values()) / sum(baseline.values())
    emit(Series(
        name="pr9 smoke: trace-off overhead vs un-instrumented stepper",
        x_label="query",
        labels=("instrumented_ms", "baseline_ms"),
        points=[
            Measurement(
                x=q,
                millis={"instrumented_ms": instrumented[q] * 1e3,
                        "baseline_ms": baseline[q] * 1e3},
                extra={"ratio": round(instrumented[q] / baseline[q], 4)},
            )
            for q in QUERIES
        ] + [Measurement(
            x="aggregate",
            millis={"instrumented_ms": sum(instrumented.values()) * 1e3,
                    "baseline_ms": sum(baseline.values()) * 1e3},
            extra={"ratio": round(ratio, 4)},
        )],
    ))
    assert ratio < 1.05, f"trace-off overhead {ratio:.3f}x exceeds 5%"
    db.close()


def test_trace_on_is_a_pure_observer():
    points = []
    for engine, traced_spec in (("MS", "MS:trace=on"),
                                ("SHARD:2xCPU", "SHARD:2xCPU,trace=on")):
        db = repro.tpch_database(sf=SF)
        for q in QUERIES:
            sql = tpch.WORKLOAD[q]
            plain = db.connect(engine).execute(sql)
            traced = db.connect(traced_spec).execute(sql)
            assert plain.trace is None and traced.trace is not None
            assert list(plain.columns) == list(traced.columns)
            for col in plain.columns:
                np.testing.assert_allclose(
                    traced.columns[col].astype(np.float64),
                    plain.columns[col].astype(np.float64),
                    rtol=1e-5, atol=1e-9,
                )
            assert traced.elapsed == plain.elapsed
            points.append(Measurement(
                x=f"{engine} {q}",
                millis={"simulated_ms": plain.elapsed * 1e3},
                extra={"spans": sum(1 for _ in traced.trace.walk())},
            ))
        db.close()
    emit(Series(
        name="pr9 smoke: trace=on is a pure observer "
             "(identical results + simulated time)",
        x_label="engine / query",
        labels=("simulated_ms",),
        points=points,
    ))


def test_chrome_trace_artifact_and_profile():
    db = repro.tpch_database(sf=SF)
    con = db.connect("HET")
    result = con.execute(tpch.WORKLOAD["Q1"], analyze=True)
    doc = result.trace.export_chrome(TRACE_ARTIFACT)

    with open(TRACE_ARTIFACT) as fh:
        loaded = json.load(fh)
    assert loaded["displayTimeUnit"] == "ms"
    assert any(e["ph"] == "X" for e in loaded["traceEvents"])
    assert doc["otherData"]["engine"] == "HET"

    profile = result.trace.profile()
    operators = profile["operators"]
    operator_s = sum(row["seconds"] for row in operators.values())
    assert 0 < operator_s <= profile["wall_s"] * (1 + 1e-9)
    emit(Series(
        name="pr9 smoke: EXPLAIN ANALYZE Q1 on HET "
             f"(chrome trace -> {TRACE_ARTIFACT})",
        x_label="metric",
        labels=("ms",),
        points=[
            Measurement(
                x="wall", millis={"ms": profile["wall_s"] * 1e3},
                extra={
                    "operators": len(operators),
                    "reconciled_pct": round(
                        100 * operator_s / profile["wall_s"], 1
                    ),
                    "trace_events": len(doc["traceEvents"]),
                },
            ),
        ],
    ))
    db.close()
