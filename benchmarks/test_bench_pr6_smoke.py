"""PR 6 perf smoke: morsel-driven vs whole-column execution, fast.

Not a paper figure and *not* marked slow: this module runs in the fast
tier-1 loop so every push records the morsel trade-off — simulated Q1
milliseconds plus the peak nominal intermediate bytes on the CPU device
— into the machine-readable benchmark report (``REPRO_BENCH_JSON``,
archived by CI as ``BENCH_PR6.json``).

The interesting series is the memory one: streaming 4096-row morsels
through Q1's pipeline must peak at least 3x below the whole-column run
(the PR's acceptance bar).  Simulated *time* is allowed to pay for the
extra kernel launches — at mini-scale a cache-sized morsel is a large
fraction of the whole table, so the launch overhead is proportionally
exaggerated — but stays within a small constant factor.
"""

import pytest

import repro
from conftest import emit
from repro.bench.harness import Measurement, Series
from repro.tpch import WORKLOAD

MORSEL_SIZE = 4096
SF = 0.5


@pytest.fixture(autouse=True)
def _morsel_default(monkeypatch):
    """The A/B below sets the switch per spec; neutralise the CI job's
    global REPRO_MORSEL so both sides mean what their spec says."""
    monkeypatch.delenv("REPRO_MORSEL", raising=False)


def _measure(spec: str):
    db = repro.tpch_database(sf=SF)
    con = db.connect(spec)
    con.execute(WORKLOAD["Q1"], name="Q1")     # warm device + plan caches
    result = con.execute(WORKLOAD["Q1"], name="Q1")
    peak = con.backend.engine.memory.stats.intermediate_bytes_peak
    db.close()
    return result.elapsed * 1e3, peak


def test_q1_morsel_smoke():
    off_ms, off_peak = _measure("CPU:morsel=off")
    on_ms, on_peak = _measure(f"CPU:morsel={MORSEL_SIZE}")
    series = Series(
        name=f"pr6 smoke: Q1 on CPU, sf={SF}",
        x_label="mode",
        labels=("whole-column", "morsel"),
        points=[
            Measurement(
                x="whole-column", millis={"whole-column": off_ms},
                extra={"peak_intermediate_bytes": off_peak},
            ),
            Measurement(
                x=f"morsel={MORSEL_SIZE}", millis={"morsel": on_ms},
                extra={"peak_intermediate_bytes": on_peak},
            ),
        ],
    )
    emit(series)
    # the acceptance bar: peak intermediate footprint drops >= 3x
    assert on_peak > 0
    assert off_peak / on_peak >= 3.0
    # time pays launch overhead at mini-scale, but boundedly so
    assert on_ms < 5.0 * off_ms
