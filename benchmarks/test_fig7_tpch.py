"""Fig. 7 (a)-(d): the TPC-H evaluation (paper §5.3).

Four panels:

* (a) SF 1  — Ocelot-CPU is the worst configuration on every query
  (the Intel SDK's ~1 s fixed overhead); the GPU is competitive with or
  ahead of parallel MonetDB.
* (b) SF 8  — the picture balances: Ocelot-CPU becomes competitive for
  several queries but stays slow where hashing dominates (Q10, Q11,
  Q17, Q21); the GPU lead shrinks (device-memory swapping).
* (c) SF 50 — MS/MP/CPU only (the GPU's 2 GB cannot host the working
  set); Ocelot-CPU is on par with or better than MS for most queries.
* (d) Q1 against the scale factor — linear for all; ~1 s CPU intercept;
  a non-linear GPU step once swapping starts.
"""

import pytest

from conftest import column, emit, val
from repro.bench.tpchbench import q1_scaling, tpch_queries
from repro.tpch import WORKLOAD

pytestmark = pytest.mark.slow

HASH_HEAVY = ("Q10", "Q11", "Q17", "Q21")


@pytest.fixture(scope="module", autouse=True)
def _whole_column_engines():
    """The figures reproduce the paper's 2013 engines, which executed
    whole-column: pin the morsel pass off so the asserted shapes stay
    the paper's (at mini-scale a fixed morsel grid crosses the
    one-morsel boundary between scale factors, bending fig. 7d's
    linearity).  The morsel trade-off is measured separately by
    ``test_bench_pr6_smoke.py`` and the ``tests/morsel`` suite."""
    patcher = pytest.MonkeyPatch()
    patcher.setenv("REPRO_MORSEL", "off")
    yield
    patcher.undo()


@pytest.fixture(scope="module")
def sf1():
    return tpch_queries(sf=1, runs=2)


def test_fig7a_tpch_sf1(sf1, benchmark):
    emit(sf1)
    for point in sf1.points:
        cpu = point.millis["CPU"]
        # "not a single query where any other configuration is slower
        # than Ocelot on the CPU" — allow small jitter on the cheapest
        assert cpu >= 0.85 * max(
            point.millis["MS"], point.millis["MP"]
        ), point.x
        # the GPU outperforms parallel MonetDB at SF 1
        assert point.millis["GPU"] < point.millis["MP"], point.x
    benchmark.pedantic(
        lambda: tpch_queries(sf=1, runs=1, queries=("Q6",)),
        rounds=1, iterations=1,
    )


def test_fig7b_tpch_sf8(benchmark):
    series = tpch_queries(sf=8, runs=1)
    emit(series)
    # more balanced: Ocelot-CPU within 2x of MS for at least half the
    # queries...
    competitive = [
        p.x for p in series.points
        if p.millis["CPU"] < 2.0 * p.millis["MS"]
    ]
    assert len(competitive) >= len(series.points) // 2
    # ... but the hash-heavy queries remain clearly behind MP (§5.3.2)
    for query_id in HASH_HEAVY:
        assert val(series, "CPU", query_id) > 1.4 * val(series, "MP",
                                                        query_id)
    benchmark.pedantic(
        lambda: tpch_queries(sf=8, runs=1, queries=("Q6",)),
        rounds=1, iterations=1,
    )


def test_fig7c_tpch_sf50(benchmark):
    """The GPU sits this one out (2 GB device memory, §5.3.3)."""
    series = tpch_queries(sf=50, runs=1, labels=("MS", "MP", "CPU"))
    emit(series)
    on_par = [
        p.x for p in series.points if p.millis["CPU"] <= 1.15 * p.millis["MS"]
    ]
    # "apart from three queries, Ocelot is on par or outperforms MonetDB"
    assert len(on_par) >= len(series.points) - 4, on_par
    benchmark.pedantic(
        lambda: tpch_queries(sf=50, runs=1, labels=("MS", "CPU"),
                             queries=("Q6",)),
        rounds=1, iterations=1,
    )


def test_fig7d_q1_scaling(benchmark):
    series = q1_scaling(scale_factors=(1, 2, 4, 8, 10), runs=2)
    emit(series)
    # linear growth for the MonetDB configurations
    ms = column(series, "MS")
    assert 1.7 < ms[1] / ms[0] < 2.3
    assert 1.7 < ms[3] / ms[2] < 2.3
    # extrapolated intercept: Ocelot-CPU ~1 s, everyone else near zero
    cpu = column(series, "CPU")
    cpu_intercept = cpu[0] - (cpu[1] - cpu[0])  # back-extrapolate to SF 0
    assert cpu_intercept > 400  # ms
    mp_intercept = val(series, "MP", 1) - (
        val(series, "MP", 2) - val(series, "MP", 1)
    )
    assert abs(mp_intercept) < 150
    # the CPU's better scaling: it crosses below MS as SF grows (§5.3.2)
    assert cpu[0] > ms[0]
    assert cpu[-1] < ms[-1]
    # non-linear GPU step once swapping starts (§5.3.2)
    gpu = column(series, "GPU")
    early_slope = (gpu[2] - gpu[1]) / 2.0
    late_slope = (gpu[3] - gpu[2]) / 4.0
    assert late_slope > 1.2 * early_slope
    benchmark.pedantic(
        lambda: q1_scaling(scale_factors=(1,), runs=1), rounds=1,
        iterations=1,
    )


def test_workload_is_the_paper_figure_set():
    assert list(WORKLOAD) == [
        "Q1", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q10", "Q11", "Q12",
        "Q15", "Q17", "Q19", "Q21",
    ]
