"""Fig. 9 (extension): the pipelined query-serving layer (ROADMAP).

Not a figure of the original paper — this is the serving milestone on
top of the §7 heterogeneous engine: a plan cache for repeat queries and
async sessions that overlap independent queries on the HET pool's
per-device timelines (see ARCHITECTURE.md, "serve").

Two panels:

* (a) concurrency — N independent queries (a mix of CPU-bound scans of
  a beyond-GPU-memory table and GPU-bound grouped aggregations)
  submitted through ``Connection.submit`` finish in less simulated
  makespan than the same queries executed serially, because the session
  scheduler's cross-device sync points are session-scoped and the two
  device queues run concurrently,
* (b) plan cache — repeating one statement skips parse, lowering, the
  Ocelot rewrite and (on HET) per-instruction placement scoring: the
  hit counters prove the cache path is taken and the repeat-query
  microbenchmark shows real wall-clock savings,
* (c) sharded children — the same batch submitted on ``SHARD:<N>xCPU``
  connections: shards are independent nodes with their own clocks, so
  one query's driver merge overlaps another query's shard scans and the
  concurrent batch beats the serial sum there too (more so with more
  shards), with the scheduler's turn log showing genuine interleaving.
"""

import time

import numpy as np
import pytest

from conftest import emit
from repro.api import Database
from repro.bench.harness import Measurement, Series

pytestmark = pytest.mark.slow


def serving_database() -> Database:
    """One table the GPU cannot hold next to one it serves well —
    the heterogeneous serving mix."""
    rng = np.random.default_rng(47)
    db = Database(data_scale=6144.0)
    db.create_table("events", {                  # ~ 3 GB nominal: CPU-bound
        "v": rng.integers(0, 1 << 30, 1 << 17).astype(np.int32),
    })
    db.create_table("metrics", {                 # ~ 400 MB nominal: GPU-bound
        "w": rng.random(1 << 14).astype(np.float32),
        "g": rng.integers(0, 32, 1 << 14).astype(np.int32),
    })
    return db


WORKLOAD = [
    "SELECT min(v) AS m FROM events",
    "SELECT g, sum(w) AS s FROM metrics GROUP BY g",
    "SELECT sum(w) AS s FROM metrics WHERE w >= 0.25",
    "SELECT g, count(*) AS n FROM metrics GROUP BY g",
    "SELECT max(v) AS m FROM events",
    "SELECT g, sum(w) AS s FROM metrics WHERE w < 0.75 GROUP BY g",
]


def run_batch(db: Database):
    """(serial seconds, pipelined makespan seconds, futures)."""
    con = db.connect("HET")
    for sql in WORKLOAD:                  # warm device + plan caches
        con.execute(sql)
    serial = sum(con.execute(sql).elapsed for sql in WORKLOAD)
    futures = [con.submit(sql) for sql in WORKLOAD]
    con.drain()
    return serial, con.scheduler.last_batch_makespan, futures


def test_fig9a_concurrent_submits_beat_serial(benchmark):
    db = serving_database()
    serial, makespan, futures = run_batch(db)
    series = Series(
        name="fig9a: N=6 mixed queries on HET",
        x_label="batch",
        labels=("serial", "pipelined"),
        points=[Measurement(x=len(WORKLOAD), millis={
            "serial": serial * 1e3, "pipelined": makespan * 1e3,
        })],
    )
    emit(series)
    assert makespan is not None
    # the batch's two device timelines overlap: well under serial
    assert makespan < 0.8 * serial
    assert all(future.done() for future in futures)
    benchmark.pedantic(
        lambda: run_batch(serving_database()), rounds=1, iterations=1
    )


def test_fig9a_pipelined_results_identical_to_ms():
    db = serving_database()
    con = db.connect("HET")
    ms = db.connect("MS")
    futures = [con.submit(sql) for sql in WORKLOAD]
    con.drain()
    for sql, future in zip(WORKLOAD, futures):
        expected = ms.execute(sql)
        got = future.result()
        assert set(got.columns) == set(expected.columns), sql
        for col in expected.columns:
            assert np.allclose(
                got.columns[col].astype(np.float64),
                expected.columns[col].astype(np.float64),
                rtol=1e-4, atol=1e-6,
            ), (sql, col)


def _compile_heavy_sql() -> str:
    """Execution-trivial but compilation-heavy: a long constant chain is
    expensive to parse yet folds into one predicate at lowering time, so
    the timing delta below isolates parse+lower+rewrite."""
    chain = "+".join(["1"] * 400)
    return f"SELECT sum(x) AS s FROM tiny WHERE x < {chain}"


def test_fig9b_plan_cache_repeat_query_speedup():
    rng = np.random.default_rng(3)
    db = Database()
    db.create_table("tiny", {
        "x": rng.integers(0, 240, 2000).astype(np.int32),
    })
    con = db.connect("MS")
    sql = _compile_heavy_sql()
    con.execute(sql)                       # warm everything once
    runs = 25

    t0 = time.perf_counter()
    for _ in range(runs):
        db.plan_cache.clear()              # force the cold path
        con.execute(sql)
    cold = time.perf_counter() - t0

    hits_before = db.plan_cache.stats.hits
    t0 = time.perf_counter()
    for _ in range(runs):
        con.execute(sql)
    warm = time.perf_counter() - t0

    print(f"\n== fig9b: repeat-query wall clock, {runs} runs ==\n"
          f"   cold (compile every run): {cold * 1e3:7.1f} ms\n"
          f"   warm (plan cache):        {warm * 1e3:7.1f} ms   "
          f"({cold / warm:.1f}x)")
    # every warm run was a cache hit, and it shows on the wall clock
    assert db.plan_cache.stats.hits - hits_before == runs
    assert warm < 0.5 * cold


def run_shard_batch(db: Database, spec: str):
    """(serial seconds, pipelined makespan seconds, futures, con)."""
    con = db.connect(spec)
    for sql in WORKLOAD:                  # warm shard + plan caches
        con.execute(sql)
    serial = sum(con.execute(sql).elapsed for sql in WORKLOAD)
    futures = [con.submit(sql) for sql in WORKLOAD]
    con.drain()
    return serial, con.scheduler.last_batch_makespan, futures, con


def test_fig9c_shard_children_overlap_concurrent_submits():
    db = serving_database()
    points = []
    for shards in (2, 4):
        serial, makespan, futures, con = run_shard_batch(
            db, f"SHARD:{shards}xCPU"
        )
        assert makespan is not None
        assert all(future.done() for future in futures)
        # per-shard clocks run concurrently across sessions: the batch
        # beats serial well beyond scheduling noise
        assert makespan < 0.75 * serial
        # and the scheduler genuinely interleaved the sessions rather
        # than draining them FIFO: the turn log switches sessions often
        sessions = [session for session, _ in con.scheduler.turn_log]
        switches = sum(
            1 for a, b in zip(sessions, sessions[1:]) if a != b
        )
        assert len(set(sessions)) == len(WORKLOAD)
        assert switches >= len(WORKLOAD)
        points.append(Measurement(x=shards, millis={
            "serial": serial * 1e3, "pipelined": makespan * 1e3,
        }))
    series = Series(
        name="fig9c: N=6 mixed queries on SHARD:<n>xCPU",
        x_label="shards",
        labels=("serial", "pipelined"),
        points=points,
    )
    emit(series)
    # more shards shrink the pipelined makespan further
    assert points[1].millis["pipelined"] < points[0].millis["pipelined"]


def test_fig9c_shard_pipelined_results_identical_to_ms():
    db = serving_database()
    con = db.connect("SHARD:2xCPU")
    ms = db.connect("MS")
    futures = [con.submit(sql) for sql in WORKLOAD]
    con.drain()
    for sql, future in zip(WORKLOAD, futures):
        expected = ms.execute(sql)
        got = future.result()
        assert set(got.columns) == set(expected.columns), sql
        for col in expected.columns:
            assert np.allclose(
                got.columns[col].astype(np.float64),
                expected.columns[col].astype(np.float64),
                rtol=1e-4, atol=1e-6,
            ), (sql, col)


def test_fig9b_het_repeat_query_replays_placement():
    db = serving_database()
    con = db.connect("HET")
    sql = WORKLOAD[1]
    con.execute(sql)
    decisions = len(con.backend.decision_log)
    assert decisions > 0
    reuses_before = db.plan_cache.stats.placement_reuses
    con.execute(sql)
    assert db.plan_cache.stats.placement_reuses - reuses_before == decisions
