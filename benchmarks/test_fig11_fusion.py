"""Fig. 11 (extension): operator fusion of element-wise chains (ROADMAP).

Not a figure of the original paper — this is the operator-fusion
milestone (see ARCHITECTURE.md, "Fusion"): the rewrite-time pass
collapses Q1-style ``batcalc`` chains (``1-d``, ``ep*(1-d)``,
``ep*(1-d)*(1+t)``) into one generated single-pass kernel, cutting both
the per-instruction kernel-launch tax and the intermediate result
buffers that per-operator execution bakes in (the memory-traffic
bottleneck MorphStore and Sirin & Ailamaki identify).

Three panels:

* (a) device kernel launches and intermediate-buffer allocations on the
  Q1 chain, fused vs unfused (the acceptance numbers: >= 3x fewer
  launches, fewer intermediates),
* (b) simulated Q1 time per engine, fused vs unfused,
* (c) the A/B safety net — all 14 TPC-H queries produce identical
  results with fusion on vs off on every registered engine family.
"""

import numpy as np
import pytest

from conftest import emit
from repro.api import tpch_database
from repro.bench.harness import Measurement, Series
from repro.tpch import WORKLOAD

pytestmark = pytest.mark.slow

#: the Q1 expression chain, isolated: six batcalc instructions unfused
#: (sub, mul for disc_price; sub, mul, add, mul for charge), one
#: generated kernel fused
CHAIN_SQL = (
    "SELECT l_extendedprice * (1 - l_discount) AS disc_price, "
    "l_extendedprice * (1 - l_discount) * (1 + l_tax) AS charge "
    "FROM lineitem"
)

#: one spec per registered engine family
FAMILY_SPECS = ("MS", "MP", "CPU", "GPU", "HET", "SHARD:2xMS")


def _no_fuse(spec: str) -> str:
    return f"{spec},fusion=off" if ":" in spec else f"{spec}:fusion=off"


def test_fig11a_chain_launches_and_intermediates(benchmark):
    db = tpch_database(sf=0.5)
    fused = db.connect("CPU")
    plain = db.connect("CPU:fusion=off")

    def measure(con):
        queue = con.backend.engine.queue.stats
        memory = con.backend.engine.memory.stats
        launches0 = queue.kernels_launched
        buffers0 = memory.intermediates_allocated
        result = con.execute(CHAIN_SQL)
        return (
            queue.kernels_launched - launches0,
            memory.intermediates_allocated - buffers0,
            result,
        )

    (fused_launches, fused_buffers, fused_result) = benchmark.pedantic(
        lambda: measure(fused), rounds=1, iterations=1
    )
    plain_launches, plain_buffers, plain_result = measure(plain)
    series = Series(
        name="fig11a: Q1 chain launches / intermediate buffers",
        x_label="metric (1=launches, 2=buffers)",
        labels=("fused", "unfused"),
        points=[
            Measurement(x=1, millis={"fused": fused_launches,
                                     "unfused": plain_launches}),
            Measurement(x=2, millis={"fused": fused_buffers,
                                     "unfused": plain_buffers}),
        ],
    )
    emit(series)
    # the acceptance bar: >= 3x fewer device kernel launches and fewer
    # intermediate-buffer allocations on the fused plan
    assert plain_launches >= 3 * fused_launches
    assert fused_buffers < plain_buffers
    for column in ("disc_price", "charge"):
        np.testing.assert_allclose(
            fused_result.column(column), plain_result.column(column),
            rtol=1e-6,
        )


def test_fig11b_q1_simulated_time_per_engine():
    db = tpch_database(sf=1)
    points = []
    for spec in ("MS", "MP", "CPU", "GPU", "HET"):
        fused_con = db.connect(spec)
        plain_con = db.connect(_no_fuse(spec))
        fused_con.execute(WORKLOAD["Q1"], name="Q1")      # warm caches
        plain_con.execute(WORKLOAD["Q1"], name="Q1")
        fused = fused_con.execute(WORKLOAD["Q1"], name="Q1").elapsed
        plain = plain_con.execute(WORKLOAD["Q1"], name="Q1").elapsed
        points.append((spec, fused, plain))
    series = Series(
        name="fig11b: TPC-H Q1 hot time, fused vs unfused",
        x_label="engine (index into " + ",".join(p[0] for p in points) + ")",
        labels=("fused", "unfused"),
        points=[
            Measurement(x=i + 1, millis={"fused": f * 1e3,
                                         "unfused": u * 1e3})
            for i, (_spec, f, u) in enumerate(points)
        ],
    )
    emit(series)
    # fusion must never slow a query down: same data volume streamed,
    # strictly fewer launches and strictly less materialisation
    for spec, fused, plain in points:
        assert fused <= plain * 1.01, spec
    # on the launch-taxed Ocelot engines the chain win is visible
    ocelot = {s: (f, u) for s, f, u in points if s in ("CPU", "GPU")}
    assert any(f < u for f, u in ocelot.values())


@pytest.mark.parametrize("spec", FAMILY_SPECS)
def test_fig11c_all_queries_identical_fused_vs_unfused(spec):
    db = tpch_database(sf=0.25)
    fused_con = db.connect(spec)
    plain_con = db.connect(_no_fuse(spec))
    for query_id in WORKLOAD:
        fused = fused_con.execute(WORKLOAD[query_id], name=query_id)
        plain = plain_con.execute(WORKLOAD[query_id], name=query_id)
        assert set(fused.columns) == set(plain.columns), query_id
        for column in fused.columns:
            a, b = fused.columns[column], plain.columns[column]
            assert a.shape == b.shape, (spec, query_id, column)
            if a.dtype.kind == "f" or b.dtype.kind == "f":
                np.testing.assert_allclose(
                    a.astype(np.float64), b.astype(np.float64),
                    rtol=1e-4, atol=1e-6,
                    err_msg=f"{spec}/{query_id}/{column}",
                )
            else:
                np.testing.assert_array_equal(
                    a, b, err_msg=f"{spec}/{query_id}/{column}"
                )
    db.close()
