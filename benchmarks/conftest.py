"""Shared benchmark plumbing.

Every module regenerates one table/figure of the paper's evaluation:
it prints the same rows/series the paper plots (simulated milliseconds
per configuration) and asserts the qualitative shape — who wins, by
roughly what factor, where lines end.  ``pytest-benchmark`` wraps one
representative sweep per figure for wall-clock tracking.

When ``REPRO_BENCH_JSON`` names a file, every emitted series is
additionally collected and written there at session end as a
machine-readable report — per-figure makespans plus any auxiliary
metrics a point carries (``Measurement.extra``, e.g. interconnect
bytes) — so CI can archive a perf trajectory across PRs
(the manually-triggered ``bench-json`` job uploads ``BENCH_PR5.json``).
"""

import json
import os

import pytest

from repro import cl
from repro.bench.report import format_series

_EMITTED = []


def emit(series):
    """Print a figure table through pytest's capture-friendly path."""
    print()
    print(format_series(series))
    _EMITTED.append(series)


def _jsonable(value):
    """Plain-Python view of a value (numpy scalars -> int/float)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item"):          # numpy scalar
        return value.item()
    return str(value)


def pytest_sessionfinish(session, exitstatus):
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path or not _EMITTED:
        return
    figures = {}
    for series in _EMITTED:
        figures[series.name] = {
            "x_label": series.x_label,
            "labels": [str(label) for label in series.labels],
            "points": [
                {
                    "x": _jsonable(point.x),
                    "millis": _jsonable(point.millis),
                    **({"extra": _jsonable(point.extra)}
                       if point.extra else {}),
                }
                for point in series.points
            ],
        }
    with open(path, "w") as handle:
        json.dump({"figures": figures}, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="session", autouse=True)
def testbed_banner():
    """Print the §5.1 device inventory once per benchmark session."""
    lines = ["", "== §5.1 simulated testbed =="]
    for platform in cl.get_platforms():
        for device in platform.get_devices():
            p = device.profile
            lines.append(
                f"  {p.name}: {p.compute_cores} cores x "
                f"{p.units_per_core} units @ {p.clock_ghz} GHz, "
                f"{p.global_mem_bytes / cl.GB:.0f} GB, "
                f"{p.stream_bw_gbs:.0f} GB/s"
            )
    print("\n".join(lines))
    yield


def val(series, label, x):
    point = next(p for p in series.points if p.x == x)
    return point.millis[label]


def column(series, label):
    return [p.millis.get(label) for p in series.points]
