"""Shared benchmark plumbing.

Every module regenerates one table/figure of the paper's evaluation:
it prints the same rows/series the paper plots (simulated milliseconds
per configuration) and asserts the qualitative shape — who wins, by
roughly what factor, where lines end.  ``pytest-benchmark`` wraps one
representative sweep per figure for wall-clock tracking.
"""

import pytest

from repro import cl
from repro.bench.report import format_series


def emit(series):
    """Print a figure table through pytest's capture-friendly path."""
    print()
    print(format_series(series))


@pytest.fixture(scope="session", autouse=True)
def testbed_banner():
    """Print the §5.1 device inventory once per benchmark session."""
    lines = ["", "== §5.1 simulated testbed =="]
    for platform in cl.get_platforms():
        for device in platform.get_devices():
            p = device.profile
            lines.append(
                f"  {p.name}: {p.compute_cores} cores x "
                f"{p.units_per_core} units @ {p.clock_ghz} GHz, "
                f"{p.global_mem_bytes / cl.GB:.0f} GB, "
                f"{p.stream_bw_gbs:.0f} GB/s"
            )
    print("\n".join(lines))
    yield


def val(series, label, x):
    point = next(p for p in series.points if p.x == x)
    return point.millis[label]


def column(series, label):
    return [p.millis.get(label) for p in series.points]
