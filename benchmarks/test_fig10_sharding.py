"""Fig. 10 (extension): the sharded multi-node engine (ROADMAP).

Not a figure of the original paper — this is the multi-backend sharding
milestone: tables partitioned across N simulated nodes (each running a
full single-node engine), per-shard MAL plans through the unchanged
interpreter, mat.pack-style merges on the driver (see ARCHITECTURE.md,
"shard").

Three panels:

* (a) makespan vs shard count — TPC-H Q1 (selection + grouped
  aggregation over lineitem) on ``SHARD:NxMS``: per-shard work shrinks
  ~1/N while the driver merge stays ngroups-wide, so the simulated
  makespan falls as shards are added,
* (b) composed engines — the same sweep with heterogeneous children
  (``SHARD:NxHET``): composition over the registry, not a special case;
  every node still fans out across its own CPU+GPU pool,
* (c) join strategies — TPC-H Q12 (lineitem ⋈ orders on the order
  key) under the three join plans: the PR-3 broadcast-gather baseline
  (``join=broadcast``), the hash-shuffle re-partition, and the
  co-partitioned shard-local join with declared shard keys.
  Interconnect bytes (``Connection.interconnect``) drop by orders of
  magnitude from broadcast to co-located, and the makespan follows.
"""

import numpy as np
import pytest

from conftest import emit
from repro.api import tpch_database
from repro.bench.configs import SHARD_JOIN_SPECS
from repro.bench.harness import Measurement, Series
from repro.tpch import WORKLOAD

pytestmark = pytest.mark.slow

SHARD_COUNTS = (1, 2, 4, 8)


def _sweep(db, child: str, counts=SHARD_COUNTS, query: str = "Q1",
           runs: int = 3) -> dict:
    """shard count -> average hot simulated seconds for ``query``."""
    seconds = {}
    for n in counts:
        con = db.connect(f"SHARD:{n}x{child}")
        con.execute(WORKLOAD[query], name=query)      # warm caches
        total = 0.0
        for _ in range(runs):
            total += con.execute(WORKLOAD[query], name=query).elapsed
        seconds[n] = total / runs
        con.close()                # free the shard devices before the
        # next sweep point (8xHET would otherwise hold 16 live engines)
    return seconds


def test_fig10a_makespan_shrinks_with_shard_count(benchmark):
    db = tpch_database(sf=2)
    expected = db.connect("MS").execute(WORKLOAD["Q1"], name="Q1")
    seconds = benchmark.pedantic(
        lambda: _sweep(db, "MS"), rounds=1, iterations=1
    )
    series = Series(
        name="fig10a: TPC-H Q1 makespan vs shard count (MS nodes)",
        x_label="shards",
        labels=("SHARD",),
        points=[
            Measurement(x=n, millis={"SHARD": s * 1e3})
            for n, s in seconds.items()
        ],
    )
    emit(series)
    # more nodes, less makespan: every step down the sweep helps ...
    counts = sorted(seconds)
    for small, large in zip(counts, counts[1:]):
        assert seconds[large] < seconds[small]
    # ... and the scaling is substantial, not marginal (the merge is
    # ngroups-wide, so it cannot eat the per-shard win)
    assert seconds[8] < 0.4 * seconds[1]
    # sharded results stay exactly the single-node results
    got = db.connect("SHARD:4xMS").execute(WORKLOAD["Q1"], name="Q1")
    for column in expected.columns:
        np.testing.assert_allclose(
            got.columns[column].astype(np.float64),
            expected.columns[column].astype(np.float64),
            rtol=1e-9,
        )


#: the fig10c join-strategy sweep: one spec per strategy, same engine
#: shape (4 MS nodes) — only the join plan differs
JOIN_SPECS = SHARD_JOIN_SPECS


def test_fig10c_join_strategies_beat_broadcast():
    """Co-partitioned and shuffled joins beat broadcast-gather on both
    interconnect bytes and makespan (TPC-H Q12, orders ⋈ lineitem)."""
    db = tpch_database(sf=1)
    expected = db.connect("MS").execute(WORKLOAD["Q12"], name="Q12")
    seconds, bytes_moved, traffic = {}, {}, {}
    for name, spec in JOIN_SPECS:
        con = db.connect(spec)
        result = con.execute(WORKLOAD["Q12"], name="Q12")
        query = con.interconnect.query
        seconds[name] = result.elapsed
        bytes_moved[name] = query.bytes_total
        traffic[name] = {
            "bytes_broadcast": query.bytes_broadcast,
            "bytes_shuffled": query.bytes_shuffled,
            "bytes_gathered": query.bytes_gathered,
        }
        # every strategy must still be *correct*
        for column in expected.columns:
            np.testing.assert_allclose(
                result.columns[column].astype(np.float64),
                expected.columns[column].astype(np.float64),
                rtol=1e-6, err_msg=f"{name}: {column}",
            )
        con.close()
    series = Series(
        name="fig10c: TPC-H Q12 join strategies (4xMS nodes)",
        x_label="strategy",
        labels=("SHARD",),
        points=[
            Measurement(
                x=name, millis={"SHARD": seconds[name] * 1e3},
                extra={"bytes_total": bytes_moved[name],
                       **traffic[name]},
            )
            for name, _spec in JOIN_SPECS
        ],
    )
    emit(series)
    # the acceptance bar: a co-partitioned join moves >= 5x fewer
    # interconnect bytes than the broadcast baseline (it is orders of
    # magnitude here — only the ngroups-wide merges remain) ...
    assert bytes_moved["co-located"] * 5 <= bytes_moved["broadcast"]
    # ... and the shuffle path beats broadcast whenever neither side is
    # replicated (both Q12 sides are partitioned at sf=1)
    assert bytes_moved["shuffle"] < bytes_moved["broadcast"]
    assert traffic["shuffle"]["bytes_broadcast"] \
        < traffic["broadcast"]["bytes_broadcast"]
    # the byte savings shows up in the makespan, which is the point
    assert seconds["co-located"] < seconds["broadcast"]
    assert seconds["shuffle"] < seconds["broadcast"]


def test_fig10b_composed_heterogeneous_nodes():
    db = tpch_database(sf=2)
    seconds = _sweep(db, "HET", counts=(1, 2, 4))
    series = Series(
        name="fig10b: TPC-H Q1 makespan vs shard count (HET nodes)",
        x_label="shards",
        labels=("SHARD",),
        points=[
            Measurement(x=n, millis={"SHARD": s * 1e3})
            for n, s in seconds.items()
        ],
    )
    emit(series)
    assert seconds[4] < seconds[1]
    # Q6 equality on the composed engine (the acceptance check)
    cpu = db.connect("CPU").execute(WORKLOAD["Q6"], name="Q6")
    got = db.connect("SHARD:4xHET").execute(WORKLOAD["Q6"], name="Q6")
    np.testing.assert_allclose(
        got.column("revenue").astype(np.float64),
        cpu.column("revenue").astype(np.float64),
        rtol=1e-5,
    )
