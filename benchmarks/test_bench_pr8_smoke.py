"""PR 8 perf smoke: compressed storage, executed compressed.

Not a paper figure and *not* marked slow: this module runs in the fast
tier-1 loop so every push records the compression layer's headline
metrics into the machine-readable benchmark report
(``REPRO_BENCH_JSON``, archived by CI as ``BENCH_PR8.json``):

* the TPC-H storage compression ratio (nominal / physical bytes over
  the whole catalog);
* physical vs nominal interconnect bytes on a sharded scan and a
  sharded broadcast join — the encoded payload crosses the wire, the
  decoded width is what the pre-compression engine moved;
* device residency under a fixed HET budget — the same selection
  workload over encoded vs plain storage, counting base-column rows
  still resident on the budget-constrained GPU afterwards;
* the zero-decode guarantee along the way (covered operator paths
  never materialise an encoded tail).

Acceptance bars: >= 2x on the interconnect reduction and on the
GPU-resident rows, 0 full-column decodes on the covered workloads.
"""

import os

import numpy as np

import repro
from conftest import emit
from repro.bench.harness import Measurement, Series

N_ROWS = 1 << 15
N_DIM_ROWS = 4096

RES_ROWS = 1 << 14
RES_COLS = 12
RES_SCALE = 8192           # fixed simulated device budget (data_scale)


def _shard_db() -> repro.Database:
    rng = np.random.default_rng(5)
    db = repro.Database()
    db.create_table("facts", {
        "k": rng.integers(0, N_DIM_ROWS, N_ROWS).astype(np.int32),
        "v": rng.integers(0, 200, N_ROWS).astype(np.int32),
    })
    db.create_table("dims", {
        "k": np.arange(N_DIM_ROWS, dtype=np.int32),
        "rate": rng.choice(
            np.linspace(0.0, 0.2, 21).astype(np.float32), N_DIM_ROWS
        ),
    })
    return db


def _residency_db(plain: bool) -> repro.Database:
    previous = os.environ.get("REPRO_COMPRESSION")
    if plain:
        os.environ["REPRO_COMPRESSION"] = "off"
    try:
        rng = np.random.default_rng(3)
        db = repro.Database(data_scale=RES_SCALE)
        db.create_table("wide", {
            f"c{i}": rng.integers(0, 200, RES_ROWS).astype(np.int32)
            for i in range(RES_COLS)
        })
    finally:
        if plain:
            if previous is None:
                del os.environ["REPRO_COMPRESSION"]
            else:
                os.environ["REPRO_COMPRESSION"] = previous
    return db


def _gpu_resident_rows(db: repro.Database, con) -> int:
    """Rows of ``wide`` base columns still resident on the pool's
    budget-constrained device (smallest simulated memory)."""
    gpu = min(con.backend.pool.engines,
              key=lambda e: e.device.profile.global_mem_bytes)
    rows = 0
    for i in range(RES_COLS):
        bat = db.catalog.bat("wide", f"c{i}")
        candidates = [bat] + list(getattr(bat, "derived_bats", []))
        if any(gpu.memory.has_resident(b) for b in candidates):
            rows += int(bat.count)
    return rows


def test_tpch_storage_compression_ratio():
    db = repro.tpch_database(sf=0.1)
    stats = db.catalog.compression.snapshot()
    emit(Series(
        name="pr8 smoke: TPC-H storage compression (sf=0.1)",
        x_label="metric",
        labels=("ratio",),
        points=[Measurement(
            x="catalog",
            millis={"ratio": round(stats.ratio, 3)},
            extra={
                "columns_encoded": stats.columns_encoded,
                "columns_plain": stats.columns_plain,
                "bytes_nominal": stats.bytes_nominal,
                "bytes_physical": stats.bytes_physical,
            },
        )],
    ))
    assert stats.columns_encoded > stats.columns_plain
    assert stats.ratio >= 2.0
    db.close()


def test_shard_interconnect_moves_encoded_bytes():
    db = _shard_db()
    con = db.connect("SHARD:2xMS,join=broadcast")

    con.execute("SELECT v FROM facts")
    scan = con.interconnect.query
    scan_nominal, scan_physical = scan.bytes_total, scan.bytes_total_physical

    con.execute(
        "SELECT sum(d.rate) AS s FROM facts f JOIN dims d ON f.k = d.k"
    )
    join = con.interconnect.query
    join_nominal, join_physical = join.bytes_total, join.bytes_total_physical

    emit(Series(
        name="pr8 smoke: SHARD interconnect, encoded vs nominal bytes",
        x_label="operation",
        labels=("nominal_kb", "physical_kb"),
        points=[
            Measurement(
                x="scan",
                millis={"nominal_kb": scan_nominal / 1024,
                        "physical_kb": scan_physical / 1024},
                extra={"reduction": round(scan_nominal
                                          / max(scan_physical, 1), 2)},
            ),
            Measurement(
                x="broadcast join",
                millis={"nominal_kb": join_nominal / 1024,
                        "physical_kb": join_physical / 1024},
                extra={"reduction": round(join_nominal
                                          / max(join_physical, 1), 2)},
            ),
        ],
    ))
    # acceptance: the encoded wire format halves physical traffic
    assert scan_nominal >= 2 * scan_physical
    assert join_nominal >= 2 * join_physical
    db.close()


def test_het_residency_under_fixed_budget():
    results = {}
    for mode, plain in (("auto", False), ("off", True)):
        db = _residency_db(plain)
        con = db.connect("HET")
        for _ in range(2):
            for i in range(RES_COLS):
                con.execute(
                    f"SELECT count(*) AS n FROM wide WHERE c{i} <= 57"
                )
        results[mode] = _gpu_resident_rows(db, con)
        if mode == "auto":
            # the covered selection path stays in the code domain
            assert con.compression.decode_events == 0
        db.close()

    emit(Series(
        name=f"pr8 smoke: GPU-resident rows under a fixed HET budget "
             f"(data_scale={RES_SCALE})",
        x_label="storage",
        labels=("rows_resident",),
        points=[
            Measurement(
                x=mode,
                millis={"rows_resident": float(rows)},
                extra={"rows_resident": rows,
                       "columns": RES_COLS,
                       "rows_per_column": RES_ROWS},
            )
            for mode, rows in results.items()
        ],
    ))
    # acceptance: compressed columns keep >= 2x the rows device-resident
    assert results["auto"] >= 2 * results["off"] > 0
