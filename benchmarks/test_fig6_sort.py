"""Fig. 6: sort performance (paper §5.2.7).

Ocelot's binary radix sort (radix 8 on the CPU, 4 on the GPU) against
MonetDB's comparison sort — Ocelot wins on both devices.
"""

import pytest

from conftest import column, emit, val
from repro.bench import microbench as mb
from repro.bench.report import monotone_increasing

pytestmark = pytest.mark.slow

ACTUAL = 1 << 18


@pytest.fixture(scope="module")
def fig6():
    return mb.sort_by_size(runs=3, actual_elems=ACTUAL)


def test_fig6_sort(fig6, benchmark):
    emit(fig6)
    at = 256
    assert val(fig6, "CPU", at) < val(fig6, "MP", at) < val(fig6, "MS", at)
    assert val(fig6, "GPU", at) < val(fig6, "MP", at)
    for label in ("MS", "MP", "CPU"):
        assert monotone_increasing(column(fig6, label))
    benchmark.pedantic(
        lambda: mb.sort_by_size(sizes=(128,), runs=1, actual_elems=ACTUAL),
        rounds=1, iterations=1,
    )


def test_radix_width_is_device_specific():
    """§5.2.7: radix 8 bits on the CPU, 4 bits on the GPU."""
    from repro.monetdb import Catalog
    from repro.ocelot import OcelotBackend
    import numpy as np

    catalog = Catalog()
    catalog.create_table("t", {"a": np.zeros(4, np.int32)})
    assert OcelotBackend(catalog, "cpu").engine.radix_bits == 8
    assert OcelotBackend(catalog, "gpu").engine.radix_bits == 4
