"""Fig. 5 (a)-(i): the nine operator microbenchmarks (paper §5.2).

One test per panel; each prints the paper-style series and asserts the
qualitative result the paper reports for that panel.
"""

import pytest

from conftest import column, emit, val
from repro.bench import microbench as mb
from repro.bench.report import monotone_increasing, roughly_flat

pytestmark = pytest.mark.slow

ACTUAL = 1 << 19  # in-process elements standing for the nominal MBs
RUNS = 3


@pytest.fixture(scope="module")
def fig5a():
    return mb.selection_by_size(runs=RUNS, actual_elems=ACTUAL)


def test_fig5a_selection_by_size(fig5a, benchmark):
    """Linear scaling; Ocelot's bitmap output beats even parallel
    MonetDB's oid lists; GPU fastest (§5.2.1)."""
    emit(fig5a)
    for label in ("MS", "MP", "CPU", "GPU"):
        assert monotone_increasing(column(fig5a, label)[1:])
    at = 1024
    assert val(fig5a, "CPU", at) < val(fig5a, "MP", at) < val(fig5a, "MS", at)
    assert val(fig5a, "GPU", at) < val(fig5a, "CPU", at)
    benchmark.pedantic(
        lambda: mb.selection_by_size(sizes=(256,), runs=1,
                                     actual_elems=ACTUAL),
        rounds=1, iterations=1,
    )


def test_fig5b_selection_by_selectivity(benchmark):
    """Ocelot's runtime is selectivity-independent (bitmaps); MonetDB's
    oid materialisation grows with the result (§5.2.1)."""
    series = mb.selection_by_selectivity(runs=RUNS, actual_elems=ACTUAL)
    emit(series)
    assert roughly_flat(column(series, "CPU"), ratio=1.3)
    assert roughly_flat(column(series, "GPU"), ratio=1.3)
    ms = column(series, "MS")
    assert ms[-1] > 1.5 * ms[0]
    mp = column(series, "MP")
    assert mp[-1] > 1.5 * mp[0]
    benchmark.pedantic(
        lambda: mb.selection_by_selectivity(selectivities=(45,), runs=1,
                                            actual_elems=ACTUAL),
        rounds=1, iterations=1,
    )


def test_fig5c_left_fetch_join(benchmark):
    """Linear; Ocelot-CPU rivals MP (merge excluded per footnote 11);
    GPU fastest while the data fits (§5.2.2)."""
    series = mb.fetchjoin_by_size(runs=RUNS, actual_elems=ACTUAL)
    emit(series)
    at = 512
    assert val(series, "CPU", at) < val(series, "MS", at)
    assert val(series, "CPU", at) < 2.5 * val(series, "MP", at)
    assert val(series, "GPU", at) < val(series, "MP", at)
    # 3 GB working set at 1024 MB exceeds the 2 GB card: line ends
    assert val(series, "GPU", 1024) is None
    benchmark.pedantic(
        lambda: mb.fetchjoin_by_size(sizes=(256,), runs=1,
                                     actual_elems=ACTUAL),
        rounds=1, iterations=1,
    )


def test_fig5d_aggregation(benchmark):
    """MP is ~30 % faster than Ocelot-CPU (the Intel SDK's unvectorised
    reduction, §5.2.3); GPU fastest."""
    series = mb.aggregation_by_size(runs=RUNS, actual_elems=ACTUAL)
    emit(series)
    at = 1024
    ratio = val(series, "CPU", at) / val(series, "MP", at)
    assert 1.1 < ratio < 1.7
    assert val(series, "GPU", at) < val(series, "MP", at)
    assert val(series, "MS", at) > val(series, "CPU", at)
    benchmark.pedantic(
        lambda: mb.aggregation_by_size(sizes=(256,), runs=1,
                                       actual_elems=ACTUAL),
        rounds=1, iterations=1,
    )


def test_fig5e_hash_build_by_size(benchmark):
    """Ocelot-CPU hashing is slower than even sequential MonetDB
    (atomic contention, §5.2.4); the GPU line ends on device memory."""
    series = mb.hash_build_by_size(runs=RUNS, actual_elems=ACTUAL)
    emit(series)
    at = 256
    assert val(series, "CPU", at) > val(series, "MS", at)
    assert val(series, "GPU", at) < val(series, "MS", at)
    assert val(series, "GPU", 1024) is None  # 1.4x n table exceeds 2 GB
    assert monotone_increasing(column(series, "CPU"))
    benchmark.pedantic(
        lambda: mb.hash_build_by_size(sizes=(128,), runs=1,
                                      actual_elems=ACTUAL),
        rounds=1, iterations=1,
    )


def test_fig5f_hash_build_by_groups(benchmark):
    """CPU hashing *improves* with more distinct values (contention
    fades); MonetDB flat; GPU nearly flat (§5.2.4)."""
    series = mb.hash_build_by_groups(runs=RUNS, actual_elems=ACTUAL)
    emit(series)
    cpu = column(series, "CPU")
    assert cpu[0] > 1.5 * cpu[-1]          # decreasing
    assert roughly_flat(column(series, "MS"), ratio=1.1)
    assert roughly_flat(column(series, "GPU"), ratio=2.5)
    # contended end: CPU slower than MS; relieved end: CPU faster
    assert val(series, "CPU", 10) > val(series, "MS", 10)
    assert val(series, "CPU", 10000) < val(series, "MS", 10000)
    benchmark.pedantic(
        lambda: mb.hash_build_by_groups(groups=(100,), runs=1,
                                        actual_elems=ACTUAL),
        rounds=1, iterations=1,
    )


def test_fig5g_grouping_by_size(benchmark):
    """Linear for all; Ocelot-CPU is clearly the slowest option
    (hash-grouping atomics, §5.2.5)."""
    series = mb.groupby_by_size(runs=RUNS, actual_elems=ACTUAL)
    emit(series)
    at = 256
    assert val(series, "CPU", at) > val(series, "MS", at)
    assert val(series, "CPU", at) > val(series, "MP", at)
    assert monotone_increasing(column(series, "CPU"))
    benchmark.pedantic(
        lambda: mb.groupby_by_size(sizes=(128,), runs=1,
                                   actual_elems=ACTUAL),
        rounds=1, iterations=1,
    )


def test_fig5h_grouping_by_groups(benchmark):
    """Even on the GPU, grouping is only about as fast as MP (§5.2.5)."""
    series = mb.groupby_by_groups(runs=RUNS, actual_elems=ACTUAL)
    emit(series)
    for count in (10, 100, 1000):
        gpu, mp = val(series, "GPU", count), val(series, "MP", count)
        assert gpu < 1.5 * mp                 # "only as fast as MP"
        assert val(series, "CPU", count) > mp  # CPU slowest
    benchmark.pedantic(
        lambda: mb.groupby_by_groups(groups=(100,), runs=1,
                                     actual_elems=ACTUAL),
        rounds=1, iterations=1,
    )


def test_fig5i_hash_join_probe(benchmark):
    """Once built, Ocelot look-ups clearly outperform MonetDB (build
    excluded per footnote 12); GPU line ends on device memory."""
    series = mb.hashjoin_by_size(runs=RUNS, actual_elems=ACTUAL)
    emit(series)
    at = 256
    assert val(series, "CPU", at) < val(series, "MP", at)
    assert val(series, "GPU", at) < val(series, "CPU", at)
    assert val(series, "MS", at) > val(series, "MP", at)
    assert column(series, "GPU")[-1] is None
    benchmark.pedantic(
        lambda: mb.hashjoin_by_size(sizes=(128,), runs=1,
                                    actual_elems=ACTUAL),
        rounds=1, iterations=1,
    )
