"""Fig. 8 (extension): the heterogeneous "HET" engine (paper §7).

Not a figure of the original paper — this is the ROADMAP's first scaling
milestone: one MAL plan scheduled across *both* simulated devices, with
cost-based placement from the autotuner's measured device profiles and
partitioned fan-out for row-independent operators.

Three panels:

* (a) selection against input size — HET tracks the best single device
  while the column fits the GPU, and keeps scaling *past* the GPU's
  2 GB limit by splitting the scan across CPU + GPU ("if a line ends
  midway, we reached the device memory limit" no longer ends the story),
* (b) grouped aggregation against input size — same shape: the fan-out
  keeps the atomic-heavy aggregation going beyond device memory at a
  fraction of the CPU-only cost,
* (c) TPC-H Q1 — the full SQL path: HET matches the MS results exactly
  and its makespan never loses to the best single device.
"""

import numpy as np
import pytest

from conftest import emit
from repro.bench.configs import HET_LABELS
from repro.bench.microbench import (
    grouped_aggregation_by_size,
    selection_by_size,
)
from repro.bench.tpchbench import tpch_queries

pytestmark = pytest.mark.slow

#: single-device labels HET competes against
SINGLE = ("CPU", "GPU")


def _best_single(point):
    times = [point.millis[l] for l in SINGLE if point.millis[l] is not None]
    return min(times) if times else None


def test_fig8a_selection_makespan(benchmark):
    series = selection_by_size(
        sizes=(512, 1024, 2048), labels=HET_LABELS, runs=5
    )
    emit(series)
    for point in series.points:
        het = point.millis["HET"]
        best = _best_single(point)
        assert het is not None, point.x
        # HET never loses to the best single device (the single-device
        # plan is always in the scheduler's feasible set)
        assert het <= best * 1.001, point.x
    # beyond the GPU's 2 GB the GPU line ends ... and HET keeps going,
    # well under the CPU-only cost, by fanning the scan out
    last = series.points[-1]
    assert last.millis["GPU"] is None
    assert last.millis["HET"] < 0.7 * last.millis["CPU"]
    benchmark.pedantic(
        lambda: selection_by_size(sizes=(512,), labels=("HET",), runs=1),
        rounds=1, iterations=1,
    )


def test_fig8b_grouped_aggregation_makespan(benchmark):
    series = grouped_aggregation_by_size(
        sizes=(256, 512, 1024), labels=HET_LABELS, runs=5
    )
    emit(series)
    for point in series.points:
        het = point.millis["HET"]
        best = _best_single(point)
        assert het is not None, point.x
        assert het <= best * 1.001, point.x
    # vals + gids no longer fit the GPU at 1024 MB: GPU ends, HET splits
    last = series.points[-1]
    assert last.millis["GPU"] is None
    assert last.millis["HET"] < 0.7 * last.millis["CPU"]
    benchmark.pedantic(
        lambda: grouped_aggregation_by_size(
            sizes=(256,), labels=("HET",), runs=1
        ),
        rounds=1, iterations=1,
    )


def test_fig8c_tpch_q1(benchmark):
    series = tpch_queries(sf=1, runs=2, queries=("Q1",),
                          labels=("MS", "CPU", "GPU", "HET"))
    emit(series)
    point = series.points[0]
    best = _best_single(point)
    assert point.millis["HET"] <= best * 1.05
    benchmark.pedantic(
        lambda: tpch_queries(sf=1, runs=1, queries=("Q1",),
                             labels=("HET",)),
        rounds=1, iterations=1,
    )


def test_fig8c_q1_results_identical_to_ms():
    from repro.api import tpch_database
    from repro.tpch.queries import Q1

    db = tpch_database(sf=0.5)
    ms = db.connect("MS").execute(Q1)
    het = db.connect("HET").execute(Q1)
    assert set(ms.columns) == set(het.columns)
    for col in ms.columns:
        a, b = ms.columns[col], het.columns[col]
        if a.dtype.kind == "f" or b.dtype.kind == "f":
            assert np.allclose(a.astype(np.float64), b.astype(np.float64),
                               rtol=1e-4, atol=1e-6), col
        else:
            assert np.array_equal(a, b), col
