"""PR 10 perf smoke: failover latency and degraded-mode throughput.

Not a paper figure and *not* marked slow: this module runs in the fast
tier-1 loop so every push records the elastic cluster's headline
numbers into the machine-readable benchmark report
(``REPRO_BENCH_JSON``, archived by CI as ``BENCH_PR10.json``):

* per-query simulated latency on a healthy ``SHARD:4xCPU,replicas=2``
  cluster vs the same cluster serving *degraded* (one node killed, its
  slots promoted onto surviving copies) — failover must cost routing,
  not correctness, and the degraded makespan stays bounded because
  only the doubled-up node's timeline stretches;
* the online re-shard: wall time and migrated-range count for
  ``add_shard`` / ``remove_shard`` round-trips, with result equality
  at every step.
"""

import time

import numpy as np

import repro
from conftest import emit
from repro import tpch
from repro.bench.harness import Measurement, Series
from repro.serve.faults import NodeFault, wrap_shard_node

SF = 0.05
QUERIES = ("Q1", "Q6", "Q12")
SPEC = "SHARD:4xCPU,replicas=2"


def _results_equal(expected, got):
    assert list(expected.columns) == list(got.columns)
    for name in expected.columns:
        np.testing.assert_allclose(
            got.columns[name].astype(np.float64),
            expected.columns[name].astype(np.float64),
            rtol=1e-5, atol=1e-9, err_msg=name,
        )


def test_failover_latency_and_degraded_throughput():
    db = repro.tpch_database(sf=SF)
    con = db.connect(SPEC)
    sqls = {q: tpch.WORKLOAD[q] for q in QUERIES}
    clean = {q: con.execute(sql) for q, sql in sqls.items()}
    healthy_ms = {q: clean[q].elapsed * 1e3 for q in QUERIES}

    backend = con.backend
    wrappers = wrap_shard_node(backend, 2)
    for wrapper in wrappers:
        wrapper.always = NodeFault("node 2 down")

    # the first statement rides through trip + promotion
    wall0 = time.perf_counter()
    first = con.execute(sqls[QUERIES[0]])
    failover_wall_ms = (time.perf_counter() - wall0) * 1e3
    _results_equal(clean[QUERIES[0]], first)
    stats = backend.cluster_stats()
    assert stats.promotions >= 1

    degraded_ms = {QUERIES[0]: first.elapsed * 1e3}
    for q in QUERIES[1:]:
        result = con.execute(sqls[q])
        _results_equal(clean[q], result)
        degraded_ms[q] = result.elapsed * 1e3

    ratio = sum(degraded_ms.values()) / sum(healthy_ms.values())
    emit(Series(
        name="pr10 smoke: degraded-mode latency vs healthy "
             f"({SPEC}, node 2 killed)",
        x_label="query",
        labels=("healthy_ms", "degraded_ms"),
        points=[
            Measurement(
                x=q,
                millis={"healthy_ms": healthy_ms[q],
                        "degraded_ms": degraded_ms[q]},
                extra={"ratio": round(degraded_ms[q] / healthy_ms[q], 4)},
            )
            for q in QUERIES
        ] + [Measurement(
            x="aggregate",
            millis={"healthy_ms": sum(healthy_ms.values()),
                    "degraded_ms": sum(degraded_ms.values())},
            extra={
                "ratio": round(ratio, 4),
                "failover_wall_ms": round(failover_wall_ms, 2),
                "promotions": stats.promotions,
                "degraded_reads": stats.degraded_reads,
            },
        )],
    ))
    # degraded service piles two slots onto one survivor: the makespan
    # may stretch toward 2x that node's share, never collapse or blow up
    # (plan-cache reuse can make the repeat marginally cheaper, hence
    # the slack below 1.0)
    assert 0.9 <= ratio < 3.0, f"degraded/healthy ratio {ratio:.3f}"

    for wrapper in wrappers:
        wrapper.always = None
    for _ in range(60):
        if not backend.routing.degraded:
            break
        backend.query_boundary()
    assert not backend.routing.degraded
    recovered = con.execute(sqls["Q1"])
    _results_equal(clean["Q1"], recovered)
    db.close()


def test_online_reshard_smoke():
    db = repro.tpch_database(sf=SF)
    con = db.connect(SPEC)
    sql = tpch.WORKLOAD["Q1"]
    before = con.execute(sql)
    backend = con.backend

    points = []
    for step, action in (("add_shard -> 5", db.add_shard),
                         ("remove_shard -> 4", db.remove_shard)):
        migrated_before = backend.cluster_stats().ranges_migrated
        wall0 = time.perf_counter()
        action()
        wall_ms = (time.perf_counter() - wall0) * 1e3
        result = con.execute(sql)
        _results_equal(before, result)
        points.append(Measurement(
            x=step,
            millis={"reshard_wall_ms": wall_ms},
            extra={
                "nodes": backend.cluster_nodes(),
                "ranges_migrated": (
                    backend.cluster_stats().ranges_migrated
                    - migrated_before
                ),
            },
        ))
    emit(Series(
        name=f"pr10 smoke: online re-shard round-trip ({SPEC})",
        x_label="step",
        labels=("reshard_wall_ms",),
        points=points,
    ))
    stats = backend.cluster_stats()
    assert stats.ranges_migrated > 0
    assert stats.topology_changes >= 2
    assert backend.cluster_nodes() == 4
    db.close()
