"""PR 7 perf smoke: the front door under a skewed many-client load.

Not a paper figure and *not* marked slow: this module runs in the fast
tier-1 loop so every push records the serving tier's headline metrics
— the plan-cache hit rate and the p50/p99 query latency (simulated
milliseconds, submit to completion) under a skewed many-client
workload — into the machine-readable benchmark report
(``REPRO_BENCH_JSON``, archived by CI as ``BENCH_PR7.json``).

The workload is the serving pattern auto-parameterisation exists for:
N clients per round submitting literal variations of a few query
shapes, traffic heavily skewed onto one hot shape.  Without
parameterisation every literal variant would be a cache miss; with it
the whole run compiles one template per shape, so the hit rate must
reach the PR's acceptance bar of 0.9.
"""

import numpy as np

import repro
from conftest import emit
from repro.bench.harness import Measurement, Series

N_ROWS = 1 << 14
N_CLIENTS = 8
ROUNDS = 15
HOT_TRAFFIC = 0.8          # fraction of requests on the hot shape


def _serving_db() -> repro.Database:
    rng = np.random.default_rng(7)
    db = repro.Database()
    db.create_table("t", {
        "v": rng.integers(0, 1 << 30, N_ROWS).astype(np.int32),
        "g": rng.integers(0, 32, N_ROWS).astype(np.int32),
    })
    return db


def _request(rng) -> str:
    """One client request: a literal variation of a skewed shape mix."""
    roll = rng.random()
    lit = int(rng.integers(1, 1 << 30))
    if roll < HOT_TRAFFIC:
        return f"SELECT sum(v) AS s FROM t WHERE v <= {lit}"
    if roll < HOT_TRAFFIC + 0.1:
        return f"SELECT g, sum(v) AS s FROM t WHERE v <= {lit} GROUP BY g"
    if roll < HOT_TRAFFIC + 0.15:
        return f"SELECT g, count(*) AS n FROM t WHERE v > {lit} GROUP BY g"
    return "SELECT g, max(v) AS m FROM t GROUP BY g"


def test_front_door_skewed_many_client_smoke():
    db = _serving_db()
    con = db.connect("HET:admission=4")
    rng = np.random.default_rng(11)
    latencies = []
    for _ in range(ROUNDS):
        futures = [con.submit(_request(rng)) for _ in range(N_CLIENTS)]
        con.drain()
        for future in futures:
            assert future.exception() is None
            latencies.append(future.result().elapsed * 1e3)
    stats = db.plan_cache.stats
    hit_rate = stats.hits / (stats.hits + stats.misses)
    p50 = float(np.quantile(latencies, 0.50))
    p99 = float(np.quantile(latencies, 0.99))
    emit(Series(
        name=f"pr7 smoke: front door, {N_CLIENTS} clients x "
             f"{ROUNDS} rounds, skewed",
        x_label="metric",
        labels=("p50", "p99"),
        points=[Measurement(
            x=f"{len(latencies)} queries",
            millis={"p50": p50, "p99": p99},
            extra={
                "plan_cache_hit_rate": round(hit_rate, 4),
                "hits": stats.hits,
                "misses": stats.misses,
                "admission_limit": con.scheduler.admission_limit,
            },
        )],
    ))
    # the acceptance bar: one template per shape, not one per literal
    assert hit_rate >= 0.9
    assert stats.misses <= 4          # at most one compile per shape
    assert 0.0 < p50 <= p99
    db.close()
