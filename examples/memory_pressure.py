"""The Memory Manager under pressure (paper §3.3, §5.3.2).

Runs the same query against simulated GPUs with shrinking device memory:
first everything stays cached (hot), then base columns start to be
evicted and re-transferred (the Fig. 7(b) swap effect), and finally the
working set no longer fits at all — the paper's "line ends midway".

    python examples/memory_pressure.py
"""

import numpy as np

from repro import cl
from repro.monetdb import Catalog, MALBuilder, run_program
from repro.ocelot import OcelotBackend, OcelotOOM, rewrite_for_ocelot


def build_query():
    builder = MALBuilder("pressure")
    a = builder.bind("t", "a")
    b = builder.bind("t", "b")
    cand = builder.emit("algebra", "select",
                        (a, None, 0, 800_000, True, False, False))
    va = builder.emit("algebra", "projection", (cand, a))
    vb = builder.emit("algebra", "projection", (cand, b))
    revenue = builder.emit("batcalc", "mul", (va, vb))
    total = builder.emit("aggr", "sum", (revenue,))
    return rewrite_for_ocelot(builder.returns([("total", total)]))


def main() -> None:
    rng = np.random.default_rng(7)
    n = 100_000  # 400 KB per column
    catalog = Catalog()
    catalog.create_table("t", {
        "a": rng.integers(0, 1_000_000, n).astype(np.int32),
        "b": rng.uniform(0, 10, n).astype(np.float32),
    })
    program = build_query()

    print("Same query, shrinking device memory "
          f"(2 columns x {4 * n / 1e3:.0f} KB + intermediates):\n")
    print(f"{'device memory':>14s} {'hot run':>10s} {'to device':>10s} "
          f"{'evict/offload':>14s}")
    for mem_kb in (4096, 2048, 1024, 640, 256):
        backend = OcelotBackend(
            catalog, cl.get_device("gpu", global_mem_bytes=mem_kb * 1024)
        )
        try:
            run_program(program, backend)       # cold run
            before = backend.engine.queue.stats.bytes_to_device
            result = run_program(program, backend)  # hot run
            transferred = (
                backend.engine.queue.stats.bytes_to_device - before
            )
            stats = backend.engine.memory.stats
            print(f"{mem_kb:12d}KB {result.elapsed * 1e3:9.3f}ms "
                  f"{transferred / 1024:9.0f}KB "
                  f"{stats.evictions + stats.offloads:14d}")
        except OcelotOOM as exc:
            print(f"{mem_kb:12d}KB {'OOM':>10s}  -- {exc}")

    print("\nReading the table: with plenty of memory the hot run transfers")
    print("nothing (device cache); as memory shrinks the Memory Manager")
    print("evicts and re-uploads (swap thrash: slower hot runs); below the")
    print("working set the query cannot run at all — exactly why the paper")
    print("ran SF 50 without the graphics card.")


if __name__ == "__main__":
    main()
