"""The heterogeneous "HET" engine up close: one plan, two devices.

The paper's §7 future work, realised: a DevicePool probes both simulated
devices (autotuned device profiles), a cost-based placer routes every
MAL instruction to the device that finishes it first — counting the
transfer cost of operands not already resident there (data gravity) —
and row-independent operators fan out across both devices with a cheap
host-side merge.

The demo shows the three regimes:

1. small data: everything rides the GPU, HET == GPU,
2. a chain of operators: data gravity keeps intermediates on one device,
3. beyond the GPU's 2 GB: the GPU-only line *ends* (device memory
   limit); HET splits the scan and keeps scaling.

    python examples/heterogeneous.py
"""

import numpy as np

from repro.bench.harness import BenchContext, uniform_column
from repro.monetdb import Catalog, MALBuilder

DEVICE_NAMES = {0: "CPU", 1: "GPU"}


def selection_plan(selectivity=0.05):
    builder = MALBuilder("fanout_select")
    col = builder.bind("t", "a")
    cand = builder.emit(
        "algebra", "select",
        (col, None, 0, int(selectivity * 2**30), True, False, False),
    )
    n = builder.emit("aggr", "count", (cand,))
    return builder.returns([("n", n)])


def run_selection(size_mb: float):
    values, scale = uniform_column(size_mb, actual_elems=1 << 19)
    catalog = Catalog()
    catalog.create_table("t", {"a": values})
    ctx = BenchContext(catalog, data_scale=scale,
                       labels=("CPU", "GPU", "HET"), operator_timing=True)
    millis = ctx.measure(selection_plan(), runs=3)
    het = ctx.backend("HET")
    placements = ", ".join(
        f"{fn}->{DEVICE_NAMES.get(where, where)}"
        for fn, where in het.decision_log
    )
    def cell(label):
        value = millis[label]
        return f"{label}={'oom':>8}" if value is None \
            else f"{label}={value:6.2f}ms"

    row = "  ".join(cell(label) for label in ("CPU", "GPU", "HET"))
    print(f"  {size_mb:5.0f} MB   {row}   [{placements}]")


def main() -> None:
    print("== measured device profiles (autotune, §7) ==")
    print("  These numbers are *measured* by probing each simulated")
    print("  device at pool construction — they are the only device")
    print("  knowledge the scheduler gets (hardware-oblivious policy).")
    print("  Note the asymmetry the placer must exploit: the GPU")
    print("  streams ~5x faster, but every byte crosses PCIe; the CPU")
    print("  is slower but zero-copy (host link = free).")
    from repro.sched import DevicePool

    probe_catalog = Catalog()
    probe_catalog.create_table("p", {"x": np.zeros(16, np.int32)})
    pool = DevicePool(probe_catalog)
    for chars in pool.characteristics:
        link = ("zero-copy" if chars.transfer_gbs == float("inf")
                else f"{chars.transfer_gbs:.1f} GB/s")
        print(f"  {chars.device_name}")
        print(f"    stream {chars.stream_gbs:6.1f} GB/s   "
              f"gather {chars.gather_gbs:5.1f} GB/s   "
              f"host link {link}")

    print("\n== selection makespan: CPU vs GPU vs HET ==")
    print("  One selection scan per row of the table below.  Read each")
    print("  row left to right: while the column fits the GPU's 2 GB,")
    print("  HET simply tracks the best single device (placements show")
    print("  everything riding one device — no ping-pong, because data")
    print("  gravity prices cross-device moves into every score).  At")
    print("  2048+ MB the GPU prints 'oom' — its line *ends*, as in the")
    print("  paper's figures — but HET keeps scaling by splitting the")
    print("  scan across both devices ('->split') and merging partials")
    print("  on the host, well under the CPU-only cost.")
    for size in (256, 512, 1024, 2048, 4096):
        run_selection(size)

    print("\n== one SQL query through db.connect('HET') ==")
    print("  The full stack: SQL -> MAL -> Ocelot rewrite -> cost-based")
    print("  placement, with results identical to sequential MonetDB.")
    from repro.api import Database

    rng = np.random.default_rng(5)
    db = Database()
    db.create_table("points", {
        "x": rng.integers(0, 8, 200_000).astype(np.int32),
        "y": rng.random(200_000).astype(np.float32),
    })
    sql = ("SELECT x, sum(y) AS total FROM points "
           "WHERE y >= 0.25 GROUP BY x ORDER BY x")
    ms = db.execute(sql, engine="MS")
    het = db.execute(sql, engine="HET")
    assert np.allclose(ms.columns["total"], het.columns["total"], rtol=1e-4)
    print(f"  MS : {ms.elapsed * 1e3:8.2f} ms")
    print(f"  HET: {het.elapsed * 1e3:8.2f} ms   (identical result set)")
    print("\n  (Next: examples/concurrency.py layers the serving story —")
    print("   plan cache + async sessions — on top of this engine.)")


if __name__ == "__main__":
    main()
