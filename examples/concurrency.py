"""The serving layer up close: plan cache + async sessions on HET.

The engine executes one operator-at-a-time plan per query; a serving
system faces *streams* of queries, most of them repeats.  This demo
walks the two serve-layer pieces (see ARCHITECTURE.md, "serve"):

1. the **plan cache** — repeating a statement skips parse, lowering,
   the Ocelot rewrite and (on HET) per-instruction placement scoring;
   the hit/miss/replay counters and the wall clock both show it;
2. **async sessions** — ``Connection.submit`` returns a future; the
   round-robin session scheduler interleaves in-flight queries one MAL
   instruction per turn, and because cross-device sync points are
   session-scoped, a CPU-bound query and GPU-bound queries overlap on
   the device pool's two timelines: the batch's makespan lands well
   under the serial sum.

    python examples/concurrency.py
"""

import time

import numpy as np

from repro.api import Database


def serving_database() -> Database:
    """A mixed workload's worth of data: one table beyond the GPU's
    2 GB (its queries are CPU-bound) and one the GPU serves well."""
    rng = np.random.default_rng(47)
    db = Database(data_scale=6144.0)
    db.create_table("events", {                  # ~ 3 GB nominal
        "v": rng.integers(0, 1 << 30, 1 << 17).astype(np.int32),
    })
    db.create_table("metrics", {                 # ~ 400 MB nominal
        "w": rng.random(1 << 14).astype(np.float32),
        "g": rng.integers(0, 32, 1 << 14).astype(np.int32),
    })
    return db


WORKLOAD = [
    ("events (CPU-bound)", "SELECT min(v) AS m FROM events"),
    ("metrics (GPU)     ", "SELECT g, sum(w) AS s FROM metrics GROUP BY g"),
    ("metrics (GPU)     ", "SELECT sum(w) AS s FROM metrics WHERE w >= 0.25"),
    ("metrics (GPU)     ", "SELECT g, count(*) AS n FROM metrics GROUP BY g"),
]


def main() -> None:
    db = serving_database()
    con = db.connect("HET")

    print("== 1. the plan cache ==")
    print("  First run of each statement compiles (miss) and records the")
    print("  placer's decisions; the second run is a hit that *replays*")
    print("  them — placement is deterministic given the measured device")
    print("  profiles, so there is nothing to re-score.")
    for _label, sql in WORKLOAD:
        con.execute(sql)
    print(f"  after first pass : {con.plan_cache.stats}")
    t0 = time.perf_counter()
    for _label, sql in WORKLOAD:
        con.execute(sql)
    warm_wall = time.perf_counter() - t0
    print(f"  after second pass: {con.plan_cache.stats}")
    print(f"  (second pass wall clock: {warm_wall * 1e3:.1f} ms — no parse,"
          f" no rewrite, no scoring)")

    print("\n== 2. serial baseline ==")
    print("  Executed one after another, each query joins both device")
    print("  timelines: the CPU-bound scan leaves the GPU idle and the")
    print("  GPU queries leave the CPU idle.")
    serial = 0.0
    for label, sql in WORKLOAD:
        r = con.execute(sql)
        placements = ", ".join(
            f"{fn}->{'CPU' if d == 0 else 'GPU' if d == 1 else d}"
            for fn, d in con.backend.decision_log
        )
        print(f"  {label}  {r.elapsed * 1e3:8.2f} ms   [{placements}]")
        serial += r.elapsed
    print(f"  serial sum: {serial * 1e3:8.2f} ms")

    print("\n== 3. the same four queries, submitted concurrently ==")
    print("  submit() opens one session per query; the scheduler advances")
    print("  them round-robin, one MAL instruction per turn, and only the")
    print("  owning session waits at its cross-device sync points.")
    futures = [con.submit(sql) for _label, sql in WORKLOAD]
    con.drain()
    for (label, _sql), future in zip(WORKLOAD, futures):
        r = future.result()
        print(f"  {label}  latency {r.elapsed * 1e3:8.2f} ms "
              f"(submit -> completion)")
    makespan = con.scheduler.last_batch_makespan
    print(f"  batch makespan: {makespan * 1e3:8.2f} ms   "
          f"({makespan / serial:.2f}x of serial — the GPU queries ran")
    print("   inside the CPU-bound query's window)")

    first_turns = ", ".join(s for s, _op in con.scheduler.turn_log[:4])
    print(f"\n  fairness: first four scheduler turns went to [{first_turns}]")


if __name__ == "__main__":
    main()
