"""TPC-H analytics: the paper's workload on the mini-scale warehouse.

Loads the Appendix-A-modified TPC-H instance at (mini) scale factor 1,
prints a couple of business answers, and compares all four engine
configurations on a selection of the paper's queries — a small version
of Fig. 7(a).

    python examples/tpch_analytics.py [SF]
"""

import sys

import repro
from repro.tpch import DICTIONARIES, WORKLOAD


def main() -> None:
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    print(f"Generating mini-scale TPC-H at SF {sf} "
          f"(nominal sizes match the real scale factor)...")
    db = repro.tpch_database(sf=sf)

    # A business question through the SQL frontend: Q6, forecast revenue.
    q6 = db.execute(WORKLOAD["Q6"], engine="GPU")
    print(f"\nQ6 forecast revenue change: "
          f"{q6.columns['revenue'][0]:,.2f}")

    # Top shipping priorities (Q4-flavoured).
    late = db.execute(
        """
        SELECT o_orderpriority, count(*) AS late_orders
        FROM orders
        SEMI JOIN (
            SELECT l_orderkey FROM lineitem
            WHERE l_commitdate < l_receiptdate
        ) l ON o_orderkey = l.l_orderkey
        GROUP BY o_orderpriority
        ORDER BY o_orderpriority
        """,
        engine="CPU",
    )
    print("\nLate orders by priority:")
    priorities = DICTIONARIES["orderpriority"]
    for code, count in zip(late.columns["o_orderpriority"],
                           late.columns["late_orders"]):
        print(f"  {priorities[code]:<16s} {count:6d}")

    # A mini Fig. 7(a): four queries across the four configurations.
    queries = ("Q1", "Q6", "Q12", "Q21")
    print(f"\nPer-query simulated runtimes at SF {sf} (ms, hot cache):")
    print(f"{'query':>6s} {'MS':>9s} {'MP':>9s} {'CPU':>9s} {'GPU':>9s}")
    connections = {e: db.connect(e) for e in ("MS", "MP", "CPU", "GPU")}
    for query_id in queries:
        row = [f"{query_id:>6s}"]
        for engine, conn in connections.items():
            conn.execute(WORKLOAD[query_id])           # warm the caches
            result = conn.execute(WORKLOAD[query_id])  # measured run
            row.append(f"{result.elapsed * 1e3:9.1f}")
        print(" ".join(row))

    print("\nShapes to recognise from the paper: Ocelot-CPU pays the Intel")
    print("SDK's fixed overhead (worst at small SF), the GPU leads, and")
    print("Q21's hash joins narrow its margin.")


if __name__ == "__main__":
    main()
