"""The sharded multi-node engine up close: ``SHARD:<N>x<CHILD>``.

One database, N simulated nodes.  The engine registry resolves the spec,
the partitioner splits big tables across per-node catalogs (small ones
are replicated), and every MAL instruction of the *unchanged* plan fans
out to the per-node backends — the paper's hardware-obliviousness lifted
one level: the plan is also topology-oblivious.  This demo walks:

1. **composition** — the child engine is any registered family; the
   same query runs on ``SHARD:4xMS`` and ``SHARD:2xHET`` unchanged;
2. **correctness** — scalar folds, key-aligned grouped merges and
   exact (sum, count) averages reproduce single-node results bit-for-
   bit (up to float summation order);
3. **scaling** — per-shard work shrinks ~1/N while the driver merge
   stays ngroups-wide, so makespan falls as nodes are added;
4. **join strategies** — with shard keys declared, co-partitioned
   joins run shard-local with zero driver traffic; without keys, a
   hash shuffle moves only (key, oid) pairs; ``join=broadcast`` keeps
   the gather-everything baseline, and ``Connection.interconnect``
   shows the difference in bytes;
5. **DDL** — creating a table re-partitions and bumps every shard's
   schema version, invalidating cached plans everywhere at once.

    python examples/sharding.py
"""

import numpy as np

from repro.api import tpch_database
from repro.engines import engine_table_markdown
from repro.tpch import WORKLOAD


def main() -> None:
    print("== the engine registry ==")
    print(engine_table_markdown())

    db = tpch_database(sf=1)
    print("\n== TPC-H Q1 across topologies ==")
    reference = db.connect("MS").execute(WORKLOAD["Q1"], name="Q1")
    print(f"   {'MS':>12}: {reference.elapsed * 1e3:8.1f} simulated ms "
          f"(single node, ground truth)")
    for spec in ("SHARD:2xMS", "SHARD:4xMS", "SHARD:8xMS"):
        with db.connect(spec) as con:
            result = con.execute(WORKLOAD["Q1"], name="Q1")
            drift = max(
                float(np.max(np.abs(
                    result.columns[c].astype(np.float64)
                    - reference.columns[c].astype(np.float64)
                ))) for c in reference.columns
            )
            print(f"   {spec:>12}: {result.elapsed * 1e3:8.1f} simulated ms"
                  f"   (max |delta| vs MS: {drift:.2e})")

    print("\n== composition: heterogeneous nodes ==")
    con = db.connect("SHARD:2xHET")
    result = con.execute(WORKLOAD["Q6"], name="Q6")
    single = db.connect("CPU").execute(WORKLOAD["Q6"], name="Q6")
    print(f"   SHARD:2xHET Q6 revenue {float(result.column('revenue')[0]):.2f}"
          f"  (CPU engine: {float(single.column('revenue')[0]):.2f})")
    print(f"   each node fans its slice across its own CPU+GPU pool; "
          f"plan-cache stats: {db.plan_cache.stats}")

    print("\n== repeat queries hit the shared plan cache ==")
    hits = db.plan_cache.stats.hits
    con.execute(WORKLOAD["Q6"], name="Q6")
    print(f"   re-running Q6 on SHARD:2xHET: hits {hits} -> "
          f"{db.plan_cache.stats.hits}")

    print("\n== join strategies: broadcast vs shuffle vs co-located ==")
    keyed = ("SHARD:4xMS,key=lineitem.l_orderkey,"
             "key=orders.o_orderkey")
    for label, spec in (("broadcast", "SHARD:4xMS,join=broadcast"),
                        ("shuffle", "SHARD:4xMS"),
                        ("co-located", keyed)):
        with db.connect(spec) as shard_con:
            result = shard_con.execute(WORKLOAD["Q12"], name="Q12")
            traffic = shard_con.interconnect.query
            print(f"   {label:>10}: {result.elapsed * 1e3:7.1f} ms   "
                  f"interconnect {traffic.bytes_total / 1e6:8.3f} MB  "
                  f"({traffic})")

    print("\n== DDL propagates to every shard ==")
    versions = [c.version for c in con.backend.partitioner.catalogs]
    db.create_table("notes", {"n": np.arange(4096, dtype=np.int32)})
    after = [c.version for c in con.backend.partitioner.catalogs]
    print(f"   per-shard catalog versions {versions} -> {after}")
    total = con.execute("SELECT sum(n) AS s FROM notes")
    print(f"   sum(notes.n) across shards: {int(total.column('s')[0])} "
          f"(expected {4095 * 4096 // 2})")

    db.close()
    print("\n(database closed: every node's device buffers released)")


if __name__ == "__main__":
    main()
