"""Quickstart: one SQL query on all four engine configurations.

Creates a small database, runs an aggregation query on the sequential
and parallel MonetDB baselines and on Ocelot (simulated CPU and GPU),
and shows that the hardware-oblivious operators return identical results
with device-appropriate performance.

    python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(42)
    n = 200_000

    db = repro.Database()
    db.create_table(
        "trips",
        {
            "city": rng.integers(0, 8, n).astype(np.int32),
            "distance_km": rng.gamma(3.0, 4.0, n).astype(np.float32),
            "fare": rng.gamma(2.0, 9.0, n).astype(np.float32),
            "passengers": rng.integers(1, 5, n).astype(np.int32),
        },
        dictionaries={
            "city": ["Berlin", "Amsterdam", "Paris", "Riva", "Trento",
                     "Munich", "Vienna", "Zurich"],
        },
    )

    sql = """
        SELECT city, count(*) AS trips, sum(fare) AS revenue
        FROM trips
        WHERE distance_km BETWEEN 2 AND 25 AND passengers >= 2
        GROUP BY city
        ORDER BY revenue DESC
    """

    print(f"{n:,} trips loaded; running on all four configurations:\n")
    reference = None
    for engine in ("MS", "MP", "CPU", "GPU"):
        result = db.execute(sql, engine=engine)
        if reference is None:
            reference = result
            print("city  trips  revenue")
            for c, t, r in zip(result.columns["city"],
                               result.columns["trips"],
                               result.columns["revenue"]):
                print(f"{c:4d}  {t:5d}  {r:12.2f}")
            print()
        else:
            same = np.allclose(result.columns["revenue"],
                               reference.columns["revenue"], rtol=1e-6)
            assert same, f"{engine} disagrees with MS!"
        print(f"  {engine:3s}: {result.elapsed * 1e3:8.2f} ms simulated "
              f"({result.instruction_count} MAL instructions)")

    print("\nAll four configurations returned identical results — the")
    print("hardware-oblivious drop-in contract of the paper, end to end.")


if __name__ == "__main__":
    main()
