"""Hardware obliviousness up close: one kernel set, two devices.

Shows the mechanics behind the paper's Fig. 1/Fig. 4: the same kernel
library is compiled per device with injected pre-processor constants
(DEVICE_TYPE, ACCESS_PATTERN, RADIX_BITS), the same host code schedules
the same kernels, and the simulated event timeline reveals the per-device
schedule — including transfers overlapping compute on the GPU (Fig. 3).

    python examples/device_portability.py
"""

import numpy as np

from repro import cl
from repro.kernels import KERNEL_LIBRARY, count_bits


def run_on(device_kind: str) -> None:
    device = cl.get_device(device_kind)
    ctx = cl.Context(device, data_scale=128.0)  # pretend it is 128x bigger
    queue = cl.CommandQueue(ctx)
    radix = 8 if device.is_cpu else 4
    program = cl.build(ctx, KERNEL_LIBRARY, {"RADIX_BITS": radix})

    print(f"\n=== {device.name} ===")
    print(f"  defines: DEVICE_TYPE={program.defines['DEVICE_TYPE']} "
          f"ACCESS_PATTERN={program.defines['ACCESS_PATTERN']} "
          f"RADIX_BITS={program.defines['RADIX_BITS']}")
    p = device.profile
    print(f"  scheduling (§4.2): {p.num_work_groups} work-groups x "
          f"{p.work_group_size} items = {p.total_invocations} invocations")

    rng = np.random.default_rng(3)
    n = 1 << 20
    values = rng.integers(0, 1_000_000, n).astype(np.int32)

    # the Fig. 3 query fragment: two selections OR-combined, then count
    col = ctx.create_buffer(values, tag="a")
    bm2 = ctx.zeros((n + 7) // 8, np.uint8, tag="sigma2")
    bm3 = ctx.zeros((n + 7) // 8, np.uint8, tag="sigma3")
    program.kernel("select_bitmap").launch(
        queue, bm2, col, n, "==", 2, None, False)
    program.kernel("select_bitmap").launch(
        queue, bm3, col, n, "==", 3, None, False)
    both = ctx.zeros((n + 7) // 8, np.uint8, tag="or")
    program.kernel("bitmap_binop").launch(
        queue, both, bm2, bm3, (n + 7) // 8, "or")
    makespan = queue.finish()

    hits = count_bits(both.array, n)
    expected = int(((values == 2) | (values == 3)).sum())
    assert hits == expected
    print(f"  WHERE a IN (2,3): {hits} rows, "
          f"{makespan * 1e3:.3f} ms simulated")

    print("  event timeline (simulated):")
    for event in queue.timeline():
        bar_start = int(event.t_start / makespan * 40)
        bar_len = max(1, int(event.duration / makespan * 40))
        bar = " " * bar_start + "#" * bar_len
        print(f"    {event.engine:7s} {event.label:14s} |{bar:<42s}| "
              f"{event.duration * 1e3:7.3f} ms")


def main() -> None:
    print("One hardware-oblivious kernel library, specialised per device")
    print("at runtime — no operator was rewritten between these two runs.")
    run_on("cpu")
    run_on("gpu")


if __name__ == "__main__":
    main()
