"""Property-based cross-engine invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Database

columns = st.lists(
    st.tuples(st.integers(0, 9), st.integers(-1000, 1000)),
    min_size=1, max_size=300,
)


def _db(pairs):
    g = np.array([p[0] for p in pairs], dtype=np.int32)
    v = np.array([p[1] for p in pairs], dtype=np.int32)
    db = Database()
    db.create_table("t", {"g": g, "v": v})
    return db, g, v


@given(columns)
@settings(max_examples=15, deadline=None)
def test_grouped_sum_engine_agreement(pairs):
    db, g, v = _db(pairs)
    sql = "SELECT g, sum(v) AS s FROM t GROUP BY g ORDER BY g"
    base = db.execute(sql, engine="MS")
    for engine in ("CPU", "GPU"):
        other = db.execute(sql, engine=engine)
        assert np.array_equal(base.columns["g"], other.columns["g"])
        assert np.array_equal(base.columns["s"], other.columns["s"])
    expected_keys = np.unique(g)
    assert np.array_equal(base.columns["g"], expected_keys)


@given(columns, st.integers(-1000, 1000), st.integers(-1000, 1000))
@settings(max_examples=15, deadline=None)
def test_selection_count_engine_agreement(pairs, lo, hi):
    lo, hi = min(lo, hi), max(lo, hi)
    db, g, v = _db(pairs)
    sql = f"SELECT count(*) AS n FROM t WHERE v BETWEEN {lo} AND {hi}"
    expected = int(((v >= lo) & (v <= hi)).sum())
    for engine in ("MS", "MP", "CPU", "GPU"):
        got = db.execute(sql, engine=engine)
        assert got.columns["n"][0] == expected


@given(columns)
@settings(max_examples=10, deadline=None)
def test_sort_is_permutation_and_ordered(pairs):
    db, g, v = _db(pairs)
    sql = "SELECT v FROM t ORDER BY v"
    for engine in ("MS", "GPU"):
        got = db.execute(sql, engine=engine).columns["v"]
        assert np.array_equal(np.sort(v), got)


@given(columns)
@settings(max_examples=10, deadline=None)
def test_join_with_self_counts(pairs):
    db, g, v = _db(pairs)
    sql = ("SELECT count(*) AS n FROM t t1 "
           "JOIN (SELECT g AS g2 FROM t GROUP BY g) d ON t1.g = d.g2")
    expected = len(pairs)  # every row matches its own group key exactly once
    for engine in ("MS", "CPU"):
        assert db.execute(sql, engine=engine).columns["n"][0] == expected
