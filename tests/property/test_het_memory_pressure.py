"""Memory-pressure properties of heterogeneous execution (hypothesis).

A HET pool whose GPU has a tiny device-memory budget must keep working:
the placement policy excludes infeasible whole placements, the fan-out
planner caps the GPU's share by capacity, and the Memory Manager absorbs
the rest through eviction/offload.  Throughout, the bookkeeping stays
consistent — ``restores <= offloads`` (only offloaded contents can be
restored), nothing released is ever handed to a kernel (the simulated
queue raises ``InvalidKernelArgs`` if it were), and results stay equal
to the MS baseline.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import cl
from repro.monetdb import Catalog, MALBuilder, MonetDBSequential, run_program
from repro.ocelot.rewriter import rewrite_for_ocelot
from repro.sched import HeterogeneousBackend

N_ROWS = 1 << 15


def _pool_backend(catalog, gpu_mem_mb: float, data_scale: float):
    gpu = cl.Device(
        cl.NVIDIA_GTX460.with_memory(int(gpu_mem_mb * cl.MB))
    )
    return HeterogeneousBackend(
        catalog,
        devices=(cl.Device(cl.INTEL_XEON_E5620), gpu),
        data_scale=data_scale,
    )


def _pressure_query(ngroups: int, hi: int):
    builder = MALBuilder("pressure")
    v = builder.bind("t", "v")
    g = builder.bind("t", "g")
    cand = builder.emit(
        "algebra", "select", (v, None, 0, hi, True, True, False)
    )
    n = builder.emit("aggr", "count", (cand,))
    scaled = builder.emit("batcalc", "mul", (v, 3))
    sums = builder.emit("aggr", "subsum", (scaled, g, ngroups))
    return builder.returns([("n", n), ("sums", sums)])


@given(
    ngroups=st.integers(2, 64),
    hi=st.integers(1, 1 << 30),
    gpu_mem_mb=st.floats(2.0, 30.0),
)
@settings(max_examples=8, deadline=None)
def test_het_query_under_gpu_pressure_matches_ms(ngroups, hi, gpu_mem_mb):
    rng = np.random.default_rng(41)
    catalog = Catalog()
    catalog.create_table("t", {
        "v": rng.integers(0, 1 << 30, N_ROWS).astype(np.int32),
        "g": rng.integers(0, ngroups, N_ROWS).astype(np.int32),
    })
    # data_scale 64: the two 128 KB columns stand for 8 MB each, so the
    # 2-24 MB GPU budgets range from "nothing fits" to "barely fits"
    backend = _pool_backend(catalog, gpu_mem_mb, data_scale=64.0)
    program = _pressure_query(ngroups, hi)

    expected = run_program(program, MonetDBSequential(catalog))
    plan = rewrite_for_ocelot(program)
    for _ in range(2):   # a second run exercises the warm/evicted cache
        got = run_program(plan, backend)

    assert got.columns["n"][0] == expected.columns["n"][0]
    assert np.array_equal(got.columns["sums"], expected.columns["sums"])

    for engine in backend.pool.engines:
        stats = engine.memory.stats
        assert stats.restores <= stats.offloads
        assert stats.evictions >= 0
        # the registry never keeps released buffers around
        for entry in engine.memory.entries():
            if entry.buffer is not None:
                assert not entry.buffer.released


def test_pressure_actually_occurs_on_the_tiny_gpu():
    """Guard that the property above really exercises the eviction path
    (not vacuously true because everything fit)."""
    rng = np.random.default_rng(7)
    catalog = Catalog()
    catalog.create_table("t", {
        "v": rng.integers(0, 1 << 30, N_ROWS).astype(np.int32),
        "g": rng.integers(0, 16, N_ROWS).astype(np.int32),
    })
    # 24 MB: large enough that the scheduler routes the whole chain to
    # the GPU, too small to also keep every cached input resident
    backend = _pool_backend(catalog, gpu_mem_mb=24.0, data_scale=64.0)
    program = _pressure_query(16, 1 << 29)
    ms = run_program(program, MonetDBSequential(catalog))
    got = run_program(rewrite_for_ocelot(program), backend)
    assert np.array_equal(got.columns["sums"], ms.columns["sums"])
    activity = sum(
        e.memory.stats.evictions + e.memory.stats.offloads
        for e in backend.pool.engines
    )
    assert activity > 0


def test_het_raises_oom_only_when_nothing_fits_anywhere():
    """With both devices too small for the working set the query dies
    with OcelotOOM instead of silently computing on released buffers."""
    from repro.ocelot.memory import OcelotOOM

    rng = np.random.default_rng(11)
    catalog = Catalog()
    catalog.create_table("t", {
        "v": rng.integers(0, 1 << 30, N_ROWS).astype(np.int32),
    })
    cpu = cl.Device(cl.INTEL_XEON_E5620.with_memory(1 * cl.MB))
    gpu = cl.Device(cl.NVIDIA_GTX460.with_memory(1 * cl.MB))
    backend = HeterogeneousBackend(
        catalog, devices=(cpu, gpu), data_scale=64.0
    )
    builder = MALBuilder("oom")
    v = builder.bind("t", "v")
    s, order = builder.emit("algebra", "sort", (v, False), n_results=2)
    program = rewrite_for_ocelot(builder.returns([("s", s)]))
    with pytest.raises(OcelotOOM):
        run_program(program, backend)
