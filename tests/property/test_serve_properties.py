"""Serve-layer properties (hypothesis).

Two contracts the serving layer must never bend:

* **plan-cache transparency** — a cached (and, on HET, placement-
  replayed) plan produces a ``QueryResult`` identical to compiling the
  same SQL fresh, on every engine; DDL bumps the schema version, so a
  recreated table is never served from a stale plan;
* **session isolation** — N queries interleaved by the round-robin
  session scheduler return exactly what they return serially, even when
  a tiny-memory GPU forces the Memory Manager to evict/offload one
  session's intermediates while another session runs, and the memory
  bookkeeping invariants (``restores <= offloads``, no released buffer
  in the registry) hold throughout.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import cl
from repro.api import Database
from repro.ocelot.memory import OcelotOOM
from repro.sched import HeterogeneousBackend
from repro.sql.lower import compile_sql

N_ROWS = 1 << 14


def _database(ngroups: int, data_scale: float = 1.0) -> Database:
    rng = np.random.default_rng(41)
    db = Database(data_scale=data_scale)
    # stored plain: the memory-pressure tests size their GPU budgets
    # against two uncompressed 64 KB columns (~4 MB at scale 64), and
    # the eviction guard below needs that working set to stay real
    previous = os.environ.get("REPRO_COMPRESSION")
    os.environ["REPRO_COMPRESSION"] = "off"
    try:
        db.create_table("t", {
            "v": rng.integers(0, 1 << 30, N_ROWS).astype(np.int32),
            "g": rng.integers(0, ngroups, N_ROWS).astype(np.int32),
        })
    finally:
        if previous is None:
            del os.environ["REPRO_COMPRESSION"]
        else:
            os.environ["REPRO_COMPRESSION"] = previous
    return db


def _compare(expected, got, context=""):
    assert set(expected.columns) == set(got.columns), context
    for col in expected.columns:
        assert np.allclose(
            expected.columns[col].astype(np.float64),
            got.columns[col].astype(np.float64),
            rtol=1e-5, atol=1e-9,
        ), (context, col)


@given(
    engine=st.sampled_from(["MS", "CPU", "HET"]),
    hi=st.integers(1, 1 << 30),
    ngroups=st.integers(2, 64),
)
@settings(max_examples=8, deadline=None)
def test_cached_plan_is_transparent(engine, hi, ngroups):
    db = _database(ngroups)
    con = db.connect(engine)
    sql = f"SELECT g, sum(v) AS s FROM t WHERE v <= {hi} GROUP BY g"
    first = con.execute(sql)            # compiles (miss)
    cached = con.execute(sql)           # cache hit (+ replay on HET)
    assert db.plan_cache.stats.hits >= 1
    fresh = con.run_plan(compile_sql(sql, db.schema))   # never cached
    _compare(fresh, first, (engine, "first"))
    _compare(fresh, cached, (engine, "cached"))


@given(
    engine=st.sampled_from(["MS", "CPU", "HET"]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=6, deadline=None)
def test_ddl_invalidates_instead_of_serving_stale_plans(engine, seed):
    db = _database(8)
    con = db.connect(engine)
    sql = "SELECT sum(v) AS s FROM t"
    before = con.execute(sql).column("s")[0]
    misses = db.plan_cache.stats.misses
    rng = np.random.default_rng(seed)
    replacement = rng.integers(0, 1000, 256).astype(np.int32)
    db.drop_table("t")
    db.create_table("t", {
        "v": replacement,
        "g": np.zeros(256, np.int32),
    })
    assert db.plan_cache.stats.invalidations >= 1
    after = con.execute(sql)
    assert db.plan_cache.stats.misses == misses + 1   # recompiled
    assert after.column("s")[0] == replacement.astype(np.int64).sum()
    assert (before == after.column("s")[0]) == bool(
        before == replacement.astype(np.int64).sum()
    )


def _pressure_connection(db: Database, gpu_mem_mb: float):
    """Swap the HET connection's pool for one with a tiny-memory GPU
    (and drop plans recorded against the standard pool — placement
    replay assumes an unchanged device pool)."""
    con = db.connect("HET")
    gpu = cl.Device(cl.NVIDIA_GTX460.with_memory(int(gpu_mem_mb * cl.MB)))
    con.backend = HeterogeneousBackend(
        db.catalog,
        devices=(cl.Device(cl.INTEL_XEON_E5620), gpu),
        data_scale=db.data_scale,
    )
    con._scheduler = None
    db.plan_cache.clear()
    return con


@given(
    gpu_mem_mb=st.floats(2.0, 24.0),
    hi=st.integers(1, 1 << 30),
    ngroups=st.integers(2, 32),
)
@settings(max_examples=6, deadline=None)
def test_concurrent_submits_isolated_under_memory_pressure(
    gpu_mem_mb, hi, ngroups
):
    # data_scale 64: two 64 KB columns stand for ~4 MB each, so the
    # 2-24 MB GPU budgets range from "nothing fits" to "barely fits"
    db = _database(ngroups, data_scale=64.0)
    con = _pressure_connection(db, gpu_mem_mb)
    ms = db.connect("MS")
    workload = [
        f"SELECT sum(v) AS s FROM t WHERE v <= {hi}",
        "SELECT g, sum(v) AS s FROM t GROUP BY g",
        "SELECT max(v) AS m FROM t",
        f"SELECT g, count(*) AS n FROM t WHERE v > {hi} GROUP BY g",
    ]
    futures = [con.submit(sql) for sql in workload]
    con.drain()
    for sql, future in zip(workload, futures):
        error = future.exception()
        if error is not None:
            # transient pressure is retried serially; a query may only
            # fail if it fails *without* concurrency too — serving never
            # introduces new failures
            assert isinstance(error, OcelotOOM), sql
            with pytest.raises(OcelotOOM):
                con.execute(sql)
        else:
            _compare(ms.execute(sql), future.result(), sql)
    for engine in con.backend.pool.engines:
        stats = engine.memory.stats
        assert stats.restores <= stats.offloads
        for entry in engine.memory.entries():
            if entry.buffer is not None:
                assert not entry.buffer.released


def test_pressure_interleaving_actually_evicts():
    """Guard that the property above exercises eviction/offload (not
    vacuously green because everything fit)."""
    db = _database(16, data_scale=64.0)
    con = _pressure_connection(db, gpu_mem_mb=24.0)
    workload = [
        "SELECT g, sum(v) AS s FROM t GROUP BY g",
        "SELECT sum(v) AS s FROM t WHERE v <= 536870912",
    ] * 2
    futures = [con.submit(sql) for sql in workload]
    con.drain()
    for future in futures:
        assert future.exception() is None
    activity = sum(
        e.memory.stats.evictions + e.memory.stats.offloads
        for e in con.backend.pool.engines
    )
    assert activity > 0
