"""Auto-parameterisation properties (hypothesis).

The front door normalises literals into bind parameters before the
plan-cache lookup (:mod:`repro.sql.params`).  Three contracts:

* **literal variants collapse** — any set of literal variations of one
  query shape shares a single template, a single cache entry, and N-1
  cache hits;
* **shapes never collide** — structurally different statements always
  produce different templates (no false sharing);
* **binding is exact** — executing through the parameterised + bound
  template returns exactly what compiling the literal SQL directly
  returns, on every TPC-H workload query.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.api import Database
from repro.sql.lower import compile_sql
from repro.sql.params import parameterise
from repro.tpch.queries import WORKLOAD

N_ROWS = 1 << 12


def _database(ngroups: int = 8) -> Database:
    rng = np.random.default_rng(47)
    db = Database()
    db.create_table("t", {
        "v": rng.integers(0, 1 << 30, N_ROWS).astype(np.int32),
        "g": rng.integers(0, ngroups, N_ROWS).astype(np.int32),
    })
    return db


def _compare(expected, got, context=""):
    assert set(expected.columns) == set(got.columns), context
    for col in expected.columns:
        assert np.allclose(
            expected.columns[col].astype(np.float64),
            got.columns[col].astype(np.float64),
            rtol=1e-5, atol=1e-9,
        ), (context, col)


@given(
    literals=st.lists(st.integers(0, 1 << 30), min_size=2, max_size=8,
                      unique=True),
    threshold=st.integers(1, 63),
)
@settings(max_examples=10, deadline=None)
def test_literal_variants_share_one_cache_entry(literals, threshold):
    templates = {
        parameterise(
            f"SELECT g, sum(v) AS s FROM t "
            f"WHERE v <= {lit} AND g < {threshold} GROUP BY g"
        )[0]
        for lit in literals
    }
    assert len(templates) == 1
    db = _database(64)
    con = db.connect("MS")
    for lit in literals:
        sql = (f"SELECT g, sum(v) AS s FROM t "
               f"WHERE v <= {lit} AND g < {threshold} GROUP BY g")
        cached = con.execute(sql)
        fresh = con.run_plan(compile_sql(sql, db.schema))
        _compare(fresh, cached, lit)
    assert len(db.plan_cache) == 1
    assert db.plan_cache.stats.misses == 1
    assert db.plan_cache.stats.hits == len(literals) - 1


_AGGS = ("sum(v)", "min(v)", "max(v)", "count(*)", "avg(v)")
_SHAPES = st.tuples(
    st.integers(0, len(_AGGS) - 1),   # aggregate
    st.booleans(),                    # WHERE clause?
    st.booleans(),                    # GROUP BY?
)


def _statement(shape, literal: int) -> str:
    agg, filtered, grouped = shape
    sql = f"SELECT {'g, ' if grouped else ''}{_AGGS[agg]} AS s FROM t"
    if filtered:
        sql += f" WHERE v <= {literal}"
    if grouped:
        sql += " GROUP BY g"
    return sql


@given(
    a=_SHAPES, b=_SHAPES,
    lit_a=st.integers(0, 1 << 30), lit_b=st.integers(0, 1 << 30),
)
@settings(max_examples=30, deadline=None)
def test_structurally_different_statements_never_collide(
    a, b, lit_a, lit_b
):
    template_a = parameterise(_statement(a, lit_a))[0]
    template_b = parameterise(_statement(b, lit_b))[0]
    if a == b:
        assert template_a == template_b
    else:
        assert template_a != template_b


def test_every_distinct_shape_gets_its_own_entry():
    """End-to-end collision check: executing one literal variant of
    every shape fills the cache with exactly one entry per shape."""
    db = _database()
    con = db.connect("MS")
    shapes = [(agg, filtered, grouped)
              for agg in range(len(_AGGS))
              for filtered in (False, True)
              for grouped in (False, True)]
    for i, shape in enumerate(shapes):
        # literals near mid-range keep every filter non-empty (min/max
        # over an empty selection is an error, not a value)
        con.execute(_statement(shape, literal=(1 << 29) + i))
    assert len(db.plan_cache) == len(shapes)
    assert db.plan_cache.stats.hits == 0


class TestTPCHBinding:
    """Bound execution is indistinguishable from direct execution on
    the full paper workload."""

    @pytest.fixture(scope="class")
    def tpch(self):
        db = repro.tpch_database(sf=0.2)
        yield db
        db.close()

    @pytest.mark.parametrize("qid", sorted(WORKLOAD))
    def test_bound_equals_direct(self, tpch, qid):
        sql = WORKLOAD[qid]
        con = tpch.connect("MS")
        bound = con.execute(sql)       # parameterised template + bind
        direct = con.run_plan(compile_sql(sql, tpch.schema))
        _compare(direct, bound, qid)
