"""Compression properties (hypothesis).

Two contracts the codec layer must never bend:

* **round-trip fidelity** — every codec decodes to exactly the array
  it encoded, for every tail dtype it accepts, including the edge
  shapes (empty, constant, all-distinct), and every ``slice_`` view
  decodes to the matching slice of the original;
* **execution transparency** — a connection running compressed plans
  returns results identical to ``compression=off`` over the same
  (encoded) storage, across the whole TPC-H workload.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.compress.codecs import (
    MAX_PHYSICAL_FRACTION,
    DictEncoding,
    FOREncoding,
    RLEEncoding,
    choose_encoding,
)

INT_DTYPES = (np.int32, np.int64)
ALL_DTYPES = INT_DTYPES + (np.float32, np.float64)

int_lists = st.lists(st.integers(-(1 << 31), (1 << 31) - 1),
                     min_size=0, max_size=200)
float_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False, width=32),
    min_size=0, max_size=200,
)
# runs amplify RLE; a few distinct values amplify dict
runny_lists = st.lists(
    st.tuples(st.integers(0, 5), st.integers(1, 20)),
    min_size=0, max_size=40,
).map(lambda runs: [v for v, n in runs for _ in range(n)])


def _as_array(values, dtype):
    return np.asarray(values, dtype=dtype)


def _roundtrip(codec, values):
    encoding = codec.encode(values)
    decoded = encoding.decode()
    assert decoded.dtype == values.dtype
    np.testing.assert_array_equal(decoded, values)
    assert encoding.count == values.size
    assert encoding.nominal_nbytes == values.nbytes
    return encoding


def _slices(encoding, values, cuts):
    for lo, hi in cuts:
        lo = min(lo, values.size)
        hi = min(hi, values.size)
        window = encoding.slice_(lo, hi)
        np.testing.assert_array_equal(
            window.decode(), values[lo:hi], err_msg=f"[{lo}:{hi}]"
        )
        assert window.count == max(hi - lo, 0)


cut_pairs = st.lists(st.tuples(st.integers(0, 220), st.integers(0, 220))
                     .map(lambda p: (min(p), max(p))),
                     min_size=1, max_size=5)


class TestRoundTrips:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @given(values=runny_lists, cuts=cut_pairs)
    @settings(max_examples=20, deadline=None)
    def test_dict(self, dtype, values, cuts):
        array = _as_array(values, dtype)
        _slices(_roundtrip(DictEncoding, array), array, cuts)

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @given(values=runny_lists, cuts=cut_pairs)
    @settings(max_examples=20, deadline=None)
    def test_rle(self, dtype, values, cuts):
        array = _as_array(values, dtype)
        encoding = _roundtrip(RLEEncoding, array)
        # runs are maximal: neighbouring run values always differ
        if encoding.n_runs > 1:
            assert (encoding.run_values[1:]
                    != encoding.run_values[:-1]).all()
        _slices(encoding, array, cuts)

    @pytest.mark.parametrize("dtype", INT_DTYPES)
    @given(values=int_lists, cuts=cut_pairs)
    @settings(max_examples=20, deadline=None)
    def test_for(self, dtype, values, cuts):
        array = _as_array(values, dtype)
        encoding = _roundtrip(FOREncoding, array)
        assert encoding.deltas.dtype.kind == "u"
        _slices(encoding, array, cuts)

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @given(values=float_lists)
    @settings(max_examples=20, deadline=None)
    def test_dict_and_rle_on_float_shapes(self, dtype, values):
        array = _as_array(values, dtype)
        _roundtrip(DictEncoding, array)
        _roundtrip(RLEEncoding, array)

    @pytest.mark.parametrize("codec,dtype", [
        (DictEncoding, dtype) for dtype in ALL_DTYPES
    ] + [
        (RLEEncoding, dtype) for dtype in ALL_DTYPES
    ] + [
        (FOREncoding, dtype) for dtype in INT_DTYPES
    ])
    def test_edge_shapes(self, codec, dtype):
        empty = np.empty(0, dtype=dtype)
        constant = np.full(257, 42, dtype=dtype)
        distinct = np.arange(257, 0, -1).astype(dtype)
        for array in (empty, constant, distinct):
            encoding = _roundtrip(codec, array)
            _slices(encoding, array, [(0, 0), (0, array.size),
                                      (3, 200), (200, 3)])


class TestAutoPolicy:
    @given(values=runny_lists)
    @settings(max_examples=20, deadline=None)
    def test_chosen_encoding_is_faithful_and_worth_it(self, values):
        array = _as_array(values, np.int64)
        encoding = choose_encoding(array, "auto")
        if encoding is None:
            return
        np.testing.assert_array_equal(encoding.decode(), array)
        assert encoding.physical_nbytes < (
            encoding.nominal_nbytes * MAX_PHYSICAL_FRACTION
        )

    @given(values=int_lists)
    @settings(max_examples=20, deadline=None)
    def test_forced_modes_are_faithful(self, values):
        array = _as_array(values, np.int32)
        for mode in ("dict", "rle", "for"):
            encoding = choose_encoding(array, mode)
            if encoding is not None:
                assert encoding.kind == mode
                np.testing.assert_array_equal(encoding.decode(), array)


class TestTPCHTransparency:
    """Compressed execution never changes a TPC-H answer."""

    @pytest.fixture(scope="class")
    def db(self):
        database = repro.tpch_database(sf=0.1)
        yield database
        database.close()

    def _compare(self, db, engine, query_id):
        from repro.tpch import WORKLOAD

        sql = WORKLOAD[query_id]
        off_spec = (f"{engine},compression=off" if ":" in engine
                    else f"{engine}:compression=off")
        auto = db.connect(engine).execute(sql, name=query_id)
        off = db.connect(off_spec).execute(sql, name=query_id)
        assert set(auto.columns) == set(off.columns)
        for column in auto.columns:
            a, b = auto.columns[column], off.columns[column]
            assert a.shape == b.shape, (engine, query_id, column)
            if a.dtype.kind == "f" or b.dtype.kind == "f":
                np.testing.assert_allclose(
                    a.astype(np.float64), b.astype(np.float64),
                    rtol=1e-4, atol=1e-6,
                    err_msg=f"{engine}/{query_id}:{column}",
                )
            else:
                np.testing.assert_array_equal(
                    a, b, err_msg=f"{engine}/{query_id}:{column}"
                )

    @pytest.mark.parametrize("query_id", sorted(
        repro.tpch.WORKLOAD, key=lambda q: int(q[1:])
    ))
    def test_every_query_on_the_baseline(self, db, query_id):
        self._compare(db, "MS", query_id)

    @pytest.mark.slow
    @pytest.mark.parametrize("engine",
                             ("MP", "CPU", "GPU", "HET", "SHARD:2xMS"))
    @pytest.mark.parametrize("query_id", sorted(
        repro.tpch.WORKLOAD, key=lambda q: int(q[1:])
    ))
    def test_every_query_on_every_family(self, db, engine, query_id):
        self._compare(db, engine, query_id)
