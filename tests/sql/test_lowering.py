"""SQL -> MAL lowering: binder, selection chains, joins, grouping."""

import numpy as np
import pytest

from repro.api import Database
from repro.sql import BindError, compile_sql


@pytest.fixture
def db():
    rng = np.random.default_rng(3)
    database = Database()
    database.create_table(
        "sales",
        {
            "region": rng.integers(0, 4, 1000).astype(np.int32),
            "amount": rng.uniform(0, 100, 1000).astype(np.float32),
            "qty": rng.integers(1, 10, 1000).astype(np.int32),
            "day": rng.integers(19940101, 19940131, 1000).astype(np.int32),
        },
        dictionaries={"region": ["N", "S", "E", "W"]},
    )
    database.create_table(
        "regions",
        {
            "rkey": np.arange(4, dtype=np.int32),
            "population": np.array([10, 20, 30, 40], dtype=np.int32),
        },
    )
    return database


def ops_of(program):
    return [ins.op for ins in program.instructions]


class TestSelectionChains:
    def test_sargable_conjuncts_become_thetaselects(self, db):
        plan = compile_sql(
            "SELECT qty FROM sales WHERE qty > 2 AND qty < 8",
            db.schema,
        )
        ops = ops_of(plan)
        assert ops.count("algebra.thetaselect") == 2
        # second select is candidate-chained: its cand arg is a Var
        second = [i for i in plan.instructions
                  if i.op == "algebra.thetaselect"][1]
        from repro.monetdb.mal import Var

        assert isinstance(second.args[1], Var)

    def test_between_becomes_range_select(self, db):
        plan = compile_sql(
            "SELECT qty FROM sales WHERE qty BETWEEN 3 AND 7", db.schema
        )
        assert "algebra.select" in ops_of(plan)

    def test_in_list_becomes_union(self, db):
        plan = compile_sql(
            "SELECT qty FROM sales WHERE qty IN (1, 5, 9)", db.schema
        )
        assert ops_of(plan).count("algebra.oidunion") == 2

    def test_or_becomes_union(self, db):
        plan = compile_sql(
            "SELECT qty FROM sales WHERE qty < 2 OR qty > 8", db.schema
        )
        assert "algebra.oidunion" in ops_of(plan)

    def test_dictionary_literal_resolved(self, db):
        plan = compile_sql(
            "SELECT qty FROM sales WHERE region = 'E'", db.schema
        )
        theta = [i for i in plan.instructions
                 if i.op == "algebra.thetaselect"][0]
        assert theta.args[2] == 2  # code of 'E'

    def test_unknown_dictionary_literal(self, db):
        with pytest.raises(LookupError):
            compile_sql("SELECT qty FROM sales WHERE region = 'X'",
                        db.schema)

    def test_string_on_non_dict_column_rejected(self, db):
        with pytest.raises(BindError):
            compile_sql("SELECT qty FROM sales WHERE qty = 'five'",
                        db.schema)


class TestBinder:
    def test_unknown_table(self, db):
        with pytest.raises(BindError):
            compile_sql("SELECT x FROM nope", db.schema)

    def test_unknown_column(self, db):
        with pytest.raises(BindError):
            compile_sql("SELECT nope FROM sales", db.schema)

    def test_ambiguous_column(self, db):
        with pytest.raises(BindError, match="ambiguous"):
            compile_sql(
                "SELECT qty FROM sales s1 JOIN sales s2 ON s1.qty = s2.qty",
                db.schema,
            )

    def test_duplicate_alias(self, db):
        with pytest.raises(BindError, match="duplicate"):
            compile_sql(
                "SELECT 1 FROM sales s JOIN regions s ON qty = rkey",
                db.schema,
            )

    def test_join_without_equality_rejected(self, db):
        with pytest.raises(BindError, match="equality"):
            compile_sql(
                "SELECT qty FROM sales JOIN regions ON qty < rkey",
                db.schema,
            )

    def test_order_by_must_reference_output(self, db):
        with pytest.raises(BindError, match="ORDER BY"):
            compile_sql(
                "SELECT qty FROM sales ORDER BY amount", db.schema
            )


class TestJoinPipeline:
    def test_join_emits_projection_remaps(self, db):
        plan = compile_sql(
            "SELECT amount, population FROM sales "
            "JOIN regions ON region = rkey WHERE qty > 5",
            db.schema,
        )
        ops = ops_of(plan)
        assert "algebra.join" in ops
        # fetch joins dominate: at least the two output columns
        assert ops.count("algebra.projection") >= 2

    def test_semi_join_lowered(self, db):
        plan = compile_sql(
            "SELECT qty FROM sales SEMI JOIN regions ON region = rkey",
            db.schema,
        )
        assert "algebra.semijoin" in ops_of(plan)

    def test_residual_predicate_after_join(self, db):
        plan = compile_sql(
            "SELECT qty FROM sales JOIN regions ON region = rkey "
            "WHERE qty > population",
            db.schema,
        )
        ops = ops_of(plan)
        assert "batcalc.gt" in ops
        assert "algebra.thetaselect" in ops


class TestGroupingPhase:
    def test_group_and_subgroup(self, db):
        plan = compile_sql(
            "SELECT region, qty, sum(amount) AS s FROM sales "
            "GROUP BY region, qty",
            db.schema,
        )
        ops = ops_of(plan)
        assert "group.group" in ops
        assert "group.subgroup" in ops
        assert "aggr.subsum" in ops
        assert ops.count("aggr.submin") == 2  # the two key columns

    def test_having_filters_groups(self, db):
        plan = compile_sql(
            "SELECT region, sum(amount) AS s FROM sales GROUP BY region "
            "HAVING sum(amount) > 100",
            db.schema,
        )
        ops = ops_of(plan)
        assert "batcalc.gt" in ops
        assert ops.count("algebra.projection") >= 2  # outputs re-projected

    def test_ungrouped_aggregates_scalar_env(self, db):
        plan = compile_sql(
            "SELECT sum(amount) / 7.0 AS weekly FROM sales", db.schema
        )
        ops = ops_of(plan)
        assert "aggr.sum" in ops
        assert "calc.div" in ops

    def test_aggregate_in_plain_select_rejected(self, db):
        with pytest.raises(BindError):
            compile_sql("SELECT qty + sum(amount) FROM sales", db.schema)


class TestOrderLimit:
    def test_order_by_output_alias(self, db):
        plan = compile_sql(
            "SELECT region, sum(amount) AS s FROM sales GROUP BY region "
            "ORDER BY s DESC",
            db.schema,
        )
        sort = [i for i in plan.instructions if i.op == "algebra.sort"][0]
        assert sort.args[1] is True

    def test_limit_uses_firstn(self, db):
        plan = compile_sql(
            "SELECT qty FROM sales ORDER BY qty LIMIT 3", db.schema
        )
        assert "algebra.firstn" in ops_of(plan)


class TestScalarSubqueryAndCTE:
    def test_scalar_subquery_inlined(self, db):
        plan = compile_sql(
            "SELECT qty FROM sales WHERE amount = "
            "(SELECT max(amount) FROM sales)",
            db.schema,
        )
        assert "aggr.max" in ops_of(plan)

    def test_cte_compiled_once_usable_twice(self, db):
        plan = compile_sql(
            "WITH totals AS (SELECT region AS r, sum(amount) AS s "
            "FROM sales GROUP BY region) "
            "SELECT r, s FROM totals "
            "WHERE s = (SELECT max(s) FROM totals)",
            db.schema,
        )
        # CTE grouped once: one group.group in the whole program
        assert ops_of(plan).count("group.group") == 1
