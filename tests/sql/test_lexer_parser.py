"""Lexer and parser for the reproduction dialect."""

import pytest

from repro.sql import SQLSyntaxError, parse, tokenize
from repro.sql import ast


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.kind == "kw" and t.value == "select"
                   for t in tokens[:-1])

    def test_numbers(self):
        tokens = tokenize("42 3.14 0.5")
        assert [t.kind for t in tokens[:-1]] == ["int", "float", "float"]

    def test_strings_and_comments(self):
        tokens = tokenize("'BUILDING' -- a comment\n'ASIA'")
        assert [t.value for t in tokens[:-1]] == ["BUILDING", "ASIA"]

    def test_two_char_punct(self):
        tokens = tokenize("<= >= <> a.b")
        assert [t.value for t in tokens[:3]] == ["<=", ">=", "<>"]

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT 'oops")

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @")


class TestParser:
    def test_simple_select(self):
        q = parse("SELECT a, b AS bee FROM t WHERE a > 5")
        assert len(q.select.items) == 2
        assert q.select.items[1].alias == "bee"
        assert isinstance(q.select.where, ast.BinOp)
        assert q.select.where.op == "gt"

    def test_precedence_arithmetic_over_comparison(self):
        q = parse("SELECT x FROM t WHERE a + b * 2 < 10")
        where = q.select.where
        assert where.op == "lt"
        assert where.left.op == "add"
        assert where.left.right.op == "mul"

    def test_and_or_precedence(self):
        q = parse("SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert q.select.where.op == "or"
        assert q.select.where.right.op == "and"

    def test_between_and_in(self):
        q = parse("SELECT x FROM t WHERE a BETWEEN 1 AND 5 "
                  "AND b IN (1, 2, 3) AND c NOT IN (9)")
        conj = q.select.where
        assert isinstance(conj.left.left, ast.Between)
        assert isinstance(conj.right, ast.InList)
        assert conj.right.negated

    def test_date_literals_and_intervals(self):
        q = parse("SELECT x FROM t WHERE d >= DATE '1994-01-01' "
                  "AND d < DATE '1994-01-01' + INTERVAL '1' YEAR")
        lo = q.select.where.left.right
        hi = q.select.where.right.right
        assert lo.value == 19940101
        assert hi.value == 19950101

    def test_interval_days_exact(self):
        q = parse("SELECT x FROM t WHERE d <= DATE '1998-12-01' "
                  "- INTERVAL '90' DAY")
        assert q.select.where.right.value == 19980902

    def test_case_expression(self):
        q = parse("SELECT CASE WHEN a = 1 THEN b ELSE 0 END AS c FROM t")
        expr = q.select.items[0].expr
        assert isinstance(expr, ast.Case)
        assert isinstance(expr.otherwise, ast.Literal)

    def test_aggregates_and_count_star(self):
        q = parse("SELECT sum(a * b), count(*), avg(c) FROM t")
        items = [i.expr for i in q.select.items]
        assert items[0].func == "sum"
        assert items[1].argument is None
        assert items[2].func == "avg"

    def test_extract_year(self):
        q = parse("SELECT EXTRACT(YEAR FROM d) AS y FROM t GROUP BY "
                  "EXTRACT(YEAR FROM d)")
        assert isinstance(q.select.items[0].expr, ast.ExtractYear)
        assert q.select.group_by[0] == q.select.items[0].expr

    def test_joins(self):
        q = parse("SELECT x FROM a JOIN b ON a.k = b.k "
                  "SEMI JOIN c ON b.j = c.j ANTI JOIN d ON a.m = d.m")
        kinds = [j.kind for j in q.select.joins]
        assert kinds == ["inner", "semi", "anti"]

    def test_derived_table_and_cte(self):
        q = parse("WITH r AS (SELECT k FROM t) "
                  "SELECT x FROM (SELECT y AS x FROM u) sub "
                  "JOIN r ON x = r.k")
        assert q.ctes[0][0] == "r"
        assert isinstance(q.select.base, ast.SubqueryRef)
        assert q.select.base.alias == "sub"

    def test_scalar_subquery(self):
        q = parse("SELECT x FROM t WHERE v = (SELECT max(v) FROM t)")
        assert isinstance(q.select.where.right, ast.ScalarSubquery)

    def test_group_having_order_limit(self):
        q = parse("SELECT g, sum(v) AS s FROM t GROUP BY g "
                  "HAVING sum(v) > 10 ORDER BY s DESC LIMIT 5")
        assert len(q.select.group_by) == 1
        assert q.select.having.op == "gt"
        assert q.select.order_by.descending
        assert q.select.limit == 5

    def test_comma_join_rejected(self):
        with pytest.raises(SQLSyntaxError, match="comma"):
            parse("SELECT x FROM a, b WHERE a.k = b.k")

    def test_multi_column_order_rejected(self):
        with pytest.raises(SQLSyntaxError, match="sorting"):
            parse("SELECT a, b FROM t ORDER BY a, b")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT a FROM t ORDER BY a ASC bogus")

    def test_negative_numbers(self):
        q = parse("SELECT -a FROM t WHERE b > -5")
        assert isinstance(q.select.items[0].expr, ast.Neg)
