"""SQL end-to-end: golden results against straight numpy, all 4 engines."""

import numpy as np
import pytest

from repro.api import Database

ENGINES = ("MS", "MP", "CPU", "GPU")


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(21)
    n = 8000
    database = Database()
    database.create_table(
        "orders",
        {
            "okey": np.arange(n, dtype=np.int32),
            "cust": rng.integers(0, 50, n).astype(np.int32),
            "price": rng.uniform(1, 1000, n).astype(np.float32),
            "status": rng.integers(0, 3, n).astype(np.int32),
            "odate": rng.integers(19940101, 19941231, n).astype(np.int32),
        },
        dictionaries={"status": ["open", "shipped", "returned"]},
    )
    database.create_table(
        "customers",
        {
            "ckey": np.arange(50, dtype=np.int32),
            "segment": rng.integers(0, 4, 50).astype(np.int32),
        },
    )
    return database


@pytest.fixture(scope="module")
def raw(db):
    orders = {k: db.catalog.bat("orders", k).values
              for k in db.catalog.columns("orders")}
    customers = {k: db.catalog.bat("customers", k).values
                 for k in db.catalog.columns("customers")}
    return orders, customers


def run_everywhere(db, sql):
    results = {}
    for engine in ENGINES:
        results[engine] = db.execute(sql, engine=engine)
    base = results["MS"]
    for engine in ENGINES[1:]:
        other = results[engine]
        for col in base.columns:
            a, b = base.columns[col], other.columns[col]
            assert a.shape == b.shape, (engine, col)
            if a.dtype.kind == "f" or b.dtype.kind == "f":
                assert np.allclose(a.astype(np.float64),
                                   b.astype(np.float64),
                                   rtol=1e-5, atol=1e-8), (engine, col)
            else:
                assert np.array_equal(a, b), (engine, col)
    return base


def test_filtered_sum(db, raw):
    orders, _ = raw
    got = run_everywhere(
        db,
        "SELECT sum(price) AS total FROM orders "
        "WHERE status = 'returned' AND odate >= 19940601",
    )
    mask = (orders["status"] == 2) & (orders["odate"] >= 19940601)
    expected = orders["price"][mask].astype(np.float64).sum()
    assert got.columns["total"][0] == pytest.approx(expected, rel=1e-6)


def test_group_by_with_order(db, raw):
    orders, _ = raw
    got = run_everywhere(
        db,
        "SELECT cust, sum(price) AS total, count(*) AS n FROM orders "
        "GROUP BY cust ORDER BY total DESC",
    )
    sums = np.bincount(orders["cust"], weights=orders["price"],
                       minlength=50)
    counts = np.bincount(orders["cust"], minlength=50)
    order = np.argsort(-sums, kind="stable")
    assert np.allclose(got.columns["total"], sums[order], rtol=1e-6)
    assert np.array_equal(got.columns["n"], counts[order])
    assert np.array_equal(got.columns["cust"], order.astype(np.int32))


def test_join_with_group(db, raw):
    orders, customers = raw
    got = run_everywhere(
        db,
        "SELECT segment, sum(price) AS rev FROM orders "
        "JOIN customers ON cust = ckey GROUP BY segment ORDER BY segment",
    )
    seg_of_order = customers["segment"][orders["cust"]]
    expected = np.bincount(seg_of_order, weights=orders["price"],
                           minlength=4)
    assert np.allclose(got.columns["rev"], expected, rtol=1e-6)


def test_case_when_aggregation(db, raw):
    orders, _ = raw
    got = run_everywhere(
        db,
        "SELECT sum(CASE WHEN status = 'open' THEN price ELSE 0 END) "
        "AS open_rev, sum(price) AS rev FROM orders",
    )
    mask = orders["status"] == 0
    assert got.columns["open_rev"][0] == pytest.approx(
        orders["price"][mask].astype(np.float64).sum(), rel=1e-6
    )


def test_semi_join(db, raw):
    orders, customers = raw
    got = run_everywhere(
        db,
        "SELECT count(*) AS n FROM orders SEMI JOIN "
        "(SELECT ckey FROM customers WHERE segment = 2) s2 "
        "ON cust = s2.ckey",
    )
    wanted = customers["ckey"][customers["segment"] == 2]
    expected = int(np.isin(orders["cust"], wanted).sum())
    assert got.columns["n"][0] == expected


def test_scalar_subquery_filter(db, raw):
    orders, _ = raw
    got = run_everywhere(
        db,
        "SELECT okey FROM orders WHERE price = "
        "(SELECT max(price) FROM orders)",
    )
    expected = orders["okey"][orders["price"] == orders["price"].max()]
    assert np.array_equal(got.columns["okey"], expected)


def test_year_extraction_grouping(db, raw):
    orders, _ = raw
    got = run_everywhere(
        db,
        "SELECT EXTRACT(YEAR FROM odate) AS y, count(*) AS n FROM orders "
        "GROUP BY EXTRACT(YEAR FROM odate) ORDER BY y",
    )
    years = orders["odate"] // 10000
    uniq = np.unique(years)
    assert np.array_equal(got.columns["y"], uniq)
    assert np.array_equal(
        got.columns["n"],
        [int((years == y).sum()) for y in uniq],
    )


def test_explain_shows_rewritten_plan(db):
    connection = db.connect("GPU")
    sql = "SELECT sum(price) AS p FROM orders WHERE price >= 0.0"
    text = connection.explain(sql)
    assert "ocelot." in text
    # the base-column selection takes the compressed-execution form
    assert "compress." in text
    ms_text = db.connect("MS").explain(sql)
    assert "ocelot." not in ms_text
    off = db.connect("GPU:compression=off").explain(sql)
    assert "compress." not in off


def test_unknown_engine_rejected(db):
    with pytest.raises(ValueError):
        db.connect("TPU")
