"""Async sessions: futures, fairness, isolation, and pipelined overlap
on the heterogeneous engine's per-device timelines."""

import numpy as np
import pytest

from repro.api import Database
from repro.monetdb.mal import MALBuilder
from repro.monetdb.interpreter import UnsupportedOperator
from repro.serve.plancache import CachedPlan


@pytest.fixture
def db():
    rng = np.random.default_rng(29)
    database = Database()
    database.create_table("points", {
        "x": rng.integers(0, 8, 4000).astype(np.int32),
        "y": rng.random(4000).astype(np.float32),
    })
    return database


QUERIES = [
    "SELECT x, sum(y) AS s FROM points GROUP BY x",
    "SELECT sum(y) AS s FROM points WHERE x < 4",
    "SELECT x, count(*) AS n FROM points GROUP BY x ORDER BY x",
]


def _mixed_db():
    """One table the GPU cannot hold (CPU-bound queries) and one it can
    (GPU-bound queries) — the serving mix that benefits from overlap."""
    rng = np.random.default_rng(31)
    db = Database(data_scale=6144.0)
    db.create_table("big", {                       # ~ 3 GB nominal
        "v": rng.integers(0, 1 << 30, 1 << 17).astype(np.int32),
    })
    db.create_table("med", {                       # ~ 400 MB nominal
        "w": rng.random(1 << 14).astype(np.float32),
        "g": rng.integers(0, 32, 1 << 14).astype(np.int32),
    })
    return db


class TestFutures:
    @pytest.mark.parametrize("engine", ["MS", "CPU", "HET"])
    def test_submit_matches_execute(self, db, engine):
        con = db.connect(engine)
        serial = [con.execute(q) for q in QUERIES]
        futures = [con.submit(q) for q in QUERIES]
        con.drain()
        for expected, future in zip(serial, futures):
            assert future.done()
            got = future.result()
            for col in expected.columns:
                assert np.allclose(
                    got.columns[col].astype(np.float64),
                    expected.columns[col].astype(np.float64),
                    rtol=1e-5,
                ), (engine, col)

    def test_result_drives_the_scheduler(self, db):
        con = db.connect("HET")
        future = con.submit(QUERIES[0])
        assert not future.done()
        result = future.result()       # no explicit drain
        assert future.done()
        assert result.n_rows == 8

    def test_elapsed_covers_submit_to_completion(self, db):
        con = db.connect("HET")
        futures = [con.submit(q) for q in QUERIES]
        con.drain()
        for future in futures:
            result = future.result()
            assert result.elapsed >= 0.0
            assert future.completion_epoch >= future.submit_epoch
            assert result.elapsed == pytest.approx(
                future.completion_epoch - future.submit_epoch
            )


class TestFairness:
    def test_round_robin_interleaves_one_instruction_each(self, db):
        con = db.connect("HET")
        con.scheduler.turn_log.clear()
        n = 3
        for _ in range(n):
            con.submit(QUERIES[0])
        con.drain()
        first_round = [s for s, _op in con.scheduler.turn_log[:n]]
        assert len(set(first_round)) == n   # everyone advanced once
        # with identical plans, completion preserves submission order
        ops = [op for _s, op in con.scheduler.turn_log]
        assert ops[0] == ops[1] == ops[2]

    def test_fifo_engines_run_whole_queries(self, db):
        con = db.connect("MS")
        for q in QUERIES:
            con.submit(q)
        con.drain()
        assert all(op == "query" for _s, op in con.scheduler.turn_log)


class TestIsolation:
    def test_failed_session_does_not_poison_the_batch(self, db):
        con = db.connect("HET")
        builder = MALBuilder("boom")
        bogus = builder.emit("nosuch", "operator", ())
        entry = CachedPlan(key=("boom",), program=builder.returns(
            [("x", bogus)]
        ))
        ok_first = con.submit(QUERIES[1])
        doomed = con.scheduler.submit(entry, name="boom")
        ok_second = con.submit(QUERIES[0])
        con.drain()
        assert isinstance(doomed.exception(), UnsupportedOperator)
        with pytest.raises(UnsupportedOperator):
            doomed.result()
        assert ok_first.result().n_rows == 1
        assert ok_second.result().n_rows == 8

    def test_interleaved_results_match_ms_ground_truth(self, db):
        het = db.connect("HET")
        ms = db.connect("MS")
        futures = [het.submit(q) for q in QUERIES * 2]
        het.drain()
        for future, sql in zip(futures, QUERIES * 2):
            expected = ms.execute(sql)
            got = future.result()
            for col in expected.columns:
                assert np.allclose(
                    got.columns[col].astype(np.float64),
                    expected.columns[col].astype(np.float64),
                    rtol=1e-5,
                ), (sql, col)


class TestPipelining:
    def test_concurrent_batch_beats_serial_makespan(self):
        db = _mixed_db()
        con = db.connect("HET")
        workload = [
            "SELECT min(v) AS m FROM big",
            "SELECT g, sum(w) AS s FROM med GROUP BY g",
            "SELECT sum(w) AS s FROM med WHERE w >= 0.25",
            "SELECT g, count(*) AS n FROM med GROUP BY g",
        ]
        for sql in workload:       # warm device caches + plan cache
            con.execute(sql)
        serial = sum(con.execute(sql).elapsed for sql in workload)
        futures = [con.submit(sql) for sql in workload]
        con.drain()
        makespan = con.scheduler.last_batch_makespan
        assert makespan is not None
        # overlap across the two device queues beats serial execution
        assert makespan < serial
        for future in futures:
            future.result()        # and everything actually completed

    def test_cpu_and_gpu_queries_really_overlap(self):
        db = _mixed_db()
        con = db.connect("HET")
        big, med = ("SELECT min(v) AS m FROM big",
                    "SELECT g, sum(w) AS s FROM med GROUP BY g")
        con.execute(big), con.execute(med)
        f_big = con.submit(big)
        f_med = con.submit(med)
        con.drain()
        # the GPU query finished inside the CPU query's window: both were
        # submitted at the same epoch, and the small GPU-placed query was
        # not delayed behind the long CPU-placed one
        assert f_med.result().elapsed < f_big.result().elapsed
        assert f_med.completion_epoch < f_big.completion_epoch

    def test_second_batch_cannot_schedule_into_the_idle_past(self):
        """Regression: a batch leaves the queues skewed (CPU far ahead
        after a CPU-bound query); a session submitted afterwards starts
        at the pool-wide "now", not at the idle device's old frontier —
        its latency must match serial execution, not report ~0."""
        db = _mixed_db()
        con = db.connect("HET")
        med = "SELECT g, sum(w) AS s FROM med GROUP BY g"
        serial = con.execute(med).elapsed
        con.submit("SELECT min(v) AS m FROM big")   # CPU-heavy batch 1
        con.drain()
        future = con.submit(med)                    # batch 2, GPU-bound
        con.drain()
        assert future.result().elapsed >= 0.5 * serial


class TestFailureCleanup:
    def test_failed_fifo_submit_recycles_intermediates(self):
        """Regression: an OOM mid-plan on a FIFO (single-device) engine
        must not leave the half-executed query's device intermediates in
        the long-lived cached connection's registry."""
        from repro.ocelot.memory import BufferKind, OcelotOOM

        rng = np.random.default_rng(5)
        n = 1 << 15
        db = Database(data_scale=5800.0)            # columns ~ 0.71 GB
        db.create_table("big", {
            "v": rng.integers(0, 1 << 20, n).astype(np.int32),
            "w": rng.integers(0, 1 << 20, n).astype(np.int32),
        })
        con = db.connect("GPU")
        # (v+1) computes fine; (v+1)*w needs three resident columns and
        # overflows the 2 GB card mid-plan
        future = con.submit("SELECT sum((v + 1) * w) AS s FROM big")
        con.drain()
        assert isinstance(future.exception(), OcelotOOM)
        memory = con.backend.engine.memory
        leaked = [e for e in memory.entries() if e.kind is BufferKind.RESULT]
        assert leaked == []
        # and the connection still serves queries afterwards
        ok = con.execute("SELECT sum(v) AS s FROM big")
        assert ok.n_rows == 1
