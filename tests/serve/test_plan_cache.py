"""The plan cache: keys, counters, invalidation, placement replay, and
the per-engine connection reuse it rides on."""

import numpy as np
import pytest

from repro.api import Database
from repro.serve import PlanCache, sql_cache_key

SQL = "SELECT x, sum(y) AS total FROM points GROUP BY x"


@pytest.fixture
def db():
    rng = np.random.default_rng(17)
    database = Database()
    database.create_table("points", {
        "x": rng.integers(0, 16, 5000).astype(np.int32),
        "y": rng.random(5000).astype(np.float32),
    })
    return database


class TestKeying:
    def test_repeat_execute_hits(self, db):
        con = db.connect("CPU")
        first = con.execute(SQL)
        assert con.plan_cache.stats.misses == 1
        assert con.plan_cache.stats.hits == 0
        second = con.execute(SQL)
        assert con.plan_cache.stats.hits == 1
        assert np.allclose(first.column("total"), second.column("total"))
        # the very same compiled program object was reused
        assert first.program is second.program

    def test_key_is_whitespace_insensitive(self, db):
        con = db.connect("CPU")
        con.execute("SELECT sum(y) AS s FROM points")
        con.execute("SELECT   sum(y) AS s\n  FROM points")
        assert con.plan_cache.stats.hits == 1

    def test_string_literals_keep_their_spacing(self):
        assert sql_cache_key("SELECT 'a  b'") != sql_cache_key("SELECT 'a b'")
        assert sql_cache_key("SELECT  1") == sql_cache_key("SELECT 1")

    def test_engines_do_not_share_entries(self, db):
        db.connect("MS").execute(SQL)
        db.connect("CPU").execute(SQL)
        assert db.plan_cache.stats.hits == 0
        assert db.plan_cache.stats.misses == 2

    def test_literal_variants_share_one_template_plan(self, db):
        """The headline parameterisation effect: N literal variations
        of one query shape are N-1 cache hits on a single entry."""
        con = db.connect("MS")
        results = [
            con.execute(f"SELECT sum(y) AS s FROM points WHERE x < {k}")
            for k in range(8)
        ]
        assert len(db.plan_cache) == 1
        assert con.plan_cache.stats.misses == 1
        assert con.plan_cache.stats.hits == 7
        # and the bound plans still see their own literal
        sums = [float(r.column("s")[0]) for r in results]
        assert sums == sorted(sums)
        assert sums[0] == 0.0 and sums[-1] > sums[1]

    def test_lru_eviction_bounds_entries(self, db):
        db.plan_cache.max_entries = 4
        con = db.connect("MS")
        # structurally distinct statements (literal variations would
        # collapse into one parameterised template)
        statements = [
            "SELECT sum(y) AS s FROM points",
            "SELECT sum(x) AS s FROM points",
            "SELECT count(*) AS s FROM points",
            "SELECT min(y) AS s FROM points",
            "SELECT max(y) AS s FROM points",
            "SELECT avg(y) AS s FROM points",
            "SELECT sum(y) AS s FROM points WHERE x < 4",
            "SELECT sum(y) AS s FROM points GROUP BY x",
        ]
        for sql in statements:
            con.execute(sql)
        assert len(db.plan_cache) == 4


class TestInvalidation:
    def test_ddl_bumps_schema_version_and_invalidates(self, db):
        con = db.connect("CPU")
        con.execute(SQL)
        version = db.catalog.version
        db.create_table("other", {"z": np.arange(4, dtype=np.int32)})
        assert db.catalog.version == version + 1
        assert db.plan_cache.stats.invalidations >= 1
        con.execute(SQL)   # recompiled under the new version
        assert db.plan_cache.stats.misses == 2

    def test_ddl_mid_batch_invalidates_without_breaking_in_flight(self, db):
        """DDL landing *mid-submit-batch* invalidates the cache for
        future compiles while the in-flight query — already bound to
        the old plan — still completes correctly."""
        con = db.connect("HET")
        baseline = con.execute(SQL)
        in_flight = con.submit(SQL)
        for _ in range(3):
            assert con.scheduler.step()   # underway, not finished
        misses = db.plan_cache.stats.misses
        db.create_table("other", {"z": np.arange(4, dtype=np.int32)})
        assert db.plan_cache.stats.invalidations >= 1
        after_ddl = con.submit(SQL)       # recompiles (stale entry gone)
        con.drain()
        assert db.plan_cache.stats.misses == misses + 1
        for future in (in_flight, after_ddl):
            assert future.exception() is None
            assert np.allclose(future.result().column("total"),
                               baseline.column("total"))

    def test_recreated_table_serves_fresh_data(self, db):
        con = db.connect("CPU")
        before = con.execute("SELECT sum(x) AS s FROM points").column("s")[0]
        db.drop_table("points")
        db.create_table("points", {
            "x": np.array([100, 200], dtype=np.int32),
            "y": np.array([1.0, 2.0], dtype=np.float32),
        })
        after = con.execute("SELECT sum(x) AS s FROM points").column("s")[0]
        assert after == 300
        assert after != before


class TestPlacementReplay:
    def test_repeat_het_query_replays_placements(self, db):
        con = db.connect("HET")
        first = con.execute(SQL)
        assert con.plan_cache.stats.placement_reuses == 0
        log_first = list(con.backend.decision_log)
        second = con.execute(SQL)
        # every dispatched instruction reused the recorded decision
        assert con.plan_cache.stats.placement_reuses == len(log_first)
        assert con.backend.decision_log == log_first
        assert np.allclose(first.column("total"), second.column("total"))

    def test_replay_survives_a_schema_change_elsewhere(self, db):
        con = db.connect("HET")
        con.execute(SQL)
        db.create_table("extra", {"z": np.arange(4, dtype=np.int32)})
        result = con.execute(SQL)   # fresh compile, fresh placements
        assert result.n_rows == 16


class TestConnectionReuse:
    """Regression: ``Database.execute`` used to build a fresh backend
    (cold device caches, re-probed devices) on every call."""

    def test_two_executes_share_a_backend(self, db):
        db.execute("SELECT sum(y) AS s FROM points", engine="CPU")
        first = db.connect("CPU").backend
        db.execute("SELECT sum(y) AS s FROM points", engine="CPU")
        assert db.connect("CPU").backend is first

    def test_connect_returns_the_cached_connection(self, db):
        assert db.connect("HET") is db.connect("HET")
        assert db.connect("MS") is not db.connect("MP")

    def test_unknown_engine_still_rejected(self, db):
        with pytest.raises(ValueError, match="unknown engine"):
            db.connect("TPU")


class TestPlanCacheUnit:
    def test_invalidate_counts_only_stale_entries(self, db):
        cache = PlanCache(db.catalog, max_entries=8)
        config = db.connect("MS").config
        cache.lookup("SELECT sum(y) AS s FROM points", config, db.schema)
        assert cache.invalidate_schema() == 0
        db.catalog.version += 1
        assert cache.invalidate_schema() == 1
        assert len(cache) == 0
        assert cache.stats.invalidations == 1
