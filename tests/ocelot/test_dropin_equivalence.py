"""Drop-in contract: every Ocelot operator returns the same results as its
MonetDB counterpart — on both device types.

This is the load-bearing guarantee behind the paper's architecture: the
rewriter may swap any supported instruction without changing query
results.
"""

import numpy as np
import pytest

from repro.monetdb import Catalog, MALBuilder, run_program
from repro.monetdb.backends import MonetDBSequential
from repro.ocelot import OcelotBackend, rewrite_for_ocelot

N = 20_000


@pytest.fixture(scope="module")
def catalog():
    rng = np.random.default_rng(77)
    cat = Catalog()
    cat.create_table("t", {
        "a": rng.integers(0, 1000, N).astype(np.int32),
        "b": rng.normal(50, 20, N).astype(np.float32),
        "g": rng.integers(0, 13, N).astype(np.int32),
        "h": rng.integers(0, 5, N).astype(np.int32),
    })
    cat.create_table("dim", {
        "pk": np.arange(0, 1000, 3, dtype=np.int32),
        "payload": np.arange(0, 1000, 3).astype(np.float32) * 2,
    })
    return cat


@pytest.fixture(scope="module")
def engines(catalog):
    return {
        "MS": MonetDBSequential(catalog),
        "CPU": OcelotBackend(catalog, "cpu"),
        "GPU": OcelotBackend(catalog, "gpu"),
    }


def run_all(engines, program):
    results = {}
    for label, backend in engines.items():
        plan = rewrite_for_ocelot(program) if label != "MS" else program
        results[label] = run_program(plan, backend)
    return results


def assert_equivalent(results, float_cols=()):
    base = results["MS"]
    for label in ("CPU", "GPU"):
        other = results[label]
        assert set(base.columns) == set(other.columns)
        for col in base.columns:
            a, b = base.columns[col], other.columns[col]
            assert a.shape == b.shape, f"{label}.{col}: {a.shape} vs {b.shape}"
            if col in float_cols:
                assert np.allclose(
                    a.astype(np.float64), b.astype(np.float64),
                    rtol=1e-5, atol=1e-8,
                ), f"{label}.{col}"
            else:
                assert np.array_equal(a, b), f"{label}.{col}"


def _program(build):
    builder = MALBuilder("case")
    outputs = build(builder)
    return builder.returns(outputs)


class TestSelectionEquivalence:
    def test_range_select_materialised(self, engines):
        program = _program(lambda b: [(
            "oids",
            b.emit("algebra", "select",
                   (b.bind("t", "a"), None, 100, 500, True, False, False)),
        )])
        assert_equivalent(run_all(engines, program))

    def test_anti_and_candidate_chain(self, engines):
        def build(b):
            a = b.bind("t", "a")
            first = b.emit("algebra", "select",
                           (a, None, 0, 700, True, True, False))
            second = b.emit("algebra", "thetaselect", (a, first, 300, ">"))
            anti = b.emit("algebra", "select",
                          (a, second, 400, 500, True, True, True))
            return [("oids", anti)]

        assert_equivalent(run_all(engines, _program(build)))

    def test_union_and_intersect(self, engines):
        def build(b):
            a = b.bind("t", "a")
            low = b.emit("algebra", "thetaselect", (a, None, 50, "<"))
            high = b.emit("algebra", "thetaselect", (a, None, 950, ">="))
            union = b.emit("algebra", "oidunion", (low, high))
            even = b.emit("algebra", "select",
                          (a, None, 0, 999, True, True, False))
            both = b.emit("algebra", "oidintersect", (union, even))
            return [("oids", both)]

        assert_equivalent(run_all(engines, _program(build)))

    def test_count_over_selection(self, engines):
        def build(b):
            a = b.bind("t", "a")
            cand = b.emit("algebra", "thetaselect", (a, None, 500, "<"))
            return [("n", b.emit("aggr", "count", (cand,)))]

        assert_equivalent(run_all(engines, _program(build)))


class TestProjectionJoin:
    def test_projection_through_selection(self, engines):
        def build(b):
            a, v = b.bind("t", "a"), b.bind("t", "b")
            cand = b.emit("algebra", "select",
                          (a, None, 200, 300, True, True, False))
            return [("vals", b.emit("algebra", "projection", (cand, v)))]

        assert_equivalent(run_all(engines, _program(build)),
                          float_cols=("vals",))

    def test_pk_fk_join(self, engines):
        def build(b):
            fk = b.bind("t", "a")
            pk = b.bind("dim", "pk")
            lpos, rpos = b.emit("algebra", "join", (fk, pk), n_results=2)
            payload = b.bind("dim", "payload")
            fetched = b.emit("algebra", "projection", (rpos, payload))
            return [("l", lpos), ("v", fetched)]

        assert_equivalent(run_all(engines, _program(build)),
                          float_cols=("v",))

    def test_n_to_m_join(self, engines):
        def build(b):
            g = b.bind("t", "g")
            h = b.bind("t", "h")
            # duplicate keys on both sides -> general two-step path
            lcand = b.emit("algebra", "thetaselect", (g, None, 3, "<"))
            lvals = b.emit("algebra", "projection", (lcand, g))
            rcand = b.emit("algebra", "thetaselect", (h, None, 2, "<"))
            rvals = b.emit("algebra", "projection", (rcand, h))
            lpos, rpos = b.emit("algebra", "join", (lvals, rvals),
                                n_results=2)
            return [("n", b.emit("aggr", "count", (lpos,)))]

        assert_equivalent(run_all(engines, _program(build)))

    def test_semijoin_antijoin(self, engines):
        def build(b):
            a = b.bind("t", "a")
            pk = b.bind("dim", "pk")
            semi = b.emit("algebra", "semijoin", (a, pk))
            anti = b.emit("algebra", "antijoin", (a, pk))
            return [("s", semi), ("x", anti)]

        assert_equivalent(run_all(engines, _program(build)))

    def test_thetajoin(self, engines):
        def build(b):
            h = b.bind("t", "h")
            cand = b.emit("algebra", "thetaselect", (h, None, 1, "<"))
            small = b.emit("algebra", "projection", (cand, h))
            pk = b.bind("dim", "pk")
            rc = b.emit("algebra", "thetaselect", (pk, None, 30, "<"))
            rsmall = b.emit("algebra", "projection", (rc, pk))
            lpos, rpos = b.emit("algebra", "thetajoin", (small, rsmall, "<"),
                                n_results=2)
            return [("l", lpos), ("r", rpos)]

        assert_equivalent(run_all(engines, _program(build)))


class TestGroupAggregateSort:
    def test_single_group_and_aggregates(self, engines):
        def build(b):
            g, v = b.bind("t", "g"), b.bind("t", "b")
            gids, n = b.emit("group", "group", (g,), n_results=2)
            return [
                ("sums", b.emit("aggr", "subsum", (v, gids, n))),
                ("mins", b.emit("aggr", "submin", (v, gids, n))),
                ("maxs", b.emit("aggr", "submax", (v, gids, n))),
                ("counts", b.emit("aggr", "subcount", (gids, n))),
                ("avgs", b.emit("aggr", "subavg", (v, gids, n))),
            ]

        assert_equivalent(
            run_all(engines, _program(build)),
            float_cols=("sums", "avgs"),
        )

    def test_multi_column_grouping(self, engines):
        def build(b):
            g, h = b.bind("t", "g"), b.bind("t", "h")
            gids, n = b.emit("group", "group", (g,), n_results=2)
            gids2, n2 = b.emit("group", "subgroup", (h, gids, n),
                               n_results=2)
            return [
                ("counts", b.emit("aggr", "subcount", (gids2, n2))),
                ("keys_g", b.emit("aggr", "submin", (g, gids2, n2))),
                ("keys_h", b.emit("aggr", "submin", (h, gids2, n2))),
            ]

        assert_equivalent(run_all(engines, _program(build)))

    def test_scalar_aggregates(self, engines):
        def build(b):
            v = b.bind("t", "b")
            return [
                ("sum", b.emit("aggr", "sum", (v,))),
                ("min", b.emit("aggr", "min", (v,))),
                ("max", b.emit("aggr", "max", (v,))),
                ("avg", b.emit("aggr", "avg", (v,))),
                ("count", b.emit("aggr", "count", (v,))),
            ]

        assert_equivalent(run_all(engines, _program(build)),
                          float_cols=("sum", "avg"))

    @pytest.mark.parametrize("descending", [False, True])
    def test_sort_int_and_float(self, engines, descending):
        def build(b):
            a = b.bind("t", "a")
            out, order = b.emit("algebra", "sort", (a, descending),
                                n_results=2)
            return [("sorted", out), ("order", order)]

        assert_equivalent(run_all(engines, _program(build)))

    def test_sort_aggregate_results_float64(self, engines):
        """ORDER BY revenue: 8-byte keys through the radix sort."""
        def build(b):
            g, v = b.bind("t", "g"), b.bind("t", "b")
            gids, n = b.emit("group", "group", (g,), n_results=2)
            sums = b.emit("aggr", "subsum", (v, gids, n))
            out, order = b.emit("algebra", "sort", (sums, True), n_results=2)
            return [("sorted", out), ("order", order)]

        assert_equivalent(run_all(engines, _program(build)),
                          float_cols=("sorted",))


class TestCalcEquivalence:
    def test_arithmetic_chain(self, engines):
        def build(b):
            v = b.bind("t", "b")
            x = b.emit("batcalc", "mul", (v, 2.0))
            y = b.emit("batcalc", "sub", (1.0, x))
            z = b.emit("batcalc", "add", (y, v))
            return [("z", z)]

        assert_equivalent(run_all(engines, _program(build)),
                          float_cols=("z",))

    def test_case_expression(self, engines):
        def build(b):
            g, v = b.bind("t", "g"), b.bind("t", "b")
            cond = b.emit("batcalc", "eq", (g, 5))
            picked = b.emit("batcalc", "ifthenelse", (cond, v, 0.0))
            return [("p", picked)]

        assert_equivalent(run_all(engines, _program(build)),
                          float_cols=("p",))

    def test_logical_combination(self, engines):
        def build(b):
            g, h = b.bind("t", "g"), b.bind("t", "h")
            c1 = b.emit("batcalc", "ge", (g, 5))
            c2 = b.emit("batcalc", "lt", (h, 3))
            both = b.emit("batcalc", "and", (c1, c2))
            either = b.emit("batcalc", "or", (c1, c2))
            return [("b", both), ("e", either)]

        assert_equivalent(run_all(engines, _program(build)))

    def test_year_extraction(self, engines):
        def build(b):
            a = b.bind("t", "a")
            dates = b.emit("batcalc", "add", (a, 19940000))
            years = b.emit("batcalc", "intdiv", (dates, 10000))
            return [("y", years)]

        assert_equivalent(run_all(engines, _program(build)))

    def test_mirror_and_hashbuild(self, engines):
        def build(b):
            g = b.bind("t", "g")
            oids = b.emit("bat", "mirror", (g,))
            size = b.emit("algebra", "hashbuild", (g,))
            return [("oids", oids), ("m", size)]

        results = run_all(engines, _program(build))
        base = results["MS"]
        for label in ("CPU", "GPU"):
            assert np.array_equal(
                base.columns["oids"], results[label].columns["oids"]
            )
            # table sizes differ by design (1.4x over-allocation vs
            # MonetDB's distinct count); both must be positive
            assert results[label].columns["m"][0] > 0
