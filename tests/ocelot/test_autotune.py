"""The §7 extension: device probing + per-device algorithm selection."""

import numpy as np
import pytest

from repro.monetdb import Catalog, MALBuilder, run_program
from repro.ocelot import OcelotBackend, autotune, probe_device
from repro.ocelot.autotune import (
    DeviceCharacteristics,
    choose_radix_bits,
    estimate_sort_cost,
    radix_feasible,
)
from repro.ocelot.rewriter import rewrite_for_ocelot


@pytest.fixture
def catalog():
    rng = np.random.default_rng(17)
    cat = Catalog()
    cat.create_table("t", {"a": rng.integers(0, 10_000, 30_000)
                           .astype(np.int32)})
    return cat


def _chars(**overrides):
    base = dict(
        device_name="x", stream_gbs=20.0, gather_gbs=5.0,
        launch_overhead_s=1e-3, atomic_contended_ns=10.0,
        atomic_uncontended_ns=2.0, partitions=64,
        local_mem_bytes=256 * 1024, work_group_size=16,
    )
    base.update(overrides)
    return DeviceCharacteristics(**base)


class TestProbe:
    @pytest.mark.parametrize("kind", ["cpu", "gpu"])
    def test_probe_measures_plausible_numbers(self, catalog, kind):
        backend = OcelotBackend(catalog, kind, data_scale=128.0)
        chars = probe_device(backend.engine)
        assert chars.stream_gbs > chars.gather_gbs > 0
        assert chars.launch_overhead_s > 0
        assert chars.atomic_contended_ns > chars.atomic_uncontended_ns

    def test_cpu_contention_penalty_exceeds_gpu(self, catalog):
        cpu = probe_device(OcelotBackend(catalog, "cpu",
                                         data_scale=128.0).engine)
        gpu = probe_device(OcelotBackend(catalog, "gpu",
                                         data_scale=128.0).engine)
        assert cpu.contention_penalty > gpu.contention_penalty
        assert gpu.stream_gbs > cpu.stream_gbs


class TestProbeModule:
    def test_buffer_kind_is_a_normal_top_level_import(self):
        """Regression: ``probe_device`` used to reach BufferKind through a
        triple ``__import__`` hack at every call site; no cycle exists,
        so the module must import it normally (and exactly once)."""
        import importlib
        import inspect

        from repro.ocelot.memory import BufferKind

        module = importlib.import_module("repro.ocelot.autotune")
        assert module.BufferKind is BufferKind
        assert "__import__" not in inspect.getsource(module)

    def test_transfer_probe_measures_the_host_link(self, catalog):
        import math

        cpu = probe_device(OcelotBackend(catalog, "cpu",
                                         data_scale=128.0).engine)
        gpu = probe_device(OcelotBackend(catalog, "gpu",
                                         data_scale=128.0).engine)
        # the CPU maps buffers (zero-copy): no per-byte cost
        assert not math.isfinite(cpu.transfer_gbs)
        # the GPU sits behind PCIe 2.0 x16 (~5.6 GB/s effective)
        assert math.isfinite(gpu.transfer_gbs)
        assert 3.0 < gpu.transfer_gbs < 8.0
        assert gpu.transfer_latency_s > 0
        assert gpu.global_mem_bytes > 0
        # atomic interpolation stays within the probed bracket
        for chars in (cpu, gpu):
            mid = chars.atomic_ns(256)
            lo = min(chars.atomic_contended_ns, chars.atomic_uncontended_ns)
            hi = max(chars.atomic_contended_ns, chars.atomic_uncontended_ns)
            assert lo <= mid <= hi


class TestRadixChoice:
    def test_feasibility_from_local_memory(self):
        roomy = _chars()  # 16 KB per item
        assert radix_feasible(roomy, 8)
        assert not radix_feasible(roomy, 16)
        tight = _chars(local_mem_bytes=48 * 1024, work_group_size=192)
        assert radix_feasible(tight, 4)
        assert not radix_feasible(tight, 8)

    def test_infeasible_width_costs_infinity(self):
        tight = _chars(local_mem_bytes=48 * 1024, work_group_size=192)
        assert estimate_sort_cost(tight, 8) == float("inf")

    def test_paper_choices_recovered(self, catalog):
        """§5.2.7: radix 8 on the CPU, radix 4 on the GPU — derived from
        probes, not hard-coded."""
        cpu = OcelotBackend(catalog, "cpu", data_scale=128.0)
        gpu = OcelotBackend(catalog, "gpu", data_scale=128.0)
        assert autotune(cpu.engine).radix_bits == 8
        assert autotune(gpu.engine).radix_bits == 4
        assert cpu.engine.radix_bits == 8
        assert gpu.engine.radix_bits == 4

    def test_no_feasible_width_raises(self):
        hopeless = _chars(local_mem_bytes=8, work_group_size=16)
        with pytest.raises(ValueError):
            choose_radix_bits(hopeless)

    def test_fewer_passes_win_when_launches_dominate(self):
        slow_launch = _chars(launch_overhead_s=50e-3)
        fast_launch = _chars(launch_overhead_s=1e-6, partitions=4096)
        assert choose_radix_bits(slow_launch) >= \
            choose_radix_bits(fast_launch)


class TestTunedEngineStillCorrect:
    @pytest.mark.parametrize("kind", ["cpu", "gpu"])
    def test_sort_after_autotune(self, catalog, kind):
        backend = OcelotBackend(catalog, kind)
        autotune(backend.engine)
        builder = MALBuilder("q")
        a = builder.bind("t", "a")
        out, order = builder.emit("algebra", "sort", (a, False), n_results=2)
        program = rewrite_for_ocelot(builder.returns([("s", out)]))
        result = run_program(program, backend)
        values = catalog.bat("t", "a").values
        assert np.array_equal(result.columns["s"], np.sort(values))


class TestSortedGroupVariant:
    """The second §4.1.6 strategy: boundary detection on sorted input."""

    @pytest.mark.parametrize("kind", ["cpu", "gpu"])
    def test_sorted_path_matches_hash_path(self, catalog, kind):
        backend = OcelotBackend(catalog, kind)
        builder = MALBuilder("q")
        a = builder.bind("t", "a")
        sorted_col, order = builder.emit("algebra", "sort", (a, False),
                                         n_results=2)
        gids, n = builder.emit("group", "group", (sorted_col,), n_results=2)
        counts = builder.emit("aggr", "subcount", (gids, n))
        keys = builder.emit("aggr", "submin", (sorted_col, gids, n))
        program = builder.returns([("k", keys), ("c", counts)])

        from repro.monetdb import MonetDBSequential

        expected = run_program(program, MonetDBSequential(catalog))
        got = run_program(rewrite_for_ocelot(program), backend)
        assert np.array_equal(expected.columns["k"], got.columns["k"])
        assert np.array_equal(expected.columns["c"], got.columns["c"])

    def test_sorted_path_cheaper_than_hashing(self, catalog):
        backend = OcelotBackend(catalog, "gpu")

        def group_time(pre_sorted: bool):
            builder = MALBuilder("q")
            a = builder.bind("t", "a")
            if pre_sorted:
                col, _ = builder.emit("algebra", "sort", (a, False),
                                      n_results=2)
            else:
                col = a
            gids, n = builder.emit("group", "group", (col,), n_results=2)
            program = rewrite_for_ocelot(builder.returns([("n", n)]))
            run_program(program, backend)
            result = run_program(program, backend)
            # isolate the group op cost: subtract nothing, compare totals
            return result.elapsed

        # even paying for the sort, the boundary path's group op is so
        # much cheaper that the hash-group advantage shrinks drastically;
        # compare the *group* cost directly via engine stats instead:
        from repro.bench.harness import BenchContext  # noqa: F401

        # simpler assertion: sorted grouping launches far fewer kernels
        builder = MALBuilder("q")
        a = builder.bind("t", "a")
        gids, n = builder.emit("group", "group", (a,), n_results=2)
        hash_plan = rewrite_for_ocelot(builder.returns([("n", n)]))
        backend2 = OcelotBackend(catalog, "gpu")
        before = backend2.engine.queue.stats.kernels_launched
        run_program(hash_plan, backend2)
        hash_kernels = backend2.engine.queue.stats.kernels_launched - before

        builder = MALBuilder("q")
        a = builder.bind("t", "a")
        col, _ = builder.emit("algebra", "sort", (a, False), n_results=2)
        gids, n = builder.emit("group", "group", (col,), n_results=2)
        sorted_plan = rewrite_for_ocelot(builder.returns([("n", n)]))
        backend3 = OcelotBackend(catalog, "gpu")
        before = backend3.engine.queue.stats.kernels_launched
        run_program(sorted_plan, backend3)
        total_kernels = backend3.engine.queue.stats.kernels_launched - before
        # encode + iota + 8 passes x 3 kernels + gather
        sort_kernels = 2 + 3 * 8 + 1
        assert total_kernels - sort_kernels < hash_kernels
