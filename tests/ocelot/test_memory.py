"""The Memory Manager: caching, LRU eviction, offloading, pinning (§3.3)."""

import numpy as np
import pytest

from repro import cl
from repro.monetdb import Catalog, make_bat
from repro.ocelot.memory import BufferKind, MemoryManager, OcelotOOM


def make_manager(capacity_bytes: int, data_scale: float = 1.0):
    catalog = Catalog()
    ctx = cl.Context(
        cl.NVIDIA_GTX460.with_memory(capacity_bytes), data_scale=data_scale
    )
    queue = cl.CommandQueue(ctx)
    return MemoryManager(ctx, queue, catalog), catalog


class TestRegistry:
    def test_upload_then_cache_hit(self):
        mm, _ = make_manager(4096)
        bat = make_bat(np.arange(16, dtype=np.int32))
        first = mm.buffer_for_bat(bat)
        assert np.array_equal(first.array, bat.values)
        assert mm.stats.cache_misses == 1
        second = mm.buffer_for_bat(bat)
        assert second is first
        assert mm.stats.cache_hits == 1
        assert mm.queue.stats.transfers_to_device == 1  # only once

    def test_link_result_transfers_ownership(self):
        mm, _ = make_manager(4096)
        buffer = mm.allocate(16, np.int32, BufferKind.RESULT, tag="r")
        bat = make_bat(np.zeros(16, np.int32))
        mm.link_result(bat, buffer)
        assert bat.device_ref is buffer
        from repro.monetdb import Owner

        assert bat.owner is Owner.OCELOT

    def test_sync_to_host(self):
        mm, _ = make_manager(4096)
        buffer = mm.allocate(8, np.int32, BufferKind.RESULT)
        buffer.array[:] = 7
        bat = make_bat(np.zeros(8, np.int32))
        mm.link_result(bat, buffer)
        host = mm.sync_to_host(bat, buffer)
        assert np.all(host == 7)
        assert bat.has_host_values
        # device copy stays cached for later Ocelot reuse
        assert bat.device_ref is buffer and not buffer.released


class TestEvictionPolicy:
    def test_base_evicted_before_results_offloaded(self):
        mm, _ = make_manager(1000)
        base = make_bat(np.zeros(100, np.uint8))
        mm.buffer_for_bat(base)                   # 100 bytes BASE
        mm.allocate(100, np.uint8, BufferKind.RESULT, tag="res")
        # force pressure: base should be *evicted* (dropped), not offloaded
        mm.allocate(850, np.uint8, BufferKind.RESULT, tag="big")
        assert mm.stats.evictions == 1
        assert mm.stats.offloads == 0

    def test_aux_offloaded_before_results(self):
        mm, _ = make_manager(1000)
        mm.allocate(400, np.uint8, BufferKind.AUX, tag="hash")
        result = mm.allocate(400, np.uint8, BufferKind.RESULT, tag="res")
        mm.allocate(500, np.uint8, BufferKind.RESULT, tag="big")
        assert mm.stats.offloads == 1
        assert not result.released  # the result survived

    def test_lru_order_among_bases(self):
        mm, _ = make_manager(1000)
        old = make_bat(np.zeros(300, np.uint8), tag="old")
        new = make_bat(np.zeros(300, np.uint8), tag="new")
        mm.buffer_for_bat(old)
        new_buf = mm.buffer_for_bat(new)
        mm.buffer_for_bat(new)  # touch: 'new' is more recent
        mm.allocate(500, np.uint8, BufferKind.RESULT)
        assert not new_buf.released  # LRU evicted 'old'

    def test_offloaded_result_restored_on_demand(self):
        mm, _ = make_manager(1000, data_scale=1.0)
        buffer = mm.allocate(400, np.uint8, BufferKind.RESULT, tag="r")
        buffer.array[:] = 9
        bat = make_bat(np.zeros(400, np.uint8))
        mm.link_result(bat, buffer)
        mm.allocate(700, np.uint8, BufferKind.RESULT, tag="big")
        assert buffer.released  # offloaded
        assert mm.stats.offloads == 1
        # free room, then request the BAT again -> restored with contents
        for entry in list(mm.entries()):
            if entry.tag == "big":
                mm.release(entry.buffer)
        restored = mm.buffer_for_bat(bat)
        assert np.all(restored.array == 9)
        assert mm.stats.restores == 1

    def test_evicted_base_reuploaded(self):
        mm, _ = make_manager(1000)
        base = make_bat(np.full(400, 5, np.uint8))
        mm.buffer_for_bat(base)
        mm.allocate(900, np.uint8, BufferKind.RESULT, tag="big")
        again = mm.buffer_for_bat(base)
        assert np.all(again.array == 5)
        assert mm.queue.stats.transfers_to_device >= 2

    def test_oom_when_nothing_evictable(self):
        mm, _ = make_manager(100)
        with pytest.raises(OcelotOOM):
            mm.allocate(200, np.uint8, BufferKind.RESULT)


class TestPinning:
    def test_pinned_buffers_never_evicted(self):
        mm, _ = make_manager(1000)
        precious = mm.allocate(400, np.uint8, BufferKind.RESULT, tag="p")
        mm.pin(precious)
        with pytest.raises(OcelotOOM):
            mm.allocate(700, np.uint8, BufferKind.RESULT)
        assert not precious.released
        mm.unpin(precious)
        mm.allocate(700, np.uint8, BufferKind.RESULT)
        assert precious.released or mm.stats.offloads == 1

    def test_pinned_context_manager(self):
        mm, _ = make_manager(1000)
        buffer = mm.allocate(100, np.uint8, BufferKind.RESULT)
        with mm.pinned(buffer):
            entry = mm._entry_for_buffer(buffer)
            assert entry.pins == 1
        assert entry.pins == 0

    def test_unbalanced_unpin_raises(self):
        mm, _ = make_manager(1000)
        buffer = mm.allocate(16, np.uint8, BufferKind.RESULT)
        with pytest.raises(RuntimeError):
            mm.unpin(buffer)

    def test_operator_scope_pins_touched_buffers(self):
        mm, _ = make_manager(1000)
        base = make_bat(np.zeros(300, np.uint8))
        with mm.operator_scope():
            held = mm.buffer_for_bat(base)
            # allocation pressure must not evict the in-use base buffer
            with pytest.raises(OcelotOOM):
                mm.allocate(900, np.uint8, BufferKind.RESULT)
            assert not held.released
        # outside the scope the base is evictable again
        mm.allocate(900, np.uint8, BufferKind.RESULT)
        assert held.released


class TestBugfixSweep:
    """Regressions for the memory-manager audit that preceded the
    heterogeneous scheduler (each failed on the code it fixed)."""

    def test_evict_detaches_stale_device_ref(self):
        mm, _ = make_manager(1000)
        buffer = mm.allocate(300, np.uint8, BufferKind.BASE, tag="linked")
        bat = make_bat(np.zeros(300, np.uint8))
        mm.link_result(bat, buffer)
        # pressure evicts the BASE copy; the BAT's direct reference must
        # not keep dangling on the released buffer
        mm.allocate(900, np.uint8, BufferKind.RESULT, tag="big")
        assert mm.stats.evictions == 1
        assert buffer.released
        assert bat.device_ref is None

    def test_offload_detaches_and_restore_relinks_device_ref(self):
        mm, _ = make_manager(1000)
        buffer = mm.allocate(400, np.uint8, BufferKind.RESULT, tag="res")
        buffer.array[:] = 5
        bat = make_bat(np.zeros(400, np.uint8))
        mm.link_result(bat, buffer)
        mm.allocate(700, np.uint8, BufferKind.RESULT, tag="big")
        assert mm.stats.offloads == 1 and buffer.released
        # while offloaded the ref stays readable metadata (see Buffer)
        assert bat.device_ref is buffer
        for entry in list(mm.entries()):
            if entry.tag == "big":
                mm.release(entry.buffer)
        restored = mm.buffer_for_bat(bat)
        assert np.all(restored.array == 5)
        # ... and the direct link comes back with the restore
        assert bat.device_ref is restored

    def test_release_of_pinned_buffer_defers_the_free(self):
        mm, _ = make_manager(1000)
        buffer = mm.allocate(100, np.uint8, BufferKind.RESULT, tag="shared")
        mm.pin(buffer)            # a concurrent operator's working set
        mm.release(buffer)        # the producer drops its interest
        assert not buffer.released  # still pinned: must survive
        mm.unpin(buffer)
        assert buffer.released      # deferred free ran at the last unpin
        assert mm._entry_for_buffer(buffer) is None

    def test_release_inside_foreign_scope_keeps_outer_working_set(self):
        """An inner operator releasing a buffer an outer scope still has
        pinned must not corrupt the outer operator's working set."""
        mm, _ = make_manager(1000)
        bat = make_bat(np.zeros(64, np.uint8))
        with mm.operator_scope():
            held = mm.buffer_for_bat(bat)
            with mm.operator_scope():
                mm.release(held)       # inner scope holds no pin on it
            assert not held.released   # outer scope still uses it
            np.copyto(held.array, 7)   # ... and may still touch it
        assert held.released           # freed once the outer scope ended

    def test_release_of_own_scope_pin_frees_immediately(self):
        mm, _ = make_manager(1000)
        with mm.operator_scope():
            temp = mm.allocate(100, np.uint8, BufferKind.AUX, tag="t")
            mm.release(temp)       # the operator's own mid-flight free
            assert temp.released   # room is reclaimed immediately

    def test_scope_exit_does_not_mask_operator_exception(self):
        mm, _ = make_manager(1000)
        bat = make_bat(np.zeros(64, np.uint8))
        with pytest.raises(ValueError, match="operator failed"):
            with mm.operator_scope():
                held = mm.buffer_for_bat(bat)
                mm.unpin(held)     # operator unbalances its own pins ...
                raise ValueError("operator failed")   # ... then dies

    def test_scope_exit_still_surfaces_imbalance(self):
        mm, _ = make_manager(1000)
        bat = make_bat(np.zeros(64, np.uint8))
        with pytest.raises(RuntimeError, match="unbalanced"):
            with mm.operator_scope():
                held = mm.buffer_for_bat(bat)
                mm.unpin(held)

    def test_base_reupload_is_not_counted_as_restore(self):
        mm, _ = make_manager(1000)
        base = make_bat(np.full(400, 3, np.uint8))
        mm.buffer_for_bat(base)
        mm.allocate(900, np.uint8, BufferKind.RESULT, tag="big")
        assert mm.stats.evictions == 1
        mm.buffer_for_bat(base)    # re-upload of the host master
        assert mm.stats.restores == 0
        assert mm.stats.restores <= mm.stats.offloads


class TestCallbacks:
    def test_bat_delete_drops_buffers(self):
        mm, catalog = make_manager(4096)
        catalog.create_table("t", {"a": np.zeros(16, np.int32)})
        bat = catalog.bat("t", "a")
        buffer = mm.buffer_for_bat(bat)
        catalog.drop_table("t")
        assert buffer.released
        # next request is a fresh upload
        assert mm.buffer_for_bat(bat) is not buffer

    def test_hash_table_cache(self):
        mm, _ = make_manager(4096)
        tk = mm.allocate(64, np.uint32, BufferKind.AUX)
        table = {"tkeys": tk, "m": 64}
        mm.cache_hash_table((1, "join"), table)
        assert mm.cached_hash_table((1, "join")) is table
        assert mm.stats.hash_cache_hits == 1
        assert mm.cached_hash_table((2, "join")) is None
        # released buffers invalidate the entry
        mm.release(tk)
        assert mm.cached_hash_table((1, "join")) is None

    def test_recycle_releases_aux_annotations(self):
        mm, catalog = make_manager(4096)
        bat = make_bat(np.zeros(16, np.int32))
        aux = mm.allocate(32, np.uint8, BufferKind.RESULT)
        bat.aux["oid_view"] = aux
        catalog.notify_recycled(bat)
        assert aux.released
        assert bat.aux == {}
