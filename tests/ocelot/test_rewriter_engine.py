"""The query rewriter and mixed Ocelot/MonetDB execution (§3.1, §3.4)."""

import numpy as np
import pytest

from repro.monetdb import Catalog, MALBuilder, Owner, run_program
from repro.monetdb.mal import Var
from repro.ocelot import (
    OCELOT_MAP,
    OcelotBackend,
    count_syncs,
    rewrite_for_ocelot,
)


@pytest.fixture
def catalog():
    rng = np.random.default_rng(5)
    cat = Catalog()
    cat.create_table("t", {
        "a": rng.integers(0, 100, 5000).astype(np.int32),
        "b": rng.normal(0, 1, 5000).astype(np.float32),
    })
    return cat


def test_supported_ops_rerouted():
    builder = MALBuilder("q")
    a = builder.bind("t", "a")
    cand = builder.emit("algebra", "select", (a, None, 1, 2, True, True,
                                              False))
    program = builder.returns([("n", builder.emit("aggr", "count", (cand,)))])
    rewritten = rewrite_for_ocelot(program)
    modules = [ins.module for ins in rewritten.instructions]
    assert modules == ["sql", "ocelot", "ocelot"]


def test_sync_before_result_columns():
    builder = MALBuilder("q")
    a = builder.bind("t", "a")
    cand = builder.emit("algebra", "select", (a, None, 1, 2, True, True,
                                              False))
    program = builder.returns([("oids", cand)])
    rewritten = rewrite_for_ocelot(program)
    assert count_syncs(rewritten) == 1
    assert rewritten.instructions[-1].op == "ocelot.sync"
    # the result column references the synced variable
    assert rewritten.result_columns[0][1].name.endswith("_s")


def test_sync_before_foreign_operator():
    builder = MALBuilder("q")
    a = builder.bind("t", "a")
    cand = builder.emit("algebra", "select", (a, None, 1, 50, True, True,
                                              False))
    vals = builder.emit("algebra", "projection", (cand, a))
    top = builder.emit("algebra", "firstn", (vals, 5, True))  # MonetDB-only
    out = builder.emit("algebra", "projection", (top, vals))
    program = builder.returns([("v", out)])
    rewritten = rewrite_for_ocelot(program)
    ops = [ins.op for ins in rewritten.instructions]
    firstn_at = ops.index("algebra.firstn")
    assert "ocelot.sync" in ops[:firstn_at]
    # projection after firstn runs on Ocelot again
    assert ops[firstn_at + 1] == "ocelot.projection"


def test_scalar_results_not_synced():
    builder = MALBuilder("q")
    a = builder.bind("t", "a")
    total = builder.emit("aggr", "sum", (a,))
    program = builder.returns([("s", total)])
    rewritten = rewrite_for_ocelot(program)
    assert count_syncs(rewritten) == 0


def test_rename_propagates_to_later_uses():
    builder = MALBuilder("q")
    a = builder.bind("t", "a")
    cand = builder.emit("algebra", "select", (a, None, 1, 50, True, True,
                                              False))
    top = builder.emit("algebra", "firstn", (cand, 3, True))
    # 'cand' used again after the foreign op: must use the synced name
    count = builder.emit("aggr", "count", (cand,))
    program = builder.returns([("n", count), ("t", top)])
    rewritten = rewrite_for_ocelot(program)
    assert count_syncs(rewritten) == 1  # synced once, reused
    count_ins = [
        i for i in rewritten.instructions if i.op == "ocelot.count"
    ][0]
    assert isinstance(count_ins.args[0], Var)
    assert count_ins.args[0].name.endswith("_s")


def test_map_covers_all_host_code():
    from repro.ocelot.operators import HOST_CODE

    mapped = {fn for fn, _kinds in OCELOT_MAP.values()}
    # sync is inserted (not mapped) and fused pipes are rerouted via the
    # fuse-module special case; everything else must be reachable
    assert mapped == set(HOST_CODE) - {"sync", "pipe"}


class TestMixedExecution:
    def test_foreign_op_runs_on_fallback(self, catalog):
        builder = MALBuilder("q")
        a = builder.bind("t", "a")
        cand = builder.emit("algebra", "select", (a, None, 0, 50, True, True,
                                                  False))
        vals = builder.emit("algebra", "projection", (cand, a))
        top = builder.emit("algebra", "firstn", (vals, 10, True))
        out = builder.emit("algebra", "projection", (top, vals))
        program = builder.returns([("v", out)])

        from repro.monetdb.backends import MonetDBSequential

        expected = run_program(program, MonetDBSequential(catalog))
        backend = OcelotBackend(catalog, "cpu")
        got = run_program(rewrite_for_ocelot(program), backend)
        assert np.array_equal(expected.columns["v"], got.columns["v"])
        # the foreign op's time landed on the host timeline
        assert got.elapsed > 0

    def test_sync_returns_ownership(self, catalog):
        builder = MALBuilder("q")
        a = builder.bind("t", "a")
        cand = builder.emit("algebra", "select", (a, None, 0, 50, True,
                                                  True, False))
        program = builder.returns([("oids", cand)])
        backend = OcelotBackend(catalog, "gpu")
        result = run_program(rewrite_for_ocelot(program), backend)
        synced = result.env[result.program.result_columns[0][1].name]
        assert synced.owner is Owner.MONETDB
        assert synced.has_host_values

    def test_unsynced_result_refused(self, catalog):
        from repro.monetdb.mal import MALInstruction, MALProgram

        builder = MALBuilder("q")
        a = builder.bind("t", "a")
        cand = builder.emit("ocelot", "select", (a, None, 0, 50, True,
                                                 True, False))
        program = builder.returns([("oids", cand)])  # no sync: rewriter bug
        backend = OcelotBackend(catalog, "cpu")
        with pytest.raises(RuntimeError, match="sync"):
            run_program(program, backend)

    def test_framework_overhead_charged_on_cpu(self, catalog):
        builder = MALBuilder("q")
        a = builder.bind("t", "a")
        program = builder.returns([("n", builder.emit("aggr", "count", (a,)))])
        cpu = OcelotBackend(catalog, "cpu")
        gpu = OcelotBackend(catalog, "gpu")
        t_cpu = run_program(program, cpu).elapsed
        t_gpu = run_program(program, gpu).elapsed
        overhead = cpu.engine.device.profile.framework_overhead_s
        assert overhead > 0
        assert t_cpu >= overhead
        assert t_gpu < overhead / 10

    def test_device_oom_propagates(self, catalog):
        from repro import cl
        from repro.ocelot.memory import OcelotOOM

        tiny = cl.get_device("gpu", global_mem_bytes=1024)
        backend = OcelotBackend(catalog, tiny)
        builder = MALBuilder("q")
        a = builder.bind("t", "a")
        out, order = builder.emit("algebra", "sort", (a, False), n_results=2)
        program = builder.returns([("n", builder.emit("aggr", "count",
                                                      (order,)))])
        with pytest.raises(OcelotOOM):
            run_program(rewrite_for_ocelot(program), backend)

    def test_hash_table_cache_across_queries(self, catalog):
        """§5.2.6: join tables of base columns survive between queries."""
        builder = MALBuilder("q")
        fk = builder.bind("t", "a")
        pk = builder.bind("t", "a")
        lpos, rpos = builder.emit("algebra", "join", (fk, pk), n_results=2)
        program = builder.returns(
            [("n", builder.emit("aggr", "count", (lpos,)))]
        )
        backend = OcelotBackend(catalog, "gpu")
        plan = rewrite_for_ocelot(program)
        first = run_program(plan, backend)
        second = run_program(plan, backend)
        assert backend.engine.memory.stats.hash_cache_hits >= 1
        assert second.elapsed < first.elapsed
