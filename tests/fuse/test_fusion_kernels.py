"""Generated fused kernels: cache reuse, dtypes, launch/buffer savings."""

import numpy as np
import pytest

import repro
from repro.fuse import (
    KERNEL_CACHE,
    FConst,
    FIn,
    FOp,
    FusedOutput,
    FusedPipe,
    evaluate,
    node_dtype,
)
from repro.monetdb.calc import calc_result_dtype
from repro.monetdb.mal import Var

SQL = "SELECT a * (1 - b) AS x, a * (1 - b) * (1 + b) AS y FROM t"


@pytest.fixture(autouse=True)
def _fusion_on(monkeypatch):
    """These tests assert *fused* behaviour — pin the global gate on so
    they keep meaning even under the CI job's REPRO_FUSION=off run."""
    monkeypatch.setenv("REPRO_FUSION", "on")


@pytest.fixture
def db():
    rng = np.random.default_rng(11)
    database = repro.Database()
    database.create_table("t", {
        "a": (rng.random(512) * 10).astype(np.float32),
        "b": rng.random(512).astype(np.float32),
        "k": rng.integers(0, 50, 512).astype(np.int32),
    })
    return database


class TestExpressionTrees:
    def test_dtype_inference_matches_unfused_rules(self):
        expr = FOp("mul", (FIn(0), FOp("sub", (FConst(1), FIn(1)))))
        inner = calc_result_dtype(
            np.min_scalar_type(1), np.dtype(np.float32), "sub"
        )
        assert node_dtype(expr, [np.dtype(np.float32),
                                 np.dtype(np.float32)]) == \
            calc_result_dtype(np.dtype(np.float32), inner, "mul")
        compare = FOp("gt", (FIn(0), FIn(1)))
        assert node_dtype(compare, [np.dtype(np.int32)] * 2) == np.uint8

    def test_evaluate_memoises_shared_subexpressions(self):
        shared = FOp("sub", (FConst(1), FIn(0)))
        a = np.array([0.25, 0.5], np.float32)
        memo = {}
        first = evaluate(shared, [a], memo)
        again = evaluate(FOp("mul", (shared, shared)), [a], memo)
        assert evaluate(shared, [a], memo) is first
        np.testing.assert_allclose(again, (1 - a) * (1 - a), rtol=1e-6)

    def test_structural_key_distinguishes_constants(self):
        one = FusedPipe(
            outputs=(FusedOutput(
                "X_1", FOp("mul", (FIn(0), FConst(2)))), ),
            inputs=(Var("X_0"),),
        )
        two = FusedPipe(
            outputs=(FusedOutput(
                "X_1", FOp("mul", (FIn(0), FConst(3)))), ),
            inputs=(Var("X_0"),),
        )
        assert one.structural_key() != two.structural_key()
        assert one.kernel_name() != two.kernel_name()


class TestKernelCache:
    def test_repeated_shape_reuses_the_compiled_kernel(self, db):
        KERNEL_CACHE.clear()
        con = db.connect("CPU")
        con.execute(SQL)
        assert KERNEL_CACHE.stats.misses == 1
        hits = KERNEL_CACHE.stats.hits
        con.execute(SQL)          # cached plan, cached kernel
        assert KERNEL_CACHE.stats.hits > hits
        assert KERNEL_CACHE.stats.misses == 1

    def test_same_shape_shared_across_devices(self, db):
        KERNEL_CACHE.clear()
        db.connect("CPU").execute(SQL)
        assert KERNEL_CACHE.stats.misses == 1
        hits = KERNEL_CACHE.stats.hits
        db.connect("GPU").execute(SQL)
        # one generated definition, installed into both device programs
        assert KERNEL_CACHE.stats.misses == 1
        assert KERNEL_CACHE.stats.hits > hits


class TestSingePassExecution:
    def test_chain_launches_one_kernel_instead_of_n(self, db):
        fused = db.connect("CPU")
        plain = db.connect("CPU:fusion=off")

        def launches(con):
            before = con.backend.engine.queue.stats.kernels_launched
            con.execute(SQL)
            return con.backend.engine.queue.stats.kernels_launched - before

        n_fused, n_plain = launches(fused), launches(plain)
        assert n_fused == 1
        assert n_plain == 6       # sub, mul, sub, mul, add, mul
        np.testing.assert_allclose(
            fused.execute(SQL).column("y"),
            plain.execute(SQL).column("y"),
            rtol=1e-6,
        )

    def test_fusion_allocates_fewer_intermediate_buffers(self, db):
        fused = db.connect("CPU")
        plain = db.connect("CPU:fusion=off")

        def allocations(con):
            stats = con.backend.engine.memory.stats
            before = stats.intermediates_allocated
            con.execute(SQL)
            return stats.intermediates_allocated - before

        n_fused, n_plain = allocations(fused), allocations(plain)
        assert n_plain == 6       # one result buffer per chain link
        assert n_fused == 2       # only the two live outputs
        assert n_fused < n_plain

    def test_fused_selection_matches_unfused_positions(self, db):
        sql = ("SELECT sum(a) AS s FROM t "
               "WHERE a * (1 - b) > b * (1 + b)")
        for engine in ("CPU", "MS", "HET"):
            fused = db.connect(engine).execute(sql)
            plain = db.connect(f"{engine}:fusion=off").execute(sql)
            np.testing.assert_allclose(
                fused.column("s"), plain.column("s"), rtol=1e-6,
                err_msg=engine,
            )

    def test_grouped_chain_matches_on_shard(self, db):
        sql = ("SELECT k, sum(a * (1 - b)) AS disc FROM t "
               "GROUP BY k")
        fused = db.connect("SHARD:2xMS").execute(sql)
        plain = db.connect("SHARD:2xMS,fusion=off").execute(sql)
        np.testing.assert_allclose(
            fused.column("disc"), plain.column("disc"), rtol=1e-6
        )
        np.testing.assert_array_equal(
            fused.column("k"), plain.column("k")
        )


class TestMemoryManagerCounters:
    def test_scratch_counts_as_allocated_and_freed(self, db):
        """The satellite fix: buffers allocated and freed within one
        operator scope are now observable in the stats."""
        con = db.connect("CPU:fusion=off")
        stats = con.backend.engine.memory.stats
        con.execute("SELECT sum(a) AS s FROM t WHERE b < 0.5")
        # the selection + aggregation pipeline allocates scratch
        # (bitmap counts, reduction partials) and frees it in-scope
        assert stats.intermediates_allocated > 0
        assert stats.intermediates_freed > 0
        assert stats.intermediates_freed <= stats.intermediates_allocated
