"""Fusion A/B safety net: the whole TPC-H workload returns identical
results with fusion on and off, on every engine family the issue names
(MS, CPU, HET, SHARD).  Run with ``REPRO_FUSION=off`` in the CI A/B job
the same suite exercises the non-fused path end to end."""

import numpy as np
import pytest

import repro
from repro.tpch import WORKLOAD

ENGINES = ("MS", "CPU", "HET", "SHARD:2xMS")


@pytest.fixture(scope="module")
def db():
    return repro.tpch_database(sf=0.25)


def _assert_equal(fused, plain, context):
    assert set(fused.columns) == set(plain.columns), context
    for column in fused.columns:
        a = fused.columns[column]
        b = plain.columns[column]
        assert a.shape == b.shape, (context, column)
        if a.dtype.kind == "f" or b.dtype.kind == "f":
            np.testing.assert_allclose(
                a.astype(np.float64), b.astype(np.float64),
                rtol=1e-4, atol=1e-6, err_msg=f"{context}:{column}",
            )
        else:
            np.testing.assert_array_equal(
                a, b, err_msg=f"{context}:{column}"
            )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("query_id", list(WORKLOAD))
def test_fusion_on_off_results_identical(db, engine, query_id):
    fused = db.connect(engine).execute(
        WORKLOAD[query_id], name=query_id
    )
    plain = db.connect(f"{engine},fusion=off"
                       if ":" in engine else f"{engine}:fusion=off"
                       ).execute(WORKLOAD[query_id], name=query_id)
    _assert_equal(fused, plain, f"{engine}/{query_id}")
