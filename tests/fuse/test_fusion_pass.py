"""The fusion pass: region finding, safety rules, idempotence, gating."""

import numpy as np
import pytest

import repro
from repro.fuse import FusedPipe, count_pipes, fuse_program
from repro.monetdb.mal import MALBuilder, Var
from repro.tpch import WORKLOAD, compile_query


def _chain_program():
    """The Q1 batcalc chain: ``ep*(1-d)`` and ``ep*(1-d)*(1+t)``."""
    b = MALBuilder("chain")
    ep = b.bind("lineitem", "l_extendedprice")
    d = b.bind("lineitem", "l_discount")
    t = b.bind("lineitem", "l_tax")
    one_minus = b.emit("batcalc", "sub", (1, d))
    disc = b.emit("batcalc", "mul", (ep, one_minus))
    one_plus = b.emit("batcalc", "add", (1, t))
    charge = b.emit("batcalc", "mul", (disc, one_plus))
    return b.returns([("disc", disc), ("charge", charge)])


class TestRegionFinding:
    def test_chain_collapses_to_one_pipe(self):
        fused = fuse_program(_chain_program())
        assert count_pipes(fused) == 1
        pipe = next(i for i in fused.instructions if i.op == "fuse.pipe")
        # live outputs only: the two result columns, not the two
        # intermediates (1-d and 1+t vanish into the single pass)
        assert len(pipe.results) == 2
        spec = pipe.args[0]
        assert isinstance(spec, FusedPipe)
        assert {o.name for o in spec.outputs} == {
            v.name for v in pipe.results
        }
        # four instructions became one: the launch count collapses
        assert len(fused.instructions) == len(_chain_program()) - 3

    def test_externally_consumed_intermediate_stays_materialised(self):
        b = MALBuilder("leaky")
        a = b.bind("t", "a")
        c = b.bind("t", "b")
        inner = b.emit("batcalc", "sub", (1, c))
        outer = b.emit("batcalc", "mul", (a, inner))
        total = b.emit("aggr", "sum", (inner,))   # external consumer
        program = b.returns([("y", outer), ("s", total)])
        fused = fuse_program(program)
        pipe = next(i for i in fused.instructions if i.op == "fuse.pipe")
        # the externally-consumed value is a live output of the pipe —
        # it is never eliminated, and aggr.sum still sees it
        assert inner in pipe.results
        assert outer in pipe.results

    def test_select_consuming_calc_result_joins_the_region(self):
        b = MALBuilder("residual")
        x = b.bind("t", "a")
        y = b.bind("t", "b")
        mask = b.emit("batcalc", "gt", (x, y))
        positions = b.emit(
            "algebra", "thetaselect", (mask, None, 0, "!=")
        )
        program = b.returns([("pos", positions)])
        fused = fuse_program(program)
        assert count_pipes(fused) == 1
        pipe = next(i for i in fused.instructions if i.op == "fuse.pipe")
        spec = pipe.args[0]
        assert len(spec.outputs) == 1 and spec.outputs[0].is_select

    def test_candidate_constrained_select_stays_unfused(self):
        b = MALBuilder("cand")
        x = b.bind("t", "a")
        y = b.bind("t", "b")
        cand = b.emit("algebra", "thetaselect", (x, None, 3, "<"))
        mask = b.emit("batcalc", "gt", (x, y))
        kept = b.emit(
            "algebra", "thetaselect", (mask, cand, 0, "!=")
        )
        program = b.returns([("pos", kept)])
        fused = fuse_program(program)
        assert count_pipes(fused) == 0

    def test_scalar_valued_variables_never_fuse(self):
        b = MALBuilder("scalar")
        x = b.bind("t", "a")
        total = b.emit("aggr", "sum", (x,))       # scalar at runtime
        scaled = b.emit("batcalc", "mul", (x, total))
        doubled = b.emit("batcalc", "add", (scaled, scaled))
        program = b.returns([("y", doubled)])
        fused = fuse_program(program)
        # scaled consumes a scalar var -> unfusable; doubled alone is a
        # one-instruction region, below the fusion threshold
        assert count_pipes(fused) == 0

    def test_disconnected_chains_get_separate_pipes(self):
        """Chains sharing no variables may live in different row spaces
        (a lineitem predicate vs. an ngroups-wide HAVING filter) and
        must not share a single-pass kernel."""
        b = MALBuilder("spaces")
        x = b.bind("t", "a")
        y = b.bind("t", "b")
        u = b.bind("other", "c")
        v = b.bind("other", "d")
        m1 = b.emit("batcalc", "gt", (x, y))
        s1 = b.emit("algebra", "thetaselect", (m1, None, 0, "!="))
        m2 = b.emit("batcalc", "lt", (u, v))
        s2 = b.emit("algebra", "thetaselect", (m2, None, 0, "!="))
        program = b.returns([("p1", s1), ("p2", s2)])
        fused = fuse_program(program)
        assert count_pipes(fused) == 2

    def test_single_instruction_regions_stay_unfused(self):
        b = MALBuilder("single")
        x = b.bind("t", "a")
        y = b.emit("batcalc", "mul", (x, 2))
        program = b.returns([("y", y)])
        fused = fuse_program(program)
        assert count_pipes(fused) == 0
        assert fused.format() == program.format()


class TestIdempotence:
    def test_pass_is_idempotent_on_the_chain(self):
        once = fuse_program(_chain_program())
        twice = fuse_program(once)
        assert twice.format() == once.format()

    @pytest.mark.parametrize("query_id", list(WORKLOAD))
    def test_pass_is_idempotent_on_tpch(self, query_id):
        once = fuse_program(compile_query(query_id))
        twice = fuse_program(once)
        assert twice.format() == once.format()

    def test_tpch_fuses_somewhere(self):
        fused_anywhere = sum(
            count_pipes(fuse_program(compile_query(q))) for q in WORKLOAD
        )
        assert fused_anywhere >= 5    # Q1's chains alone give two


class TestGating:
    @pytest.fixture(autouse=True)
    def _fusion_on(self, monkeypatch):
        """Pin the global gate on: the flag/explain tests compare a
        fused engine against an unfused one and stay meaningful under
        the CI job's REPRO_FUSION=off run."""
        monkeypatch.setenv("REPRO_FUSION", "on")

    @pytest.fixture
    def db(self):
        rng = np.random.default_rng(3)
        database = repro.Database()
        database.create_table("t", {
            "a": rng.random(256).astype(np.float32),
            "b": rng.random(256).astype(np.float32),
        })
        return database

    SQL = "SELECT a * (1 - b) AS x, a * (1 - b) * (1 + b) AS y FROM t"

    def test_fusion_off_spec_flag(self, db):
        fused = db.connect("CPU").explain(self.SQL)
        plain = db.connect("CPU:fusion=off").explain(self.SQL)
        assert "ocelot.pipe" in fused
        assert "ocelot.pipe" not in plain
        a = db.connect("CPU").execute(self.SQL)
        b = db.connect("CPU:fusion=off").execute(self.SQL)
        for col in ("x", "y"):
            np.testing.assert_allclose(
                a.column(col), b.column(col), rtol=1e-6
            )

    def test_explain_renders_inlined_expression_tree(self, db):
        text = db.connect("CPU").explain(self.SQL)
        # the fused instruction shows the expression tree, not an
        # opaque opcode: operands and operators appear inline
        assert "ocelot.pipe({" in text
        assert "* (1 - " in text

    def test_explain_no_fuse_comparison_path(self, db):
        con = db.connect("CPU")
        fused = con.explain(self.SQL)
        plain = con.explain(self.SQL, no_fuse=True)
        assert "pipe" in fused and "pipe" not in plain
        assert fused != plain
        # both plans stay cached side by side
        assert con.explain(self.SQL) == fused
        assert con.explain(self.SQL, no_fuse=True) == plain

    def test_env_variable_disables_fusion(self, db, monkeypatch):
        con = db.connect("CPU")
        fused = con.explain(self.SQL)
        monkeypatch.setenv("REPRO_FUSION", "off")
        plain = con.explain(self.SQL)
        assert "pipe" in fused and "pipe" not in plain
        result = con.execute(self.SQL)
        monkeypatch.delenv("REPRO_FUSION")
        np.testing.assert_allclose(
            result.column("x"),
            con.execute(self.SQL).column("x"),
            rtol=1e-6,
        )

    def test_fusion_off_canonicalises_into_the_spec(self, db):
        con = db.connect("cpu:FUSION=OFF")
        assert con.engine == "CPU:fusion=off"
        assert db.connect("CPU:fusion=off") is con
