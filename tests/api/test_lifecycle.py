"""Connection/Database lifecycle: close(), context managers, helpful
connect errors, and plan-cache routing of explain()/Database.execute."""

import numpy as np
import pytest

import repro
from repro.engines import EngineSpecError


@pytest.fixture
def db():
    rng = np.random.default_rng(11)
    database = repro.Database()
    database.create_table("points", {
        "x": rng.integers(0, 4, 2000).astype(np.int32),
        "y": rng.random(2000).astype(np.float32),
    })
    return database


SQL = "SELECT x, sum(y) AS s FROM points GROUP BY x"


class TestClose:
    def test_close_is_idempotent_and_rejects_use(self, db):
        con = db.connect("CPU")
        con.execute(SQL)
        con.close()
        con.close()
        assert con.closed
        with pytest.raises(RuntimeError, match="closed"):
            con.execute(SQL)

    def test_close_releases_device_buffers(self, db):
        con = db.connect("CPU")
        con.execute(SQL)
        manager = con.backend.engine.memory
        assert len(list(manager.entries())) > 0
        con.close()
        assert len(list(manager.entries())) == 0

    def test_close_releases_het_pool(self, db):
        con = db.connect("HET")
        con.execute(SQL)
        managers = [e.memory for e in con.backend.pool.engines]
        con.close()
        for manager in managers:
            assert len(list(manager.entries())) == 0

    def test_close_drains_pending_sessions(self, db):
        con = db.connect("HET")
        future = con.submit(SQL)
        con.close()
        assert future.done()
        assert future.result().n_rows == 4

    def test_reconnect_after_close_opens_fresh_backend(self, db):
        con = db.connect("CPU")
        old_backend = con.backend
        con.close()
        fresh = db.connect("CPU")
        assert fresh is not con
        assert fresh.backend is not old_backend
        fresh.execute(SQL)

    def test_closed_connection_callbacks_unsubscribed(self, db):
        before = len(db.catalog._delete_callbacks)
        con = db.connect("CPU")
        con.execute(SQL)
        con.close()
        assert len(db.catalog._delete_callbacks) == before

    def test_shard_close_releases_children(self, db):
        con = db.connect("SHARD:2xCPU")
        con.execute(SQL)
        managers = [c.engine.memory for c in con.backend.children]
        con.close()
        for manager in managers:
            assert len(list(manager.entries())) == 0


class TestContextManagers:
    def test_connection_context_manager(self, db):
        with db.connect("MS") as con:
            result = con.execute(SQL)
            assert result.n_rows == 4
        assert con.closed

    def test_database_context_manager_closes_connections(self, db):
        with db:
            con = db.connect("CPU")
            con.execute(SQL)
        assert con.closed
        assert db._connections == {}


class TestConnectErrors:
    def test_unknown_engine_lists_registered_specs(self, db):
        with pytest.raises(EngineSpecError) as excinfo:
            db.connect("TPU")
        message = str(excinfo.value)
        assert "registered engines" in message
        for fragment in ("MS", "HET", "SHARD:<N>x<CHILD>"):
            assert fragment in message


class TestPlanCacheRouting:
    def test_explain_goes_through_plan_cache(self, db):
        con = db.connect("CPU")
        plan_text = con.explain(SQL)
        assert con.plan_cache.stats.misses == 1
        assert "function user.query" in plan_text
        con.execute(SQL)               # same compiled plan: a cache hit
        assert con.plan_cache.stats.misses == 1
        assert con.plan_cache.stats.hits == 1
        assert con.explain(SQL) == plan_text
        assert con.plan_cache.stats.hits == 2

    def test_database_execute_forwards_name(self, db):
        result = db.execute(SQL, engine="MS", name="grouped")
        assert result.program.name == "grouped"
        # same statement under the default name is a distinct cache key
        db.execute(SQL, engine="MS")
        assert db.plan_cache.stats.misses == 2
