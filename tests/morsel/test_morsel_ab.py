"""Morsel A/B safety net: TPC-H returns identical results with the
morsel pass on and off.  A fast subset runs in every tier-1 pass; the
full 14-query x six-family matrix is the slow sweep (and the CI
``morsel-off`` job runs the whole correctness suite with
``REPRO_MORSEL=off``, exercising the whole-column path end to end)."""

import numpy as np
import pytest

import repro
from repro.tpch import WORKLOAD

FAMILIES = ("MS", "MP", "CPU", "GPU", "HET", "SHARD:2xMS")

FAST_ENGINES = ("MS", "CPU", "SHARD:2xMS")
FAST_QUERIES = ("Q1", "Q3", "Q6")


@pytest.fixture(autouse=True)
def _morsel_gate_neutral(monkeypatch):
    """The A/B picks its switch per spec; neutralise the global gate so
    the on-side stays morselized under the CI REPRO_MORSEL=off run."""
    monkeypatch.delenv("REPRO_MORSEL", raising=False)


@pytest.fixture(scope="module")
def db():
    return repro.tpch_database(sf=0.2)


def _with_param(engine: str, param: str) -> str:
    return f"{engine},{param}" if ":" in engine else f"{engine}:{param}"


def _assert_equal(on, off, context):
    assert set(on.columns) == set(off.columns), context
    for column in on.columns:
        a, b = on.columns[column], off.columns[column]
        assert a.shape == b.shape, (context, column)
        if a.dtype.kind == "f" or b.dtype.kind == "f":
            np.testing.assert_allclose(
                a.astype(np.float64), b.astype(np.float64),
                rtol=1e-4, atol=1e-6, err_msg=f"{context}:{column}",
            )
        else:
            np.testing.assert_array_equal(
                a, b, err_msg=f"{context}:{column}"
            )


def _run_pair(db, engine, query_id):
    on = db.connect(_with_param(engine, "morsel=1000")).execute(
        WORKLOAD[query_id], name=query_id
    )
    off = db.connect(_with_param(engine, "morsel=off")).execute(
        WORKLOAD[query_id], name=query_id
    )
    _assert_equal(on, off, f"{engine}/{query_id}")


@pytest.mark.parametrize("engine", FAST_ENGINES)
@pytest.mark.parametrize("query_id", FAST_QUERIES)
def test_morsel_on_off_fast_subset(db, engine, query_id):
    _run_pair(db, engine, query_id)


@pytest.mark.slow
@pytest.mark.parametrize("engine", FAMILIES)
@pytest.mark.parametrize("query_id", list(WORKLOAD))
def test_morsel_on_off_full_matrix(db, engine, query_id):
    _run_pair(db, engine, query_id)
