"""Morsel boundary edge cases, plus the memory-behaviour guarantees:
liveness release on the whole-column path and the Q1 peak-intermediate
reduction the morsel executor exists to deliver."""

import numpy as np
import pytest

import repro
from repro.tpch import WORKLOAD

SQL = (
    "SELECT k, sum(v) AS total, count(*) AS n "
    "FROM t WHERE v > 0 GROUP BY k ORDER BY k"
)


@pytest.fixture(autouse=True)
def _morsel_gate_neutral(monkeypatch):
    """These tests pick the switch per spec (``morsel=<rows>`` vs
    ``morsel=off``): neutralise the global gate so they compare what
    they mean to — also under the CI job's REPRO_MORSEL=off run."""
    monkeypatch.delenv("REPRO_MORSEL", raising=False)


def _make_db(n_rows: int) -> repro.Database:
    rng = np.random.default_rng(n_rows + 1)
    db = repro.Database()
    db.create_table("t", {
        "k": (rng.integers(0, 5, n_rows).astype(np.int32)
              if n_rows else np.empty(0, dtype=np.int32)),
        "v": (rng.integers(-3, 100, n_rows).astype(np.int32)
              if n_rows else np.empty(0, dtype=np.int32)),
    })
    return db


def _assert_equal(a, b, context):
    assert set(a.columns) == set(b.columns), context
    for column in a.columns:
        x, y = a.columns[column], b.columns[column]
        assert x.shape == y.shape, (context, column)
        if x.dtype.kind == "f" or y.dtype.kind == "f":
            np.testing.assert_allclose(
                x.astype(np.float64), y.astype(np.float64),
                rtol=1e-4, atol=1e-6, err_msg=f"{context}:{column}",
            )
        else:
            np.testing.assert_array_equal(
                x, y, err_msg=f"{context}:{column}"
            )


class TestBoundaries:
    """Every way a fixed-size grid can disagree with a table."""

    CASES = [
        (0, 64),      # empty table: zero morsels
        (1, 64),      # single row, morsel far larger
        (7, 64),      # morsel > table: exactly one short morsel
        (100, 10),    # dividing evenly
        (100, 7),     # non-dividing: a short tail morsel
        (100, 1),     # single-row morsels
        (100, 99),    # one full morsel plus a one-row tail
        (100, 100),   # morsel == table
    ]

    @pytest.mark.parametrize("engine", ("MS", "CPU"))
    @pytest.mark.parametrize("n_rows,size", CASES)
    def test_grid_vs_table_shapes(self, engine, n_rows, size):
        db = _make_db(n_rows)
        on = db.connect(f"{engine}:morsel={size}").execute(SQL)
        off = db.connect(f"{engine}:morsel=off").execute(SQL)
        _assert_equal(on, off, f"{engine}/{n_rows}rows/{size}")
        db.close()

    @pytest.mark.parametrize("n_rows,size", [(0, 8), (5, 2), (16, 16)])
    def test_grid_vs_table_shapes_sharded(self, n_rows, size):
        db = _make_db(n_rows)
        on = db.connect(f"SHARD:2xCPU,morsel={size}").execute(SQL)
        off = db.connect("SHARD:2xCPU,morsel=off").execute(SQL)
        _assert_equal(on, off, f"SHARD/{n_rows}rows/{size}")
        db.close()


class TestLivenessRelease:
    """The interpreter releases a variable at its last static use —
    on the whole-column path too, not only inside morsel regions."""

    def test_whole_column_path_frees_mid_query(self):
        from repro.monetdb.interpreter import ProgramRun

        db = repro.tpch_database(sf=0.1)
        con = db.connect("CPU:morsel=off")
        plan = con.plan_cache.lookup(
            WORKLOAD["Q1"], con.config, db.schema, name="Q1"
        ).program
        stats = con.backend.engine.memory.stats
        con.backend.begin()
        run = ProgramRun(plan, con.backend)
        freed_mid_query = False
        while run.step():
            if stats.intermediates_freed > 0:
                freed_mid_query = True   # released before end of query
        assert freed_mid_query
        run.collect(con.backend.elapsed())
        assert stats.intermediates_allocated > 0
        db.close()
        # everything handed out came back once the connection closed
        assert stats.intermediate_bytes == 0
        assert stats.intermediates_freed == stats.intermediates_allocated

    def test_morsel_path_frees_everything_too(self):
        db = repro.tpch_database(sf=0.1)
        con = db.connect("CPU:morsel=2048")
        con.execute(WORKLOAD["Q1"])
        stats = con.backend.engine.memory.stats
        assert stats.intermediates_freed > 0
        db.close()
        assert stats.intermediates_freed == stats.intermediates_allocated
        assert stats.intermediate_bytes == 0


class TestPeakIntermediates:
    def test_q1_peak_drops_at_least_3x(self):
        """The acceptance criterion: morsel-driven Q1 peaks at least 3x
        below the whole-column run (measured in nominal intermediate
        bytes on the CPU device)."""

        def peak(spec):
            db = repro.tpch_database(sf=0.5)
            con = db.connect(spec)
            result = con.execute(WORKLOAD["Q1"])
            value = con.backend.engine.memory.stats.intermediate_bytes_peak
            db.close()
            return value, result

        off_peak, off_result = peak("CPU:morsel=off")
        on_peak, on_result = peak("CPU:morsel=4096")
        assert on_peak > 0
        assert off_peak / on_peak >= 3.0
        _assert_equal(on_result, off_result, "Q1 peak run")
