"""The morsel pass: region finding, safety rules, idempotence, gating,
explain rendering and plan-cache separation."""

import numpy as np
import pytest

import repro
from repro.engines import EngineSpecError
from repro.fuse import fuse_program
from repro.monetdb.mal import MALBuilder
from repro.morsel import (
    DEFAULT_MORSEL_SIZE,
    MorselRegion,
    count_regions,
    morselize_program,
)
from repro.tpch import WORKLOAD, compile_query


def _q6_like_program():
    """bind -> thetaselect -> projection -> aggr.sum: one pipeline."""
    b = MALBuilder("q6like")
    qty = b.bind("lineitem", "l_quantity")
    price = b.bind("lineitem", "l_extendedprice")
    kept = b.emit("algebra", "thetaselect", (qty, None, 24, "<"))
    picked = b.emit("algebra", "projection", (kept, price))
    total = b.emit("aggr", "sum", (picked,))
    return b.returns([("revenue", total)])


class TestRegionFinding:
    def test_pipeline_collapses_to_one_region(self):
        out = morselize_program(_q6_like_program(), size=1024)
        assert count_regions(out) == 1
        run = next(i for i in out.instructions if i.op == "morsel.run")
        spec = run.args[0]
        assert isinstance(spec, MorselRegion)
        assert spec.table == "lineitem"
        assert spec.size == 1024
        assert len(spec.members) == 3
        # the only escaping definition is the scalar aggregate
        assert [o.kind for o in spec.outputs] == ["scalar"]
        assert spec.outputs[0].fn == "sum"

    def test_escaping_positions_stay_in_drive_space(self):
        b = MALBuilder("escape")
        qty = b.bind("lineitem", "l_quantity")
        kept = b.emit("algebra", "thetaselect", (qty, None, 24, "<"))
        program = b.returns([("pos", kept)])
        out = morselize_program(program, size=1024, min_region=1)
        assert count_regions(out) == 1
        spec = next(
            i for i in out.instructions if i.op == "morsel.run"
        ).args[0]
        assert spec.outputs[0].kind == "positions"
        assert spec.outputs[0].name in spec.drive_positions

    def test_small_components_stay_in_place(self):
        b = MALBuilder("tiny")
        qty = b.bind("lineitem", "l_quantity")
        kept = b.emit("algebra", "thetaselect", (qty, None, 24, "<"))
        program = b.returns([("pos", kept)])
        out = morselize_program(program, size=1024)   # MIN_REGION = 2
        assert count_regions(out) == 0
        assert out.format() == program.format()

    def test_two_table_pipelines_get_separate_regions(self):
        b = MALBuilder("two")
        qty = b.bind("lineitem", "l_quantity")
        k1 = b.emit("algebra", "thetaselect", (qty, None, 24, "<"))
        p1 = b.emit("algebra", "projection", (k1, qty))
        s1 = b.emit("aggr", "sum", (p1,))
        size = b.bind("part", "p_size")
        k2 = b.emit("algebra", "thetaselect", (size, None, 10, ">"))
        p2 = b.emit("algebra", "projection", (k2, size))
        s2 = b.emit("aggr", "sum", (p2,))
        program = b.returns([("a", s1), ("b", s2)])
        out = morselize_program(program, size=1024)
        assert count_regions(out) == 2
        tables = {
            i.args[0].table
            for i in out.instructions if i.op == "morsel.run"
        }
        assert tables == {"lineitem", "part"}

    def test_group_and_grouped_aggregates_join_the_region(self):
        """Q1's whole pre-sort pipeline — select, projections, group,
        subgroup, grouped aggregates — must become one region (the
        in-region-grouping path: gids never materialise)."""
        plan = morselize_program(
            fuse_program(compile_query("Q1")), size=4096
        )
        assert count_regions(plan) >= 1
        specs = [
            i.args[0] for i in plan.instructions if i.op == "morsel.run"
        ]
        big = max(specs, key=lambda s: len(s.members))
        fns = {m.function for m in big.members}
        assert {"group", "subgroup", "subsum", "subavg"} <= fns
        # every escaping def of that region is a grouped-aggregate fold
        assert {o.kind for o in big.outputs} == {"gagg"}

    def test_tpch_morselizes_somewhere(self):
        total = sum(
            count_regions(
                morselize_program(fuse_program(compile_query(q)))
            )
            for q in WORKLOAD
        )
        assert total >= len(WORKLOAD)   # at least one region per query


class TestIdempotence:
    @pytest.mark.parametrize("query_id", list(WORKLOAD))
    def test_pass_is_idempotent_on_tpch(self, query_id):
        once = morselize_program(fuse_program(compile_query(query_id)))
        twice = morselize_program(once)
        assert twice.format() == once.format()


class TestGating:
    @pytest.fixture(autouse=True)
    def _morsel_on(self, monkeypatch):
        """Pin the global gate on (and unsized): the flag/explain tests
        compare a morselized engine against a whole-column one and stay
        meaningful under the CI job's REPRO_MORSEL=off run."""
        monkeypatch.delenv("REPRO_MORSEL", raising=False)

    @pytest.fixture
    def db(self):
        rng = np.random.default_rng(7)
        database = repro.Database()
        database.create_table("t", {
            "a": rng.random(256).astype(np.float32),
            "b": rng.random(256).astype(np.float32),
        })
        return database

    SQL = "SELECT sum(a * (1 - b)) AS s FROM t WHERE a > 0.25"

    def test_morsel_off_spec_flag(self, db):
        on = db.connect("CPU:morsel=64").explain(self.SQL)
        off = db.connect("CPU:morsel=off").explain(self.SQL)
        assert "morsel.run" in on
        assert "morsel.run" not in off
        a = db.connect("CPU:morsel=64").execute(self.SQL)
        b = db.connect("CPU:morsel=off").execute(self.SQL)
        np.testing.assert_allclose(
            a.column("s"), b.column("s"), rtol=1e-6
        )

    def test_explain_renders_region_boundaries(self, db):
        text = db.connect("CPU:morsel=64").explain(self.SQL)
        # the region spec renders inline: drive, size, member chain
        assert "region<t, 64 rows/morsel" in text
        assert "out:" in text

    def test_explain_no_morsel_comparison_path(self, db):
        con = db.connect("CPU:morsel=64")
        on = con.explain(self.SQL)
        off = con.explain(self.SQL, no_morsel=True)
        assert "morsel.run" in on and "morsel.run" not in off
        assert on != off
        # both plans stay cached side by side
        assert con.explain(self.SQL) == on
        assert con.explain(self.SQL, no_morsel=True) == off

    def test_env_variable_disables_morsels(self, db, monkeypatch):
        con = db.connect("CPU:morsel=64")
        on = con.explain(self.SQL)
        monkeypatch.setenv("REPRO_MORSEL", "off")
        off = con.explain(self.SQL)
        assert "morsel.run" in on and "morsel.run" not in off
        result = con.execute(self.SQL)
        monkeypatch.delenv("REPRO_MORSEL")
        np.testing.assert_allclose(
            result.column("s"),
            con.execute(self.SQL).column("s"),
            rtol=1e-6,
        )

    def test_env_variable_overrides_the_size(self, db, monkeypatch):
        con = db.connect("CPU:morsel=64")
        assert "64 rows/morsel" in con.explain(self.SQL)
        monkeypatch.setenv("REPRO_MORSEL", "32")
        assert "32 rows/morsel" in con.explain(self.SQL)

    def test_default_size_without_parameters(self, db):
        text = db.connect("CPU").explain(
            "SELECT sum(a) AS s FROM t WHERE b > 0.5"
        )
        assert f"{DEFAULT_MORSEL_SIZE} rows/morsel" in text

    def test_morsel_param_canonicalises_into_the_spec(self, db):
        con = db.connect("cpu:MORSEL=OFF")
        assert con.engine == "CPU:morsel=off"
        assert db.connect("CPU:morsel=off") is con
        assert db.connect("cpu:morsel=128").engine == "CPU:morsel=128"

    def test_malformed_morsel_value_is_rejected(self, db):
        with pytest.raises(EngineSpecError):
            db.connect("CPU:morsel=sideways")
        with pytest.raises(EngineSpecError):
            db.connect("CPU:morsel=0,morsel=64")


class TestPlanCacheSeparation:
    """A plan compiled under one morsel setting is never served under
    another: the cache key carries the effective switch and size."""

    @pytest.fixture
    def db(self):
        rng = np.random.default_rng(11)
        database = repro.Database()
        database.create_table("t", {
            "a": rng.random(128).astype(np.float32),
        })
        return database

    SQL = "SELECT sum(a) AS s FROM t WHERE a > 0.5"

    def test_env_flip_is_a_miss_not_a_hit(self, db, monkeypatch):
        monkeypatch.delenv("REPRO_MORSEL", raising=False)
        con = db.connect("CPU:morsel=64")
        con.execute(self.SQL)
        misses = con.plan_cache.stats.misses
        con.execute(self.SQL)
        assert con.plan_cache.stats.misses == misses   # repeat: a hit
        monkeypatch.setenv("REPRO_MORSEL", "off")
        assert "morsel.run" not in con.explain(self.SQL)
        assert con.plan_cache.stats.misses == misses + 1

    def test_size_retune_recompiles(self, db, monkeypatch):
        monkeypatch.delenv("REPRO_MORSEL", raising=False)
        con = db.connect("CPU:morsel=64")
        con.execute(self.SQL)
        misses = con.plan_cache.stats.misses
        monkeypatch.setenv("REPRO_MORSEL", "32")
        assert "32 rows/morsel" in con.explain(self.SQL)
        assert con.plan_cache.stats.misses == misses + 1

    def test_spec_instances_never_share_plans(self, db, monkeypatch):
        monkeypatch.delenv("REPRO_MORSEL", raising=False)
        on = db.connect("CPU:morsel=64")
        off = db.connect("CPU:morsel=off")
        assert on is not off
        a = on.execute(self.SQL)
        b = off.execute(self.SQL)
        np.testing.assert_allclose(
            a.column("s"), b.column("s"), rtol=1e-6
        )
        assert "morsel.run" in on.explain(self.SQL)
        assert "morsel.run" not in off.explain(self.SQL)
