"""Contexts, buffers, allocation accounting and the event registry."""

import numpy as np
import pytest

from repro import cl


@pytest.fixture
def ctx():
    return cl.Context(cl.NVIDIA_GTX460.with_memory(1024), data_scale=1.0)


class TestAllocation:
    def test_accounting(self, ctx):
        buf = ctx.create_buffer(np.zeros(64, np.uint8), tag="a")
        assert ctx.allocated_nominal == 64
        assert ctx.available == 1024 - 64
        buf.release()
        assert ctx.allocated_nominal == 0

    def test_out_of_memory(self, ctx):
        ctx.create_buffer(np.zeros(1000, np.uint8))
        with pytest.raises(cl.OutOfDeviceMemory) as err:
            ctx.create_buffer(np.zeros(100, np.uint8))
        assert err.value.requested == 100
        assert err.value.available == 24

    def test_nominal_scaling(self):
        scaled = cl.Context(cl.NVIDIA_GTX460.with_memory(1000), data_scale=10)
        scaled.create_buffer(np.zeros(50, np.uint8))
        assert scaled.allocated_nominal == 500
        with pytest.raises(cl.OutOfDeviceMemory):
            scaled.create_buffer(np.zeros(51, np.uint8))

    def test_peak_tracking(self, ctx):
        a = ctx.create_buffer(np.zeros(500, np.uint8))
        a.release()
        ctx.create_buffer(np.zeros(100, np.uint8))
        assert ctx.peak_nominal == 500

    def test_release_idempotent(self, ctx):
        buf = ctx.create_buffer(np.zeros(8, np.uint8))
        buf.release()
        buf.release()
        assert ctx.allocated_nominal == 0

    def test_released_buffer_raises_on_access(self, ctx):
        buf = ctx.create_buffer(np.zeros(8, np.uint8))
        buf.release()
        with pytest.raises(cl.DeviceLost):
            _ = buf.array

    def test_context_release_frees_everything(self, ctx):
        ctx.create_buffer(np.zeros(8, np.uint8))
        ctx.create_buffer(np.zeros(8, np.uint8))
        ctx.release()
        assert ctx.allocated_nominal == 0
        with pytest.raises(cl.DeviceLost):
            ctx.create_buffer(np.zeros(8, np.uint8))

    def test_bad_data_scale(self):
        with pytest.raises(ValueError):
            cl.Context(cl.NVIDIA_GTX460, data_scale=0)

    def test_zeros_and_empty(self, ctx):
        z = ctx.zeros(16, np.uint32)
        assert z.array.sum() == 0
        e = ctx.empty(16, np.float32)
        assert e.size == 16 and e.dtype == np.float32


class TestEventRegistry:
    """The per-buffer producer/consumer registry (paper §3.4)."""

    def test_write_then_read_dependency(self, ctx):
        queue = cl.CommandQueue(ctx)
        buf = ctx.empty(16, np.int32)
        write = queue.enqueue_write(buf, np.arange(16, dtype=np.int32))
        assert buf.producer_events == [write]
        host, read = queue.enqueue_read(buf)
        assert read.t_start >= write.t_end
        assert np.array_equal(host, np.arange(16, dtype=np.int32))
        assert read in buf.consumer_events

    def test_new_producer_supersedes_registry(self, ctx):
        queue = cl.CommandQueue(ctx)
        buf = ctx.empty(16, np.int32)
        first = queue.enqueue_write(buf, np.zeros(16, np.int32))
        _, read = queue.enqueue_read(buf)
        second = queue.enqueue_write(buf, np.ones(16, np.int32))
        assert buf.producer_events == [second]
        assert buf.consumer_events == []
        # write-after-read: second write waited for the read
        assert second.t_start >= read.t_end
        assert first.event_id != second.event_id

    def test_last_activity(self, ctx):
        queue = cl.CommandQueue(ctx)
        buf = ctx.empty(16, np.int32)
        assert buf.last_activity() == 0.0
        event = queue.enqueue_write(buf, np.zeros(16, np.int32))
        assert buf.last_activity() == event.t_end
