"""The work-item reference interpreter, cross-validated against the
vectorised driver — the hardware-oblivious contract: one kernel text,
two execution drivers, identical results."""

import numpy as np
import pytest

from repro import cl
from repro.cl.workitem import run_reference
from repro.kernels import KERNEL_LIBRARY, count_bits
from repro.kernels.hashing import EMPTY


@pytest.fixture(params=["cpu", "gpu"])
def device(request):
    return cl.get_device(request.param)


def _run_both(name, make_args, device, global_size=16, local_size=8,
              defines=None):
    """Run ref and vec drivers on independent buffers; return both arg
    lists for comparison."""
    from repro.cl.kernel import ExecContext
    from repro.cl.compiler import default_defines

    definition = KERNEL_LIBRARY[name]
    merged = {**default_defines(device.device_type), **(defines or {})}
    ref_args = make_args()
    run_reference(definition, ref_args, global_size, local_size,
                  defines=merged, device=device)
    vec_args = make_args()
    ctx = ExecContext(device=device, defines=merged,
                      global_size=global_size, local_size=local_size)
    values = [a for a in vec_args]
    definition.vec_fn(ctx, *values)
    return ref_args, vec_args


class TestAccessPatterns:
    def test_chunk_covers_input_disjointly(self):
        wi_ranges = []
        for gid in range(4):
            from repro.cl.workitem import WorkItem

            wi = WorkItem(gid, gid, 0, 4, 4, {})
            wi_ranges.append(list(wi.chunk(10)))
        flat = sorted(x for r in wi_ranges for x in r)
        assert flat == list(range(10))

    def test_strided_covers_input_disjointly(self):
        from repro.cl.workitem import WorkItem

        elements = []
        for gid in range(4):
            wi = WorkItem(gid, gid, 0, 4, 4, {})
            elements += list(wi.strided(10))
        assert sorted(elements) == list(range(10))

    def test_partition_selected_by_define(self):
        from repro.cl.workitem import WorkItem

        coalesced = WorkItem(1, 1, 0, 4, 4, {"ACCESS_PATTERN": "coalesced"})
        sequential = WorkItem(1, 1, 0, 4, 4, {"ACCESS_PATTERN": "sequential"})
        assert list(coalesced.partition(8)) == [1, 5]
        assert list(sequential.partition(8)) == [2, 3]


class TestRefVsVec:
    def test_gather(self, device):
        rng = np.random.default_rng(1)
        src = rng.integers(0, 100, 64).astype(np.int32)
        idx = rng.integers(0, 64, 40).astype(np.uint32)

        def make():
            return [np.zeros(40, np.int32), src.copy(), idx.copy(), 40]

        ref, vec = _run_both("gather", make, device)
        assert np.array_equal(ref[0], vec[0])
        assert np.array_equal(ref[0], src[idx])

    def test_select_bitmap(self, device):
        rng = np.random.default_rng(2)
        col = rng.integers(0, 50, 77).astype(np.int32)
        nbytes = (77 + 7) // 8

        def make():
            return [np.zeros(nbytes, np.uint8), col.copy(), 77, "[)", 10,
                    30, False]

        ref, vec = _run_both("select_bitmap", make, device)
        assert np.array_equal(ref[0], vec[0])
        assert count_bits(vec[0], 77) == int(((col >= 10) & (col < 30)).sum())

    def test_prefix_sum_single_group(self, device):
        data = np.arange(1, 17, dtype=np.uint32)

        def make():
            return [np.zeros(16, np.uint32), data.copy(), 16]

        # Hillis-Steele reference needs one work-group spanning the input
        ref, vec = _run_both("prefix_sum", make, device,
                             global_size=16, local_size=16)
        expected = np.concatenate(([0], np.cumsum(data)[:-1]))
        assert np.array_equal(ref[0], expected)
        assert np.array_equal(vec[0], expected)

    def test_bitmap_binop_and_not(self, device):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 256, 16).astype(np.uint8)
        b = rng.integers(0, 256, 16).astype(np.uint8)

        def make_and():
            return [np.zeros(16, np.uint8), a.copy(), b.copy(), 16, "and"]

        ref, vec = _run_both("bitmap_binop", make_and, device)
        assert np.array_equal(ref[0], vec[0])
        assert np.array_equal(vec[0], a & b)

        def make_not():
            return [np.zeros(16, np.uint8), a.copy(), 125, 16]

        ref, vec = _run_both("bitmap_not", make_not, device)
        assert np.array_equal(ref[0], vec[0])

    def test_radix_pass_pipeline(self, device):
        """histogram -> offsets -> reorder on both drivers."""
        rng = np.random.default_rng(4)
        n, parts, bits = 96, 8, 4
        keys = rng.integers(0, 2**16, n).astype(np.uint32)
        payload = np.arange(n, dtype=np.uint32)
        radix = 1 << bits
        defines = {"RADIX_BITS": bits}

        def stage(make_ref):
            hist = np.zeros(parts * radix, np.uint32)
            offsets = np.zeros(radix * parts, np.uint32)
            keys_out = np.zeros(n, np.uint32)
            pay_out = np.zeros(n, np.uint32)
            return hist, offsets, keys_out, pay_out

        # reference
        h_r, o_r, ko_r, po_r = stage(True)
        run_reference(KERNEL_LIBRARY["radix_histogram"],
                      [h_r, keys, n, 0, parts], 8, 4, defines=defines,
                      device=device)
        run_reference(KERNEL_LIBRARY["radix_offsets"],
                      [o_r, h_r, parts], 8, 4, defines=defines,
                      device=device)
        run_reference(KERNEL_LIBRARY["radix_reorder"],
                      [ko_r, po_r, keys, payload, o_r, n, 0, parts],
                      8, 4, defines=defines, device=device)
        # vectorised
        from repro.cl.kernel import ExecContext
        from repro.cl.compiler import default_defines

        merged = {**default_defines(device.device_type), **defines}
        ctx = ExecContext(device=device, defines=merged, global_size=8,
                          local_size=4)
        h_v, o_v, ko_v, po_v = stage(False)
        KERNEL_LIBRARY["radix_histogram"].vec_fn(ctx, h_v, keys, n, 0, parts)
        KERNEL_LIBRARY["radix_offsets"].vec_fn(ctx, o_v, h_v, parts)
        KERNEL_LIBRARY["radix_reorder"].vec_fn(
            ctx, ko_v, po_v, keys, payload, o_v, n, 0, parts
        )
        assert np.array_equal(h_r, h_v)
        assert np.array_equal(o_r, o_v)
        assert np.array_equal(ko_r, ko_v)
        assert np.array_equal(po_r, po_v)
        # and the pass is a correct stable partial sort by digit
        digits = ko_v & (radix - 1)
        assert np.all(np.diff(digits.astype(np.int64)) >= 0)

    def test_hash_probe_semantics(self, device):
        """Build via vec, probe via both drivers: identical lookups."""
        keys = np.arange(100, dtype=np.uint32) * 7 + 3
        m = 173
        tkeys = np.full(m, EMPTY, np.uint32)
        tvals = np.zeros(m, np.uint32)
        from repro.cl.kernel import ExecContext
        from repro.cl.compiler import default_defines

        merged = default_defines(device.device_type)
        ctx = ExecContext(device=device, defines=merged, global_size=16,
                          local_size=8)
        KERNEL_LIBRARY["ht_insert_optimistic"].vec_fn(
            ctx, tkeys, tvals, keys, np.arange(100, dtype=np.uint32),
            100, m,
        )
        fail = np.zeros((100 + 7) // 8, np.uint8)
        KERNEL_LIBRARY["ht_check"].vec_fn(ctx, fail, tkeys, keys, 100, m)
        stats = np.zeros(2, np.uint32)
        KERNEL_LIBRARY["ht_insert_pessimistic"].vec_fn(
            ctx, tkeys, tvals, stats, keys,
            np.arange(100, dtype=np.uint32), fail, 100, m,
        )
        assert stats[1] == 0

        probe = np.concatenate([keys[:50], keys[:50] + 1]).astype(np.uint32)

        def make():
            return [np.zeros(100, np.uint32),
                    np.zeros((100 + 7) // 8, np.uint8),
                    tkeys.copy(), tvals.copy(), probe, 100, m]

        ref, vec = _run_both("ht_probe", make, device)
        assert np.array_equal(ref[0], vec[0])
        assert np.array_equal(ref[1], vec[1])

    def test_grouped_agg_partial(self, device):
        rng = np.random.default_rng(5)
        gids = rng.integers(0, 4, 64).astype(np.uint32)
        vals = rng.integers(0, 100, 64).astype(np.int32)

        def make():
            return [np.zeros((2, 4), np.int64), gids.copy(), vals.copy(),
                    64, 4, "sum", 1, True]

        ref, vec = _run_both("grouped_agg_partial", make, device,
                             global_size=16, local_size=8)
        assert np.array_equal(ref[0].sum(axis=0), vec[0].sum(axis=0))
        expected = np.bincount(gids, weights=vals, minlength=4)
        assert np.array_equal(vec[0].sum(axis=0), expected.astype(np.int64))


class TestBarrierSemantics:
    def test_divergent_barrier_detected(self):
        from repro.cl.kernel import KernelDef, params

        def bad(wi, out, n):
            if wi.local_id() == 0:
                yield  # only one work-item reaches the barrier
            out[wi.global_id()] = 1

        definition = KernelDef(
            name="bad", params=params("out:res scalar:n"),
            vec_fn=lambda ctx, out, n: None,
            work_fn=lambda ctx, out, n: None, ref_fn=bad,
        )
        with pytest.raises(cl.BarrierDivergence):
            run_reference(definition, [np.zeros(4, np.int32), 4], 4, 4)

    def test_non_generator_reference_rejected(self):
        from repro.cl.kernel import KernelDef, params

        definition = KernelDef(
            name="plain", params=params("out:res scalar:n"),
            vec_fn=lambda ctx, out, n: None,
            work_fn=lambda ctx, out, n: None,
            ref_fn=lambda wi, out, n: None,
        )
        with pytest.raises(cl.InvalidKernelArgs):
            run_reference(definition, [np.zeros(4, np.int32), 4], 4, 4)

    def test_size_validation(self):
        definition = KERNEL_LIBRARY["gather"]
        args = [np.zeros(4, np.int32), np.zeros(4, np.int32),
                np.zeros(4, np.uint32), 4]
        with pytest.raises(cl.InvalidKernelArgs):
            run_reference(definition, args, 7, 4)  # not divisible
        with pytest.raises(cl.InvalidKernelArgs):
            run_reference(definition, args, 0, 0)

    def test_missing_reference_impl(self):
        definition = KERNEL_LIBRARY["oids_to_bitmap"]
        assert definition.ref_fn is None
        with pytest.raises(cl.InvalidKernelArgs):
            run_reference(definition, [], 4, 4)

    def test_local_memory_materialised_per_group(self):
        from repro.cl.kernel import KernelDef, Local, params

        def kernel(wi, out, scratch, n):
            scratch[wi.local_id()] = wi.global_id()
            yield
            if wi.local_id() == 0:
                out[wi.group_id()] = int(scratch.sum())

        definition = KernelDef(
            name="localsum", params=params("out:res local:tmp scalar:n"),
            vec_fn=lambda ctx, out, tmp, n: None,
            work_fn=lambda ctx, out, tmp, n: None, ref_fn=kernel,
        )
        out = np.zeros(2, np.int64)
        run_reference(definition, [out, Local(4, np.int64), 8], 8, 4)
        assert out[0] == 0 + 1 + 2 + 3
        assert out[1] == 4 + 5 + 6 + 7
