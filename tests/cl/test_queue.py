"""Command queues: scheduling semantics, overlap, stats."""

import numpy as np
import pytest

from repro import cl
from repro.kernels import KERNEL_LIBRARY


@pytest.fixture
def gpu_ctx():
    return cl.Context(cl.NVIDIA_GTX460, data_scale=100.0)


@pytest.fixture
def queue(gpu_ctx):
    return cl.CommandQueue(gpu_ctx)


@pytest.fixture
def program(gpu_ctx):
    return cl.build(gpu_ctx, KERNEL_LIBRARY)


def test_kernel_waits_for_input_producers(gpu_ctx, queue, program):
    src = gpu_ctx.empty(1024, np.int32, tag="src")
    write = queue.enqueue_write(src, np.arange(1024, dtype=np.int32))
    out = gpu_ctx.empty(1024, np.int32, tag="out")
    kernel = program.kernel("ewise_scalar").launch(
        queue, out, src, 1024, "add", 5
    )
    assert kernel.t_start >= write.t_end
    assert np.array_equal(out.array, np.arange(1024) + 5)


def test_transfer_overlaps_independent_kernel(gpu_ctx, queue, program):
    """Fig. 3: a transfer on the copy engine can run while an unrelated
    kernel occupies the compute engine."""
    a = gpu_ctx.create_buffer(np.arange(1 << 20, dtype=np.int32), tag="a")
    out = gpu_ctx.empty(1 << 20, np.int32, tag="o")
    kernel = program.kernel("ewise_scalar").launch(
        queue, out, a, 1 << 20, "add", 1
    )
    b = gpu_ctx.empty(1 << 20, np.int32, tag="b")
    transfer = queue.enqueue_write(b, np.zeros(1 << 20, np.int32))
    # independent: transfer starts before the kernel finishes
    assert transfer.t_start < kernel.t_end
    assert transfer.engine != kernel.engine


def test_dependent_commands_serialise(gpu_ctx, queue, program):
    a = gpu_ctx.create_buffer(np.arange(256, dtype=np.int32))
    out = gpu_ctx.empty(256, np.int32)
    k1 = program.kernel("ewise_scalar").launch(queue, out, a, 256, "add", 1)
    host, read = queue.enqueue_read(out)
    assert read.t_start >= k1.t_end
    assert np.array_equal(host, np.arange(256) + 1)


def test_finish_joins_all_timelines(gpu_ctx, queue, program):
    a = gpu_ctx.create_buffer(np.arange(256, dtype=np.int32))
    t = queue.finish()
    out = gpu_ctx.empty(256, np.int32)
    kernel = program.kernel("ewise_scalar").launch(queue, out, a, 256, "add", 1)
    t2 = queue.finish()
    assert t2 >= kernel.t_end >= t
    # after finish, new commands cannot start earlier than the makespan
    late = program.kernel("ewise_scalar").launch(queue, out, a, 256, "add", 2)
    assert late.t_start >= t2


def test_host_submit_gates_start(gpu_ctx):
    queue = cl.CommandQueue(gpu_ctx)
    buf = gpu_ctx.empty(16, np.int32)
    event = queue.enqueue_write(buf, np.zeros(16, np.int32))
    assert event.t_submit >= gpu_ctx.device.host_submit_time()
    assert event.t_start >= event.t_submit


def test_stats_accumulate(gpu_ctx, queue, program):
    a = gpu_ctx.empty(1024, np.int32)
    queue.enqueue_write(a, np.zeros(1024, np.int32))
    out = gpu_ctx.empty(1024, np.int32)
    program.kernel("ewise_scalar").launch(queue, out, a, 1024, "add", 1)
    queue.enqueue_read(out)
    stats = queue.stats
    assert stats.kernels_launched == 1
    assert stats.transfers_to_device == 1
    assert stats.transfers_from_device == 1
    assert stats.bytes_to_device == 1024 * 4 * 100  # nominal
    assert stats.kernel_seconds > 0

    snap = stats.snapshot()
    assert snap.kernels_launched == 1


def test_timeline_sorted(gpu_ctx, queue, program):
    a = gpu_ctx.create_buffer(np.arange(64, dtype=np.int32))
    out = gpu_ctx.empty(64, np.int32)
    for k in range(3):
        program.kernel("ewise_scalar").launch(queue, out, a, 64, "add", k)
    events = queue.timeline()
    starts = [e.t_start for e in events]
    assert starts == sorted(starts)


def test_size_mismatch_write_rejected(gpu_ctx, queue):
    buf = gpu_ctx.empty(16, np.int32)
    with pytest.raises(cl.InvalidKernelArgs):
        queue.enqueue_write(buf, np.zeros(8, np.int32))


def test_kernel_arg_validation(gpu_ctx, queue, program):
    out = gpu_ctx.empty(16, np.uint8)
    with pytest.raises(cl.InvalidKernelArgs):
        # missing arguments
        program.kernel("select_bitmap").launch(queue, out)
    with pytest.raises(cl.InvalidKernelArgs):
        # scalar passed where a buffer is expected
        program.kernel("gather").launch(queue, out, 5, out, 4)


def test_released_queue_rejects_commands(gpu_ctx, queue):
    queue.release()
    with pytest.raises(cl.DeviceLost):
        queue.enqueue_marker()


def test_enqueue_copy(gpu_ctx, queue):
    src = gpu_ctx.create_buffer(np.arange(128, dtype=np.int32))
    dst = gpu_ctx.empty(128, np.int32)
    event = queue.enqueue_copy(dst, src)
    assert np.array_equal(dst.array, src.array)
    assert event.duration > 0


class TestSessionTimelines:
    """Per-session floors and frontiers (serve layer, ARCHITECTURE.md)."""

    def test_session_floor_gates_only_that_session(self, gpu_ctx, queue):
        a = gpu_ctx.empty(1 << 18, np.int32, tag="a")
        queue.open_session("s1", 0.0)
        queue.open_session("s2", 0.0)
        queue.advance_session_to("s1", 1.0)   # s1 waits on a foreign epoch
        queue.current_session = "s2"
        ev2 = queue.enqueue_write(a, np.zeros(1 << 18, np.int32))
        assert ev2.t_start < 1.0              # s2 is unaffected
        queue.current_session = "s1"
        b = gpu_ctx.empty(1 << 18, np.int32, tag="b")
        ev1 = queue.enqueue_write(b, np.zeros(1 << 18, np.int32))
        assert ev1.t_start >= 1.0             # s1 honours its floor
        queue.current_session = None

    def test_session_time_tracks_frontier_and_floor(self, gpu_ctx, queue):
        queue.open_session("s", 0.5)
        assert queue.session_time("s") == 0.5  # floor only, no commands
        queue.current_session = "s"
        a = gpu_ctx.empty(1 << 16, np.int32, tag="a")
        ev = queue.enqueue_write(a, np.zeros(1 << 16, np.int32))
        queue.current_session = None
        assert ev.t_start >= 0.5
        assert queue.session_time("s") == ev.t_end

    def test_close_session_forgets_state(self, gpu_ctx, queue):
        queue.open_session("s", 2.0)
        queue.close_session("s")
        assert queue.session_time("s") == 0.0

    def test_sessions_share_engine_order(self, gpu_ctx, queue):
        """The queue stays in-order across sessions: same-device
        contention is real even when cross-device barriers are not."""
        a = gpu_ctx.empty(1 << 20, np.int32, tag="a")
        b = gpu_ctx.empty(1 << 20, np.int32, tag="b")
        queue.open_session("s1", 0.0)
        queue.open_session("s2", 0.0)
        queue.current_session = "s1"
        ev1 = queue.enqueue_write(a, np.zeros(1 << 20, np.int32))
        queue.current_session = "s2"
        ev2 = queue.enqueue_write(b, np.zeros(1 << 20, np.int32))
        queue.current_session = None
        assert ev2.t_start >= ev1.t_end   # copy engine is in-order
