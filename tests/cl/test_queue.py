"""Command queues: scheduling semantics, overlap, stats."""

import numpy as np
import pytest

from repro import cl
from repro.kernels import KERNEL_LIBRARY


@pytest.fixture
def gpu_ctx():
    return cl.Context(cl.NVIDIA_GTX460, data_scale=100.0)


@pytest.fixture
def queue(gpu_ctx):
    return cl.CommandQueue(gpu_ctx)


@pytest.fixture
def program(gpu_ctx):
    return cl.build(gpu_ctx, KERNEL_LIBRARY)


def test_kernel_waits_for_input_producers(gpu_ctx, queue, program):
    src = gpu_ctx.empty(1024, np.int32, tag="src")
    write = queue.enqueue_write(src, np.arange(1024, dtype=np.int32))
    out = gpu_ctx.empty(1024, np.int32, tag="out")
    kernel = program.kernel("ewise_scalar").launch(
        queue, out, src, 1024, "add", 5
    )
    assert kernel.t_start >= write.t_end
    assert np.array_equal(out.array, np.arange(1024) + 5)


def test_transfer_overlaps_independent_kernel(gpu_ctx, queue, program):
    """Fig. 3: a transfer on the copy engine can run while an unrelated
    kernel occupies the compute engine."""
    a = gpu_ctx.create_buffer(np.arange(1 << 20, dtype=np.int32), tag="a")
    out = gpu_ctx.empty(1 << 20, np.int32, tag="o")
    kernel = program.kernel("ewise_scalar").launch(
        queue, out, a, 1 << 20, "add", 1
    )
    b = gpu_ctx.empty(1 << 20, np.int32, tag="b")
    transfer = queue.enqueue_write(b, np.zeros(1 << 20, np.int32))
    # independent: transfer starts before the kernel finishes
    assert transfer.t_start < kernel.t_end
    assert transfer.engine != kernel.engine


def test_dependent_commands_serialise(gpu_ctx, queue, program):
    a = gpu_ctx.create_buffer(np.arange(256, dtype=np.int32))
    out = gpu_ctx.empty(256, np.int32)
    k1 = program.kernel("ewise_scalar").launch(queue, out, a, 256, "add", 1)
    host, read = queue.enqueue_read(out)
    assert read.t_start >= k1.t_end
    assert np.array_equal(host, np.arange(256) + 1)


def test_finish_joins_all_timelines(gpu_ctx, queue, program):
    a = gpu_ctx.create_buffer(np.arange(256, dtype=np.int32))
    t = queue.finish()
    out = gpu_ctx.empty(256, np.int32)
    kernel = program.kernel("ewise_scalar").launch(queue, out, a, 256, "add", 1)
    t2 = queue.finish()
    assert t2 >= kernel.t_end >= t
    # after finish, new commands cannot start earlier than the makespan
    late = program.kernel("ewise_scalar").launch(queue, out, a, 256, "add", 2)
    assert late.t_start >= t2


def test_host_submit_gates_start(gpu_ctx):
    queue = cl.CommandQueue(gpu_ctx)
    buf = gpu_ctx.empty(16, np.int32)
    event = queue.enqueue_write(buf, np.zeros(16, np.int32))
    assert event.t_submit >= gpu_ctx.device.host_submit_time()
    assert event.t_start >= event.t_submit


def test_stats_accumulate(gpu_ctx, queue, program):
    a = gpu_ctx.empty(1024, np.int32)
    queue.enqueue_write(a, np.zeros(1024, np.int32))
    out = gpu_ctx.empty(1024, np.int32)
    program.kernel("ewise_scalar").launch(queue, out, a, 1024, "add", 1)
    queue.enqueue_read(out)
    stats = queue.stats
    assert stats.kernels_launched == 1
    assert stats.transfers_to_device == 1
    assert stats.transfers_from_device == 1
    assert stats.bytes_to_device == 1024 * 4 * 100  # nominal
    assert stats.kernel_seconds > 0

    snap = stats.snapshot()
    assert snap.kernels_launched == 1


def test_timeline_sorted(gpu_ctx, queue, program):
    a = gpu_ctx.create_buffer(np.arange(64, dtype=np.int32))
    out = gpu_ctx.empty(64, np.int32)
    for k in range(3):
        program.kernel("ewise_scalar").launch(queue, out, a, 64, "add", k)
    events = queue.timeline()
    starts = [e.t_start for e in events]
    assert starts == sorted(starts)


def test_size_mismatch_write_rejected(gpu_ctx, queue):
    buf = gpu_ctx.empty(16, np.int32)
    with pytest.raises(cl.InvalidKernelArgs):
        queue.enqueue_write(buf, np.zeros(8, np.int32))


def test_kernel_arg_validation(gpu_ctx, queue, program):
    out = gpu_ctx.empty(16, np.uint8)
    with pytest.raises(cl.InvalidKernelArgs):
        # missing arguments
        program.kernel("select_bitmap").launch(queue, out)
    with pytest.raises(cl.InvalidKernelArgs):
        # scalar passed where a buffer is expected
        program.kernel("gather").launch(queue, out, 5, out, 4)


def test_released_queue_rejects_commands(gpu_ctx, queue):
    queue.release()
    with pytest.raises(cl.DeviceLost):
        queue.enqueue_marker()


def test_enqueue_copy(gpu_ctx, queue):
    src = gpu_ctx.create_buffer(np.arange(128, dtype=np.int32))
    dst = gpu_ctx.empty(128, np.int32)
    event = queue.enqueue_copy(dst, src)
    assert np.array_equal(dst.array, src.array)
    assert event.duration > 0
