"""Runtime kernel compilation and pre-processor specialisation."""

import pytest

from repro import cl
from repro.kernels import KERNEL_LIBRARY


def test_device_type_injected_cpu():
    ctx = cl.Context(cl.INTEL_XEON_E5620)
    program = cl.build(ctx, KERNEL_LIBRARY)
    assert program.defines["DEVICE_TYPE"] == "CPU"
    assert program.defines["ACCESS_PATTERN"] == cl.ACCESS_SEQUENTIAL


def test_device_type_injected_gpu():
    ctx = cl.Context(cl.NVIDIA_GTX460)
    program = cl.build(ctx, KERNEL_LIBRARY)
    assert program.defines["ACCESS_PATTERN"] == cl.ACCESS_COALESCED


def test_user_defines_merge():
    ctx = cl.Context(cl.INTEL_XEON_E5620)
    program = cl.build(ctx, KERNEL_LIBRARY, {"RADIX_BITS": 8})
    assert program.defines["RADIX_BITS"] == 8
    assert program.defines["DEVICE_TYPE"] == "CPU"


def test_program_cache_hit():
    ctx = cl.Context(cl.INTEL_XEON_E5620)
    first = cl.build(ctx, KERNEL_LIBRARY, {"RADIX_BITS": 8})
    second = cl.build(ctx, KERNEL_LIBRARY, {"RADIX_BITS": 8})
    assert first is second
    different = cl.build(ctx, KERNEL_LIBRARY, {"RADIX_BITS": 4})
    assert different is not first


def test_empty_library_rejected():
    ctx = cl.Context(cl.INTEL_XEON_E5620)
    with pytest.raises(cl.BuildError):
        cl.build(ctx, {})


def test_mismatched_key_rejected():
    ctx = cl.Context(cl.INTEL_XEON_E5620)
    gather = KERNEL_LIBRARY["gather"]
    with pytest.raises(cl.BuildError):
        cl.build(ctx, {"wrong_name": gather})


def test_all_kernels_present():
    ctx = cl.Context(cl.NVIDIA_GTX460)
    program = cl.build(ctx, KERNEL_LIBRARY)
    for name in KERNEL_LIBRARY:
        assert name in program
        assert program.kernel(name).name == name
    assert program.build_time > 0


def test_unknown_kernel_lookup():
    ctx = cl.Context(cl.NVIDIA_GTX460)
    program = cl.build(ctx, KERNEL_LIBRARY)
    with pytest.raises(cl.InvalidKernelArgs):
        program.kernel("no_such_kernel")


def test_platform_discovery():
    platforms = cl.get_platforms()
    assert len(platforms) == 2
    vendors = {p.vendor for p in platforms}
    assert vendors == {"Intel", "NVIDIA"}
    assert cl.get_device("cpu").is_cpu
    assert cl.get_device("gpu").is_gpu
    tiny = cl.get_device("gpu", global_mem_bytes=1024)
    assert tiny.profile.global_mem_bytes == 1024
    with pytest.raises(LookupError):
        cl.get_device("tpu")
