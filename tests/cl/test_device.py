"""Device profiles and the analytic cost model."""

import pytest

from repro import cl
from repro.cl.device import checked_profile
from repro.cl.profile import KernelWork


@pytest.fixture
def cpu():
    return cl.Device(cl.INTEL_XEON_E5620)


@pytest.fixture
def gpu():
    return cl.Device(cl.NVIDIA_GTX460)


class TestProfiles:
    def test_paper_testbed_cpu(self, cpu):
        assert cpu.is_cpu and not cpu.is_gpu
        assert cpu.profile.compute_cores == 4
        assert cpu.profile.units_per_core == 4
        assert cpu.unified_memory

    def test_paper_testbed_gpu(self, gpu):
        assert gpu.is_gpu
        assert gpu.profile.compute_cores == 7       # multiprocessors
        assert gpu.profile.units_per_core == 48     # compute units
        assert gpu.profile.global_mem_bytes == 2 * cl.GB
        assert not gpu.unified_memory

    def test_scheduling_heuristic_4_nc_na(self, cpu, gpu):
        # paper §4.2: one work-group per core, size 4 * na
        assert cpu.profile.work_group_size == 16
        assert cpu.profile.num_work_groups == 4
        assert cpu.profile.total_invocations == 4 * 4 * 4
        assert gpu.profile.total_invocations == 4 * 7 * 48

    def test_with_memory_derivation(self, gpu):
        smaller = gpu.profile.with_memory(64 * cl.MB)
        assert smaller.global_mem_bytes == 64 * cl.MB
        assert smaller.stream_bw_gbs == gpu.profile.stream_bw_gbs

    @pytest.mark.parametrize(
        "field,value",
        [
            ("compute_cores", 0),
            ("global_mem_bytes", 0),
            ("bandwidth_efficiency", 0.0),
            ("bandwidth_efficiency", 1.5),
            ("stream_bw_gbs", -1.0),
            ("clock_ghz", 0.0),
        ],
    )
    def test_checked_profile_rejects(self, cpu, field, value):
        from dataclasses import replace

        with pytest.raises(ValueError):
            checked_profile(replace(cpu.profile, **{field: value}))


class TestKernelTime:
    def test_zero_work_costs_only_launch(self, cpu):
        assert cpu.kernel_time(KernelWork()) == pytest.approx(
            cpu.profile.kernel_launch_us * 1e-6
        )

    def test_streaming_scales_linearly(self, gpu):
        one = gpu.kernel_time(KernelWork(bytes_read=cl.GB))
        two = gpu.kernel_time(KernelWork(bytes_read=2 * cl.GB))
        launch = gpu.profile.kernel_launch_us * 1e-6
        assert (two - launch) == pytest.approx(2 * (one - launch), rel=1e-9)

    def test_memory_and_compute_overlap_as_max(self, cpu):
        mem_only = cpu.kernel_time(KernelWork(bytes_read=cl.GB))
        both = cpu.kernel_time(KernelWork(bytes_read=cl.GB, ops=100))
        assert both == pytest.approx(mem_only)  # tiny compute hides

    def test_random_access_slower_than_streaming(self, cpu):
        stream = cpu.kernel_time(KernelWork(bytes_read=cl.GB))
        random = cpu.kernel_time(KernelWork(random_bytes=cl.GB))
        assert random > stream

    def test_intel_sdk_efficiency_factor(self, cpu):
        # paper §5.2.3: the SDK reaches only a fraction of peak bandwidth
        assert cpu.profile.bandwidth_efficiency < 1.0

    def test_atomic_contention_decreases_with_addresses(self, cpu):
        """The Fig. 5(f) mechanism: more distinct targets, less contention."""
        times = [
            cpu.kernel_time(
                KernelWork(atomic_ops=10_000_000, atomic_addresses=a)
            )
            for a in (10, 100, 1000, 10000)
        ]
        assert times == sorted(times, reverse=True)
        assert times[0] > 2 * times[-1]

    def test_gpu_atomics_nearly_flat(self, gpu):
        few = gpu.kernel_time(
            KernelWork(atomic_ops=10_000_000, atomic_addresses=10)
        )
        many = gpu.kernel_time(
            KernelWork(atomic_ops=10_000_000, atomic_addresses=10000)
        )
        assert few < 3 * many

    def test_cpu_contention_worse_than_gpu(self, cpu, gpu):
        work = KernelWork(atomic_ops=10_000_000, atomic_addresses=100)
        assert cpu.kernel_time(work) > gpu.kernel_time(work)


class TestTransfer:
    def test_cpu_zero_copy(self, cpu):
        # unified memory: mapping cost only, independent of size
        assert cpu.transfer_time(cl.GB) == cpu.transfer_time(4 * cl.GB)

    def test_gpu_pcie_linear(self, gpu):
        small = gpu.transfer_time(100 * cl.MB)
        large = gpu.transfer_time(200 * cl.MB)
        assert large > small
        # ~PCIe 2.0 x16 rate
        per_gb = gpu.transfer_time(cl.GB) - gpu.transfer_time(0)
        assert 0.1 < per_gb < 0.5

    def test_host_submit_cpu_dwarfs_gpu(self, cpu, gpu):
        # the Intel SDK's enqueue overhead (paper §5.3.2)
        assert cpu.host_submit_time() > 10 * gpu.host_submit_time()
