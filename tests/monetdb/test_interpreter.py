"""The MAL interpreter and backend protocol."""

import numpy as np
import pytest

from repro.monetdb import (
    Catalog,
    MALBuilder,
    MonetDBSequential,
    UnsupportedOperator,
    run_program,
)


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.create_table("t", {
        "a": np.arange(100, dtype=np.int32),
        "b": (np.arange(100) * 0.5).astype(np.float32),
    })
    return cat


def test_basic_pipeline(catalog):
    builder = MALBuilder("q")
    a = builder.bind("t", "a")
    b = builder.bind("t", "b")
    cand = builder.emit("algebra", "select", (a, None, 10, 19, True, True,
                                              False))
    vals = builder.emit("algebra", "projection", (cand, b))
    total = builder.emit("aggr", "sum", (vals,))
    program = builder.returns([("total", total)])
    result = run_program(program, MonetDBSequential(catalog))
    assert result.columns["total"][0] == pytest.approx(
        sum(i * 0.5 for i in range(10, 20))
    )
    assert result.elapsed > 0
    assert result.backend == "MS"
    assert result.instruction_count == 5


def test_scalar_results_are_one_row_columns(catalog):
    builder = MALBuilder("q")
    a = builder.bind("t", "a")
    count = builder.emit("aggr", "count", (a,))
    result = run_program(builder.returns([("n", count)]),
                         MonetDBSequential(catalog))
    assert result.n_rows == 1
    assert result.columns["n"][0] == 100


def test_unsupported_operator(catalog):
    builder = MALBuilder("q")
    a = builder.bind("t", "a")
    builder.emit("algebra", "frobnicate", (a,))
    with pytest.raises(UnsupportedOperator):
        run_program(builder.returns([]), MonetDBSequential(catalog))


def test_undefined_variable(catalog):
    from repro.monetdb.mal import MALInstruction, MALProgram, Var

    program = MALProgram("bad", [
        MALInstruction((Var("X_1"),), "aggr", "sum", (Var("X_99"),))
    ])
    with pytest.raises(NameError):
        run_program(program, MonetDBSequential(catalog))


def test_multi_result_arity_check(catalog):
    builder = MALBuilder("q")
    a = builder.bind("t", "a")
    builder.emit("aggr", "sum", (a,), n_results=2)  # sum returns 1 value
    with pytest.raises(TypeError):
        run_program(builder.returns([]), MonetDBSequential(catalog))


def test_intermediates_recycled(catalog):
    recycled = []
    catalog.on_delete(recycled.append)
    builder = MALBuilder("q")
    a = builder.bind("t", "a")
    cand = builder.emit("algebra", "select", (a, None, 0, 50, True, True,
                                              False))
    vals = builder.emit("algebra", "projection", (cand, a))
    total = builder.emit("aggr", "sum", (vals,))
    run_program(builder.returns([("s", total)]), MonetDBSequential(catalog))
    # cand and vals recycled; base BATs never
    assert len(recycled) == 2
    assert all(not bat.is_base for bat in recycled)


def test_supports_and_registry(catalog):
    backend = MonetDBSequential(catalog)
    assert backend.supports("algebra.select")
    assert not backend.supports("ocelot.select")
    assert "algebra.join" in backend.supported_ops()
