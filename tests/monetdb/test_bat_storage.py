"""BATs, aligned storage, the catalog and its callbacks (paper §4.3)."""

import numpy as np
import pytest

from repro.monetdb import (
    ALIGNMENT,
    BAT,
    Catalog,
    Owner,
    OwnershipError,
    Role,
    aligned_array,
    aligned_empty,
    bitmap_bat,
    is_aligned,
    make_bat,
    oid_bat,
)


class TestAlignedStorage:
    @pytest.mark.parametrize("n,dtype", [
        (1, np.uint8), (1000, np.int32), (17, np.float64), (0, np.int32),
    ])
    def test_128_byte_alignment(self, n, dtype):
        """Intel SDK SSE paths require 128-byte aligned chunks (§4.3)."""
        arr = aligned_empty(n, dtype)
        assert is_aligned(arr)
        if n:  # empty views expose no meaningful data pointer
            assert arr.ctypes.data % ALIGNMENT == 0
        assert arr.size == n

    def test_aligned_copy_preserves_values(self):
        data = np.arange(100, dtype=np.float32)
        copy = aligned_array(data)
        assert is_aligned(copy)
        assert np.array_equal(copy, data)
        copy[0] = 42  # independent storage
        assert data[0] == 0


class TestBAT:
    def test_values_roundtrip(self):
        bat = make_bat(np.arange(10, dtype=np.int32), tag="t")
        assert bat.count == 10
        assert bat.dtype == np.int32
        assert bat.owner is Owner.MONETDB

    def test_ownership_enforced(self):
        bat = make_bat(np.arange(4, dtype=np.int32))
        bat.give_to_ocelot()
        with pytest.raises(OwnershipError):
            _ = bat.values
        bat.return_to_monetdb(np.arange(4, dtype=np.int32))
        assert bat.values is not None

    def test_bitmap_bat_counts_bits(self):
        bat = bitmap_bat(np.zeros(4, np.uint8), nbits=29)
        assert bat.count == 29
        assert bat.role is Role.BITMAP

    def test_oid_bat_coerces_dtype(self):
        bat = oid_bat(np.array([1, 2, 3], dtype=np.int64))
        assert bat.values.dtype == np.uint32

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(TypeError):
            BAT(np.zeros(4, np.int16))

    def test_unique_ids(self):
        a, b = make_bat(np.zeros(1, np.int32)), make_bat(np.zeros(1, np.int32))
        assert a.bat_id != b.bat_id


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        catalog.create_table("t", {"a": np.arange(5, dtype=np.int32)})
        bat = catalog.bat("t", "a")
        assert bat.is_base
        assert is_aligned(bat.values)
        assert catalog.row_count("t") == 5
        assert catalog.tables() == ["t"]
        assert catalog.columns("t") == ["a"]

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", {"a": np.zeros(1, np.int32)})
        with pytest.raises(ValueError):
            catalog.create_table("t", {"a": np.zeros(1, np.int32)})

    def test_mismatched_lengths_rejected(self):
        catalog = Catalog()
        with pytest.raises(ValueError):
            catalog.create_table("t", {
                "a": np.zeros(2, np.int32), "b": np.zeros(3, np.int32),
            })

    def test_unknown_column(self):
        catalog = Catalog()
        catalog.create_table("t", {"a": np.zeros(1, np.int32)})
        with pytest.raises(KeyError):
            catalog.bat("t", "zz")

    def test_delete_callbacks_fire(self):
        """Ocelot's Memory Manager subscribes to deletions (§4.3)."""
        catalog = Catalog()
        catalog.create_table("t", {"a": np.zeros(1, np.int32)})
        deleted = []
        catalog.on_delete(deleted.append)
        bat = catalog.bat("t", "a")
        catalog.drop_table("t")
        assert deleted == [bat]
        assert not catalog.has_table("t")

    def test_recycle_notification(self):
        catalog = Catalog()
        recycled = []
        catalog.on_delete(recycled.append)
        bat = make_bat(np.zeros(1, np.int32))
        catalog.notify_recycled(bat)
        assert recycled == [bat]
