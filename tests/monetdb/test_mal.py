"""MAL plan representation and builder."""

from repro.monetdb import ColumnRef, MALBuilder, MALInstruction, Var


def test_builder_fresh_vars_and_results():
    builder = MALBuilder("q")
    a = builder.bind("t", "x")
    b = builder.emit("algebra", "select", (a, None, 1, 2, True, True, False))
    l, r = builder.emit("algebra", "join", (a, b), n_results=2)
    assert isinstance(a, Var) and a != b
    assert l != r
    program = builder.returns([("out", l)])
    assert len(program) == 3
    assert program.result_columns == [("out", l)]


def test_instruction_format():
    ins = MALInstruction(
        (Var("X_1"),), "algebra", "select",
        (Var("X_0"), None, 10, 20, True, False, False),
    )
    text = ins.format()
    assert text == (
        "X_1 := algebra.select(X_0, nil, 10, 20, true, false, false);"
    )
    assert ins.op == "algebra.select"


def test_format_column_ref_and_strings():
    ins = MALInstruction(
        (Var("X_1"),), "sql", "bind", (ColumnRef("lineitem", "l_qty"),)
    )
    assert '"lineitem"."l_qty"' in ins.format()
    ins2 = MALInstruction((Var("X_2"),), "algebra", "thetaselect",
                          (Var("X_1"), None, 5, "<="))
    assert "'<='" in ins2.format() or '"<="' in ins2.format()


def test_with_module_swap():
    ins = MALInstruction((Var("X_1"),), "algebra", "select", (Var("X_0"),))
    swapped = ins.with_module("ocelot")
    assert swapped.op == "ocelot.select"
    assert swapped.results == ins.results


def test_var_args_extraction():
    ins = MALInstruction(
        (Var("X_2"),), "algebra", "projection", (Var("X_0"), Var("X_1"), 5)
    )
    assert [v.name for v in ins.var_args()] == ["X_0", "X_1"]


def test_program_format_contains_signature():
    builder = MALBuilder("myquery")
    a = builder.bind("t", "x")
    program = builder.returns([("x", a)])
    text = program.format()
    assert text.startswith("function user.myquery();")
    assert text.rstrip().endswith("end user.myquery;")
    assert "sql.resultSet(x=X_1);" in text
