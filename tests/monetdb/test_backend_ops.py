"""MonetDB operator semantics (the ground truth for the drop-in tests)."""

import numpy as np
import pytest

from repro.monetdb import (
    Catalog,
    MonetDBParallel,
    MonetDBSequential,
    group_ids,
    hash_join_pairs,
    make_bat,
    oid_bat,
    select_bounds_to_op,
)


@pytest.fixture
def backend():
    catalog = Catalog()
    catalog.create_table("t", {"a": np.arange(10, dtype=np.int32)})
    return MonetDBSequential(catalog)


def _op(backend, name):
    backend.begin()
    return backend.resolve(name)


class TestSelect:
    def test_range_select(self, backend):
        select = _op(backend, "algebra.select")
        col = make_bat(np.array([5, 1, 7, 3, 9], dtype=np.int32))
        out = select(col, None, 3, 7, True, True, False)
        assert np.array_equal(out.values, [0, 2, 3])

    def test_select_with_candidates(self, backend):
        select = _op(backend, "algebra.select")
        col = make_bat(np.array([5, 1, 7, 3, 9], dtype=np.int32))
        cand = oid_bat(np.array([0, 1, 4], dtype=np.uint32))
        out = select(col, cand, 3, 9, True, True, False)
        assert np.array_equal(out.values, [0, 4])

    def test_anti_select(self, backend):
        select = _op(backend, "algebra.select")
        col = make_bat(np.array([5, 1, 7], dtype=np.int32))
        out = select(col, None, 4, 6, True, True, True)
        assert np.array_equal(out.values, [1, 2])

    def test_thetaselect(self, backend):
        theta = _op(backend, "algebra.thetaselect")
        col = make_bat(np.array([5, 1, 7], dtype=np.int32))
        out = theta(col, None, 5, ">=")
        assert np.array_equal(out.values, [0, 2])

    def test_bounds_translation(self):
        assert select_bounds_to_op(1, 2, True, True) == ("[]", 1, 2)
        assert select_bounds_to_op(1, 2, False, False) == ("()", 1, 2)
        assert select_bounds_to_op(1, None, True, True)[0] == ">="
        assert select_bounds_to_op(None, 2, True, False)[0] == "<"
        with pytest.raises(ValueError):
            select_bounds_to_op(None, None, True, True)

    def test_elapsed_grows(self, backend):
        select = _op(backend, "algebra.select")
        col = make_bat(np.arange(10_000, dtype=np.int32))
        select(col, None, 0, 100, True, True, False)
        assert backend.elapsed() > 0
        assert len(backend.trace) == 1


class TestJoins:
    def test_hash_join_pairs_canonical_order(self):
        left = np.array([3, 1, 3], dtype=np.int32)
        right = np.array([3, 2, 3, 1], dtype=np.int32)
        lpos, rpos = hash_join_pairs(left, right)
        # left-major, right ascending within a left row
        assert np.array_equal(lpos, [0, 0, 1, 2, 2])
        assert np.array_equal(rpos, [0, 2, 3, 0, 2])

    def test_join_op(self, backend):
        join = _op(backend, "algebra.join")
        l = make_bat(np.array([1, 2, 5], dtype=np.int32))
        r = make_bat(np.array([5, 1], dtype=np.int32))
        lpos, rpos = join(l, r)
        assert np.array_equal(lpos.values, [0, 2])
        assert np.array_equal(rpos.values, [1, 0])

    def test_semijoin_antijoin(self, backend):
        semi = _op(backend, "algebra.semijoin")
        anti = backend.resolve("algebra.antijoin")
        l = make_bat(np.array([1, 2, 3, 4], dtype=np.int32))
        r = make_bat(np.array([2, 4, 9], dtype=np.int32))
        assert np.array_equal(semi(l, r).values, [1, 3])
        assert np.array_equal(anti(l, r).values, [0, 2])

    def test_thetajoin(self, backend):
        theta = _op(backend, "algebra.thetajoin")
        l = make_bat(np.array([1, 5], dtype=np.int32))
        r = make_bat(np.array([3, 0], dtype=np.int32))
        lpos, rpos = theta(l, r, "<")
        assert np.array_equal(lpos.values, [0])
        assert np.array_equal(rpos.values, [0])


class TestGroupingAggregation:
    def test_group_ids_ascending_convention(self):
        gids, n = group_ids(np.array([30, 10, 30, 20], dtype=np.int32))
        assert n == 3
        assert np.array_equal(gids, [2, 0, 2, 1])

    def test_subgroup(self, backend):
        group = _op(backend, "group.group")
        subgroup = backend.resolve("group.subgroup")
        a = make_bat(np.array([1, 1, 2, 2], dtype=np.int32))
        b = make_bat(np.array([9, 8, 9, 9], dtype=np.int32))
        gids, n = group(a)
        gids2, n2 = subgroup(b, gids, n)
        assert n2 == 3
        assert np.array_equal(gids2.values, [1, 0, 2, 2])

    def test_scalar_aggregates(self, backend):
        backend.begin()
        data = make_bat(np.array([1.5, 2.5, 3.0], dtype=np.float32))
        assert backend.resolve("aggr.sum")(data) == pytest.approx(7.0)
        assert backend.resolve("aggr.min")(data) == pytest.approx(1.5)
        assert backend.resolve("aggr.max")(data) == pytest.approx(3.0)
        assert backend.resolve("aggr.count")(data) == 3
        assert backend.resolve("aggr.avg")(data) == pytest.approx(7.0 / 3)

    def test_empty_sum_is_zero(self, backend):
        backend.begin()
        empty = make_bat(np.zeros(0, dtype=np.float32))
        assert backend.resolve("aggr.sum")(empty) == 0.0
        with pytest.raises(ValueError):
            backend.resolve("aggr.min")(empty)

    def test_grouped_aggregates(self, backend):
        backend.begin()
        vals = make_bat(np.array([1, 2, 3, 4], dtype=np.int32))
        gids = make_bat(np.array([0, 1, 0, 1], dtype=np.uint32))
        sums = backend.resolve("aggr.subsum")(vals, gids, 2)
        assert np.array_equal(sums.values, [4, 6])
        counts = backend.resolve("aggr.subcount")(gids, 2)
        assert np.array_equal(counts.values, [2, 2])
        avgs = backend.resolve("aggr.subavg")(vals, gids, 2)
        assert np.allclose(avgs.values, [2.0, 3.0])

    def test_int_sum_uses_int64(self, backend):
        backend.begin()
        vals = make_bat(np.full(10, 2**30, dtype=np.int32))
        gids = make_bat(np.zeros(10, dtype=np.uint32))
        sums = backend.resolve("aggr.subsum")(vals, gids, 1)
        assert sums.values.dtype == np.int64
        assert sums.values[0] == 10 * 2**30


class TestSortCalc:
    def test_sort_ascending_stable(self, backend):
        sort = _op(backend, "algebra.sort")
        col = make_bat(np.array([3, 1, 3, 2], dtype=np.int32))
        out, order = sort(col, False)
        assert np.array_equal(out.values, [1, 2, 3, 3])
        assert np.array_equal(order.values, [1, 3, 0, 2])

    def test_sort_descending_stable(self, backend):
        sort = _op(backend, "algebra.sort")
        col = make_bat(np.array([3, 1, 3, 2], dtype=np.int32))
        out, order = sort(col, True)
        assert np.array_equal(out.values, [3, 3, 2, 1])
        # stable-descending: ties keep original order
        assert np.array_equal(order.values, [0, 2, 3, 1])

    def test_firstn(self, backend):
        firstn = _op(backend, "algebra.firstn")
        col = make_bat(np.array([5, 1, 9, 3], dtype=np.int32))
        assert np.array_equal(firstn(col, 2, True).values, [1, 3])
        assert np.array_equal(firstn(col, 2, False).values, [2, 0])

    def test_calc_dtype_rules(self, backend):
        backend.begin()
        ints = make_bat(np.array([7, 8], dtype=np.int32))
        div = backend.resolve("batcalc.div")(ints, 2)
        assert div.values.dtype == np.float64  # int/int -> float
        add = backend.resolve("batcalc.add")(ints, 1)
        assert add.values.dtype == np.int32
        intdiv = backend.resolve("batcalc.intdiv")(ints, 2)
        assert intdiv.values.dtype == np.int32
        assert np.array_equal(intdiv.values, [3, 4])

    def test_calc_scalar_first(self, backend):
        backend.begin()
        f = make_bat(np.array([0.25, 0.5], dtype=np.float32))
        out = backend.resolve("batcalc.sub")(1.0, f)
        assert np.allclose(out.values, [0.75, 0.5])

    def test_compare_and_ifthenelse(self, backend):
        backend.begin()
        a = make_bat(np.array([1, 5, 3], dtype=np.int32))
        mask = backend.resolve("batcalc.ge")(a, 3)
        assert np.array_equal(mask.values, [0, 1, 1])
        out = backend.resolve("batcalc.ifthenelse")(mask, a, 0)
        assert np.array_equal(out.values, [0, 5, 3])

    def test_logical_and_or(self, backend):
        backend.begin()
        a = make_bat(np.array([1, 0, 1], dtype=np.uint8))
        b = make_bat(np.array([1, 1, 0], dtype=np.uint8))
        assert np.array_equal(
            backend.resolve("batcalc.and")(a, b).values, [1, 0, 0]
        )
        assert np.array_equal(
            backend.resolve("batcalc.or")(a, b).values, [1, 1, 1]
        )

    def test_oidunion_intersect(self, backend):
        backend.begin()
        a = oid_bat(np.array([1, 3, 5], dtype=np.uint32))
        b = oid_bat(np.array([3, 4], dtype=np.uint32))
        assert np.array_equal(
            backend.resolve("algebra.oidunion")(a, b).values, [1, 3, 4, 5]
        )
        assert np.array_equal(
            backend.resolve("algebra.oidintersect")(a, b).values, [3]
        )

    def test_mirror(self, backend):
        mirror = _op(backend, "bat.mirror")
        out = mirror(make_bat(np.zeros(4, np.int32)))
        assert np.array_equal(out.values, [0, 1, 2, 3])


class TestParallelCosting:
    def test_mp_faster_than_ms_on_scans(self):
        catalog = Catalog()
        data = np.arange(1_000_000, dtype=np.int32)
        catalog.create_table("t", {"a": data})
        ms, mp = MonetDBSequential(catalog), MonetDBParallel(catalog)
        for backend in (ms, mp):
            backend.begin()
            col = backend.resolve("sql.bind")(
                __import__("repro.monetdb.mal", fromlist=["ColumnRef"])
                .ColumnRef("t", "a")
            )
            backend.resolve("algebra.select")(
                col, None, 0, 100, True, True, False
            )
        assert mp.elapsed() < ms.elapsed()

    def test_data_scale_multiplies_cost(self):
        catalog = Catalog()
        catalog.create_table("t", {"a": np.arange(1000, dtype=np.int32)})
        plain = MonetDBSequential(catalog)
        scaled = MonetDBSequential(catalog, data_scale=100.0)
        for backend in (plain, scaled):
            backend.begin()
            col = catalog.bat("t", "a")
            backend.resolve("aggr.sum")(col)
        assert scaled.elapsed() == pytest.approx(100 * plain.elapsed())
