"""Breaker recovery under pipelined sessions (PR 10).

The half-open probe does not get a quiet machine: these tests race the
cooldown probe against concurrent ``submit()`` batches and assert the
trip → degraded service → rejoin arc never changes results, whether the
probe finds the node healed or re-trips on a still-sick primary.
"""

import numpy as np
import pytest

from repro.serve.faults import NodeFault, wrap_shard_node

SQL = "SELECT x, sum(y) AS s, count(*) AS n FROM points GROUP BY x"


def _batch(con, n=4):
    futures = [con.submit(SQL) for _ in range(n)]
    return [future.result() for future in futures]


class TestHalfOpenUnderTraffic:
    def test_recovery_races_concurrent_batches(
        self, points_db, assert_results_equal
    ):
        con = points_db.connect("SHARD:2xCPU,replicas=2")
        clean = con.execute(SQL)
        backend = con.backend

        wrappers = wrap_shard_node(backend, 1)
        for wrapper in wrappers:
            wrapper.always = NodeFault("node 1 down")
        for result in _batch(con):
            assert_results_equal(clean, result, "degraded batch")
        # (routing.degraded itself may already have flipped back: the
        # half-open probe rejoins optimistically between batches)
        assert backend.cluster_stats().promotions >= 1

        # the node heals, but the probe has to fire *between* batches
        # of in-flight sessions — never a quiet boundary
        for wrapper in wrappers:
            wrapper.always = None
        for round_index in range(10):
            for result in _batch(con):
                assert_results_equal(
                    clean, result, f"recovery round {round_index}"
                )
            if not backend.routing.degraded:
                break
        assert not backend.routing.degraded, "probe never rejoined"
        assert backend.cluster_stats().recoveries >= 1
        # layout never moved through the whole arc
        assert backend.partitioner.active == (0, 1)

    def test_failed_probe_retrips_without_wrong_results(
        self, points_db, assert_results_equal
    ):
        con = points_db.connect("SHARD:2xCPU,replicas=2")
        clean = con.execute(SQL)
        backend = con.backend
        breaker = backend.breakers().breaker(("shard", 0))

        wrappers = wrap_shard_node(backend, 0)
        for wrapper in wrappers:
            wrapper.always = NodeFault("node 0 stays down")
        # keep the traffic coming while the cooldown elapses: the
        # half-open probe routes back to the sick primary, fails, and
        # re-trips with an escalated backoff — results never waver
        rounds = 0
        while breaker.trips < 2 and rounds < 15:
            for result in _batch(con, n=3):
                assert_results_equal(clean, result, f"round {rounds}")
            rounds += 1
        assert breaker.trips >= 2, "the probe never re-tripped"
        # each re-trip promoted away from the sick primary again
        assert backend.cluster_stats().promotions >= 2

        for wrapper in wrappers:
            wrapper.always = None
        for _ in range(60):
            if not backend.routing.degraded:
                break
            backend.query_boundary()
        assert not backend.routing.degraded
        assert_results_equal(clean, con.execute(SQL), "after rejoin")

    def test_cancel_during_recovery_batch(
        self, points_db, assert_results_equal
    ):
        from repro.serve.session import QueryCancelled

        con = points_db.connect("SHARD:2xCPU,replicas=2")
        clean = con.execute(SQL)
        backend = con.backend
        wrappers = wrap_shard_node(backend, 1)
        for wrapper in wrappers:
            wrapper.always = NodeFault("node 1 down")
        for result in _batch(con):
            assert_results_equal(clean, result, "trip batch")
        for wrapper in wrappers:
            wrapper.always = None

        futures = [con.submit(SQL) for _ in range(4)]
        assert futures[2].cancel()
        with pytest.raises(QueryCancelled):
            futures[2].result()
        for index in (0, 1, 3):
            assert_results_equal(
                clean, futures[index].result(), f"future {index}"
            )
        con.drain()
        for _ in range(60):
            if not backend.routing.degraded:
                break
            backend.query_boundary()
        assert not backend.routing.degraded
        assert not backend.topology_pending()


class TestPipelinedFailoverBatch:
    def test_mid_batch_kill_parks_and_reroutes_everyone(
        self, points_db, assert_results_equal
    ):
        """A node dies while a batch is in flight: the tripping query
        and every concurrently parked session re-run against the
        promoted routing, and all of them return the clean answer."""
        con = points_db.connect("SHARD:2xCPU,replicas=2")
        clean = con.execute(SQL)
        backend = con.backend
        futures = [con.submit(SQL) for _ in range(5)]
        wrappers = wrap_shard_node(backend, 1)
        for wrapper in wrappers:
            wrapper.always = NodeFault("node 1 down")
        for index, future in enumerate(futures):
            assert_results_equal(
                clean, future.result(), f"future {index}"
            )
        assert backend.cluster_stats().promotions >= 1
        parked = sum(1 for _, op in con.scheduler.turn_log
                     if op == "parked")
        assert parked >= 1
