"""Differential fault injection: every TPC-H workload query must
return *identical* results with faults injected vs clean — retries,
re-routes, and breaker trips may change when and where work runs,
never what it computes."""

import pytest

from repro.serve import FaultyBackend, NodeFault, TransientFault
from repro.serve.faults import wrap_shard_child
from repro.tpch.queries import WORKLOAD


class TestMSDifferential:
    """Single-node baseline: transient blips at the head of every
    query are absorbed by the retry loop (two per query stays below
    the breaker threshold of three; success resets the count)."""

    def test_whole_workload_matches_clean_run(
        self, tpch_db, assert_results_equal
    ):
        con = tpch_db.connect("MS")
        clean = {qid: con.execute(sql) for qid, sql in WORKLOAD.items()}
        faulty = FaultyBackend(con.backend)
        con.backend = faulty
        con._scheduler = None
        for qid, sql in WORKLOAD.items():
            faulty.schedule = {
                faulty.ops_seen + 1: TransientFault(f"{qid} blip 1"),
                faulty.ops_seen + 2: TransientFault(f"{qid} blip 2"),
            }
            assert_results_equal(clean[qid], con.execute(sql), qid)
        # every scheduled fault really fired, and none of them tripped
        assert len(faulty.injected) == 2 * len(WORKLOAD)
        board = con.backend.breakers()
        assert board.breaker("self").trips == 0


class TestShardDifferential:
    """Sharded engine: a node that keeps failing trips its breaker,
    the tables re-partition over the healthy remainder, and — once the
    cooldown probe finds it healthy — the node rejoins.  Results match
    the clean run through the whole trip/exclude/rejoin arc."""

    def test_whole_workload_routes_around_sick_node(
        self, tpch_db, assert_results_equal
    ):
        con = tpch_db.connect("SHARD:2xCPU")
        clean = {qid: con.execute(sql) for qid, sql in WORKLOAD.items()}
        sick = wrap_shard_child(con.backend, 1, {
            k: NodeFault("shard 1 down", node=1) for k in (1, 2, 3)
        })
        backend = con.backend
        excluded_during = []
        for qid, sql in WORKLOAD.items():
            assert_results_equal(clean[qid], con.execute(sql), qid)
            excluded_during.append(bool(backend._excluded))
        # the first query tripped the breaker and excluded the shard...
        breaker = backend.breakers().breaker(("shard", 1))
        assert breaker.trips == 1
        assert len(sick.injected) == 3
        assert excluded_during[0], "the trip never happened"
        # ...and the cooldown probe re-admitted it mid-workload
        assert not excluded_during[-1], "the shard never rejoined"
        assert backend.partitioner.active == (0, 1)
        assert breaker.state == "closed"


@pytest.mark.parametrize("qid", sorted(WORKLOAD))
def test_each_query_survives_a_mid_plan_fault(
    tpch_db, assert_results_equal, qid
):
    """Per-query granularity: a fault landing *mid-plan* (not on the
    first operator) still yields the clean answer — the retry re-runs
    the whole program, and no partial state leaks into the result."""
    con = tpch_db.connect("MS")
    sql = WORKLOAD[qid]
    clean = con.execute(sql)
    faulty = FaultyBackend(con.backend)
    con.backend = faulty
    con._scheduler = None
    # land one fault roughly halfway through the plan
    n_ops = len(clean.program.instructions)
    faulty.schedule = {max(1, n_ops // 2): TransientFault("mid-plan")}
    assert_results_equal(clean, con.execute(sql), qid)
    assert len(faulty.injected) == 1
