"""Circuit breakers: trip / cooldown / half-open mechanics, the
single-node "self" breaker on the synchronous execute path, and the
tiered route-around — a sharded backend excluding a sick shard and the
heterogeneous scheduler banning a sick device — all driven by
deterministic operator-count fault schedules."""

import pytest

from repro.serve import CircuitOpen, FaultyBackend, NodeFault, TransientFault
from repro.serve.faults import wrap_shard_child
from repro.serve.resilience import (
    DEFAULT_COOLDOWN,
    DEFAULT_THRESHOLD,
    BreakerBoard,
    CircuitBreaker,
)

QUERY = "SELECT x, sum(y) AS s FROM points GROUP BY x"


class TestCircuitBreakerUnit:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("n")
        for _ in range(DEFAULT_THRESHOLD - 1):
            assert not breaker.record_failure()
            assert breaker.allow()
        assert breaker.record_failure()      # the trip
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker("n")
        for _ in range(10):
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.trips == 0

    def test_cooldown_promotes_to_half_open_then_success_closes(self):
        breaker = CircuitBreaker("n")
        for _ in range(DEFAULT_THRESHOLD):
            breaker.record_failure()
        for _ in range(DEFAULT_COOLDOWN - 1):
            breaker.tick()
            assert breaker.state == "open"
        breaker.tick()
        assert breaker.state == "half-open"
        assert breaker.allow()               # one probe allowed
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failed_probe_retrips_with_doubled_backoff(self):
        breaker = CircuitBreaker("n")
        for _ in range(DEFAULT_THRESHOLD):
            breaker.record_failure()
        for _ in range(DEFAULT_COOLDOWN):
            breaker.tick()
        assert breaker.state == "half-open"
        assert breaker.record_failure()      # probe fails: instant re-trip
        assert breaker.state == "open"
        assert breaker.trips == 2
        for _ in range(DEFAULT_COOLDOWN):
            breaker.tick()
        assert breaker.state == "open"       # old cooldown is not enough
        for _ in range(DEFAULT_COOLDOWN):
            breaker.tick()
        assert breaker.state == "half-open"  # doubled backoff elapsed
        breaker.record_success()
        assert breaker._backoff == DEFAULT_COOLDOWN   # reset on close

    def test_board_keys_breakers_by_node_identity(self):
        board = BreakerBoard()
        a = board.breaker(("shard", 0))
        b = board.breaker(("shard", 1))
        assert a is board.breaker(("shard", 0))
        assert a is not b
        assert len(board) == 2
        for _ in range(DEFAULT_THRESHOLD):
            a.record_failure()
        assert board.open_nodes() == [("shard", 0)]
        board.record_success()               # open breakers get no credit
        assert a.state == "open"
        assert b.failures == 0


class TestSelfBreaker:
    """Single-node engines have nowhere to route: repeated transient
    failures trip the backend-wide breaker and the front door refuses
    admission until the cooldown allows a probe."""

    def test_retries_below_threshold_are_invisible(
        self, points_db, assert_results_equal
    ):
        con = points_db.connect("MS")
        clean = con.execute(QUERY)
        con.backend = FaultyBackend(con.backend, {
            1: TransientFault("blip"), 2: TransientFault("blip"),
        })
        con._scheduler = None
        assert_results_equal(clean, con.execute(QUERY))
        assert len(con.backend.injected) == 2
        assert con.backend.breakers().breaker("self").failures == 0

    def test_trip_opens_the_front_door_then_cooldown_recovers(
        self, points_db, assert_results_equal
    ):
        con = points_db.connect("MS")
        clean = con.execute(QUERY)
        con.backend = FaultyBackend(con.backend, {
            k: TransientFault("node down") for k in (1, 2, 3)
        })
        con._scheduler = None
        with pytest.raises(TransientFault):
            con.execute(QUERY)               # three failures: the trip
        breaker = con.backend.breakers().breaker("self")
        assert breaker.state == "open"
        # while open, work is refused before touching the engine
        refused = 0
        for _ in range(DEFAULT_COOLDOWN - 1):
            with pytest.raises(CircuitOpen):
                con.execute(QUERY)
            refused += 1
        assert refused == DEFAULT_COOLDOWN - 1
        # the next boundary promotes to half-open; the probe (schedule
        # exhausted) succeeds and closes the breaker
        assert_results_equal(clean, con.execute(QUERY))
        assert breaker.state == "closed"


class TestShardRouteAround:
    def test_tripped_shard_is_excluded_and_tables_repartition(
        self, points_db, assert_results_equal
    ):
        con = points_db.connect("SHARD:3xCPU")
        clean = con.execute(QUERY)
        sick = wrap_shard_child(con.backend, 1, {
            k: NodeFault("shard 1 down", node=1) for k in (1, 2, 3)
        })
        assert_results_equal(clean, con.execute(QUERY))
        backend = con.backend
        assert backend._excluded == {1}
        assert backend.partitioner.active == (0, 2)
        assert len(backend.children) == 2
        assert backend.breakers().breaker(("shard", 1)).state == "open"
        # the sick node's physical roster slot is untouched
        assert backend.all_children[1] is sick

    def test_excluded_shard_receives_no_work(
        self, points_db, assert_results_equal
    ):
        con = points_db.connect("SHARD:3xCPU")
        clean = con.execute(QUERY)
        sick = wrap_shard_child(con.backend, 1, {
            k: NodeFault("shard 1 down", node=1) for k in (1, 2, 3)
        })
        assert_results_equal(clean, con.execute(QUERY))
        stalled = sick.ops_seen
        # inside the cooldown window the excluded shard stays silent
        for _ in range(DEFAULT_COOLDOWN - 2):
            assert_results_equal(clean, con.execute(QUERY))
        assert sick.ops_seen == stalled

    def test_half_open_probe_refails_then_shard_finally_rejoins(
        self, points_db, assert_results_equal
    ):
        con = points_db.connect("SHARD:3xCPU")
        clean = con.execute(QUERY)
        sick = wrap_shard_child(con.backend, 1, {
            k: NodeFault("shard 1 down", node=1) for k in (1, 2, 3, 4)
        })
        backend = con.backend
        breaker = backend.breakers().breaker(("shard", 1))
        # fault 1-3 trip the breaker; fault 4 fails the first half-open
        # probe, re-tripping with doubled backoff; the schedule then
        # runs dry and the next probe readmits the shard for good
        rejoined_at = None
        for query in range(2 * DEFAULT_COOLDOWN + 6):
            assert_results_equal(clean, con.execute(QUERY), f"q{query}")
            if rejoined_at is None and not backend._excluded:
                rejoined_at = query
        assert rejoined_at is not None
        assert breaker.trips == 2            # initial trip + failed probe
        assert breaker.state == "closed"
        assert backend._excluded == set()
        assert backend.partitioner.active == (0, 1, 2)
        assert len(backend.children) == 3
        assert len(sick.injected) == 4       # every scheduled fault fired

    def test_last_healthy_shard_is_never_excluded(self, points_db):
        con = points_db.connect("SHARD:2xCPU")
        con.execute(QUERY)
        wrap_shard_child(con.backend, 0, {
            k: NodeFault("shard 0 down", node=0) for k in range(1, 9)
        })
        wrap_shard_child(con.backend, 1, {
            k: NodeFault("shard 1 down", node=1) for k in range(1, 9)
        })
        with pytest.raises(NodeFault):
            con.execute(QUERY)
        # exactly one shard was excluded; the last one failed the query
        assert len(con.backend._excluded) == 1


class TestDeviceBan:
    def _trip_device_one(self, con):
        con.backend = FaultyBackend(con.backend, {
            k: NodeFault("device 1 down", node=1) for k in (1, 2, 3)
        })
        con._scheduler = None

    def test_tripped_device_is_banned_from_placement(
        self, points_db, assert_results_equal
    ):
        con = points_db.connect("HET")
        clean = con.execute(QUERY)
        self._trip_device_one(con)
        assert_results_equal(clean, con.execute(QUERY))
        backend = con.backend.inner
        assert backend.placer.banned == {1}
        assert backend.breakers().breaker(("device", 1)).state == "open"
        backend.decision_log.clear()
        assert_results_equal(clean, con.execute(QUERY))
        placed_on = {device for _op, device in backend.decision_log}
        assert placed_on and 1 not in placed_on

    def test_cooldown_unbans_and_the_device_serves_again(
        self, points_db, assert_results_equal
    ):
        con = points_db.connect("HET")
        clean = con.execute(QUERY)
        self._trip_device_one(con)
        assert_results_equal(clean, con.execute(QUERY))
        backend = con.backend.inner
        for _ in range(DEFAULT_COOLDOWN):
            assert_results_equal(clean, con.execute(QUERY))
        assert backend.placer.banned == set()
        assert backend.breakers().breaker(("device", 1)).state == "closed"
        # fresh placement (no stale banned-era replay) sees both devices
        points_db.plan_cache.clear()
        assert_results_equal(clean, con.execute(QUERY))

    def test_last_healthy_device_is_never_banned(self, points_db):
        con = points_db.connect("HET")
        con.execute(QUERY)
        schedule = {}
        for k in range(1, 30):
            schedule[k] = NodeFault("down", node=k % 2)
        con.backend = FaultyBackend(con.backend, schedule)
        con._scheduler = None
        with pytest.raises(NodeFault):
            con.execute(QUERY)
        assert len(con.backend.inner.placer.banned) <= 1
