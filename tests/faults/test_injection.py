"""Scheduler-path fault injection: park-and-retry under OOM, the
retry-queue starvation fix, bounded re-parks, deadlines, cancellation,
admission control, and transient re-routing — all through
``Connection.submit``."""

import pytest

from repro.ocelot.memory import OcelotOOM
from repro.serve import (
    MAX_PARKS,
    CircuitOpen,
    FaultyBackend,
    NodeFault,
    QueryCancelled,
    QueryTimeout,
    TransientFault,
)
from repro.serve.faults import wrap_shard_child

QUERY = "SELECT x, sum(y) AS s FROM points GROUP BY x"
OTHER = "SELECT sum(y) AS s FROM points WHERE x < 4"


def _faulty(con, schedule):
    faulty = FaultyBackend(con.backend, schedule)
    con.backend = faulty
    con._scheduler = None
    return faulty


class TestParkAndRetry:
    def test_oom_parks_then_completes(self, points_db, assert_results_equal):
        con = points_db.connect("MS")
        clean = con.execute(QUERY)
        _faulty(con, {1: OcelotOOM("boom"), 2: OcelotOOM("boom")})
        future = con.submit(QUERY)
        con.drain()
        assert future.exception() is None
        assert_results_equal(clean, future.result())
        # parked twice (one per OOM), completed on the third run
        parked = [s for s, op in con.scheduler.turn_log if op == "parked"]
        assert len(parked) == 2

    def test_reparks_are_bounded(self, points_db, assert_results_equal):
        con = points_db.connect("MS")
        clean = con.execute(QUERY)
        # each run dies on its first operator: the initial run plus
        # MAX_PARKS re-runs consume exactly MAX_PARKS + 1 faults
        _faulty(con, {k: OcelotOOM("boom")
                      for k in range(1, MAX_PARKS + 2)})
        future = con.submit(QUERY)
        con.drain()
        # initial run + MAX_PARKS re-runs all OOMed: the error surfaces
        assert isinstance(future.exception(), OcelotOOM)
        parked = [op for _s, op in con.scheduler.turn_log if op == "parked"]
        assert len(parked) == MAX_PARKS
        # the connection is not poisoned (schedule ran dry)
        assert_results_equal(clean, con.execute(QUERY))

    def test_parked_query_is_not_starved_by_new_arrivals(
        self, points_db, assert_results_equal
    ):
        """Regression: a steady arrival stream used to keep a parked
        query waiting forever.  New submissions are held back until the
        retry queue drains — the twice-parked query completes *before*
        the later arrival runs."""
        con = points_db.connect("MS")
        clean = {QUERY: con.execute(QUERY), OTHER: con.execute(OTHER)}
        _faulty(con, {1: OcelotOOM("boom"), 2: OcelotOOM("boom")})
        first = con.submit(QUERY)
        scheduler = con.scheduler
        scheduler.step()                      # first run OOMs: parked
        late = [con.submit(OTHER) for _ in range(3)]
        assert len(scheduler._pending) == 3   # held behind the retry
        con.drain()
        assert_results_equal(clean[QUERY], first.result())
        for future in late:
            assert_results_equal(clean[OTHER], future.result())
        # ordering: the parked query's completing run precedes every
        # late arrival's run in the turn log
        ops = [op for _s, op in scheduler.turn_log]
        assert ops == ["parked", "parked", "query",
                       "query", "query", "query"]
        sessions = [s for s, op in scheduler.turn_log if op == "query"]
        assert sessions[0] == first.session


class TestDeadlinesAndCancellation:
    def test_submit_timeout_fails_the_query(self, points_db):
        con = points_db.connect("MS")
        future = con.submit(QUERY, timeout=1e-9)
        con.drain()
        assert isinstance(future.exception(), QueryTimeout)
        # the engine stays healthy for deadline-free work
        assert con.execute(QUERY).n_rows == 8

    def test_spec_level_timeout_applies_to_every_submit(self, points_db):
        con = points_db.connect("MS:timeout=1e-9")
        futures = [con.submit(QUERY), con.submit(OTHER)]
        con.drain()
        for future in futures:
            assert isinstance(future.exception(), QueryTimeout)
        # a generous spec deadline lets the same queries finish
        roomy = points_db.connect("MS:timeout=1e6")
        ok = roomy.submit(QUERY)
        roomy.drain()
        assert ok.exception() is None

    def test_pipelined_timeout(self, points_db):
        con = points_db.connect("HET")
        doomed = con.submit(QUERY, timeout=1e-9)
        fine = con.submit(OTHER)
        con.drain()
        assert isinstance(doomed.exception(), QueryTimeout)
        assert fine.exception() is None

    def test_cancel_running_query(self, points_db):
        con = points_db.connect("HET")
        keep = con.submit(QUERY)
        doomed = con.submit(OTHER)
        assert doomed.cancel()
        con.drain()
        assert isinstance(doomed.exception(), QueryCancelled)
        assert keep.exception() is None
        assert not doomed.cancel()            # already finished

    def test_cancel_pending_query_fails_it_immediately(self, points_db):
        con = points_db.connect("HET:admission=1")
        con.submit(QUERY)
        pending = con.submit(OTHER)
        assert pending.cancel()
        assert pending.done()                 # no drain needed
        assert isinstance(pending.exception(), QueryCancelled)
        con.drain()


class TestAdmissionControl:
    def test_concurrency_cap_holds_submissions_back(
        self, points_db, assert_results_equal
    ):
        con = points_db.connect("HET:admission=2")
        clean = con.execute(QUERY)
        futures = [con.submit(QUERY) for _ in range(5)]
        scheduler = con.scheduler
        assert len(scheduler) <= 2
        while scheduler.step():
            assert len(scheduler) <= 2        # never over the cap
        for future in futures:
            assert_results_equal(clean, future.result())

    def test_memory_budget_defers_submissions(
        self, points_db, assert_results_equal
    ):
        con = points_db.connect("HET")
        clean = con.execute(QUERY)
        scheduler = con.scheduler
        # both columns of `points` are bound by the query; a budget of
        # 1.5 plans admits one in-flight query at a time
        per_query = scheduler._estimate_bytes(
            points_db.plan_cache.prepare(
                QUERY, con.config, points_db.schema
            )[1]
        )
        assert per_query > 0
        scheduler.memory_budget = int(1.5 * per_query)
        futures = [con.submit(QUERY) for _ in range(3)]
        assert len(scheduler) == 1
        while scheduler.step():
            assert scheduler._inflight_bytes <= scheduler.memory_budget
        for future in futures:
            assert_results_equal(clean, future.result())

    def test_open_breaker_refuses_submission(self, points_db):
        con = points_db.connect("MS")
        con.execute(QUERY)
        _faulty(con, {k: TransientFault("down") for k in (1, 2, 3)})
        with pytest.raises(TransientFault):
            con.execute(QUERY)                # trips the self breaker
        future = con.submit(QUERY)
        assert future.done()                  # refused at admission
        assert isinstance(future.exception(), CircuitOpen)


class TestTransientRerouteViaSubmit:
    def test_shard_fault_parks_reroutes_and_completes(
        self, points_db, assert_results_equal
    ):
        con = points_db.connect("SHARD:3xCPU")
        clean = con.execute(QUERY)
        wrap_shard_child(con.backend, 1, {
            k: NodeFault("shard 1 down", node=1) for k in (1, 2, 3)
        })
        future = con.submit(QUERY)
        con.drain()
        assert future.exception() is None
        assert_results_equal(clean, future.result())
        assert con.backend._excluded == {1}
        parked = [op for _s, op in con.scheduler.turn_log
                  if op == "parked"]
        assert len(parked) == MAX_PARKS       # two retries + the trip

    def test_concurrent_queries_survive_the_reroute(
        self, points_db, assert_results_equal
    ):
        """Two interleaved queries both tripping over the same sick
        shard: the breaker trips once, the topology changes once, and
        both queries complete correctly on the healthy remainder."""
        con = points_db.connect("SHARD:3xCPU")
        clean = {QUERY: con.execute(QUERY), OTHER: con.execute(OTHER)}
        wrap_shard_child(con.backend, 1, {
            k: NodeFault("shard 1 down", node=1) for k in (1, 2, 3)
        })
        faulted = con.submit(QUERY)
        innocent = con.submit(OTHER)
        con.drain()
        assert_results_equal(clean[QUERY], faulted.result())
        assert_results_equal(clean[OTHER], innocent.result())
        assert con.backend._excluded == {1}
