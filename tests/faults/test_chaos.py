"""Seeded chaos: the elastic cluster under randomized fire (PR 10).

Every TPC-H workload query must return the clean run's answer while
nodes are killed, promoted, recovered, and the cluster is grown and
shrunk mid-workload.  The schedule is randomized but reproducible: the
seed comes from ``REPRO_CHAOS_SEED`` (CI sets it per run and prints
it), defaults to a fixed value locally, and is embedded in every
assertion context so a failure names the exact schedule that broke.
"""

import os

import numpy as np
import pytest

from repro.serve.faults import NodeFault, wrap_shard_node
from repro.tpch.queries import WORKLOAD

#: reproducible chaos: export REPRO_CHAOS_SEED=<n> to replay a failure
SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1307"))


def _kill(backend, node):
    wrappers = wrap_shard_node(backend, node)
    for wrapper in wrappers:
        wrapper.always = NodeFault(f"node {node} down")
    return wrappers


def _heal(wrappers):
    for wrapper in wrappers:
        wrapper.always = None


def _await_rejoin(backend, bound=80):
    for _ in range(bound):
        if not backend.routing.degraded:
            return
        backend.query_boundary()


class TestSeededChaos:
    def test_workload_survives_kill_promote_grow_shrink(
        self, tpch_db, assert_results_equal
    ):
        """One full arc — kill, recover, ``add_shard``,
        ``remove_shard`` — at seeded positions inside a seeded
        permutation of all 14 workload queries."""
        rng = np.random.default_rng(SEED)
        con = tpch_db.connect("SHARD:4xCPU,replicas=2")
        clean = {qid: con.execute(sql) for qid, sql in WORKLOAD.items()}
        backend = con.backend

        qids = sorted(WORKLOAD)
        order = [qids[i] for i in rng.permutation(len(qids))]
        kill_at = int(rng.integers(0, 4))
        recover_at = kill_at + int(rng.integers(2, 5))
        grow_at = recover_at + int(rng.integers(1, 3))
        shrink_at = grow_at + int(rng.integers(1, 3))
        victim = int(rng.integers(0, 4))
        events: list = []
        wrappers: list = []

        for index, qid in enumerate(order):
            if index == kill_at:
                wrappers = _kill(backend, victim)
                events.append(f"kill node {victim}")
            elif index == recover_at:
                _heal(wrappers)
                _await_rejoin(backend)
                events.append(f"recover node {victim}")
            elif index == grow_at:
                tpch_db.add_shard()
                wrappers = []        # the resize rebuilt the roster
                events.append("add_shard -> 5")
            elif index == shrink_at:
                tpch_db.remove_shard()
                events.append("remove_shard -> 4")
            context = (f"REPRO_CHAOS_SEED={SEED} step {index} "
                       f"query {qid} after {events}")
            assert_results_equal(
                clean[qid], con.execute(WORKLOAD[qid]), context
            )

        stats = backend.cluster_stats()
        detail = f"REPRO_CHAOS_SEED={SEED} events {events}"
        assert stats.promotions >= 1, f"no failover exercised: {detail}"
        assert stats.recoveries >= 1, f"no rejoin exercised: {detail}"
        assert stats.ranges_migrated > 0, detail
        assert stats.topology_changes >= 2, detail
        assert backend.cluster_nodes() == 4, detail

    def test_rolling_kills_every_node(
        self, points_db, assert_results_equal
    ):
        """Rolling restart: every node is killed and recovered once, in
        seeded order, with queries landing inside every window."""
        rng = np.random.default_rng(SEED + 1)
        sql = "SELECT x, sum(y) AS s, count(*) AS n FROM points GROUP BY x"
        con = points_db.connect("SHARD:4xCPU,replicas=2")
        clean = con.execute(sql)
        backend = con.backend
        signatures = dict(backend.partitioner._signatures)

        killed = []
        for victim in rng.permutation(4):
            victim = int(victim)
            wrappers = _kill(backend, victim)
            killed.append(victim)
            context = f"REPRO_CHAOS_SEED={SEED + 1} kill order {killed}"
            assert_results_equal(clean, con.execute(sql), context)
            _heal(wrappers)
            _await_rejoin(backend)
            assert not backend.routing.degraded, context
            assert_results_equal(clean, con.execute(sql), context)

        stats = backend.cluster_stats()
        assert stats.promotions >= 4
        assert stats.recoveries >= 4
        # the whole rolling restart never re-partitioned anything
        assert dict(backend.partitioner._signatures) == signatures
        assert tuple(backend.partitioner.active) == (0, 1, 2, 3)
