"""Per-query counter hygiene across failed queries (PR 9).

A query that dies mid-plan — injected node fault, timeout, or a hard
error — must not leak its per-query counters into the next query's
snapshot.  The reset happens at ``query_boundary()`` (which both the
sync path and the session scheduler run before admission), not in
``begin()`` alone, because pipelined engines never call ``begin``.
"""

import pytest

from repro.serve import FaultyBackend, QueryTimeout
from repro.serve.faults import wrap_shard_child

QUERY = "SELECT x, sum(y) AS s FROM points GROUP BY x"
OTHER = "SELECT sum(y) AS s FROM points WHERE x < 4"
#: a global sort gathers rows *before* fanning the sort to the shards,
#: so killing the last child operator strands mid-plan traffic
SORTQ = "SELECT x, y FROM points ORDER BY y"


class HardFault(RuntimeError):
    """Not a TransientFault: no retry, no reroute — the query dies."""


def _query_traffic(con):
    traffic = con.interconnect.query
    return {
        "broadcast": traffic.bytes_broadcast,
        "shuffled": traffic.bytes_shuffled,
        "gathered": traffic.bytes_gathered,
    }


class TestShardTrafficHygiene:
    def test_sync_failure_does_not_leak_into_next_query(
        self, points_db, assert_results_equal
    ):
        con = points_db.connect("SHARD:3xMS")
        clean_result = con.execute(OTHER)
        clean = _query_traffic(con)
        # probe how many operators shard 0 runs for the sort, then kill
        # the next run at its very last child operator — the pre-sort
        # gather's traffic has been charged by then
        probe = wrap_shard_child(con.backend, 0, {})
        con.execute(SORTQ)
        probe.schedule[2 * probe.ops_seen] = HardFault("boom")
        with pytest.raises(HardFault):
            con.execute(SORTQ)
        assert con.interconnect.query.bytes_total > 0, (
            "the killed query should leave mid-plan residue"
        )
        result = con.execute(OTHER)
        assert_results_equal(clean_result, result)
        assert _query_traffic(con) == clean

    def test_timeout_mid_plan_does_not_leak(self, points_db):
        con = points_db.connect("SHARD:2xMS")
        con.execute(OTHER)
        clean = _query_traffic(con)
        future = con.submit(QUERY, timeout=1e-12)
        con.drain()
        assert isinstance(future.exception(), QueryTimeout)
        con.execute(OTHER)
        assert _query_traffic(con) == clean

    def test_pipelined_path_resets_between_queries(self, points_db):
        """The scheduler path never calls ``begin()`` — the
        ``query_boundary`` reset is what keeps the per-query counters
        per-query."""
        con = points_db.connect("SHARD:2xMS")
        con.execute(OTHER)
        clean = _query_traffic(con)
        f1 = con.submit(QUERY)
        con.drain()
        assert f1.exception() is None
        after_first = _query_traffic(con)
        assert sum(after_first.values()) > 0
        assert after_first != clean
        f2 = con.submit(OTHER)
        con.drain()
        assert f2.exception() is None
        assert _query_traffic(con) == clean

    def test_live_reference_stays_live_across_reset(self, points_db):
        con = points_db.connect("SHARD:2xMS")
        live = con.interconnect.query        # held across queries
        con.execute(QUERY)
        assert live.bytes_total > 0
        con.execute(OTHER)
        assert live is con.interconnect.query


class TestMetricsSnapshotHygiene:
    def test_failed_query_then_diff_around_next_is_clean(
        self, points_db, assert_results_equal
    ):
        """A fault mid-query must not poison ``metrics.diff`` around
        the *next* query: the per-query interconnect deltas reflect
        only the clean query, and the killed query never counts as
        completed."""
        con = points_db.connect("SHARD:2xMS")
        clean_result = con.execute(OTHER)
        clean = _query_traffic(con)
        probe = wrap_shard_child(con.backend, 1, {})
        con.execute(SORTQ)
        completed = con.metrics.queries
        probe.schedule[2 * probe.ops_seen] = HardFault("boom")
        with pytest.raises(HardFault):
            con.execute(SORTQ)
        assert con.interconnect.query.bytes_total > 0
        assert con.metrics.queries == completed
        before = con.metrics.snapshot()
        result = con.execute(OTHER)
        assert_results_equal(clean_result, result)
        changed = con.metrics.diff(before)
        assert changed["obs.queries"] == 1
        snap = con.metrics.snapshot()
        assert snap["interconnect.query.bytes_broadcast"] == (
            clean["broadcast"]
        )
        assert snap["interconnect.query.bytes_gathered"] == (
            clean["gathered"]
        )

    def test_query_counter_not_bumped_by_failures(self, points_db):
        con = points_db.connect("MS")
        con.execute(QUERY)
        assert con.metrics.queries == 1
        faulty = FaultyBackend(con.backend, {1: HardFault("boom")})
        con.backend = faulty
        con._scheduler = None
        with pytest.raises(HardFault):
            con.execute(QUERY)
        assert con.metrics.queries == 1
        faulty.schedule.clear()
        con.execute(QUERY)
        assert con.metrics.queries == 2
