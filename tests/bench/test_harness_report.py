"""The benchmark harness and reporting helpers."""

import numpy as np
import pytest

from repro.bench import (
    CONFIGS,
    Measurement,
    Series,
    format_series,
    monotone_increasing,
    roughly_flat,
    speedup,
    uniform_column,
)


def test_uniform_column_scaling_math():
    values, scale = uniform_column(64, actual_elems=1 << 16)
    assert values.size == 1 << 16
    nominal_elems = 64 * 1024 * 1024 // 4
    assert values.size * scale == pytest.approx(nominal_elems)


def test_uniform_column_small_nominal_not_padded():
    values, scale = uniform_column(0.001, actual_elems=1 << 20)
    assert values.size < 1 << 20
    assert scale == pytest.approx(1.0)


def test_uniform_column_distinct_domain():
    values, _ = uniform_column(1, distinct=7, actual_elems=4096)
    assert values.min() >= 0 and values.max() < 7


def _series():
    s = Series(name="demo", x_label="MB", labels=("MS", "GPU"))
    s.points.append(Measurement(64, {"MS": 10.0, "GPU": 2.0}))
    s.points.append(Measurement(128, {"MS": 20.0, "GPU": None}))
    return s


def test_format_series_renders_oom_dash():
    text = format_series(_series())
    assert "demo" in text and "-" in text
    assert "10.0" in text


def test_speedup_and_helpers():
    s = _series()
    assert speedup(s, fast="GPU", slow="MS", at=64) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        speedup(s, fast="GPU", slow="MS", at=128)
    assert monotone_increasing([1, 2, 3, 2.95])
    assert not monotone_increasing([3, 1])
    assert roughly_flat([10, 11, 12], ratio=1.3)
    assert not roughly_flat([10, 30], ratio=1.3)


def test_configs_cover_the_paper():
    # the paper's four configurations plus the §7 HET extension
    assert set(CONFIGS) == {"MS", "MP", "CPU", "GPU", "HET"}
    assert CONFIGS["CPU"].is_ocelot and not CONFIGS["MS"].is_ocelot
    assert CONFIGS["HET"].is_ocelot
    # the reproduced figures sweep exactly the paper's configurations
    from repro.bench.configs import ALL_LABELS

    assert ALL_LABELS == ("MS", "MP", "CPU", "GPU")


def test_trace_exclusions():
    """Footnotes 11/12: merge / hash-build components can be excluded."""
    from repro.bench.harness import BenchContext
    from repro.monetdb import Catalog, MALBuilder

    catalog = Catalog()
    catalog.create_table("t", {"a": np.arange(50_000, dtype=np.int32)})
    ctx = BenchContext(catalog, labels=("MP",))
    builder = MALBuilder("q")
    a = builder.bind("t", "a")
    lpos, rpos = builder.emit("algebra", "join", (a, a), n_results=2)
    program = builder.returns([("n", builder.emit("aggr", "count", (lpos,)))])
    full, _ = ctx.run_query("MP", program, runs=1)
    no_build = ctx.trace_seconds("MP", exclude_serial=True)
    no_merge = ctx.trace_seconds("MP", exclude_merge=True)
    assert no_build < full
    assert no_merge < full
