"""Radix sort: key encoding bijection + full multi-pass pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.radix_sort import (
    encode_keys,
    key_bits_for,
    key_dtype_for,
    key_kind_for,
    num_passes,
)


class TestKeyEncoding:
    @given(st.lists(st.integers(-2**31, 2**31 - 1), min_size=2, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_int32_order_preserving(self, values):
        col = np.array(values, dtype=np.int32)
        keys = encode_keys(col)
        order_keys = np.argsort(keys, kind="stable")
        order_vals = np.argsort(col, kind="stable")
        assert np.array_equal(order_keys, order_vals)

    @given(st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=2, max_size=200,
    ))
    @settings(max_examples=40, deadline=None)
    def test_float32_order_preserving(self, values):
        col = np.array(values, dtype=np.float32)
        keys = encode_keys(col)
        assert np.array_equal(
            np.argsort(keys, kind="stable"), np.argsort(col, kind="stable")
        )

    @given(st.lists(
        st.floats(-1e300, 1e300, allow_nan=False), min_size=2, max_size=100,
    ))
    @settings(max_examples=30, deadline=None)
    def test_float64_order_preserving(self, values):
        col = np.array(values, dtype=np.float64)
        keys = encode_keys(col)
        assert keys.dtype == np.uint64
        assert np.array_equal(
            np.argsort(keys, kind="stable"), np.argsort(col, kind="stable")
        )

    def test_int64_order_preserving(self):
        col = np.array([-(2**62), -1, 0, 1, 2**62], dtype=np.int64)
        keys = encode_keys(col)
        assert np.all(np.diff(keys.astype(object)) > 0)

    def test_kind_and_dtype_mapping(self):
        assert key_kind_for(np.int32) == 1
        assert key_kind_for(np.float32) == 2
        assert key_kind_for(np.uint32) == 0
        assert key_dtype_for(np.float64) == np.uint64
        assert key_bits_for(np.int32) == 32
        assert key_bits_for(np.float64) == 64
        with pytest.raises(TypeError):
            key_kind_for(np.int16)

    def test_num_passes(self):
        assert num_passes(8) == 4      # CPU: radix 8 (paper §5.2.7)
        assert num_passes(4) == 8      # GPU: radix 4
        assert num_passes(8, 64) == 8


def _device_sort(rig, col):
    """Drive the full multi-pass pipeline through the command queue."""
    n = col.size
    bits = 8 if rig.ctx.device.is_cpu else 4
    radix = 1 << bits
    parts = rig.ctx.device.profile.total_invocations
    ukeys = rig.empty(n, key_dtype_for(col.dtype))
    rig.run("key_encode", ukeys, rig.buf(col), n, key_kind_for(col.dtype))
    payload = rig.empty(n, np.uint32)
    rig.run("iota", payload, n, 0)
    keys_b = rig.empty(n, ukeys.dtype)
    pay_b = rig.empty(n, np.uint32)
    hist = rig.empty(parts * radix, np.uint32)
    offsets = rig.empty(parts * radix, np.uint32)
    keys_a, pay_a = ukeys, payload
    for p in range(num_passes(bits, key_bits_for(col.dtype))):
        rig.run("radix_histogram", hist, keys_a, n, p * bits, parts)
        rig.run("radix_offsets", offsets, hist, parts)
        rig.run("radix_reorder", keys_b, pay_b, keys_a, pay_a, offsets,
                n, p * bits, parts)
        keys_a, keys_b = keys_b, keys_a
        pay_a, pay_b = pay_b, pay_a
    return pay_a.array[:n].copy()


class TestFullSort:
    @pytest.mark.parametrize("dtype", [np.int32, np.float32, np.uint32])
    def test_matches_stable_argsort(self, rig, dtype):
        rng = np.random.default_rng(9)
        if np.dtype(dtype).kind == "f":
            col = rng.normal(0, 1e6, 5000).astype(dtype)
        else:
            col = rng.integers(-2**31, 2**31 - 1, 5000).astype(dtype)
        order = _device_sort(rig, col)
        assert np.array_equal(order, np.argsort(col, kind="stable"))

    def test_duplicates_stable(self, rig):
        col = np.array([3, 1, 3, 1, 3, 2], dtype=np.int32)
        order = _device_sort(rig, col)
        assert np.array_equal(order, [1, 3, 5, 0, 2, 4])

    def test_negative_values(self, rig):
        col = np.array([5, -3, 0, -2**31, 2**31 - 1, -1], dtype=np.int32)
        order = _device_sort(rig, col)
        assert np.array_equal(col[order], np.sort(col))

    def test_sixty_four_bit_keys(self, rig):
        rng = np.random.default_rng(10)
        col = rng.normal(0, 1e9, 2000).astype(np.float64)
        order = _device_sort(rig, col)
        assert np.array_equal(order, np.argsort(col, kind="stable"))
