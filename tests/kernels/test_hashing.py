"""Parallel hashing: optimistic/pessimistic build + probe (paper §4.1.4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import bitmap_nbytes, count_bits
from repro.kernels.hashing import (
    EMPTY,
    NUM_HASH_FUNCTIONS,
    PROBE_LIMIT,
    hash_slot,
)


def build_table(rig, keys: np.ndarray, vals: np.ndarray, m: int):
    n = keys.size
    tkeys = rig.empty(m, np.uint32)
    tvals = rig.empty(m, np.uint32)
    rig.run("fill", tkeys, m, int(EMPTY))
    rig.run("fill", tvals, m, 0)
    kb, vb = rig.buf(keys), rig.buf(vals)
    rig.run("ht_insert_optimistic", tkeys, tvals, kb, vb, n, m)
    fail = rig.zeros(bitmap_nbytes(n), np.uint8)
    rig.run("ht_check", fail, tkeys, kb, n, m)
    stats = rig.zeros(2, np.uint32)
    rig.run("ht_insert_pessimistic", tkeys, tvals, stats, kb, vb, fail, n, m)
    return tkeys, tvals, int(stats.array[1])


def probe(rig, tkeys, tvals, keys: np.ndarray, m: int):
    n = keys.size
    out = rig.empty(n, np.uint32)
    found = rig.zeros(bitmap_nbytes(n), np.uint8)
    rig.run("ht_probe", out, found, tkeys, tvals, rig.buf(keys), n, m)
    mask = np.unpackbits(found.array, bitorder="little", count=n).astype(bool)
    return out.array[:n], mask


class TestHashFunctions:
    def test_six_strong_functions(self):
        assert NUM_HASH_FUNCTIONS == 6

    def test_slots_in_range_and_distinct_per_function(self):
        keys = np.arange(1000, dtype=np.uint32)
        slots = [hash_slot(keys, f, 509) for f in range(NUM_HASH_FUNCTIONS)]
        for s in slots:
            assert s.min() >= 0 and s.max() < 509
        # different functions should disagree on most keys
        disagree = np.mean(slots[0] != slots[1])
        assert disagree > 0.9

    def test_deterministic(self):
        keys = np.array([42], dtype=np.uint32)
        assert hash_slot(keys, 0, 97)[0] == hash_slot(keys, 0, 97)[0]


class TestBuildProbe:
    def test_unique_keys_all_inserted(self, rig):
        keys = (np.arange(500, dtype=np.uint32) * 2654435761) % 1_000_000
        keys = np.unique(keys).astype(np.uint32)
        vals = np.arange(keys.size, dtype=np.uint32)
        m = int(1.4 * keys.size) + 1
        tkeys, tvals, unplaced = build_table(rig, keys, vals, m)
        assert unplaced == 0
        got, mask = probe(rig, tkeys, tvals, keys, m)
        assert mask.all()
        assert np.array_equal(got, vals)

    def test_duplicate_keys_one_slot(self, rig):
        keys = np.full(1000, 7, dtype=np.uint32)
        vals = keys.copy()
        tkeys, tvals, unplaced = build_table(rig, keys, vals, 101)
        assert unplaced == 0
        occupied = int((tkeys.array != EMPTY).sum())
        assert occupied == 1

    def test_absent_keys_not_found(self, rig):
        keys = np.arange(0, 100, 2, dtype=np.uint32)       # evens
        tkeys, tvals, _ = build_table(rig, keys, keys, 149)
        absent = np.arange(1, 100, 2, dtype=np.uint32)      # odds
        _, mask = probe(rig, tkeys, tvals, absent, 149)
        assert not mask.any()

    def test_mixed_probe(self, rig):
        keys = np.array([10, 20, 30], dtype=np.uint32)
        tkeys, tvals, _ = build_table(
            rig, keys, np.array([1, 2, 3], np.uint32), 17
        )
        got, mask = probe(
            rig, tkeys, tvals, np.array([20, 99, 10], np.uint32), 17
        )
        assert list(mask) == [True, False, True]
        assert got[0] == 2 and got[2] == 1

    def test_fill_rate_75_percent(self, rig):
        """The paper's sizing: 1.4x over-allocation for ~75 % fill."""
        keys = np.unique(
            np.random.default_rng(3).integers(0, 2**30, 4000)
        ).astype(np.uint32)
        m = int(1.4 * keys.size) + 1
        tkeys, tvals, unplaced = build_table(rig, keys, keys, m)
        assert unplaced == 0
        fill = float((tkeys.array != EMPTY).sum()) / m
        assert 0.6 < fill < 0.8

    def test_overfull_table_reports_unplaced(self, rig):
        keys = np.arange(200, dtype=np.uint32)
        m = 100  # cannot possibly fit
        _, _, unplaced = build_table(rig, keys, keys, m)
        assert unplaced > 0

    @given(st.integers(1, 400), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_probe_total_property(self, n, seed):
        """Every inserted key is found with its value; vec driver only."""
        from repro.cl.kernel import ExecContext
        from repro.kernels import KERNEL_LIBRARY
        from repro import cl

        rng = np.random.default_rng(seed)
        keys = np.unique(rng.integers(0, 2**31, n)).astype(np.uint32)
        vals = (keys * 3 + 1).astype(np.uint32)
        m = int(1.4 * keys.size) + 7
        ctx = ExecContext(cl.get_device("cpu"), {}, 64, 16)
        tkeys = np.full(m, EMPTY, np.uint32)
        tvals = np.zeros(m, np.uint32)
        KERNEL_LIBRARY["ht_insert_optimistic"].vec_fn(
            ctx, tkeys, tvals, keys, vals, keys.size, m
        )
        fail = np.zeros(bitmap_nbytes(keys.size), np.uint8)
        KERNEL_LIBRARY["ht_check"].vec_fn(ctx, fail, tkeys, keys,
                                          keys.size, m)
        stats = np.zeros(2, np.uint32)
        KERNEL_LIBRARY["ht_insert_pessimistic"].vec_fn(
            ctx, tkeys, tvals, stats, keys, vals, fail, keys.size, m
        )
        assert stats[1] == 0
        out = np.zeros(keys.size, np.uint32)
        found = np.zeros(bitmap_nbytes(keys.size), np.uint8)
        KERNEL_LIBRARY["ht_probe"].vec_fn(
            ctx, out, found, tkeys, tvals, keys, keys.size, m
        )
        assert count_bits(found, keys.size) == keys.size
        assert np.array_equal(out, vals)

    def test_table_pairs_consistent(self, rig):
        """(key, value) slots are written together: values match keys."""
        keys = np.unique(
            np.random.default_rng(5).integers(0, 10**6, 2000)
        ).astype(np.uint32)
        vals = (keys ^ 0xABCD).astype(np.uint32)
        m = int(1.4 * keys.size) + 1
        tkeys, tvals, _ = build_table(rig, keys, vals, m)
        occupied = tkeys.array != EMPTY
        assert np.array_equal(
            tvals.array[occupied], tkeys.array[occupied] ^ 0xABCD
        )

    def test_probe_limit_bounds_linear_scan(self):
        assert PROBE_LIMIT >= 16
