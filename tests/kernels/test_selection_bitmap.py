"""Selection bitmaps and bitmap algebra (paper §4.1.1/4.1.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import bitmap_nbytes, count_bits, predicate_mask
from repro.kernels.bitmap import POPCOUNT, tail_mask


@pytest.mark.parametrize("op,lo,hi", [
    ("<", 50, None), ("<=", 50, None), (">", 50, None), (">=", 50, None),
    ("==", 50, None), ("!=", 50, None),
    ("[]", 20, 60), ("[)", 20, 60), ("(]", 20, 60), ("()", 20, 60),
])
def test_select_bitmap_predicates(rig, op, lo, hi):
    rng = np.random.default_rng(42)
    col = rng.integers(0, 100, 1003).astype(np.int32)
    bm = rig.zeros(bitmap_nbytes(1003), np.uint8)
    rig.run("select_bitmap", bm, rig.buf(col), 1003, op, lo, hi, False)
    expected = predicate_mask(col, op, lo, hi)
    got = np.unpackbits(bm.array, bitorder="little", count=1003).astype(bool)
    assert np.array_equal(got, expected)


def test_select_anti(rig):
    col = np.arange(20, dtype=np.int32)
    bm = rig.zeros(bitmap_nbytes(20), np.uint8)
    rig.run("select_bitmap", bm, rig.buf(col), 20, "[)", 5, 10, True)
    got = np.unpackbits(bm.array, bitorder="little", count=20).astype(bool)
    assert np.array_equal(got, ~((col >= 5) & (col < 10)))


def test_select_float_column(rig):
    col = np.array([0.1, 0.5, 0.9, 0.5], dtype=np.float32)
    bm = rig.zeros(bitmap_nbytes(4), np.uint8)
    rig.run("select_bitmap", bm, rig.buf(col), 4, "==",
            np.float32(0.5), None, False)
    assert count_bits(bm.array, 4) == 2


def test_tail_bits_zero(rig):
    """Bits beyond n stay clear so popcounts are exact."""
    col = np.ones(11, dtype=np.int32)
    bm = rig.zeros(bitmap_nbytes(11), np.uint8)
    rig.run("select_bitmap", bm, rig.buf(col), 11, "==", 1, None, False)
    assert count_bits(bm.array, 11) == 11
    assert bm.array[1] == tail_mask(11)  # 0b00000111


def test_unknown_predicate_rejected():
    with pytest.raises(ValueError):
        predicate_mask(np.zeros(4, np.int32), "~~", 1, 2)


class TestBitmapAlgebra:
    def test_and_or_xor(self, rig):
        a = np.array([0b1010, 0b1111], dtype=np.uint8)
        b = np.array([0b0110, 0b0000], dtype=np.uint8)
        out = rig.zeros(2, np.uint8)
        rig.run("bitmap_binop", out, rig.buf(a), rig.buf(b), 2, "and")
        assert np.array_equal(out.array, a & b)
        rig.run("bitmap_binop", out, rig.buf(a), rig.buf(b), 2, "or")
        assert np.array_equal(out.array, a | b)
        rig.run("bitmap_binop", out, rig.buf(a), rig.buf(b), 2, "xor")
        assert np.array_equal(out.array, a ^ b)

    def test_not_masks_tail(self, rig):
        a = np.array([0xFF, 0x07], dtype=np.uint8)
        out = rig.zeros(2, np.uint8)
        rig.run("bitmap_not", out, rig.buf(a), 11, 2)
        assert out.array[0] == 0x00
        assert out.array[1] == 0x00  # bits 8..10 were set, rest masked

    def test_popcount_table(self):
        assert POPCOUNT[0] == 0
        assert POPCOUNT[255] == 8
        assert POPCOUNT[0b10110000] == 3


class TestMaterialisation:
    """count -> prefix sum -> write (paper §4.1.2)."""

    def _materialise(self, rig, bits: np.ndarray):
        n = len(bits)
        packed = np.packbits(bits, bitorder="little")
        bm = rig.buf(packed if packed.size else np.zeros(1, np.uint8))
        parts = 16
        counts = rig.zeros(parts, np.uint32)
        rig.run("bitmap_count", counts, bm, bitmap_nbytes(n), parts)
        offsets = rig.zeros(parts + 1, np.uint32)
        rig.run("prefix_sum", offsets, counts, parts)
        total = int(offsets.array[parts])
        oids = rig.zeros(max(total, 1), np.uint32)
        if total:
            rig.run("bitmap_write_oids", oids, bm, offsets, n, parts)
        return oids.array[:total], total

    def test_known_positions(self, rig):
        bits = np.zeros(50, np.uint8)
        bits[[3, 17, 33, 49]] = 1
        oids, total = self._materialise(rig, bits)
        assert total == 4
        assert np.array_equal(oids, [3, 17, 33, 49])

    def test_empty_bitmap(self, rig):
        oids, total = self._materialise(rig, np.zeros(64, np.uint8))
        assert total == 0

    def test_all_set(self, rig):
        oids, total = self._materialise(rig, np.ones(77, np.uint8))
        assert total == 77
        assert np.array_equal(oids, np.arange(77))

    @given(st.binary(min_size=0, max_size=64), st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, raw, extra):
        """materialise(pack(bits)) == nonzero(bits) for arbitrary bitmaps."""
        from repro.cl.kernel import ExecContext
        from repro.kernels import KERNEL_LIBRARY
        from repro import cl

        packed = np.frombuffer(raw, dtype=np.uint8).copy()
        n = max(0, packed.size * 8 - extra)
        if packed.size:
            packed[-1] &= tail_mask(n)
        ctx = ExecContext(cl.get_device("cpu"), {}, 16, 16)
        parts = 16
        counts = np.zeros(parts, np.uint32)
        KERNEL_LIBRARY["bitmap_count"].vec_fn(
            ctx, counts, packed, bitmap_nbytes(n), parts
        )
        offsets = np.zeros(parts + 1, np.uint32)
        KERNEL_LIBRARY["prefix_sum"].vec_fn(ctx, offsets, counts, parts)
        total = int(offsets[parts])
        expected = np.nonzero(
            np.unpackbits(packed, bitorder="little", count=n)
        )[0]
        assert total == expected.size
        if total:
            oids = np.zeros(total, np.uint32)
            KERNEL_LIBRARY["bitmap_write_oids"].vec_fn(
                ctx, oids, packed, offsets, n, parts
            )
            assert np.array_equal(oids, expected.astype(np.uint32))


def test_oids_to_bitmap_inverse(rig):
    oids = np.array([1, 5, 8, 31], dtype=np.uint32)
    bm = rig.zeros(bitmap_nbytes(32), np.uint8)
    rig.run("oids_to_bitmap", bm, rig.buf(oids), 4, 32)
    got = np.nonzero(
        np.unpackbits(bm.array, bitorder="little", count=32)
    )[0]
    assert np.array_equal(got, oids)
    assert count_bits(bm.array, 32) == 4
