"""Join expansion, grouping, and grouped-aggregation kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import bitmap_nbytes, segmented_reduce
from repro.kernels.aggregation import accumulators_for


class TestNestedLoopJoin:
    def test_count_and_write(self, rig):
        left = np.array([1, 5, 3], dtype=np.int32)
        right = np.array([2, 4, 6], dtype=np.int32)
        counts = rig.zeros(3, np.uint32)
        rig.run("nlj_count", counts, rig.buf(left), rig.buf(right), 3, 3, "<")
        assert np.array_equal(counts.array, [3, 1, 2])
        offsets = rig.zeros(4, np.uint32)
        rig.run("prefix_sum", offsets, counts, 3)
        total = int(offsets.array[3])
        assert total == 6
        l_out = rig.empty(total, np.uint32)
        r_out = rig.empty(total, np.uint32)
        l_oids = rig.buf(np.arange(3, dtype=np.uint32))
        r_oids = rig.buf(np.arange(3, dtype=np.uint32))
        rig.run("nlj_write", l_out, r_out, offsets, rig.buf(left),
                rig.buf(right), l_oids, r_oids, 3, 3, "<")
        pairs = set(zip(l_out.array.tolist(), r_out.array.tolist()))
        expected = {
            (i, j) for i in range(3) for j in range(3)
            if left[i] < right[j]
        }
        assert pairs == expected

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "==", "!="])
    def test_all_theta_ops(self, rig, op):
        rng = np.random.default_rng(11)
        left = rng.integers(0, 10, 20).astype(np.int32)
        right = rng.integers(0, 10, 15).astype(np.int32)
        counts = rig.zeros(20, np.uint32)
        rig.run("nlj_count", counts, rig.buf(left), rig.buf(right),
                20, 15, op)
        from repro.kernels.join import _theta_mask

        assert np.array_equal(
            counts.array, _theta_mask(left, right, op).sum(axis=1)
        )


class TestJoinExpansion:
    def test_gather_counts_respects_found(self, rig):
        run_counts = np.array([2, 5, 1], dtype=np.uint32)
        run_idx = np.array([0, 2, 1, 0], dtype=np.uint32)
        found = np.packbits([1, 0, 1, 1], bitorder="little")
        counts = rig.zeros(4, np.uint32)
        rig.run("join_gather_counts", counts, rig.buf(run_counts),
                rig.buf(run_idx), rig.buf(found), 4)
        assert np.array_equal(counts.array, [2, 0, 5, 2])

    def test_expand(self, rig):
        # two runs: run 0 = build rows [10, 11], run 1 = [20]
        run_starts = np.array([0, 2], dtype=np.uint32)
        run_counts = np.array([2, 1], dtype=np.uint32)
        build_oids = np.array([10, 11, 20], dtype=np.uint32)
        run_idx = np.array([1, 0], dtype=np.uint32)
        found = np.packbits([1, 1], bitorder="little")
        counts = np.array([1, 2], dtype=np.uint32)
        offsets = rig.zeros(3, np.uint32)
        rig.run("prefix_sum", offsets, rig.buf(counts), 2)
        lpos = rig.empty(3, np.uint32)
        rpos = rig.empty(3, np.uint32)
        left_oids = rig.buf(np.array([100, 200], np.uint32))
        rig.run("join_expand", lpos, rpos, offsets, rig.buf(run_idx),
                rig.buf(run_starts), rig.buf(run_counts),
                rig.buf(build_oids), left_oids, rig.buf(found), 2)
        assert np.array_equal(lpos.array, [100, 200, 200])
        assert np.array_equal(rpos.array, [20, 10, 11])


class TestGroupBoundaries:
    def test_sorted_runs(self, rig):
        col = np.array([1, 1, 2, 2, 2, 5], dtype=np.int32)
        bounds = rig.zeros(6, np.uint32)
        rig.run("group_boundaries", bounds, rig.buf(col), 6)
        assert np.array_equal(bounds.array, [0, 0, 1, 0, 0, 1])

    def test_combine_ids(self, rig):
        a = np.array([0, 1, 2], dtype=np.uint32)
        b = np.array([1, 0, 1], dtype=np.uint32)
        out = rig.empty(3, np.uint32)
        rig.run("combine_ids", out, rig.buf(a), rig.buf(b), 3, 2)
        assert np.array_equal(out.array, [1, 2, 5])

    def test_combine_overflow_detected(self, rig):
        a = np.array([2**20], dtype=np.uint32)
        b = np.array([0], dtype=np.uint32)
        out = rig.empty(1, np.uint32)
        with pytest.raises(OverflowError):
            rig.run("combine_ids", out, rig.buf(a), rig.buf(b), 1, 2**13)


class TestSegmentedReduce:
    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(-100, 100)),
                 min_size=1, max_size=300)
    )
    @settings(max_examples=40, deadline=None)
    def test_sum_min_max_count(self, pairs):
        gids = np.array([p[0] for p in pairs], dtype=np.uint32)
        vals = np.array([p[1] for p in pairs], dtype=np.int32)
        sums = segmented_reduce(gids, vals, 6, "sum", np.int64)
        counts = segmented_reduce(gids, None, 6, "count", np.int64)
        mins = segmented_reduce(gids, vals, 6, "min", np.int32)
        maxs = segmented_reduce(gids, vals, 6, "max", np.int32)
        for g in range(6):
            members = vals[gids == g]
            assert counts[g] == members.size
            assert sums[g] == members.sum() if members.size else sums[g] == 0
            if members.size:
                assert mins[g] == members.min()
                assert maxs[g] == members.max()


class TestGroupedAggKernels:
    def test_partial_plus_final(self, rig):
        rng = np.random.default_rng(12)
        gids = rng.integers(0, 7, 3000).astype(np.uint32)
        vals = rng.normal(0, 10, 3000).astype(np.float32)
        groups = rig.ctx.device.profile.num_work_groups
        partials = rig.ctx.create_buffer(
            np.zeros((groups, 7), np.float64)
        )
        rig.run("grouped_agg_partial", partials, rig.buf(gids),
                rig.buf(vals), 3000, 7, "sum", 4, True)
        result = rig.empty(7, np.float64)
        rig.run("grouped_agg_final", result, partials, 7, "sum")
        expected = np.bincount(gids, weights=vals, minlength=7)
        assert np.allclose(result.array, expected, rtol=1e-9)

    @pytest.mark.parametrize("op", ["min", "max", "count"])
    def test_other_ops(self, rig, op):
        rng = np.random.default_rng(13)
        gids = rng.integers(0, 5, 999).astype(np.uint32)
        vals = rng.integers(-50, 50, 999).astype(np.int32)
        groups = rig.ctx.device.profile.num_work_groups
        acc = np.int64 if op == "count" else np.int32
        partials_arr = np.zeros((groups, 5), acc)
        if op == "min":
            partials_arr[:] = np.iinfo(np.int32).max
        if op == "max":
            partials_arr[:] = np.iinfo(np.int32).min
        partials = rig.ctx.create_buffer(partials_arr)
        rig.run("grouped_agg_partial", partials, rig.buf(gids),
                rig.buf(vals), 999, 5, op, 1, True)
        result = rig.empty(5, acc)
        rig.run("grouped_agg_final", result, partials, 5, op)
        expected = segmented_reduce(gids, vals, 5, op, acc)
        assert np.array_equal(result.array, expected)

    def test_accumulators_inversely_proportional(self):
        """The paper's contention mitigation policy."""
        few, local_few = accumulators_for(4, 48 * 1024)
        many, local_many = accumulators_for(10_000, 48 * 1024)
        assert few > many
        assert local_few
        assert many >= 1

    def test_accumulators_respect_local_memory(self):
        accums, fits = accumulators_for(100, 256)  # tiny local memory
        assert accums * 100 * 8 <= 256 or not fits
