"""Shared fixtures: a built program + queue per device type."""

import numpy as np
import pytest

from repro import cl
from repro.kernels import KERNEL_LIBRARY


class KernelRig:
    """Context + queue + compiled program for direct kernel testing."""

    def __init__(self, device_kind: str):
        self.ctx = cl.Context(cl.get_device(device_kind))
        self.queue = cl.CommandQueue(self.ctx)
        radix = 8 if self.ctx.device.is_cpu else 4
        self.program = cl.build(self.ctx, KERNEL_LIBRARY,
                                {"RADIX_BITS": radix})

    def buf(self, array, tag=""):
        return self.ctx.create_buffer(np.ascontiguousarray(array), tag=tag)

    def empty(self, n, dtype, tag=""):
        return self.ctx.empty(max(int(n), 1), dtype, tag=tag)

    def zeros(self, n, dtype, tag=""):
        return self.ctx.zeros(max(int(n), 1), dtype, tag=tag)

    def run(self, kernel, *args, **kw):
        return self.program.kernel(kernel).launch(self.queue, *args, **kw)


@pytest.fixture(params=["cpu", "gpu"], scope="module")
def rig(request):
    return KernelRig(request.param)
