"""Parallel primitives: scan, gather/scatter, reduce, element-wise."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.primitives import _BINOPS


class TestPrefixSum:
    def test_exclusive_scan(self, rig):
        data = np.arange(1, 101, dtype=np.uint32)
        out = rig.zeros(100, np.uint32)
        rig.run("prefix_sum", out, rig.buf(data), 100)
        expected = np.concatenate(([0], np.cumsum(data)[:-1]))
        assert np.array_equal(out.array, expected)

    def test_total_slot(self, rig):
        """The optional (n+1)-th slot receives the total."""
        data = np.full(10, 3, dtype=np.uint32)
        out = rig.zeros(11, np.uint32)
        rig.run("prefix_sum", out, rig.buf(data), 10)
        assert out.array[10] == 30

    @given(st.lists(st.integers(0, 1000), min_size=0, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_scan_property(self, values):
        from repro.cl.kernel import ExecContext
        from repro.kernels import KERNEL_LIBRARY
        from repro import cl

        data = np.array(values, dtype=np.uint32)
        out = np.zeros(max(len(values), 1), np.uint32)
        ctx = ExecContext(cl.get_device("cpu"), {}, 64, 16)
        KERNEL_LIBRARY["prefix_sum"].vec_fn(ctx, out, data, len(values))
        if values:
            assert out[0] == 0
            assert np.array_equal(
                out[: len(values)],
                np.concatenate(([0], np.cumsum(data)[:-1])),
            )


class TestGatherScatter:
    def test_gather(self, rig):
        src = np.arange(100, dtype=np.float32) * 1.5
        idx = np.array([5, 0, 99, 50, 5], dtype=np.uint32)
        out = rig.empty(5, np.float32)
        rig.run("gather", out, rig.buf(src), rig.buf(idx), 5)
        assert np.array_equal(out.array, src[idx])

    def test_scatter(self, rig):
        src = np.array([10, 20, 30], dtype=np.int32)
        idx = np.array([7, 1, 4], dtype=np.uint32)
        out = rig.zeros(10, np.int32)
        rig.run("scatter", out, rig.buf(src), rig.buf(idx), 3)
        expected = np.zeros(10, np.int32)
        expected[idx] = src
        assert np.array_equal(out.array, expected)

    @given(st.integers(1, 500), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_gather_scatter_roundtrip(self, n, seed):
        """scatter(out, gather(src, perm), perm) == src for permutations."""
        from repro.cl.kernel import ExecContext
        from repro.kernels import KERNEL_LIBRARY
        from repro import cl

        rng = np.random.default_rng(seed)
        src = rng.integers(0, 1000, n).astype(np.int32)
        perm = rng.permutation(n).astype(np.uint32)
        ctx = ExecContext(cl.get_device("gpu"), {}, 64, 16)
        gathered = np.zeros(n, np.int32)
        KERNEL_LIBRARY["gather"].vec_fn(ctx, gathered, src, perm, n)
        back = np.zeros(n, np.int32)
        KERNEL_LIBRARY["scatter"].vec_fn(ctx, back, gathered, perm, n)
        assert np.array_equal(back, src)


class TestReduce:
    @pytest.mark.parametrize("op,np_fn", [
        ("sum", np.sum), ("min", np.min), ("max", np.max),
    ])
    def test_reduce_two_stage(self, rig, op, np_fn):
        rng = np.random.default_rng(7)
        data = rng.normal(100, 20, 10_000).astype(np.float32)
        groups = rig.ctx.device.profile.num_work_groups
        partials = rig.empty(groups, np.float64)
        rig.run("reduce_partial", partials, rig.buf(data), 10_000, op)
        result = rig.empty(1, np.float64)
        rig.run("reduce_final", result, partials, groups, op)
        assert result.array[0] == pytest.approx(
            float(np_fn(data.astype(np.float64))), rel=1e-9
        )

    def test_reduce_int_accumulator(self, rig):
        data = np.full(1000, 2**20, dtype=np.int32)
        groups = rig.ctx.device.profile.num_work_groups
        partials = rig.empty(groups, np.int64)
        rig.run("reduce_partial", partials, rig.buf(data), 1000, "sum")
        result = rig.empty(1, np.int64)
        rig.run("reduce_final", result, partials, groups, "sum")
        assert result.array[0] == 1000 * 2**20  # no int32 overflow


class TestEwise:
    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div"])
    def test_ewise_float(self, rig, op):
        rng = np.random.default_rng(op.encode()[0])
        a = rng.uniform(1, 10, 256).astype(np.float32)
        b = rng.uniform(1, 10, 256).astype(np.float32)
        out = rig.empty(256, np.float32)
        rig.run("ewise", out, rig.buf(a), rig.buf(b), 256, op)
        assert np.allclose(out.array, _BINOPS[op](a, b), rtol=1e-6)

    def test_ewise_scalar_and_reversed(self, rig):
        a = np.arange(1, 11, dtype=np.float32)
        out = rig.empty(10, np.float32)
        rig.run("ewise_scalar", out, rig.buf(a), 10, "rsub", 1.0)
        assert np.allclose(out.array, 1.0 - a)
        rig.run("ewise_scalar", out, rig.buf(a), 10, "rdiv", 100.0)
        assert np.allclose(out.array, 100.0 / a)

    def test_ewise_intdiv(self, rig):
        dates = np.array([19940101, 19951231, 19980715], dtype=np.int32)
        out = rig.empty(3, np.int32)
        rig.run("ewise_scalar", out, rig.buf(dates), 3, "intdiv", 10000)
        assert np.array_equal(out.array, [1994, 1995, 1998])

    def test_logical_ops_uint8(self, rig):
        a = np.array([0, 1, 0, 2], dtype=np.uint8)
        b = np.array([0, 0, 3, 1], dtype=np.uint8)
        out = rig.empty(4, np.uint8)
        rig.run("ewise", out, rig.buf(a), rig.buf(b), 4, "and")
        assert np.array_equal(out.array, [0, 0, 0, 1])
        rig.run("ewise", out, rig.buf(a), rig.buf(b), 4, "or")
        assert np.array_equal(out.array, [0, 1, 1, 1])


class TestCompareWhere:
    def test_compare_vv_vs(self, rig):
        a = np.array([1, 5, 3], dtype=np.int32)
        b = np.array([2, 5, 1], dtype=np.int32)
        out = rig.empty(3, np.uint8)
        rig.run("compare_vv", out, rig.buf(a), rig.buf(b), 3, "lt")
        assert np.array_equal(out.array, [1, 0, 0])
        rig.run("compare_vs", out, rig.buf(a), 3, "ge", 3)
        assert np.array_equal(out.array, [0, 1, 1])

    def test_where_variants(self, rig):
        cond = np.array([1, 0, 1, 0], dtype=np.uint8)
        a = np.array([10, 20, 30, 40], dtype=np.int32)
        b = np.array([-1, -2, -3, -4], dtype=np.int32)
        out = rig.empty(4, np.int32)
        rig.run("where_vv", out, rig.buf(cond), rig.buf(a), rig.buf(b), 4)
        assert np.array_equal(out.array, [10, -2, 30, -4])
        rig.run("where_vs", out, rig.buf(cond), rig.buf(a), 4, 0)
        assert np.array_equal(out.array, [10, 0, 30, 0])
        rig.run("where_ss", out, rig.buf(cond), 4, 1, 0)
        assert np.array_equal(out.array, [1, 0, 1, 0])


class TestFillIota:
    def test_fill(self, rig):
        out = rig.empty(16, np.uint32)
        rig.run("fill", out, 16, 0xFFFFFFFF)
        assert np.all(out.array == 0xFFFFFFFF)

    def test_iota(self, rig):
        out = rig.empty(10, np.uint32)
        rig.run("iota", out, 10, 5)
        assert np.array_equal(out.array, np.arange(5, 15, dtype=np.uint32))
