"""Compressed execution end to end: zero-decode guarantees on the
covered operator paths, auto-vs-off result equality on every engine
family, and physical (encoded) interconnect accounting on SHARD."""

import numpy as np
import pytest

import repro

ENGINES = ("MS", "MP", "CPU", "GPU", "HET", "SHARD:2xMS")


def _off_spec(engine: str) -> str:
    return (f"{engine},compression=off" if ":" in engine
            else f"{engine}:compression=off")


def _assert_equal(a_result, b_result, context):
    assert set(a_result.columns) == set(b_result.columns), context
    for column in a_result.columns:
        a = a_result.columns[column]
        b = b_result.columns[column]
        assert a.shape == b.shape, (context, column)
        if a.dtype.kind == "f" or b.dtype.kind == "f":
            np.testing.assert_allclose(
                a.astype(np.float64), b.astype(np.float64),
                rtol=1e-4, atol=1e-6, err_msg=f"{context}:{column}",
            )
        else:
            np.testing.assert_array_equal(
                a, b, err_msg=f"{context}:{column}"
            )


@pytest.mark.needs_encoded_storage
class TestZeroDecode:
    """The covered paths execute in the compressed domain: no encoded
    base column is ever fully materialised."""

    @pytest.fixture(scope="class")
    def dict_db(self):
        rng = np.random.default_rng(23)
        palette = np.linspace(1.0, 640.0, 64).astype(np.float32)
        db = repro.Database()
        db.create_table("t", {
            "v": rng.choice(palette, 1 << 14),
        })
        assert db.catalog.bat("t", "v").encoding.kind == "dict"
        yield db
        db.close()

    @pytest.fixture(scope="class")
    def rle_db(self):
        db = repro.Database()
        db.create_table("t", {
            "v": np.repeat(
                np.arange(100, dtype=np.int32) * 7, 1 << 8
            ),
        })
        assert db.catalog.bat("t", "v").encoding.kind == "rle"
        yield db
        db.close()

    @pytest.mark.parametrize("engine", ("MS", "CPU", "GPU", "HET"))
    def test_dict_selection_never_decodes(self, dict_db, engine):
        con = dict_db.connect(engine)
        before = con.compression.snapshot()
        got = con.execute(
            "SELECT count(*) AS n FROM t WHERE v <= 320.0"
        )
        after = con.compression
        assert after.decode_events == before.decode_events
        raw = dict_db.catalog.bat("t", "v").encoding.decode()
        assert int(got.column("n")[0]) == int((raw <= 320.0).sum())

    @pytest.mark.parametrize("engine", ("MS", "CPU", "GPU", "HET"))
    def test_rle_aggregation_never_decodes(self, rle_db, engine):
        con = rle_db.connect(engine)
        before = con.compression.snapshot()
        got = con.execute(
            "SELECT sum(v) AS s, min(v) AS lo, max(v) AS hi FROM t"
        )
        after = con.compression
        assert after.decode_events == before.decode_events
        raw = rle_db.catalog.bat("t", "v").encoding.decode()
        assert int(got.column("s")[0]) == int(raw.astype(np.int64).sum())
        assert int(got.column("lo")[0]) == int(raw.min())
        assert int(got.column("hi")[0]) == int(raw.max())

    def test_dict_sum_stays_in_code_domain(self, dict_db):
        con = dict_db.connect("CPU")
        before = con.compression.snapshot()
        got = con.execute("SELECT sum(v) AS s FROM t")
        assert con.compression.decode_events == before.decode_events
        raw = dict_db.catalog.bat("t", "v").encoding.decode()
        assert got.column("s")[0] == pytest.approx(
            raw.astype(np.float64).sum(), rel=1e-6
        )

    def test_result_materialisation_does_decode(self, dict_db):
        """Late materialisation: projecting the column out decodes it
        (once — the decoded tail is cached)."""
        con = dict_db.connect("MS")
        before = con.compression.snapshot()
        con.execute("SELECT v FROM t WHERE v <= 20.0")
        after = con.compression
        assert (
            after.decode_events + after.partial_decodes
            > before.decode_events + before.partial_decodes
        )


class TestAutoVsOff:
    """Identical results with compression on and off, every family.

    The ``off`` connections run plain plans over the *same* encoded
    storage, exercising the whole-column decode fallback; the CI
    ``compression-off`` job additionally runs the suites with
    ``REPRO_COMPRESSION=off`` so plain storage cannot rot either.
    """

    @pytest.fixture(scope="class")
    def db(self):
        database = repro.tpch_database(sf=0.2)
        yield database
        database.close()

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("query_id", ("Q1", "Q6", "Q12", "Q15"))
    def test_fast_subset(self, db, engine, query_id):
        from repro.tpch import WORKLOAD

        sql = WORKLOAD[query_id]
        auto = db.connect(engine).execute(sql, name=query_id)
        off = db.connect(_off_spec(engine)).execute(sql, name=query_id)
        _assert_equal(auto, off, f"{engine}/{query_id}")


class TestShardPhysicalTraffic:
    @pytest.fixture(scope="class")
    def db(self):
        rng = np.random.default_rng(29)
        n = 1 << 14
        database = repro.Database()
        database.create_table("big", {
            "k": rng.integers(0, 64, n).astype(np.int32),
            "v": rng.integers(0, 200, n).astype(np.int32),
        })
        yield database
        database.close()

    @pytest.mark.needs_encoded_storage
    def test_gathered_bytes_physical_below_nominal(self, db):
        con = db.connect("SHARD:2xMS")
        con.execute("SELECT v FROM big")
        traffic = con.interconnect.query
        assert traffic.bytes_total > 0
        # the uint8 FOR payload crosses the wire, not the int32 tail
        assert traffic.bytes_total_physical < traffic.bytes_total / 2

    def test_plain_storage_keeps_physical_equal(self):
        rng = np.random.default_rng(31)
        with repro.Database() as db:
            db.create_table("big", {
                "v": rng.integers(0, 1 << 62, 1 << 14).astype(np.int64),
            })
            con = db.connect("SHARD:2xMS")
            con.execute("SELECT v FROM big")
            traffic = con.interconnect.query
            assert traffic.bytes_total > 0
            assert traffic.bytes_total_physical == traffic.bytes_total
