"""Codec units: round trips, slicing, widths, and the ``auto`` policy."""

import numpy as np
import pytest

from repro.compress.codecs import (
    MAX_PHYSICAL_FRACTION,
    MIN_ENCODE_ROWS,
    DictEncoding,
    FOREncoding,
    RLEEncoding,
    choose_encoding,
)


def _roundtrip(codec_cls, values):
    encoding = codec_cls.encode(values)
    decoded = encoding.decode()
    assert decoded.dtype == values.dtype
    np.testing.assert_array_equal(decoded, values)
    return encoding


class TestDict:
    def test_roundtrip_and_narrow_codes(self):
        rng = np.random.default_rng(3)
        values = rng.choice(
            np.linspace(1.0, 9.0, 40).astype(np.float32), size=4000
        )
        encoding = _roundtrip(DictEncoding, values)
        assert encoding.codes.dtype == np.uint8
        assert encoding.physical_nbytes < encoding.nominal_nbytes

    def test_dictionary_is_sorted(self):
        values = np.array([5, 1, 5, 3, 1, 3] * 10, dtype=np.int32)
        encoding = DictEncoding.encode(values)
        assert np.array_equal(encoding.dictionary, [1, 3, 5])

    def test_width_grows_with_cardinality(self):
        values = np.arange(300, dtype=np.int32)
        assert DictEncoding.encode(values).codes.dtype == np.uint16

    def test_slice_matches_plain_slice(self):
        values = np.array([7, 7, 2, 9, 2, 2, 7, 9], dtype=np.int64)
        encoding = DictEncoding.encode(values)
        np.testing.assert_array_equal(
            encoding.slice_(2, 6).decode(), values[2:6]
        )


class TestRLE:
    def test_roundtrip_runs(self):
        values = np.repeat(
            np.array([4, 4, 1, 8], dtype=np.int32), [5, 3, 7, 2]
        )
        encoding = _roundtrip(RLEEncoding, values)
        # adjacent equal run values merge
        assert encoding.n_runs == 3
        assert encoding.count == values.size

    def test_slice_cuts_runs(self):
        values = np.repeat(np.arange(6, dtype=np.int32), 10)
        encoding = RLEEncoding.encode(values)
        for lo, hi in ((0, 60), (5, 55), (9, 11), (30, 30), (17, 18)):
            np.testing.assert_array_equal(
                encoding.slice_(lo, hi).decode(), values[lo:hi],
                err_msg=f"[{lo}:{hi}]",
            )

    def test_empty(self):
        encoding = RLEEncoding.encode(np.empty(0, dtype=np.float32))
        assert encoding.count == 0
        assert encoding.decode().dtype == np.float32


class TestFOR:
    def test_roundtrip_and_narrow_deltas(self):
        values = (np.arange(2000) % 200 + 19940000).astype(np.int32)
        encoding = _roundtrip(FOREncoding, values)
        assert encoding.frame == 19940000
        assert encoding.deltas.dtype == np.uint8

    def test_negative_frame(self):
        values = np.array([-50, -20, -50, -3] * 8, dtype=np.int64)
        _roundtrip(FOREncoding, values)

    def test_slice_matches_plain_slice(self):
        values = np.arange(100, dtype=np.int32) + 1000
        encoding = FOREncoding.encode(values)
        np.testing.assert_array_equal(
            encoding.slice_(10, 20).decode(), values[10:20]
        )


class TestAutoPolicy:
    def test_off_never_encodes(self):
        assert choose_encoding(np.zeros(1000, np.int32), "off") is None

    def test_short_columns_stay_plain(self):
        assert choose_encoding(
            np.zeros(MIN_ENCODE_ROWS - 1, np.int32), "auto"
        ) is None

    def test_nan_stays_plain(self):
        values = np.full(1000, np.nan, dtype=np.float64)
        assert choose_encoding(values, "auto") is None

    def test_incompressible_stays_plain(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 1 << 62, 4096).astype(np.int64)
        assert choose_encoding(values, "auto") is None

    def test_constant_column_prefers_rle(self):
        encoding = choose_encoding(np.zeros(10000, np.int32), "auto")
        assert encoding is not None and encoding.kind == "rle"

    def test_small_range_ints_take_for(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 200, 10000).astype(np.int32)
        encoding = choose_encoding(values, "auto")
        # FOR has no dictionary to store, so it narrowly beats dict here
        assert encoding is not None and encoding.kind == "for"

    def test_low_cardinality_floats_take_dict(self):
        rng = np.random.default_rng(9)
        palette = np.linspace(0.0, 1.0, 30).astype(np.float32)
        encoding = choose_encoding(rng.choice(palette, 10000), "auto")
        assert encoding is not None and encoding.kind == "dict"

    def test_forced_mode_restricts_the_codec(self):
        rng = np.random.default_rng(11)
        values = rng.integers(0, 200, 10000).astype(np.int32)
        assert choose_encoding(values, "dict").kind == "dict"
        assert choose_encoding(values, "for").kind == "for"
        # scattered values: forcing rle cannot beat the plain tail
        assert choose_encoding(values, "rle") is None

    def test_win_must_beat_the_fraction_gate(self):
        chosen = choose_encoding(
            np.arange(10000, dtype=np.int32), "auto"
        )
        if chosen is not None:
            assert chosen.physical_nbytes < (
                chosen.nominal_nbytes * MAX_PHYSICAL_FRACTION
            )
