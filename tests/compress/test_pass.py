"""The compression rewrite pass and its gating (spec param + env)."""

import numpy as np
import pytest

import repro
from repro.compress import COMPRESSION_ENV, compress_program
from repro.engines import EngineSpecError, default_registry
from repro.monetdb.mal import MALBuilder


def _select_plan():
    builder = MALBuilder("plan")
    column = builder.bind("t", "v")
    selected = builder.emit(
        "algebra", "select", (column, None, 0, 10, True, True, False)
    )
    # a second selection over the *result* — not bind-direct
    narrowed = builder.emit(
        "algebra", "select", (selected, None, 0, 5, True, True, False)
    )
    total = builder.emit("aggr", "sum", (column,))
    return builder.returns([("s", total), ("oids", narrowed)])


class TestPass:
    def test_bind_direct_consumers_rewritten(self):
        program = compress_program(_select_plan(), "auto")
        ops = [i.op for i in program.instructions]
        assert "compress.select" in ops
        assert "compress.sum" in ops
        # the non-bind-direct selection stays an ordinary operator
        assert ops.count("compress.select") == 1
        assert "algebra.select" in ops

    def test_mode_literal_appended(self):
        program = compress_program(_select_plan(), "dict")
        rewritten = [
            i for i in program.instructions if i.module == "compress"
        ]
        assert rewritten and all(i.args[-1] == "dict" for i in rewritten)

    def test_off_is_a_no_op(self):
        plan = _select_plan()
        assert compress_program(plan, "off") is plan

    def test_idempotent(self):
        once = compress_program(_select_plan(), "auto")
        assert compress_program(once, "auto") is once


class TestGating:
    @pytest.mark.parametrize("family", ["MS", "MP", "CPU", "GPU", "HET"])
    def test_every_simple_family_accepts_the_param(self, family):
        config = default_registry.resolve(f"{family}:compression=dict")
        assert config.compression == "dict"
        assert default_registry.resolve(family).compression == "auto"

    def test_shard_accepts_the_param(self):
        config = default_registry.resolve("SHARD:2xMS,compression=off")
        assert config.compression == "off"

    def test_off_words_normalise(self):
        for word in ("off", "false", "no", "0"):
            config = default_registry.resolve(f"MS:compression={word}")
            assert config.compression == "off"
        assert default_registry.resolve(
            "MP:compression=on"
        ).compression == "auto"

    @pytest.mark.parametrize("bad", [
        "MS:compression=zip",
        "MS:compression=dict,compression=rle",
        "SHARD:2xMS,compression=lz4",
    ])
    def test_bad_values_rejected(self, bad):
        with pytest.raises(EngineSpecError):
            default_registry.resolve(bad)

    def test_env_override_beats_the_spec(self, monkeypatch):
        config = default_registry.resolve("CPU:compression=dict")
        monkeypatch.setenv(COMPRESSION_ENV, "off")
        assert config.effective_compression() == "off"
        monkeypatch.setenv(COMPRESSION_ENV, "rle")
        assert config.effective_compression() == "rle"
        monkeypatch.delenv(COMPRESSION_ENV)
        assert config.effective_compression() == "dict"


@pytest.mark.needs_encoded_storage
class TestServeIntegration:
    @pytest.fixture()
    def db(self):
        rng = np.random.default_rng(13)
        database = repro.Database()
        database.create_table("t", {
            "v": rng.integers(0, 100, 4096).astype(np.int32),
        })
        yield database
        database.close()

    def test_modes_are_distinct_plan_cache_entries(self, db):
        sql = "SELECT sum(v) AS s FROM t"
        on = db.connect("CPU").explain(sql)
        off = db.connect("CPU:compression=off").explain(sql)
        assert "compress.sum" in on
        assert "compress." not in off
        misses = db.plan_cache.stats.misses
        assert misses >= 2          # one compilation per mode

    def test_explain_annotates_encodings(self, db):
        text = db.connect("MS").explain("SELECT sum(v) AS s FROM t")
        assert "# encodings:" in text
        assert "t.v=for(uint8)" in text

    def test_no_annotation_for_plain_storage(self):
        rng = np.random.default_rng(17)
        with repro.Database() as db:
            db.create_table("t", {
                "v": rng.integers(0, 1 << 62, 4096).astype(np.int64),
            })
            text = db.connect("MS").explain("SELECT sum(v) AS s FROM t")
            assert "# encodings:" not in text

    def test_connection_compression_counters(self, db):
        stats = db.connect("MS").compression
        assert stats.columns_encoded == 1
        assert stats.bytes_physical < stats.bytes_nominal
        assert stats.ratio > 1.0

    def test_shard_folds_child_catalogs(self, db):
        stats = db.connect("SHARD:2xMS").compression
        # driver catalog + two shard partitions, re-encoded per shard
        assert stats.columns_encoded == 3
