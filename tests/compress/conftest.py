"""Shared gating for the compression suite.

The CI ``compression-off`` A/B job runs these tests with
``REPRO_COMPRESSION=off``, which forces *storage* plain — tests that
exist to observe encoded storage (zero-decode counters, explain
annotations, physical interconnect bytes) are vacuous there and skip;
everything codec- and pass-level still runs.
"""

import os

import pytest


def _storage_forced_plain() -> bool:
    return os.environ.get("REPRO_COMPRESSION", "").strip().lower() in (
        "off", "0", "false", "no"
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "needs_encoded_storage: skipped when REPRO_COMPRESSION=off "
        "forces plain base-column storage",
    )


def pytest_collection_modifyitems(config, items):
    if not _storage_forced_plain():
        return
    skip = pytest.mark.skip(
        reason="REPRO_COMPRESSION=off forces plain storage"
    )
    for item in items:
        if item.get_closest_marker("needs_encoded_storage"):
            item.add_marker(skip)
