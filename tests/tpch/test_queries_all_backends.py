"""The flagship integration test: every workload query returns identical
results on MS, MP, Ocelot-CPU, Ocelot-GPU and the heterogeneous HET
scheduler (the paper's drop-in claim, end to end through SQL, optimizer
pipelines, rewriter and engines)."""

import numpy as np
import pytest

from repro.bench.configs import CONFIGS
from repro.monetdb import Catalog, run_program
from repro.tpch import WORKLOAD, compile_query, generate


@pytest.fixture(scope="module")
def contexts():
    data = generate(sf=0.5)
    catalog = Catalog()
    data.install(catalog)
    return {
        label: (config, config.make(catalog, data.data_scale))
        for label, config in CONFIGS.items()
    }


@pytest.mark.parametrize("query_id", list(WORKLOAD))
def test_query_agrees_across_all_configurations(contexts, query_id):
    program = compile_query(query_id)
    results = {}
    for label, (config, backend) in contexts.items():
        results[label] = run_program(config.plan(program), backend)

    base = results["MS"]
    assert base.n_rows >= 0
    for label in ("MP", "CPU", "GPU", "HET"):
        other = results[label]
        assert set(base.columns) == set(other.columns), label
        for col in base.columns:
            a, b = base.columns[col], other.columns[col]
            assert a.shape == b.shape, (label, col)
            if a.dtype.kind == "f" or b.dtype.kind == "f":
                assert np.allclose(
                    a.astype(np.float64), b.astype(np.float64),
                    rtol=1e-4, atol=1e-6,
                ), (label, col)
            else:
                assert np.array_equal(a, b), (label, col)


def test_simulated_times_positive_and_ordered(contexts):
    """On the SF-scaled workload the broad ordering MS > MP holds."""
    program = compile_query("Q1")
    elapsed = {}
    for label, (config, backend) in contexts.items():
        elapsed[label] = run_program(config.plan(program), backend).elapsed
    assert all(t > 0 for t in elapsed.values())
    assert elapsed["MS"] > elapsed["MP"]
