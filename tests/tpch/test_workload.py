"""The Appendix-A workload: coverage, compilation, modifications."""

import pytest

from repro.sql import parse
from repro.tpch import OMITTED, WORKLOAD, compile_query


PAPER_FIGURE_QUERIES = [
    "Q1", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q10", "Q11", "Q12",
    "Q15", "Q17", "Q19", "Q21",
]


def test_exactly_the_paper_queries():
    assert list(WORKLOAD) == PAPER_FIGURE_QUERIES


def test_omitted_queries_documented():
    # 7 omitted by Appendix A + Q18 skipped (footnote 13)
    assert set(OMITTED) == {"Q2", "Q9", "Q13", "Q14", "Q16", "Q18",
                            "Q20", "Q22"}
    assert "MonetDB" in OMITTED["Q18"]


@pytest.mark.parametrize("query_id", PAPER_FIGURE_QUERIES)
def test_queries_parse(query_id):
    query = parse(WORKLOAD[query_id])
    assert query.select is not None


@pytest.mark.parametrize("query_id", PAPER_FIGURE_QUERIES)
def test_queries_compile(query_id):
    plan = compile_query(query_id)
    assert len(plan.instructions) > 3
    assert plan.result_columns


def test_plan_cache_returns_same_object():
    assert compile_query("Q1") is compile_query("Q1")


def test_appendix_a_modifications_applied():
    # no LIMIT anywhere (removed from Q3, Q10, Q18, Q21)
    for query_id, text in WORKLOAD.items():
        assert "LIMIT" not in text.upper(), query_id
    # no LIKE (queries requiring it were omitted)
    for query_id, text in WORKLOAD.items():
        assert "LIKE" not in text.upper(), query_id
    # single-column ORDER BY everywhere (multi-column sort unsupported)
    for query_id in WORKLOAD:
        query = parse(WORKLOAD[query_id])
        assert query.select.order_by is None or True  # parser enforces


def test_q1_keeps_linestatus_group_but_not_its_sort():
    """Appendix A: 'Removed the sorting clause for l_linestatus'."""
    q1 = parse(WORKLOAD["Q1"])
    group_names = {
        getattr(e, "name", None) for e in q1.select.group_by
    }
    assert "l_linestatus" in group_names
    assert q1.select.order_by.expr.name == "l_returnflag"


def test_q21_sorts_by_numwait_only():
    """Appendix A: 'Removed the sorting clause for s_name'."""
    q21 = parse(WORKLOAD["Q21"])
    assert q21.select.order_by.expr.name == "numwait"
    assert q21.select.order_by.descending


def test_fetch_join_dominates_plans():
    """§5.2.2: the left fetch join is the most frequent operator."""
    from collections import Counter

    counts = Counter()
    for query_id in WORKLOAD:
        for ins in compile_query(query_id).instructions:
            counts[ins.op] += 1
    assert counts["algebra.projection"] == max(
        v for k, v in counts.items() if k != "sql.bind"
    )
