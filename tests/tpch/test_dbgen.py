"""The mini-scale TPC-H generator: determinism, integrity, distributions."""

import numpy as np
import pytest

from repro.tpch import DICTIONARIES, SCALE_DOWN, TABLES, generate
from repro.tpch.schema import date_add_days, date_literal, dict_code


@pytest.fixture(scope="module")
def data():
    return generate(sf=1)


class TestRowCounts:
    def test_scaled_cardinalities(self, data):
        assert data.rows("lineitem") == pytest.approx(
            6_000_000 // SCALE_DOWN, rel=0.05
        )
        assert data.rows("orders") == 1_500_000 // SCALE_DOWN
        assert data.rows("customer") == 150_000 // SCALE_DOWN
        assert data.rows("part") == 200_000 // SCALE_DOWN

    def test_fixed_tables_not_scaled(self, data):
        assert data.rows("region") == 5
        assert data.rows("nation") == 25

    def test_sf_scales_linearly(self):
        small, big = generate(sf=1), generate(sf=4)
        assert big.rows("orders") == 4 * small.rows("orders")

    def test_data_scale_matches_scale_down(self, data):
        assert data.data_scale == SCALE_DOWN


class TestDeterminism:
    def test_same_seed_same_data(self):
        a, b = generate(sf=1, seed=7), generate(sf=1, seed=7)
        for table in a.tables:
            for col in a.tables[table]:
                assert np.array_equal(a.tables[table][col],
                                      b.tables[table][col]), (table, col)

    def test_different_seed_different_data(self):
        a, b = generate(sf=1, seed=7), generate(sf=1, seed=8)
        assert not np.array_equal(
            a.tables["lineitem"]["l_quantity"],
            b.tables["lineitem"]["l_quantity"],
        )


class TestReferentialIntegrity:
    def test_all_foreign_keys_resolve(self, data):
        for table_name, table in TABLES.items():
            for fk_col, (ref_table, ref_col) in table.foreign_keys.items():
                fks = data.tables[table_name][fk_col]
                pks = data.tables[ref_table][ref_col]
                assert np.isin(fks, pks).all(), f"{table_name}.{fk_col}"

    def test_primary_keys_unique(self, data):
        for table_name, table in TABLES.items():
            if table.primary_key:
                keys = data.tables[table_name][table.primary_key]
                assert np.unique(keys).size == keys.size, table_name


class TestDistributions:
    def test_schema_matches_generated_columns(self, data):
        for table_name, table in TABLES.items():
            generated = data.tables[table_name]
            assert set(generated) == {c.name for c in table.columns}
            for column in table.columns:
                assert generated[column.name].dtype == column.dtype, column

    def test_dates_chronology(self, data):
        li = data.tables["lineitem"]
        assert (li["l_shipdate"] > 19920000).all()
        assert (li["l_receiptdate"] > li["l_shipdate"]).all()

    def test_dict_codes_in_domain(self, data):
        li = data.tables["lineitem"]
        assert li["l_shipmode"].max() < len(DICTIONARIES["shipmode"])
        assert li["l_returnflag"].max() < len(DICTIONARIES["returnflag"])

    def test_discounts_and_tax_ranges(self, data):
        li = data.tables["lineitem"]
        assert 0 <= li["l_discount"].min() and li["l_discount"].max() <= 0.10
        assert 0 <= li["l_tax"].min() and li["l_tax"].max() <= 0.08

    def test_appendix_a_real_not_decimal(self, data):
        """All money/quantity columns are REAL (float32), per Appendix A."""
        li = data.tables["lineitem"]
        for col in ("l_quantity", "l_extendedprice", "l_discount", "l_tax"):
            assert li[col].dtype == np.float32

    def test_lines_per_order_one_to_seven(self, data):
        counts = np.bincount(data.tables["lineitem"]["l_orderkey"])
        nonzero = counts[counts > 0]
        assert nonzero.min() >= 1 and nonzero.max() <= 7


class TestDateHelpers:
    def test_date_literal(self):
        assert date_literal("1994-01-01") == 19940101
        with pytest.raises(ValueError):
            date_literal("1994/01/01")

    def test_date_add_days_exact(self):
        assert date_add_days(19981201, -90) == 19980902
        assert date_add_days(19940101, 365) == 19950101
        assert date_add_days(19960228, 1) == 19960229  # leap year

    def test_dict_code(self):
        assert dict_code("mktsegment", "BUILDING") == 1
        with pytest.raises(LookupError):
            dict_code("mktsegment", "NOPE")

    def test_install_into_catalog(self, data):
        from repro.monetdb import Catalog

        catalog = Catalog()
        data.install(catalog)
        assert set(catalog.tables()) == set(TABLES)
        assert catalog.bat("lineitem", "l_quantity").is_base
