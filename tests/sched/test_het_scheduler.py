"""The heterogeneous scheduler: placement, migration, partitioned
fan-out, and drop-in equivalence with the MS baseline."""

import numpy as np
import pytest

from repro import cl
from repro.bench.configs import CONFIGS
from repro.bench.harness import BenchContext, uniform_column
from repro.monetdb import Catalog, MALBuilder, MonetDBSequential, run_program
from repro.monetdb.bat import Role
from repro.ocelot.rewriter import rewrite_for_ocelot
from repro.sched import HeterogeneousBackend
from repro.sched.partition import execute_split


def _rewritten(builder_program):
    return rewrite_for_ocelot(builder_program)


def _compare(base, other, context=""):
    assert set(base.columns) == set(other.columns), context
    for col in base.columns:
        a, b = base.columns[col], other.columns[col]
        assert a.shape == b.shape, (context, col)
        if a.dtype.kind == "f" or b.dtype.kind == "f":
            assert np.allclose(
                a.astype(np.float64), b.astype(np.float64),
                rtol=1e-4, atol=1e-6,
            ), (context, col)
        else:
            assert np.array_equal(a, b), (context, col)


@pytest.fixture
def catalog():
    rng = np.random.default_rng(23)
    n = 40_000
    cat = Catalog()
    cat.create_table("t", {
        "a": rng.integers(0, 1 << 30, n).astype(np.int32),
        "b": rng.random(n).astype(np.float32),
        "g": rng.integers(0, 64, n).astype(np.int32),
    })
    return cat


class TestPool:
    def test_probes_both_devices_at_construction(self, catalog):
        backend = HeterogeneousBackend(catalog)
        assert len(backend.pool) == 2
        names = [c.device_name for c in backend.pool.characteristics]
        assert names[0] != names[1]
        # the tuned radix widths match the paper's per-device choices
        assert {e.radix_bits for e in backend.pool.engines} == {8, 4}

    def test_migration_moves_tail_and_joins_clocks(self, catalog):
        backend = HeterogeneousBackend(catalog)
        src, dst = backend.pool.engines
        values = np.arange(128, dtype=np.int32)
        buffer = src.result_buffer(128, np.int32, tag="mig")
        src.queue.enqueue_write(buffer, values)
        bat = src.device_bat(buffer, Role.VALUES)
        backend.pool.ensure_on(bat, dst)
        assert bat.device_ref is not None
        assert bat.device_ref.context is dst.context
        assert np.array_equal(bat.device_ref.array, values)
        assert buffer.released  # the old residence was dropped
        # the hand-over joined the timelines
        assert src.queue.makespan() <= dst.queue.makespan() + 1e-12

    def test_offloaded_intermediate_keeps_its_home(self, catalog):
        """Data gravity survives memory pressure: an intermediate whose
        buffer was offloaded still homes on (and syncs from) the device
        whose manager holds its host copy."""
        from repro.ocelot.memory import BufferKind

        gpu = cl.Device(cl.NVIDIA_GTX460.with_memory(64 * 1024))
        backend = HeterogeneousBackend(
            catalog, devices=(cl.Device(cl.INTEL_XEON_E5620), gpu)
        )
        cpu_e, gpu_e = backend.pool.engines
        buf = gpu_e.result_buffer(1024, np.int32, tag="inter")
        gpu_e.queue.enqueue_write(buf, np.arange(1024, dtype=np.int32))
        bat = gpu_e.device_bat(buf)
        gpu_e.memory.allocate(62 * 1024, np.uint8, BufferKind.RESULT,
                              tag="big")
        assert buf.released                      # pressure offloaded it
        assert backend.pool.device_of(bat) is None  # no *live* residence
        assert backend.pool.home_of(bat) == 1       # but gravity survives
        # consuming it on the CPU restores at home, then migrates
        backend.pool.ensure_on(bat, cpu_e)
        out = backend._dispatch("add", (bat, 1))
        synced = backend._sync(out)
        assert np.array_equal(
            synced.peek_values(),
            np.arange(1024, dtype=np.int32) + 1,
        )

    def test_slices_are_cached_and_dropped_with_the_bat(self, catalog):
        backend = HeterogeneousBackend(catalog)
        bat = catalog.bat("t", "a")
        first = backend.pool.slice_bat(bat, 0, 1000)
        assert backend.pool.slice_bat(bat, 0, 1000) is first
        assert first.is_base
        assert np.array_equal(first.peek_values(), bat.peek_values()[:1000])
        catalog.drop_table("t")
        assert backend.pool._slices == {}


class TestPlacement:
    def test_small_queries_stay_on_one_device(self, catalog):
        backend = HeterogeneousBackend(catalog)
        builder = MALBuilder("q")
        col = builder.bind("t", "a")
        cand = builder.emit(
            "algebra", "select", (col, None, 0, 1 << 29, True, False, False)
        )
        n = builder.emit("aggr", "count", (cand,))
        program = _rewritten(builder.returns([("n", n)]))
        run_program(program, backend)
        assert all(d != "split" for _f, d in backend.decision_log)

    def test_data_gravity_keeps_chains_on_one_device(self, catalog):
        backend = HeterogeneousBackend(catalog)
        builder = MALBuilder("q")
        col = builder.bind("t", "b")
        x = builder.emit("batcalc", "add", (col, 1))
        y = builder.emit("batcalc", "mul", (x, x))
        s = builder.emit("aggr", "sum", (y,))
        program = _rewritten(builder.returns([("s", s)]))
        run_program(program, backend)
        devices = [d for _f, d in backend.decision_log if d != "split"]
        assert len(set(devices)) == 1  # no ping-pong between devices

    def test_zero_cost_ops_do_not_wake_the_idle_device(self, catalog):
        backend = HeterogeneousBackend(catalog)
        builder = MALBuilder("q")
        col = builder.bind("t", "a")
        cand = builder.emit(
            "algebra", "select", (col, None, 0, 1 << 20, True, False, False)
        )
        n = builder.emit("aggr", "count", (cand,))
        program = _rewritten(builder.returns([("n", n)]))
        run_program(program, backend)
        # exactly one device paid its per-query framework overhead
        assert len(backend._overhead_charged) == 1

    def test_capacity_infeasible_device_is_excluded(self):
        cat = Catalog()
        rng = np.random.default_rng(9)
        # 400 KB column against a 256 KB GPU: infeasible whole
        cat.create_table("big", {
            "a": rng.integers(0, 1 << 30, 100_000).astype(np.int32)
        })
        tiny_gpu = cl.Device(cl.NVIDIA_GTX460.with_memory(256 * 1024))
        backend = HeterogeneousBackend(
            cat, devices=(cl.Device(cl.INTEL_XEON_E5620), tiny_gpu)
        )
        builder = MALBuilder("q")
        col = builder.bind("big", "a")
        low = builder.emit("aggr", "min", (col,))
        program = _rewritten(builder.returns([("m", low)]))
        result = run_program(program, backend)
        assert result.columns["m"][0] == cat.bat("big", "a").values.min()
        devices = [d for _f, d in backend.decision_log if d != "split"]
        assert 1 not in devices   # nothing was placed on the tiny GPU

    def test_framework_overheads_charge_serially(self, catalog):
        """Per-device wake-up costs extend the joined makespan by their
        sum, so the operator-timing subtraction is exact — they must not
        hide under the other device's concurrent queue."""
        backend = HeterogeneousBackend(catalog, devices=("cpu", "cpu"))
        backend.begin()
        backend._charge_overhead(0)
        backend._charge_overhead(1)
        assert backend.query_overhead_s() > 0
        assert backend.elapsed() >= backend.query_overhead_s() - 1e-9

    def test_mixed_execution_falls_back_to_monetdb(self, catalog):
        backend = HeterogeneousBackend(catalog)
        builder = MALBuilder("q")
        col = builder.bind("t", "a")
        top = builder.emit("algebra", "firstn", (col, 5, True))
        out = builder.emit("algebra", "projection", (top, col))
        program = _rewritten(builder.returns([("v", out)]))
        result = run_program(program, backend)
        expected = np.sort(catalog.bat("t", "a").values)[:5]
        assert np.array_equal(result.columns["v"], expected)


class TestPartitionedFanOut:
    """The mergers, exercised directly with a forced half/half plan."""

    def _plan(self, n):
        return [(0, 0, n // 2), (1, n // 2, n)]

    def test_split_selection_matches_whole(self, catalog):
        backend = HeterogeneousBackend(catalog)
        bat = catalog.bat("t", "a")
        merged = execute_split(
            backend.pool, "thetaselect",
            (bat, None, 1 << 29, "<"), self._plan(bat.count),
        )
        expected = np.nonzero(bat.values < (1 << 29))[0]
        assert merged.role is Role.OIDS
        assert merged.has_host_values
        assert np.array_equal(merged.values.astype(np.int64), expected)

    def test_split_ewise_matches_whole(self, catalog):
        backend = HeterogeneousBackend(catalog)
        bat = catalog.bat("t", "b")
        merged = execute_split(
            backend.pool, "mul", (bat, bat), self._plan(bat.count),
        )
        assert np.allclose(merged.values, bat.values * bat.values)

    @pytest.mark.parametrize("agg", ["subsum", "submin", "submax",
                                     "subcount", "subavg"])
    def test_split_grouped_aggregation_matches_ms(self, catalog, agg):
        backend = HeterogeneousBackend(catalog)
        vals = catalog.bat("t", "b")
        gids = catalog.bat("t", "g")
        ngroups = 64
        args = ((gids, ngroups) if agg == "subcount"
                else (vals, gids, ngroups))
        merged = execute_split(
            backend.pool, agg, args, self._plan(vals.count),
        )
        ms = MonetDBSequential(catalog)
        expected = ms.resolve(f"aggr.{agg}")(*args)
        assert np.allclose(
            merged.values.astype(np.float64),
            expected.values.astype(np.float64),
            rtol=1e-5,
        )

    def test_fanned_out_selections_feed_oid_algebra(self, catalog):
        """Merged fan-out selections are oid *lists*; disjunctive
        predicates (oidunion) must still work — via host combination."""
        backend = HeterogeneousBackend(catalog)
        bat = catalog.bat("t", "a")
        plan = self._plan(bat.count)
        left = execute_split(
            backend.pool, "thetaselect", (bat, None, 1 << 29, "<"), plan
        )
        right = execute_split(
            backend.pool, "thetaselect", (bat, None, 3 << 28, ">="), plan
        )
        out = backend._dispatch("oidunion", (left, right))
        values = bat.values
        expected = np.nonzero(
            (values < (1 << 29)) | (values >= (3 << 28))
        )[0]
        assert np.array_equal(out.values.astype(np.int64), expected)
        inter = backend._dispatch("oidintersect", (left, right))
        expected = np.nonzero(
            (values < (1 << 29)) & (values >= (3 << 28))
        )[0]
        assert np.array_equal(inter.values.astype(np.int64), expected)

    def test_empty_fanned_out_selection_still_barriers(self, catalog):
        """A zero-hit split selection has nothing to merge, but the
        merge still *consumed* every device's partial: the queues must
        join so downstream work cannot start before its inputs existed."""
        backend = HeterogeneousBackend(catalog)
        bat = catalog.bat("t", "a")
        merged = execute_split(
            backend.pool, "thetaselect",
            (bat, None, -1, "<"), self._plan(bat.count),
        )
        assert merged.count == 0
        q0, q1 = (e.queue for e in backend.pool.engines)
        assert abs(q0.makespan() - q1.makespan()) < 1e-12

    def test_partials_do_not_leak_device_memory(self, catalog):
        backend = HeterogeneousBackend(catalog)
        bat = catalog.bat("t", "b")
        pool = backend.pool
        before = [e.context.allocated_nominal for e in pool.engines]
        for _ in range(3):
            execute_split(pool, "add", (bat, 1), self._plan(bat.count))
        after = [e.context.allocated_nominal for e in pool.engines]
        # only the cached input slices may stay resident across runs
        slice_bytes = bat.peek_values().nbytes
        for b, a in zip(before, after):
            assert a - b <= slice_bytes


class TestDropInEquivalence:
    """HET returns MS-identical results on the Fig. 5 operator set."""

    def _run_both(self, catalog, program, scale=1.0):
        ms = run_program(program, MonetDBSequential(catalog))
        plan = rewrite_for_ocelot(program)
        het = run_program(
            plan, CONFIGS["HET"].make(catalog, scale)
        )
        _compare(ms, het, program.name)
        return ms, het

    def test_fig5_selection(self, catalog):
        builder = MALBuilder("sel")
        col = builder.bind("t", "a")
        cand = builder.emit(
            "algebra", "select",
            (col, None, 0, int(0.4 * 2**30), True, False, False),
        )
        n = builder.emit("aggr", "count", (cand,))
        self._run_both(catalog, builder.returns([("n", n)]))

    def test_fig5_fetchjoin(self, catalog):
        builder = MALBuilder("fetch")
        a = builder.bind("t", "a")
        b = builder.bind("t", "b")
        oids = builder.emit("bat", "mirror", (a,))
        fetched = builder.emit("algebra", "projection", (oids, b))
        n = builder.emit("aggr", "count", (fetched,))
        self._run_both(catalog, builder.returns([("n", n)]))

    def test_fig5_aggregation(self, catalog):
        builder = MALBuilder("agg")
        col = builder.bind("t", "a")
        low = builder.emit("aggr", "min", (col,))
        self._run_both(catalog, builder.returns([("m", low)]))

    def test_fig5_hash_build(self, catalog):
        # hashbuild is the one timing-only microbenchmark operator: MS
        # reports the distinct count, Ocelot its table size — compare
        # execution, not the value
        builder = MALBuilder("hash")
        col = builder.bind("t", "g")
        size = builder.emit("algebra", "hashbuild", (col,))
        program = builder.returns([("m", size)])
        het = run_program(
            rewrite_for_ocelot(program), CONFIGS["HET"].make(catalog, 1.0)
        )
        assert het.columns["m"][0] >= 64  # >= the distinct count
        assert het.elapsed > 0

    def test_fig5_grouping(self, catalog):
        builder = MALBuilder("grp")
        col = builder.bind("t", "g")
        gids, ngroups = builder.emit("group", "group", (col,), n_results=2)
        counts = builder.emit("aggr", "subcount", (gids, ngroups))
        self._run_both(catalog, builder.returns([("c", counts)]))

    def test_fig5_hashjoin(self, catalog):
        cat = Catalog()
        rng = np.random.default_rng(3)
        cat.create_table("f", {"fk": rng.integers(0, 100, 20_000)
                               .astype(np.int32)})
        cat.create_table("d", {"pk": np.arange(100, dtype=np.int32)})
        builder = MALBuilder("join")
        probe = builder.bind("f", "fk")
        build = builder.bind("d", "pk")
        lpos, rpos = builder.emit("algebra", "join", (probe, build),
                                  n_results=2)
        n = builder.emit("aggr", "count", (lpos,))
        self._run_both(cat, builder.returns([("n", n)]))

    def test_fig6_sort(self, catalog):
        builder = MALBuilder("sort")
        col = builder.bind("t", "a")
        out, order = builder.emit("algebra", "sort", (col, False),
                                  n_results=2)
        n = builder.emit("aggr", "count", (order,))
        self._run_both(catalog, builder.returns([("n", n)]))


class TestMakespan:
    """HET never loses to the best single device, and fans out past the
    GPU's memory limit (the new capability the scheduler buys)."""

    def _selection_context(self, size_mb):
        values, scale = uniform_column(size_mb, actual_elems=1 << 19)
        catalog = Catalog()
        catalog.create_table("t", {"a": values})
        return BenchContext(
            catalog, data_scale=scale, labels=("CPU", "GPU", "HET"),
            operator_timing=True,
        )

    def _selection_plan(self):
        builder = MALBuilder("sel")
        col = builder.bind("t", "a")
        cand = builder.emit(
            "algebra", "select",
            (col, None, 0, int(0.05 * 2**30), True, False, False),
        )
        n = builder.emit("aggr", "count", (cand,))
        return builder.returns([("n", n)])

    def test_het_at_most_best_single_device_in_memory(self):
        ctx = self._selection_context(512)
        millis = ctx.measure(self._selection_plan(), runs=3)
        best = min(v for k, v in millis.items()
                   if k != "HET" and v is not None)
        assert millis["HET"] is not None
        assert millis["HET"] <= best * 1.001

    def test_het_fans_out_beyond_gpu_memory(self):
        ctx = self._selection_context(2048)
        millis = ctx.measure(self._selection_plan(), runs=3)
        assert millis["GPU"] is None          # the 2 GB card gave up
        assert millis["HET"] is not None      # HET did not
        assert millis["HET"] < 0.7 * millis["CPU"]
        het = ctx.backend("HET")
        assert ("thetaselect", "split") in het.decision_log or \
            ("select", "split") in het.decision_log
