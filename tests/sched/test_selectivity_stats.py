"""Observed selectivity statistics: the EMA store, the dispatch-time
feedback loop, and the fig. 8a split-unblocking they exist for."""

import numpy as np
import pytest

import repro
from repro.bench.harness import uniform_column
from repro.monetdb.storage import Catalog
from repro.sched import CostPlacer, DevicePool, SelectivityStats
from repro.sched.stats import column_key


class TestStatsStore:
    def test_default_until_observed(self):
        stats = SelectivityStats()
        assert stats.estimate("t.a", "select", 0.15) == 0.15

    def test_ema_converges_toward_observations(self):
        stats = SelectivityStats()
        stats.observe("t.a", "select", 0.5)
        assert stats.estimate("t.a", "select", 0.15) == 0.5
        for _ in range(20):
            stats.observe("t.a", "select", 0.01)
        assert stats.estimate("t.a", "select", 0.15) < 0.02

    def test_keys_are_per_column_and_op(self):
        stats = SelectivityStats()
        stats.observe("t.a", "select", 0.9)
        assert stats.estimate("t.b", "select", 0.15) == 0.15
        assert stats.estimate("t.a", "thetaselect", 0.15) == 0.15

    def test_slice_suffix_pools_with_whole_column(self):
        assert column_key("lineitem.l_shipdate[0:512]") == \
            "lineitem.l_shipdate"
        stats = SelectivityStats()
        stats.observe("t.a[128:256]", "select", 0.2)
        assert stats.estimate("t.a", "select", 0.15) == 0.2

    def test_observations_clamped(self):
        stats = SelectivityStats()
        stats.observe("t.a", "select", 7.0)
        assert stats.estimate("t.a", "select", 0.15) == 1.0


class TestFeedbackLoop:
    def test_het_selections_feed_the_stats(self):
        rng = np.random.default_rng(5)
        db = repro.Database(data_scale=2048.0)
        db.create_table("t", {
            "v": rng.integers(0, 1000, 1 << 15).astype(np.int32),
        })
        con = db.connect("HET")
        con.execute("SELECT count(*) AS n FROM t WHERE v < 50")
        stats = con.backend.stats
        assert stats.observations >= 1
        # compressed execution runs the predicate as a bounds select
        # over the column's code payload (which carries the column's
        # tag), so the feedback lands under the op future placements of
        # that same delegated select will look up
        learned = max(
            stats.estimate("t.v", "thetaselect", default=-1.0),
            stats.estimate("t.v", "select", default=-1.0),
        )
        assert learned == pytest.approx(0.05, abs=0.01)


class TestSplitUnblocking:
    """The reason the stats exist: at very large inputs the fixed 15 %
    guess overprices a selective selection's download/merge legs and
    rejects the split (fig. 8a at 4096 MB); the learned value admits
    it with a better predicted makespan."""

    @pytest.fixture(scope="class")
    def pool(self):
        values, scale = uniform_column(4096, actual_elems=1 << 19)
        catalog = Catalog()
        catalog.create_table("t", {"a": values})
        return DevicePool(catalog, ("cpu", "gpu"), scale), catalog

    def _select_args(self, catalog):
        return (catalog.bat("t", "a"), None, 0, int(0.01 * 2 ** 30),
                True, False, False)

    def test_learned_selectivity_unblocks_split(self, pool):
        device_pool, catalog = pool
        args = self._select_args(catalog)

        blind = CostPlacer(device_pool)
        assert blind.choose("select", args).split is None

        informed = CostPlacer(device_pool)
        informed.stats.observe("t.a", "select", 0.01)
        decision = informed.choose("select", args)
        assert decision.split is not None
        assert decision.predicted_s < \
            blind.choose("select", args).predicted_s

    def test_sticky_boundaries_survive_refinements(self, pool):
        """A marginal re-balance after an observation must not move the
        cut points — moving them would invalidate every device-cached
        base-column slice."""
        device_pool, catalog = pool
        args = self._select_args(catalog)
        placer = CostPlacer(device_pool)
        placer.stats.observe("t.a", "select", 0.010)
        first = placer.choose("select", args)
        placer.stats.observe("t.a", "select", 0.012)
        second = placer.choose("select", args)
        assert first.split is not None
        assert second.split == first.split
