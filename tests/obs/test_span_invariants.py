"""Span-tree invariants and trace=on/off equivalence.

Tracing must be an *observer*: identical results and identical
simulated time with and without it, spans nested strictly inside their
parents, per-operator times reconciling with the wall clock, and the
same span structure for the same plan wherever the plan is the same.
"""

import pytest

from repro import tpch

#: the fast subset; the full 14-query matrix runs under ``slow``
FAST_QUERIES = ("Q1", "Q6", "Q12")
ENGINES = ("MS", "SHARD:2xCPU")

EPS = 1e-9


def _walk_intervals(span):
    for child in span.children:
        assert span.t0 - EPS <= child.t0, (span.name, child.name)
        assert child.t1 <= span.t1 + EPS, (span.name, child.name)
        _walk_intervals(child)


class TestSpanTree:
    @pytest.mark.parametrize("engine", ENGINES + ("HET",))
    def test_children_nest_inside_parents(self, tpch_db, engine):
        con = tpch_db.connect(engine)
        result = con.execute(tpch.WORKLOAD["Q1"], analyze=True)
        root = result.trace.root()
        assert root.name == "query"
        _walk_intervals(root)

    @pytest.mark.parametrize("engine", ENGINES + ("HET",))
    def test_operator_times_bounded_by_wall(self, tpch_db, engine):
        con = tpch_db.connect(engine)
        result = con.execute(tpch.WORKLOAD["Q12"], analyze=True)
        tracer = result.trace
        total = sum(s.duration for s in tracer.instruction_spans())
        assert total <= tracer.wall_s * (1 + EPS) + EPS

    def test_same_plan_same_structure_across_runs(self, tpch_db):
        con = tpch_db.connect("HET")
        first = con.execute(tpch.WORKLOAD["Q6"], analyze=True)
        again = con.execute(tpch.WORKLOAD["Q6"], analyze=True)
        assert first.trace.root().structure() == (
            again.trace.root().structure()
        )

    @pytest.mark.parametrize("single,sharded", [
        ("MS", "SHARD:2xMS"),
        ("CPU", "SHARD:2xCPU"),
    ])
    def test_instruction_spans_match_across_topologies(
        self, tpch_db, single, sharded
    ):
        """The sharded engine runs its child family's plan, so the
        instruction-level span sequence is identical — only the
        per-shard fan-out below each instruction differs."""
        a = tpch_db.connect(single).execute(
            tpch.WORKLOAD["Q6"], analyze=True
        )
        b = tpch_db.connect(sharded).execute(
            tpch.WORKLOAD["Q6"], analyze=True
        )
        names = [s.name for s in a.trace.instruction_spans()]
        assert names == [s.name for s in b.trace.instruction_spans()]


class TestTraceTransparency:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("query", FAST_QUERIES)
    def test_results_and_time_identical_fast(
        self, tpch_db, assert_results_equal, engine, query
    ):
        self._check(tpch_db, assert_results_equal, engine, query)

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("query", sorted(tpch.WORKLOAD))
    def test_results_and_time_identical_full(
        self, tpch_db, assert_results_equal, engine, query
    ):
        self._check(tpch_db, assert_results_equal, engine, query)

    @staticmethod
    def _check(tpch_db, assert_results_equal, engine, query):
        sql = tpch.WORKLOAD[query]
        plain = tpch_db.connect(engine).execute(sql)
        traced = tpch_db.connect(f"{engine},trace=on"
                                 if ":" in engine or "," in engine
                                 else f"{engine}:trace=on").execute(sql)
        assert plain.trace is None
        assert traced.trace is not None
        assert_results_equal(plain, traced, f"{engine} {query}")
        assert traced.elapsed == pytest.approx(plain.elapsed, rel=1e-12)

    def test_trace_off_result_has_no_tracer(self, points_db):
        result = points_db.connect("CPU").execute(
            "SELECT sum(y) AS s FROM points"
        )
        assert result.trace is None
