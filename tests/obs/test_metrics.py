"""The unified metrics registry: one dotted namespace over the plan
cache, interconnect, compression, memory-manager, breaker and
scheduler counters — a live facade over the legacy stat objects — plus
the slow-query log."""

import pytest

QUERY = "SELECT x, sum(y) AS s FROM points GROUP BY x"


class TestSnapshot:
    def test_plan_cache_namespace_tracks_legacy_stats(self, points_db):
        con = points_db.connect("MS")
        con.execute(QUERY)
        con.execute(QUERY)
        snap = con.metrics.snapshot()
        stats = con.plan_cache.stats
        assert snap["plan_cache.hits"] == stats.hits >= 1
        assert snap["plan_cache.misses"] == stats.misses >= 1
        assert snap["plan_cache.invalidations"] == stats.invalidations

    def test_sections_absent_without_the_subsystem(self, points_db):
        con = points_db.connect("MS")
        con.execute(QUERY)
        snap = con.metrics.snapshot()
        assert not any(k.startswith("interconnect.") for k in snap)
        assert not any(k.startswith("mm.") for k in snap)

    def test_mm_namespace_on_ocelot(self, points_db):
        con = points_db.connect("CPU")
        con.execute(QUERY)
        snap = con.metrics.snapshot()
        assert snap["mm.intermediates_allocated"] >= 1
        assert snap["mm.intermediate_bytes_peak"] > 0
        [manager] = con.backend.memory_managers()
        assert snap["mm.intermediates_allocated"] == (
            manager.stats.intermediates_allocated
        )

    def test_mm_sums_over_het_pool(self, points_db):
        con = points_db.connect("HET")
        con.execute(QUERY)
        managers = con.backend.memory_managers()
        assert len(managers) == 2
        snap = con.metrics.snapshot()
        assert snap["mm.intermediates_allocated"] == sum(
            m.stats.intermediates_allocated for m in managers
        )

    def test_interconnect_namespace_tracks_legacy_traffic(self, points_db):
        con = points_db.connect("SHARD:2xMS")
        con.execute(QUERY)
        snap = con.metrics.snapshot()
        traffic = con.interconnect
        assert snap["interconnect.bytes_gathered"] == (
            traffic.total.bytes_gathered
        )
        assert snap["interconnect.bytes_total"] == traffic.total.bytes_total
        assert snap["interconnect.query.bytes_gathered"] == (
            traffic.query.bytes_gathered
        )
        assert snap["interconnect.bytes_total"] > 0

    def test_compress_namespace_tracks_legacy_stats(self, tpch_db):
        con = tpch_db.connect("MS")
        snap = con.metrics.snapshot()
        compression = con.compression
        assert snap["compress.columns_encoded"] == (
            compression.columns_encoded
        )
        assert snap["compress.bytes_physical"] == compression.bytes_physical

    def test_breaker_namespace(self, points_db):
        con = points_db.connect("SHARD:2xMS")
        con.execute(QUERY)
        con.backend.breakers().breaker(0)      # materialise one breaker
        snap = con.metrics.snapshot()
        assert snap["breaker.0.state"] == "closed"
        assert snap["breaker.0.trips"] == 0

    def test_scheduler_namespace(self, points_db):
        con = points_db.connect("MS")
        con.submit(QUERY)
        con.drain()
        snap = con.metrics.snapshot()
        assert snap["scheduler.turns"] >= 1
        assert snap["scheduler.parked"] == 0
        assert snap["scheduler.in_flight"] == 0


class TestDiff:
    def test_diff_drops_zero_deltas(self, points_db):
        con = points_db.connect("MS")
        con.execute(QUERY)
        before = con.metrics.snapshot()
        changed = con.metrics.diff(before)
        assert changed == {}

    def test_diff_shows_deltas(self, points_db):
        con = points_db.connect("MS")
        con.execute(QUERY)
        before = con.metrics.snapshot()
        con.execute(QUERY)
        changed = con.metrics.diff(before)
        assert changed["obs.queries"] == 1
        assert changed["plan_cache.hits"] == 1
        assert "plan_cache.misses" not in changed


class TestSlowQueryLog:
    def test_off_by_default(self, points_db):
        con = points_db.connect("MS")
        con.execute(QUERY)
        assert con.metrics.queries == 1
        assert con.metrics.slow_queries == []

    def test_threshold_logs_slow_queries(self, points_db):
        con = points_db.connect("MS:obs_slow_ms=0.000001")
        con.execute(QUERY, name="slowpoke")
        [entry] = con.metrics.slow_queries
        assert entry["name"] == "slowpoke"
        assert entry["engine"] == "MS:obs_slow_ms=0.000001"
        assert entry["elapsed_ms"] > 0
        snap = con.metrics.snapshot()
        assert snap["obs.slow_queries"] == 1

    def test_threshold_filters_fast_queries(self, points_db):
        con = points_db.connect("MS:obs_slow_ms=60000")
        con.execute(QUERY)
        assert con.metrics.queries == 1
        assert con.metrics.slow_queries == []

    def test_scheduler_path_records_too(self, points_db):
        con = points_db.connect("HET:obs_slow_ms=0.000001")
        con.submit(QUERY)
        con.submit(QUERY)
        con.drain()
        assert con.metrics.queries == 2
        assert len(con.metrics.slow_queries) == 2

    def test_bad_threshold_is_rejected(self, points_db):
        from repro.engines import EngineSpecError

        with pytest.raises(EngineSpecError):
            points_db.connect("MS:obs_slow_ms=banana")
