"""Shared fixtures for the observability suite (PR 9).

TPC-H data is generated once per session and shared read-only; every
test gets a fresh :class:`~repro.api.Database` so plan caches, metric
registries and breaker state never leak between tests.
"""

import numpy as np
import pytest

from repro.api import Database
from repro.tpch.dbgen import generate
from repro.tpch.schema import DICTIONARIES, TABLES

OBS_SF = 0.1


@pytest.fixture(autouse=True)
def _unforced_tracing(monkeypatch):
    """This suite exercises both trace modes through explicit specs and
    ``analyze=``; a global ``REPRO_TRACE`` (the CI trace-on A/B job)
    would force every connection and break the off-mode assertions."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)


@pytest.fixture(scope="session")
def tpch_data():
    return generate(sf=OBS_SF, seed=7)


@pytest.fixture
def tpch_db(tpch_data):
    """A fresh TPC-H database over the session's shared columns."""
    db = Database(data_scale=tpch_data.data_scale)
    for name, columns in tpch_data.tables.items():
        dictionaries = {}
        for column in TABLES[name].columns:
            if column.dictionary is not None:
                dictionaries[column.name] = DICTIONARIES.get(
                    column.dictionary, []
                )
        db.create_table(name, columns, dictionaries or None)
    yield db
    db.close()


@pytest.fixture
def points_db():
    """A small synthetic table, big enough to range-partition."""
    rng = np.random.default_rng(23)
    db = Database()
    db.create_table("points", {
        "x": rng.integers(0, 8, 4000).astype(np.int32),
        "y": rng.random(4000).astype(np.float32),
    })
    yield db
    db.close()


@pytest.fixture(scope="session")
def assert_results_equal():
    def check(expected, got, context=""):
        assert got.n_rows == expected.n_rows, context
        assert list(got.columns) == list(expected.columns), context
        for col in expected.columns:
            np.testing.assert_allclose(
                got.columns[col].astype(np.float64),
                expected.columns[col].astype(np.float64),
                rtol=1e-5, atol=1e-9,
                err_msg=f"{context}: column {col!r}",
            )
    return check
