"""EXPLAIN ANALYZE: the per-operator profile, its reconciliation with
the query's wall time, and the observed-at-runtime encodings that the
static ``explain()`` catalog view cannot see (the PR-9 bugfix)."""

import os

import pytest

from repro import tpch

Q1 = tpch.WORKLOAD["Q1"]
Q6 = tpch.WORKLOAD["Q6"]


def _storage_forced_plain() -> bool:
    return os.environ.get("REPRO_COMPRESSION", "").strip().lower() in (
        "off", "0", "false", "no"
    )


class TestAnalyzeExecution:
    def test_analyze_forces_a_trace(self, tpch_db):
        con = tpch_db.connect("HET")
        plain = con.execute(Q6)
        assert plain.trace is None
        analyzed = con.execute(Q6, analyze=True)
        assert analyzed.trace is not None
        assert analyzed.trace.wall_s == pytest.approx(analyzed.elapsed)

    def test_q1_profile_on_het(self, tpch_db, assert_results_equal):
        con = tpch_db.connect("HET")
        baseline = con.execute(Q1)
        result = con.execute(Q1, analyze=True)
        assert_results_equal(baseline, result)
        profile = result.trace.profile()
        operators = profile["operators"]
        assert operators, "no instruction spans recorded"
        # per-operator times reconcile with the wall time
        total_s = sum(row["seconds"] for row in operators.values())
        assert 0 < total_s <= profile["wall_s"] * (1 + 1e-9)
        # rows/bytes/launches populated, devices observed
        assert any(row["rows"] > 0 for row in operators.values())
        assert any(row["bytes"] > 0 for row in operators.values())
        assert all(row["launches"] >= row["calls"] >= 1
                   for row in operators.values())
        devices = {d for row in operators.values() for d in row["devices"]}
        assert devices & {"CPU", "GPU"}

    def test_render_profile_shape(self, tpch_db):
        from repro.obs import render_profile

        con = tpch_db.connect("HET")
        result = con.execute(Q1, analyze=True)
        text = render_profile(result.trace)
        lines = text.splitlines()
        assert lines[0].startswith("# EXPLAIN ANALYZE engine=HET wall=")
        assert lines[1].split()[:3] == ["operator", "calls", "time_ms"]
        assert any(line.startswith("# operators ") and "ms wall" in line
                   for line in lines)

    def test_chrome_export_of_a_real_query(self, tpch_db, tmp_path):
        import json

        con = tpch_db.connect("SHARD:2xCPU")
        result = con.execute(Q6, analyze=True)
        path = tmp_path / "q6.json"
        doc = result.trace.export_chrome(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        lanes = {e["args"]["name"] for e in loaded["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"shard0", "shard1"} <= lanes
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestExplainAnalyzeText:
    def test_plan_text_plus_profile(self, tpch_db):
        con = tpch_db.connect("MS")
        text = con.explain(Q6, analyze=True)
        assert "function user.query" in text
        assert "# EXPLAIN ANALYZE engine=MS" in text
        assert "# plan cache:" in text

    def test_plain_explain_is_unchanged(self, tpch_db):
        con = tpch_db.connect("MS")
        text = con.explain(Q6)
        assert "EXPLAIN ANALYZE" not in text

    @pytest.mark.skipif(
        _storage_forced_plain(),
        reason="REPRO_COMPRESSION=off forces plain storage",
    )
    def test_observed_encodings_report_per_shard_truth(self, tpch_db):
        """The bugfix: plain ``explain()`` renders the *driver*
        catalog's encodings; the analyze path reports what each shard
        actually read, which is the runtime truth on partitioned
        tables (every shard catalog re-encodes its own partition)."""
        from repro.obs.profile import observed_encodings

        con = tpch_db.connect("SHARD:2xMS")
        result = con.execute(Q6, analyze=True)
        observed = observed_encodings(result.trace)
        assert observed, "no bind spans carried encodings"
        partitioned = [codes for codes in observed.values()
                       if codes.startswith("shard0:")]
        assert partitioned, "no partitioned column observed"
        assert all("shard1:" in codes for codes in partitioned)
        text = con.explain(Q6, analyze=True)
        assert "# encodings (observed):" in text

    def test_plan_cache_hit_miss_note(self, tpch_db):
        con = tpch_db.connect("MS")
        first = con.execute(Q6, analyze=True)
        again = con.execute(Q6, analyze=True)
        [lookup] = [e for e in first.trace.events
                    if e["name"] == "plan_cache.lookup"]
        assert lookup["args"]["hit"] is False
        [lookup] = [e for e in again.trace.events
                    if e["name"] == "plan_cache.lookup"]
        assert lookup["args"]["hit"] is True

    def test_interconnect_note_on_shard(self, tpch_db):
        from repro.obs import render_profile

        con = tpch_db.connect("SHARD:2xMS")
        result = con.execute(Q1, analyze=True)
        text = render_profile(result.trace)
        assert "# interconnect:" in text
        # the events agree with the per-query traffic counters
        nominal = sum(e["args"]["bytes"] for e in result.trace.events
                      if e["cat"] == "interconnect")
        assert nominal == con.interconnect.query.bytes_total
