"""Unit tests for the tracer core: spans, clocks, value description,
and the Chrome trace-event export's structural validity."""

import json

import numpy as np
import pytest

from repro.monetdb.bat import make_bat
from repro.obs import Span, Tracer, describe_value, trace_env_forced


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock, engine="TEST")


class TestSpans:
    def test_nesting_and_durations(self, tracer, clock):
        root = tracer.begin("query", cat="query")
        clock.now = 1.0
        child = tracer.begin("op", cat="instruction")
        clock.now = 3.0
        tracer.end(child)
        clock.now = 4.0
        tracer.end(root)
        assert tracer.root() is root
        assert child.parent is root and root.children == [child]
        assert child.duration == pytest.approx(2.0)
        assert root.duration == pytest.approx(4.0)
        # the child interval sits inside the parent's
        assert root.t0 <= child.t0 <= child.t1 <= root.t1

    def test_end_sweeps_abandoned_spans(self, tracer, clock):
        root = tracer.begin("query")
        inner = tracer.begin("op")
        deepest = tracer.begin("kernel")
        clock.now = 2.0
        # an exception skipped ending `deepest` and `inner`
        tracer.end(root)
        assert tracer.current is None
        for span in (root, inner, deepest):
            assert span.t1 == 2.0

    def test_end_unknown_span_is_noop(self, tracer):
        open_span = tracer.begin("query")
        stray = Span("stray")
        tracer.end(stray)
        assert tracer.current is open_span

    def test_structure_is_timing_free(self, tracer, clock):
        with tracer.span("query"):
            with tracer.span("a"):
                clock.now = 1.0
            with tracer.span("b"):
                pass
        assert tracer.root().structure() == (
            "query", (("a", ()), ("b", ())),
        )

    def test_annotate_targets_innermost_open_span(self, tracer):
        with tracer.span("query"):
            with tracer.span("op") as op:
                tracer.annotate(rows=7)
            assert op.args["rows"] == 7
        tracer.annotate(rows=9)     # no open span: silently ignored

    def test_events_are_instants(self, tracer, clock):
        clock.now = 1.5
        tracer.event("transfer", cat="transfer", bytes=64)
        [event] = tracer.events
        assert event["ts"] == 1.5
        assert event["args"]["bytes"] == 64


class TestDescribeValue:
    def test_bat(self):
        bat = make_bat(np.arange(100, dtype=np.int32))
        info = describe_value(bat)
        assert info["rows"] == 100
        assert info["bytes"] == 400
        assert info["bytes_physical"] == 400
        assert info["encoding"] is None

    def test_tuple_and_scalar(self):
        a = make_bat(np.arange(10, dtype=np.int64))
        info = describe_value((a, a))
        assert info["rows"] == 10
        assert info["bytes"] == 160
        assert describe_value(3.5)["rows"] == 1
        assert describe_value(object())["rows"] == 0

    def test_sharded_parts_are_summed(self):
        class Fan:
            parts = [make_bat(np.arange(4, dtype=np.int32)),
                     make_bat(np.arange(6, dtype=np.int32))]

        info = describe_value(Fan())
        assert info["rows"] == 10
        assert info["bytes"] == 40
        assert info["shards"] == 2


class TestChromeExport:
    def _traced(self, tracer, clock):
        with tracer.span("query", cat="query"):
            clock.now = 0.001
            with tracer.span("op", cat="instruction", tid="CPU"):
                clock.now = 0.002
            tracer.event("transfer", cat="transfer", tid="GPU", bytes=8)
            clock.now = 0.004
        return tracer

    def test_document_structure(self, tracer, clock):
        doc = self._traced(tracer, clock).export_chrome()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "i"}
        for event in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 0 and event["ts"] >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"
        # one thread_name metadata record per lane used
        lanes = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert lanes == {"driver", "CPU", "GPU"}

    def test_timestamps_are_microseconds(self, tracer, clock):
        doc = self._traced(tracer, clock).export_chrome()
        [op] = [e for e in doc["traceEvents"]
                if e["ph"] == "X" and e["name"] == "op"]
        assert op["ts"] == pytest.approx(1000.0)
        assert op["dur"] == pytest.approx(1000.0)

    def test_round_trips_through_json(self, tracer, clock, tmp_path):
        path = tmp_path / "trace.json"
        doc = self._traced(tracer, clock).export_chrome(str(path))
        assert json.loads(path.read_text()) == json.loads(json.dumps(doc))

    def test_export_closes_open_spans(self, tracer, clock):
        tracer.begin("query")
        clock.now = 1.0
        doc = tracer.export_chrome()
        [query] = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert query["dur"] == pytest.approx(1e6)


class TestEnvGate:
    def test_unset_means_unforced(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert trace_env_forced() is None
        monkeypatch.setenv("REPRO_TRACE", "  ")
        assert trace_env_forced() is None

    @pytest.mark.parametrize("word", ["on", "1", "true", "anything"])
    def test_on_words(self, monkeypatch, word):
        monkeypatch.setenv("REPRO_TRACE", word)
        assert trace_env_forced() is True

    @pytest.mark.parametrize("word", ["off", "0", "false", "no", "OFF"])
    def test_off_words(self, monkeypatch, word):
        monkeypatch.setenv("REPRO_TRACE", word)
        assert trace_env_forced() is False
