"""Device-memory pressure: eviction, swapping, OOM — with correct results.

The behaviours behind the paper's Fig. 7(b) (GPU lead shrinks at SF 8 due
to swapping) and Fig. 7(c) (GPU unusable at SF 50), provoked cheaply with
a tiny simulated GPU.
"""

import numpy as np
import pytest

from repro import cl
from repro.api import Database
from repro.bench.harness import BenchContext
from repro.monetdb import Catalog, run_program
from repro.ocelot import OcelotBackend, OcelotOOM, rewrite_for_ocelot
from repro.tpch import compile_query, generate


def _tiny_gpu(mem_bytes):
    return cl.get_device("gpu", global_mem_bytes=mem_bytes)


@pytest.fixture
def db_arrays():
    rng = np.random.default_rng(31)
    n = 40_000
    return {
        "a": rng.integers(0, 1000, n).astype(np.int32),
        "b": rng.normal(0, 1, n).astype(np.float32),
    }


def test_swapping_keeps_results_correct(db_arrays):
    catalog = Catalog()
    catalog.create_table("t", db_arrays)
    # device fits roughly two columns: every query evicts and re-uploads
    backend = OcelotBackend(catalog, _tiny_gpu(1_000_000))
    from repro.monetdb import MALBuilder, MonetDBSequential

    builder = MALBuilder("q")
    a, b = builder.bind("t", "a"), builder.bind("t", "b")
    cand = builder.emit("algebra", "select", (a, None, 100, 900, True, True,
                                              False))
    vals = builder.emit("algebra", "projection", (cand, b))
    gids, n = builder.emit("group", "group",
                           (builder.emit("algebra", "projection", (cand, a)),),
                           n_results=2)
    sums = builder.emit("aggr", "subsum", (vals, gids, n))
    program = builder.returns([("s", sums)])

    expected = run_program(program, MonetDBSequential(catalog))
    for _ in range(3):  # repeated runs force cache thrash
        got = run_program(rewrite_for_ocelot(program), backend)
        assert np.allclose(got.columns["s"], expected.columns["s"],
                           rtol=1e-5)
    stats = backend.engine.memory.stats
    assert stats.evictions + stats.offloads > 0


def test_swap_thrash_costs_transfer_time(db_arrays):
    catalog = Catalog()
    catalog.create_table("t", db_arrays)
    roomy = OcelotBackend(catalog, _tiny_gpu(64 * cl.MB))
    catalog2 = Catalog()
    catalog2.create_table("t", db_arrays)
    # fits one 160 KB column at a time: a/b ping-pong evicts the other
    tight = OcelotBackend(catalog2, _tiny_gpu(200_000))
    from repro.monetdb import MALBuilder

    builder = MALBuilder("q")
    a, b = builder.bind("t", "a"), builder.bind("t", "b")
    sum_a = builder.emit("aggr", "sum", (a,))
    sum_b = builder.emit("aggr", "sum", (b,))
    total = builder.emit("calc", "add", (sum_a, sum_b))
    program = rewrite_for_ocelot(builder.returns([("s", total)]))

    def hot_time(backend):
        run_program(program, backend)
        return run_program(program, backend).elapsed

    assert hot_time(tight) > hot_time(roomy)
    assert tight.engine.queue.stats.bytes_to_device > \
        roomy.engine.queue.stats.bytes_to_device


def test_oom_reported_as_missing_measurement():
    data = generate(sf=0.2)
    catalog = Catalog()
    data.install(catalog)
    ctx = BenchContext(catalog, data_scale=data.data_scale, labels=("GPU",))
    # replace the stock GPU with a hopeless one
    from repro.bench.configs import EngineConfig

    ctx._backends["GPU"] = OcelotBackend(catalog, _tiny_gpu(100_000),
                                         data_scale=data.data_scale)
    seconds, _ = ctx.run_query("GPU", compile_query("Q6"), runs=1)
    assert seconds is None  # "the line ends midway"


def test_pinned_hot_set_survives_pressure(db_arrays):
    catalog = Catalog()
    catalog.create_table("t", db_arrays)
    backend = OcelotBackend(catalog, _tiny_gpu(500_000))
    engine = backend.engine
    hot = engine.memory.buffer_for_bat(catalog.bat("t", "a"))
    engine.memory.pin(hot)  # paper §3.3: manual pinning of hot BATs
    engine.memory.allocate((80_000,), np.int32,
                           tag="pressure")
    assert not hot.released
    engine.memory.unpin(hot)
