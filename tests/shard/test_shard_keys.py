"""Shard-key-aware partitioning and the join planner (PR 5).

Covers the key-placement schemes (hash mix / range bands over shared
domains), the partitioner edge cases (skew, the replication threshold
boundary, DDL re-sync under a declared key), the join strategies
(co-located / shuffle / broadcast) with their interconnect-traffic
counters, runtime key inference, and plan-cache strategy replay.
"""

import numpy as np
import pytest

import repro
from repro.shard import ShardPartitioner, default_key_domain
from repro.shard.backend import (
    JOIN_BROADCAST,
    JOIN_COLOCATED,
    JOIN_SHUFFLE_BOTH,
)
from repro.shard.partition import hash_placement, range_placement


def assert_results_equal(expected, got, rtol=1e-6):
    assert set(expected.columns) == set(got.columns)
    for column in expected.columns:
        a = expected.columns[column].astype(np.float64)
        b = got.columns[column].astype(np.float64)
        assert a.shape == b.shape, column
        np.testing.assert_allclose(b, a, rtol=rtol, atol=1e-9,
                                   err_msg=column)


def make_db(n_fact=3000, n_dim=600, seed=11):
    """Two co-partitionable tables: fact.f_key references dim.d_key."""
    rng = np.random.default_rng(seed)
    db = repro.Database()
    db.create_table("fact", {
        "f_key": rng.integers(0, n_dim, n_fact).astype(np.int32),
        "v": rng.random(n_fact).astype(np.float32),
        "g": rng.integers(0, 6, n_fact).astype(np.int32),
    })
    db.create_table("dim", {
        "d_key": np.arange(n_dim, dtype=np.int32),
        "w": rng.random(n_dim).astype(np.float32),
        "pad": np.zeros(n_dim, dtype=np.int32),
    })
    return db


JOIN_SQL = ("SELECT g, sum(v * w) AS s FROM fact "
            "JOIN dim ON f_key = d_key GROUP BY g ORDER BY g")


class TestPlacementFunctions:
    def test_hash_placement_depends_only_on_the_value(self):
        a = np.array([3, 17, 3, 99], dtype=np.int32)
        b = np.array([99, 3], dtype=np.int64)
        pa = hash_placement(a, 4)
        pb = hash_placement(b, 4)
        assert pa[0] == pa[2] == pb[1]
        assert pa[3] == pb[0]
        assert set(hash_placement(np.arange(1000), 4)) == {0, 1, 2, 3}

    def test_range_placement_bands_and_clipping(self):
        v = np.array([0, 249, 250, 999, -5, 2000])
        ids = range_placement(v, 4, (0, 999))
        assert list(ids) == [0, 0, 1, 3, 0, 3]

    def test_non_numeric_keys_rejected(self):
        with pytest.raises(ValueError):
            hash_placement(np.array(["a", "b"]), 2)

    def test_default_key_domain_strips_table_prefix(self):
        assert default_key_domain("l_orderkey") == "orderkey"
        assert default_key_domain("o_orderkey") == "orderkey"
        assert default_key_domain("custkey") == "custkey"


class TestKeyedPartitioner:
    @pytest.mark.parametrize("mode", ["range", "hash"])
    def test_declared_keys_co_partition(self, mode):
        db = make_db()
        part = ShardPartitioner(
            db.catalog, 3, mode=mode,
            shard_keys={"fact": "f_key", "dim": "d_key"},
        )
        assert part.co_located(("fact", "f_key"), ("dim", "d_key"))
        # every fact row's key must live with the matching dim row
        for shard, catalog in enumerate(part.catalogs):
            fact_keys = set(catalog.bat("fact", "f_key").values.tolist())
            dim_keys = set(catalog.bat("dim", "d_key").values.tolist())
            assert fact_keys <= dim_keys
        total = sum(c.row_count("fact") for c in part.catalogs)
        assert total == 3000

    def test_rows_keep_their_columns_together(self):
        db = make_db()
        part = ShardPartitioner(
            db.catalog, 3, mode="hash", shard_keys={"fact": "f_key"},
        )
        merged = np.concatenate(
            [c.bat("fact", "v").values for c in part.catalogs]
        )
        np.testing.assert_array_equal(
            np.sort(merged), np.sort(db.catalog.bat("fact", "v").values)
        )

    def test_keys_in_different_domains_do_not_co_locate(self):
        db = make_db()
        part = ShardPartitioner(
            db.catalog, 2, shard_keys={"fact": "f_key", "dim": "pad"},
        )
        assert not part.co_located(("fact", "f_key"), ("dim", "pad"))
        assert part.is_key_aligned("fact", "f_key")
        assert not part.is_key_aligned("fact", "v")

    def test_hash_skew_all_rows_one_key(self):
        """Every row carries one key value: keyed hash placement puts
        the whole table on a single shard, and queries stay correct
        through the empty-shard fold paths."""
        db = repro.Database()
        db.create_table("skew", {
            "k": np.full(1000, 7, dtype=np.int32),
            "v": np.arange(1000, dtype=np.int32),
        })
        part = ShardPartitioner(
            db.catalog, 3, mode="hash", shard_keys={"skew": "k"},
        )
        counts = sorted(c.row_count("skew") for c in part.catalogs)
        assert counts[:2] == [0, 0] and counts[2] == 1000
        con = db.connect("SHARD:3xMS,hash,key=skew.k")
        expected = db.connect("MS").execute(
            "SELECT k, sum(v) AS s, count(*) AS n FROM skew GROUP BY k"
        )
        got = con.execute(
            "SELECT k, sum(v) AS s, count(*) AS n FROM skew GROUP BY k"
        )
        assert_results_equal(expected, got, rtol=0)

    def test_range_skew_splits_hot_band_instead_of_folding(self):
        """Satellite fix (PR 10): a heavily skewed key distribution
        used to leave range shards empty — equal-width bands over the
        key domain folded nearly every row into the hot band's shard.
        Band boundaries now come from the *observed* key histogram
        (recursive weighted-median splits of the heaviest band), so the
        hot band is split and every shard holds rows whenever there are
        at least as many distinct keys as shards."""
        rng = np.random.default_rng(17)
        db = repro.Database()
        hot = rng.integers(0, 10, 2900)           # 97% of rows, keys 0..9
        tail = rng.integers(10, 10_000, 100)      # thin tail to 10k
        keys = np.concatenate([hot, tail]).astype(np.int64)
        db.create_table("skew", {
            "k": keys,
            "v": np.arange(keys.size, dtype=np.int32),
        })
        part = ShardPartitioner(
            db.catalog, 4, shard_keys={"skew": "k"},
        )
        counts = [c.row_count("skew") for c in part.catalogs]
        assert sum(counts) == keys.size
        assert min(counts) > 0, f"empty shard under skew: {counts}"
        assert max(counts) < keys.size
        con = db.connect("SHARD:4xMS,key=skew.k")
        expected = db.connect("MS").execute(
            "SELECT k, sum(v) AS s, count(*) AS n FROM skew GROUP BY k"
        )
        got = con.execute(
            "SELECT k, sum(v) AS s, count(*) AS n FROM skew GROUP BY k"
        )
        assert_results_equal(expected, got, rtol=0)

    def test_skew_bands_weighted_median_properties(self):
        from repro.shard.partition import band_placement, skew_bands

        values = np.array([1.0] * 90 + [2.0] * 5 + [3.0] * 5)
        cuts = skew_bands(values, 3)
        assert cuts.size == 2
        counts = np.bincount(band_placement(values, cuts), minlength=3)
        assert (counts > 0).all()
        # fewer distinct keys than bands: bands collapse to the
        # distinct values instead of manufacturing empty ones
        assert skew_bands(np.full(100, 5.0), 4).size == 0
        two = skew_bands(np.array([1.0] * 99 + [9.0]), 4)
        assert two.size == 1
        placed = band_placement(np.array([1.0, 9.0]), two)
        assert placed.tolist() == [0, 1]

    def test_replication_threshold_boundary(self):
        """255 rows replicate, 256 partition (the documented policy
        boundary), and a declared key on a replicated table is moot."""
        db = repro.Database()
        db.create_table("just_under", {
            "k": np.arange(255, dtype=np.int32),
        })
        db.create_table("just_at", {
            "k": np.arange(256, dtype=np.int32),
        })
        part = ShardPartitioner(
            db.catalog, 2,
            shard_keys={"just_under": "k", "just_at": "k"},
        )
        assert not part.is_partitioned("just_under")
        assert part.is_partitioned("just_at")
        for catalog in part.catalogs:
            assert catalog.row_count("just_under") == 255
        assert part.key_of("just_under") is None
        assert part.key_of("just_at") == ("k", "k")

    def test_ddl_resync_repartitions_under_declared_key(self):
        """Declaring a key on a live partitioner re-slices the already
        installed tables (the layout signature changed); without the
        re-partition, stale row-id slices would satisfy co-location
        checks they no longer honour."""
        db = make_db()
        part = ShardPartitioner(db.catalog, 2, mode="hash")
        before = [c.bat("fact", "f_key").values.copy()
                  for c in part.catalogs]
        versions = [c.version for c in part.catalogs]
        part.declare_key("fact", "f_key")
        part.declare_key("dim", "d_key")
        assert part.co_located(("fact", "f_key"), ("dim", "d_key"))
        after = [c.bat("fact", "f_key").values for c in part.catalogs]
        assert any(
            a.shape != b.shape or not np.array_equal(a, b)
            for a, b in zip(before, after)
        )
        for catalog, version in zip(part.catalogs, versions):
            assert catalog.version > version
        ids = hash_placement(after[0], 2) if len(after[0]) else []
        assert all(i == 0 for i in ids)

    def test_range_domain_bounds_are_shared(self):
        """Range-mode bands come from the union of every member table's
        key range, so the tables agree even when one side's keys span a
        subset of the other's."""
        rng = np.random.default_rng(5)
        db = repro.Database()
        db.create_table("wide", {
            "k": np.arange(1000, dtype=np.int32),
        })
        db.create_table("narrow", {
            "k": rng.integers(400, 600, 500).astype(np.int32),
        })
        part = ShardPartitioner(
            db.catalog, 4, mode="range",
            shard_keys={"wide": "k", "narrow": "k"},
        )
        assert part.domains["k"] == (0.0, 999.0)
        for catalog in part.catalogs:
            w = set(catalog.bat("wide", "k").values.tolist())
            n = set(catalog.bat("narrow", "k").values.tolist())
            assert n <= w

    def test_catalog_declaration_validates_the_column(self):
        db = make_db()
        with pytest.raises(KeyError):
            db.declare_shard_key("fact", "nope")
        with pytest.raises(KeyError):
            db.declare_shard_key("ghost", "k")

    def test_unknown_key_column_rejected(self):
        db = make_db()
        with pytest.raises(ValueError, match="no such column"):
            ShardPartitioner(db.catalog, 2, shard_keys={"fact": "zz"})


class TestJoinStrategies:
    def test_colocated_join_moves_zero_join_bytes(self):
        db = make_db()
        expected = db.connect("MS").execute(JOIN_SQL)
        con = db.connect("SHARD:3xMS,key=fact.f_key,key=dim.d_key")
        got = con.execute(JOIN_SQL)
        assert_results_equal(expected, got, rtol=1e-5)
        assert con.backend._trace == [("algebra.join", JOIN_COLOCATED)]
        traffic = con.interconnect.query
        assert traffic.bytes_shuffled == 0
        # only the ngroups-wide grouped-aggregate merge remains
        assert traffic.bytes_broadcast < 10_000

    def test_shuffle_beats_broadcast_on_bytes(self):
        # a selective filter on the probe side, as in the TPC-H join
        # workload — the shuffle then moves a few hundred (key, oid)
        # pairs where the broadcast re-distributes whole columns
        sql = ("SELECT g, sum(v * w) AS s FROM fact "
               "JOIN dim ON f_key = d_key WHERE v < 0.2 "
               "GROUP BY g ORDER BY g")
        db = make_db()
        expected = db.connect("MS").execute(sql)
        broadcast = db.connect("SHARD:3xMS,join=broadcast")
        rb = broadcast.execute(sql)
        shuffle = db.connect("SHARD:3xMS")
        rs = shuffle.execute(sql)
        assert_results_equal(expected, rb, rtol=1e-5)
        assert_results_equal(expected, rs, rtol=1e-5)
        assert broadcast.backend._trace == [
            ("algebra.join", JOIN_BROADCAST)
        ]
        assert shuffle.backend._trace == [
            ("algebra.join", JOIN_SHUFFLE_BOTH)
        ]
        tb = broadcast.interconnect.query
        ts = shuffle.interconnect.query
        assert ts.bytes_total < tb.bytes_total
        assert ts.bytes_broadcast < tb.bytes_broadcast
        assert ts.bytes_shuffled > 0 and tb.bytes_shuffled == 0

    def test_one_aligned_side_shuffles_only_the_other(self):
        db = make_db()
        expected = db.connect("MS").execute(JOIN_SQL)
        con = db.connect("SHARD:3xMS,key=fact.f_key")
        got = con.execute(JOIN_SQL)
        assert_results_equal(expected, got, rtol=1e-5)
        assert con.backend._trace == [
            ("algebra.join", "shuffle-right")
        ]

    def test_traffic_counters_accumulate_and_reset(self):
        db = make_db()
        con = db.connect("SHARD:2xMS,join=broadcast")
        con.execute(JOIN_SQL)
        first = con.interconnect.query.bytes_total
        total1 = con.interconnect.total.bytes_total
        assert first > 0 and total1 >= first
        con.execute("SELECT sum(v) AS s FROM fact")
        assert con.interconnect.query.bytes_broadcast == 0
        assert con.interconnect.total.bytes_total > total1

    def test_single_node_engines_report_no_traffic(self):
        db = make_db()
        assert db.connect("MS").interconnect is None

    def test_shard_shuffle_operator(self):
        """``shard.shuffle`` is a first-class backend operator: it
        re-partitions a column by value and returns the origin
        positions of every shuffled row."""
        db = make_db()
        con = db.connect("SHARD:3xMS")
        backend = con.backend
        backend.begin()
        bind = backend.resolve("sql.bind")
        from repro.monetdb.mal import ColumnRef

        column = bind(ColumnRef("fact", "f_key"))
        shuffled, oids = backend.resolve("shard.shuffle")(column)
        assert shuffled.partitioned and oids.remote_oids
        assert backend.supports("shard.shuffle")
        # shard-to-shard moves were charged
        assert backend.traffic.query.bytes_shuffled > 0
        parent = db.catalog.bat("fact", "f_key").values
        merged = np.concatenate([
            np.asarray(backend._host_values(s, p))
            for s, p in enumerate(shuffled.parts)
        ])
        np.testing.assert_array_equal(np.sort(merged), np.sort(parent))
        # the oids map every shuffled row back to its source position
        concat = np.concatenate([
            np.asarray(backend._host_values(s, p))
            for s, p in enumerate(column.parts)
        ])
        goids = np.concatenate([
            np.asarray(backend._host_values(s, p))
            for s, p in enumerate(oids.parts)
        ]).astype(np.int64)
        np.testing.assert_array_equal(concat[goids], merged)

    def test_thetajoin_still_broadcasts(self):
        db = make_db()
        sql = ("SELECT count(*) AS n FROM fact JOIN dim ON f_key = d_key "
               "WHERE v < w")
        expected = db.connect("MS").execute(sql)
        con = db.connect("SHARD:2xMS,key=fact.f_key,key=dim.d_key")
        got = con.execute(sql)
        assert_results_equal(expected, got, rtol=0)


class TestKeyInference:
    def test_infer_adopts_keys_and_second_run_colocates(self):
        db = make_db()
        expected = db.connect("MS").execute(JOIN_SQL)
        con = db.connect("SHARD:3xMS,keys=infer")
        first = con.execute(JOIN_SQL)
        assert_results_equal(expected, first, rtol=1e-5)
        assert con.backend._trace[0][1] != JOIN_COLOCATED
        assert con.backend.partitioner.co_located(
            ("fact", "f_key"), ("dim", "d_key")
        )
        second = con.execute(JOIN_SQL)
        assert_results_equal(expected, second, rtol=1e-5)
        assert con.backend._trace == [("algebra.join", JOIN_COLOCATED)]
        assert con.interconnect.query.bytes_shuffled == 0

    def test_adoption_bumps_schema_version_and_recompiles(self):
        db = make_db()
        con = db.connect("SHARD:2xMS,keys=infer")
        version = db.catalog.version
        misses = con.plan_cache.stats.misses
        con.execute(JOIN_SQL)
        assert db.catalog.version > version
        con.execute(JOIN_SQL)       # old plan invalidated: a fresh miss
        assert con.plan_cache.stats.misses == misses + 2

    def test_adoption_happens_once(self):
        db = make_db()
        con = db.connect("SHARD:2xMS,keys=infer")
        con.execute(JOIN_SQL)
        version = db.catalog.version
        con.execute(JOIN_SQL)
        con.execute(JOIN_SQL)
        assert db.catalog.version == version

    def test_keys_off_ignores_declarations(self):
        db = make_db()
        db.declare_shard_key("fact", "f_key")
        db.declare_shard_key("dim", "d_key")
        expected = db.connect("MS").execute(JOIN_SQL)
        con = db.connect("SHARD:2xMS,keys=off")
        got = con.execute(JOIN_SQL)
        assert_results_equal(expected, got, rtol=1e-5)
        assert con.backend._trace[0][1] != JOIN_COLOCATED
        assert con.backend.partitioner.key_of("fact") is None


class TestStrategyReplay:
    def test_repeat_query_replays_the_strategy(self):
        db = make_db()
        con = db.connect("SHARD:2xMS,key=fact.f_key,key=dim.d_key")
        con.execute(JOIN_SQL)
        reuses = con.plan_cache.stats.placement_reuses
        con.execute(JOIN_SQL)
        assert con.plan_cache.stats.placement_reuses == reuses + 1
        assert con.backend._trace == [("algebra.join", JOIN_COLOCATED)]

    def test_ddl_invalidates_the_memoised_strategy(self):
        db = make_db()
        con = db.connect("SHARD:2xMS,key=fact.f_key,key=dim.d_key")
        con.execute(JOIN_SQL)
        misses = con.plan_cache.stats.misses
        db.create_table("other", {"z": np.arange(4, dtype=np.int32)})
        con.execute(JOIN_SQL)       # recompiled, strategy re-planned
        assert con.plan_cache.stats.misses == misses + 1
        reuses = con.plan_cache.stats.placement_reuses
        con.execute(JOIN_SQL)       # and memoised again
        assert con.plan_cache.stats.placement_reuses == reuses + 1

    def test_stale_trace_is_sanity_checked(self):
        """A replayed decision that no longer matches the layout plans
        fresh instead of mis-executing (belt and braces: the plan-cache
        key already prevents this via the schema version)."""
        db = make_db()
        con = db.connect("SHARD:2xMS,key=fact.f_key,key=dim.d_key")
        con.execute(JOIN_SQL)
        backend = con.backend
        backend.install_replay([("algebra.join", "shuffle-right"),
                                ("algebra.join", JOIN_COLOCATED)])
        expected = db.connect("MS").execute(JOIN_SQL)
        got = con.execute(JOIN_SQL)
        assert_results_equal(expected, got, rtol=1e-5)


class TestStaleLayoutRegression:
    """Satellite: no cached layout or broadcast may survive DDL.

    ``ShardedValue._gathered`` broadcasts are per-value and die with
    the query run, so they cannot leak across queries; the *real*
    cross-DDL hazard was the partitioner's sync skipping tables it had
    already installed — a key declared after first contact would leave
    row-id slices behind while ``co_located`` started saying yes.
    These tests pin the fixed behaviour end to end."""

    def test_key_declared_on_live_connection_repartitions(self):
        db = make_db()
        con = db.connect("SHARD:2xMS")
        expected = db.connect("MS").execute(JOIN_SQL)
        assert_results_equal(expected, con.execute(JOIN_SQL), rtol=1e-5)
        # DDL while the sharded backend is live and warm
        db.declare_shard_key("fact", "f_key")
        db.declare_shard_key("dim", "d_key")
        got = con.execute(JOIN_SQL)
        assert_results_equal(expected, got, rtol=1e-5)
        assert con.backend._trace == [("algebra.join", JOIN_COLOCATED)]
        # the shard slices really are keyed now, not stale row-id runs
        part = con.backend.partitioner
        for catalog in part.catalogs:
            fact_keys = set(catalog.bat("fact", "f_key").values.tolist())
            dim_keys = set(catalog.bat("dim", "d_key").values.tolist())
            assert fact_keys <= dim_keys

    def test_drop_and_recreate_does_not_reuse_old_broadcast(self):
        db = make_db(n_dim=600)
        con = db.connect("SHARD:2xMS,join=broadcast")
        first = con.execute(JOIN_SQL)
        rng = np.random.default_rng(99)
        db.drop_table("dim")
        db.create_table("dim", {
            "d_key": np.arange(600, dtype=np.int32),
            "w": rng.random(600).astype(np.float32),
            "pad": np.zeros(600, dtype=np.int32),
        })
        expected = db.connect("MS").execute(JOIN_SQL)
        got = con.execute(JOIN_SQL)
        assert_results_equal(expected, got, rtol=1e-5)
        assert not np.allclose(
            got.column("s"), first.column("s"), rtol=1e-5
        )

    def test_domain_widening_ddl_repartitions_members(self):
        """Range mode: a new table joining a key domain widens its
        bounds; existing member tables must re-slice to the new bands
        or co-location would silently mis-join."""
        db = make_db()
        db.declare_shard_key("fact", "f_key")
        db.declare_shard_key("dim", "d_key")
        con = db.connect("SHARD:2xMS")
        expected = db.connect("MS").execute(JOIN_SQL)
        assert_results_equal(expected, con.execute(JOIN_SQL), rtol=1e-5)
        # a third table in the same domain, with a far wider key range
        db.create_table("extra", {
            "xk": np.arange(0, 60_000, 10, dtype=np.int32),
        })
        db.declare_shard_key("extra", "xk", domain="d_key")
        part = con.backend.partitioner
        assert part.domains["d_key"] == (0.0, 59_990.0)
        got = con.execute(JOIN_SQL)
        assert_results_equal(expected, got, rtol=1e-5)
        assert con.backend._trace == [("algebra.join", JOIN_COLOCATED)]


class TestTPCHKeyModes:
    """The acceptance matrix: every TPC-H query matches single-node
    results with shard keys declared, inferred, and absent, on range
    and hash partitioning."""

    FAST = ("Q3", "Q12")

    @pytest.fixture(scope="class")
    def tpch(self):
        return repro.tpch_database(sf=1)

    SPECS = (
        "SHARD:2xMS,join=broadcast",
        "SHARD:2xMS",
        "SHARD:2xMS,hash",
        "SHARD:2xMS,key=lineitem.l_orderkey,key=orders.o_orderkey",
        "SHARD:2xMS,hash,key=lineitem.l_orderkey,key=orders.o_orderkey",
        "SHARD:2xMS,keys=infer",
    )

    def _check(self, tpch, spec, query):
        from repro.tpch import WORKLOAD

        expected = tpch.connect("MS").execute(WORKLOAD[query], name=query)
        got = tpch.connect(spec).execute(WORKLOAD[query], name=query)
        assert set(expected.columns) == set(got.columns)
        for column in expected.columns:
            np.testing.assert_allclose(
                got.columns[column].astype(np.float64),
                expected.columns[column].astype(np.float64),
                rtol=1e-5, atol=1e-8, err_msg=f"{spec} {query} {column}",
            )

    @pytest.mark.parametrize("spec", SPECS)
    @pytest.mark.parametrize("query", FAST)
    def test_join_queries_fast(self, tpch, spec, query):
        self._check(tpch, spec, query)

    @pytest.mark.slow
    @pytest.mark.parametrize("spec", SPECS)
    @pytest.mark.parametrize("query", [
        "Q1", "Q4", "Q5", "Q6", "Q7", "Q8", "Q10", "Q11", "Q15",
        "Q17", "Q19", "Q21",
    ])
    def test_whole_workload(self, tpch, spec, query):
        self._check(tpch, spec, query)
