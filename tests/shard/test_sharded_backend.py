"""The SHARD engine: partitioning, result equivalence against the
single-node engines, plan-cache behaviour, and DDL propagation."""

import numpy as np
import pytest

import repro
from repro.shard import ShardPartitioner, ShardedBackend
from repro.monetdb.interpreter import UnsupportedOperator
from repro.tpch import WORKLOAD


def assert_results_equal(expected, got, rtol=1e-6):
    assert set(expected.columns) == set(got.columns)
    for column in expected.columns:
        a = expected.columns[column].astype(np.float64)
        b = got.columns[column].astype(np.float64)
        assert a.shape == b.shape, column
        np.testing.assert_allclose(b, a, rtol=rtol, atol=1e-9,
                                   err_msg=column)


@pytest.fixture
def db():
    rng = np.random.default_rng(41)
    database = repro.Database()
    database.create_table("points", {
        "x": rng.integers(0, 8, 4000).astype(np.int32),
        "y": rng.random(4000).astype(np.float32),
        "g": rng.integers(0, 5, 4000).astype(np.int32),
    })
    database.create_table("tiny", {             # replicated (small)
        "k": np.arange(5, dtype=np.int32),
        "w": np.linspace(0.0, 1.0, 5).astype(np.float32),
    })
    return database


class TestPartitioner:
    def test_range_partitioning_covers_all_rows(self, db):
        part = ShardPartitioner(db.catalog, 3)
        assert part.is_partitioned("points")
        counts = [c.row_count("points") for c in part.catalogs]
        assert sum(counts) == 4000
        merged = np.concatenate(
            [c.bat("points", "x").values for c in part.catalogs]
        )
        np.testing.assert_array_equal(
            merged, db.catalog.bat("points", "x").values
        )

    def test_hash_partitioning_covers_all_rows(self, db):
        part = ShardPartitioner(db.catalog, 3, mode="hash")
        counts = [c.row_count("points") for c in part.catalogs]
        assert sum(counts) == 4000
        assert max(counts) - min(counts) <= 1

    def test_small_tables_replicated(self, db):
        part = ShardPartitioner(db.catalog, 3)
        assert not part.is_partitioned("tiny")
        for catalog in part.catalogs:
            assert catalog.row_count("tiny") == 5

    def test_bad_modes_rejected(self, db):
        with pytest.raises(ValueError):
            ShardPartitioner(db.catalog, 2, mode="zigzag")
        with pytest.raises(ValueError):
            ShardPartitioner(db.catalog, 0)


QUERIES = [
    "SELECT x, sum(y) AS s, count(*) AS n, avg(y) AS a "
    "FROM points GROUP BY x ORDER BY x",
    "SELECT sum(y) AS s FROM points WHERE x < 4",
    "SELECT min(y) AS lo, max(y) AS hi FROM points",
    "SELECT g, x, sum(y) AS s FROM points GROUP BY g, x",
    "SELECT x, sum(y * w) AS s FROM points "
    "JOIN tiny ON g = k GROUP BY x ORDER BY x",
    "SELECT x, count(*) AS n FROM points WHERE y < 0.25 "
    "GROUP BY x ORDER BY n DESC",
]


class TestEquivalence:
    @pytest.mark.parametrize("spec", ["SHARD:2xMS", "SHARD:3xMS",
                                      "SHARD:2xMS,hash"])
    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_single_node(self, db, spec, sql):
        expected = db.connect("MS").execute(sql)
        got = db.connect(spec).execute(sql)
        assert_results_equal(expected, got, rtol=1e-10)

    def test_result_attribution(self, db):
        result = db.connect("SHARD:2xMS").execute(
            "SELECT count(*) AS n FROM points"
        )
        assert result.backend == "SHARD:2xMS"

    def test_elapsed_is_slowest_shard_plus_merge(self, db):
        con = db.connect("SHARD:2xMS")
        result = con.execute("SELECT sum(y) AS s FROM points WHERE x < 3")
        backend = con.backend
        assert result.elapsed >= max(
            child.elapsed() for child in backend.children
        )


class TestEmptyShards:
    """A range filter can zero out entire shards (range partitioning
    puts whole value runs on one node); empty shards must contribute
    fold identities, never phantom rows or single-shard errors."""

    @pytest.fixture
    def skewed(self):
        database = repro.Database()
        database.create_table("t", {
            "k": np.repeat([0, 1], 500).astype(np.int32),
            "v": np.arange(1000, dtype=np.int32),
        })
        return database

    @pytest.mark.parametrize("spec", ["SHARD:2xMS", "SHARD:2xCPU"])
    def test_rows_from_one_shard_only(self, skewed, spec):
        expected = skewed.connect("MS").execute(
            "SELECT v FROM t WHERE k > 0"
        )
        got = skewed.connect(spec).execute("SELECT v FROM t WHERE k > 0")
        assert_results_equal(expected, got, rtol=0)

    @pytest.mark.parametrize("spec", ["SHARD:2xMS", "SHARD:2xCPU"])
    def test_scalar_aggregates_skip_empty_shards(self, skewed, spec):
        sql = ("SELECT min(v) AS lo, max(v) AS hi, sum(v) AS s, "
               "count(*) AS n, avg(v) AS a FROM t WHERE k > 0")
        expected = skewed.connect("MS").execute(sql)
        got = skewed.connect(spec).execute(sql)
        assert_results_equal(expected, got, rtol=1e-10)

    @pytest.mark.parametrize("spec", ["SHARD:2xMS", "SHARD:2xCPU"])
    def test_grouped_aggregates_with_empty_shard(self, skewed, spec):
        sql = ("SELECT k, sum(v) AS s, count(*) AS n FROM t "
               "WHERE k > 0 GROUP BY k")
        expected = skewed.connect("MS").execute(sql)
        got = skewed.connect(spec).execute(sql)
        assert_results_equal(expected, got, rtol=1e-10)

    def test_all_shards_empty_keeps_single_node_semantics(self, skewed):
        sql = "SELECT sum(v) AS s, count(*) AS n FROM t WHERE k > 99"
        expected = skewed.connect("MS").execute(sql)
        got = skewed.connect("SHARD:2xMS").execute(sql)
        assert_results_equal(expected, got, rtol=0)


class TestTPCH:
    """The acceptance queries on the composed engine (HET children)."""

    @pytest.fixture(scope="class")
    def tpch(self):
        return repro.tpch_database(sf=1)

    @pytest.mark.parametrize("query", ["Q1", "Q6"])
    def test_q1_q6_match_cpu_engine(self, tpch, query):
        expected = tpch.connect("CPU").execute(WORKLOAD[query], name=query)
        got = tpch.connect("SHARD:4xHET").execute(
            WORKLOAD[query], name=query
        )
        assert_results_equal(expected, got, rtol=1e-5)

    def test_repeat_queries_hit_plan_cache(self, tpch):
        con = tpch.connect("SHARD:4xHET")
        before = con.plan_cache.stats.hits
        con.execute(WORKLOAD["Q6"], name="Q6")
        first = con.plan_cache.stats.hits
        con.execute(WORKLOAD["Q6"], name="Q6")
        assert con.plan_cache.stats.hits == first + 1
        assert first >= before

    def test_specs_do_not_share_plans(self, tpch):
        misses = tpch.plan_cache.stats.misses
        tpch.connect("SHARD:2xMS").execute(WORKLOAD["Q6"], name="Q6X")
        tpch.connect("SHARD:3xMS").execute(WORKLOAD["Q6"], name="Q6X")
        assert tpch.plan_cache.stats.misses == misses + 2

    @pytest.mark.slow
    @pytest.mark.parametrize("query", ["Q3", "Q5", "Q7", "Q10", "Q12",
                                       "Q15", "Q17", "Q19", "Q21"])
    def test_join_workload_matches_ms(self, tpch, query):
        """Broadcast joins + grouped merges cover the join workload."""
        expected = tpch.connect("MS").execute(WORKLOAD[query], name=query)
        got = tpch.connect("SHARD:2xMS").execute(WORKLOAD[query], name=query)
        assert_results_equal(expected, got)


class TestDDL:
    def test_ddl_propagates_to_every_shard(self, db):
        con = db.connect("SHARD:3xMS")
        backend = con.backend
        versions = [c.version for c in backend.partitioner.catalogs]
        rows = np.arange(3000, dtype=np.int32)
        db.create_table("extra", {"v": rows})
        for shard_catalog, before in zip(
                backend.partitioner.catalogs, versions):
            assert shard_catalog.has_table("extra")
            assert shard_catalog.version > before
        assert backend.partitioner.is_partitioned("extra")
        result = con.execute("SELECT sum(v) AS s FROM extra")
        assert int(result.column("s")[0]) == int(rows.sum())

    def test_drop_propagates_and_invalidates_plans(self, db):
        con = db.connect("SHARD:2xMS")
        con.execute("SELECT count(*) AS n FROM points")
        db.drop_table("points")
        for shard_catalog in con.backend.partitioner.catalogs:
            assert not shard_catalog.has_table("points")
        with pytest.raises(Exception):
            con.execute("SELECT count(*) AS n FROM points")

    def test_ddl_invalidates_cached_plans(self, db):
        con = db.connect("SHARD:2xMS")
        sql = "SELECT count(*) AS n FROM points"
        con.execute(sql)
        misses = con.plan_cache.stats.misses
        db.create_table("other", {"z": np.arange(4, dtype=np.int32)})
        con.execute(sql)
        assert con.plan_cache.stats.misses == misses + 1


class TestLimitsAreExplicit:
    def test_unmergeable_partitioned_scalar_raises(self, db):
        """hashbuild's distinct count cannot fold across shards; the
        engine refuses loudly instead of returning a wrong number."""
        from repro.monetdb.mal import MALBuilder

        con = db.connect("SHARD:2xMS")
        builder = MALBuilder("hb")
        col = builder.bind("points", "x")
        n = builder.emit("algebra", "hashbuild", (col,))
        out = builder.emit("calc", "add", (n, 0))
        program = builder.returns([("n", out)])
        with pytest.raises(UnsupportedOperator):
            con.run_plan(program)


class TestSessions:
    def test_submit_works_fifo(self, db):
        con = db.connect("SHARD:2xMS")
        serial = con.execute("SELECT x, sum(y) AS s FROM points GROUP BY x")
        future = con.submit("SELECT x, sum(y) AS s FROM points GROUP BY x")
        con.drain()
        assert_results_equal(serial, future.result(), rtol=1e-10)
