"""Online re-sharding (PR 10): ``Database.add_shard`` /
``remove_shard`` migrate key ranges incrementally at query boundaries
— in-flight ``submit()`` batches drain against the old layout while
new admissions route to the new one — and the committed layout is
indistinguishable from a freshly-built cluster of the same size.
"""

import numpy as np
import pytest

from repro.api import Database
from repro.serve.session import QueryCancelled


def assert_results_equal(expected, got, rtol=1e-6):
    assert got.n_rows == expected.n_rows
    assert list(got.columns) == list(expected.columns)
    for name in expected.columns:
        np.testing.assert_allclose(
            got.columns[name].astype(np.float64),
            expected.columns[name].astype(np.float64),
            rtol=rtol, err_msg=name,
        )


@pytest.fixture
def db():
    rng = np.random.default_rng(59)
    database = Database()
    database.create_table("fact", {
        "k": rng.integers(0, 400, 5000).astype(np.int64),
        "v": rng.random(5000).astype(np.float64),
    })
    yield database
    database.close()


AGG = "SELECT sum(v) AS s, count(*) AS n FROM fact"
GROUPED = "SELECT k, sum(v) AS s FROM fact GROUP BY k"


def fresh_result(sql, n_shards, replicas, seed_db_args=59):
    """The same query on a freshly-built cluster of the target size —
    the committed layout must be indistinguishable from it."""
    rng = np.random.default_rng(seed_db_args)
    with Database() as other:
        other.create_table("fact", {
            "k": rng.integers(0, 400, 5000).astype(np.int64),
            "v": rng.random(5000).astype(np.float64),
        })
        spec = f"SHARD:{n_shards}xCPU,replicas={replicas}"
        return other.connect(spec).execute(sql)


class TestResize:
    def test_add_shard_matches_fresh_layout(self, db):
        con = db.connect("SHARD:4xCPU,replicas=2")
        con.execute(GROUPED)
        db.add_shard()
        backend = con.backend
        assert backend.cluster_nodes() == 5
        assert not backend.topology_pending()
        assert backend.partitioner.n_shards == 5
        assert len(backend.children) == 5
        assert_results_equal(
            fresh_result(GROUPED, 5, 2), con.execute(GROUPED)
        )
        stats = backend.cluster_stats()
        assert stats.ranges_migrated > 0
        assert stats.topology_changes >= 1
        assert stats.nodes == 5

    def test_remove_shard_matches_fresh_layout(self, db):
        con = db.connect("SHARD:4xCPU,replicas=2")
        before = con.execute(GROUPED)
        db.remove_shard()
        assert con.backend.cluster_nodes() == 3
        after = con.execute(GROUPED)
        assert_results_equal(fresh_result(GROUPED, 3, 2), after)
        assert_results_equal(before, after, rtol=1e-5)

    def test_resizes_compose(self, db):
        con = db.connect("SHARD:3xCPU,replicas=2")
        con.execute(AGG)
        db.add_shard()
        db.add_shard()
        assert con.backend.cluster_nodes() == 5
        db.remove_shard()
        assert con.backend.cluster_nodes() == 4
        assert_results_equal(
            fresh_result(AGG, 4, 2), con.execute(AGG)
        )

    def test_replicas_clamped_to_one_node(self, db):
        con = db.connect("SHARD:2xCPU,replicas=2")
        con.execute(AGG)
        db.remove_shard()
        backend = con.backend
        assert backend.cluster_nodes() == 1
        assert backend.replicas == 1
        assert_results_equal(
            fresh_result(AGG, 1, 1), con.execute(AGG)
        )
        with pytest.raises(ValueError):
            db.remove_shard()

    def test_resize_without_sharded_connection_raises(self, db):
        db.connect("CPU").execute(AGG)
        with pytest.raises(RuntimeError):
            db.add_shard()

    def test_migration_is_incremental(self, db):
        """The staged layout migrates a bounded number of tables per
        query boundary, not all at once."""
        rng = np.random.default_rng(61)
        for name in ("extra_a", "extra_b", "extra_c"):
            db.create_table(name, {
                "k": rng.integers(0, 400, 4000).astype(np.int64),
                "v": rng.random(4000).astype(np.float64),
            })
        con = db.connect("SHARD:4xCPU,replicas=2")
        con.execute(AGG)
        backend = con.backend
        backend.request_resize(5)
        assert backend.topology_pending()
        assert backend.cluster_nodes() == 5         # staged target
        assert backend.partitioner.n_shards == 4    # not committed yet
        assert len(backend._staged._pending_tables) == 4
        migrated = backend.cluster_stats().ranges_migrated
        backend.query_boundary()                    # moves 2 of 4 tables
        assert backend.cluster_stats().ranges_migrated > migrated
        assert backend.topology_pending()
        assert len(backend._staged._pending_tables) == 2
        boundaries = 0
        while backend.topology_pending():
            backend.query_boundary()
            boundaries += 1
        assert boundaries >= 1
        assert backend.partitioner.n_shards == 5


class TestResizeUnderTraffic:
    def test_in_flight_batches_drain_against_old_layout(self, db):
        con = db.connect("SHARD:4xCPU,replicas=2")
        clean = con.execute(GROUPED)
        futures = [con.submit(GROUPED) for _ in range(4)]
        db.add_shard()                              # mid-batch
        backend = con.backend
        # the resize is staged, not torn through the running batch
        assert backend.topology_pending()
        assert backend.partitioner.n_shards == 4
        for future in futures:
            assert_results_equal(clean, future.result())
        con.drain()
        # the drained batch let the migration finish and commit
        assert not backend.topology_pending()
        assert backend.partitioner.n_shards == 5
        assert_results_equal(
            fresh_result(GROUPED, 5, 2), con.execute(GROUPED)
        )

    def test_new_admissions_route_to_new_layout(self, db):
        con = db.connect("SHARD:4xCPU,replicas=2")
        clean = con.execute(GROUPED)
        db.add_shard()
        futures = [con.submit(GROUPED) for _ in range(3)]
        results = [future.result() for future in futures]
        for result in results:
            assert_results_equal(clean, result, rtol=1e-5)
        assert con.backend.partitioner.n_shards == 5

    def test_cancel_mid_migration_leaves_no_partial_layout(self, db):
        con = db.connect("SHARD:4xCPU,replicas=2")
        clean = con.execute(GROUPED)
        futures = [con.submit(GROUPED) for _ in range(3)]
        db.add_shard()
        backend = con.backend
        assert backend.topology_pending()
        assert futures[1].cancel()
        with pytest.raises(QueryCancelled):
            futures[1].result()
        assert_results_equal(clean, futures[0].result())
        assert_results_equal(clean, futures[2].result())
        con.drain()
        # no half-migrated layout survives the cancelled batch
        assert not backend.topology_pending()
        assert backend.partitioner.n_shards == 5
        assert backend.partitioner.migration_done or \
            backend.partitioner._pending_tables is None
        assert_results_equal(
            fresh_result(GROUPED, 5, 2), con.execute(GROUPED)
        )

    def test_cancel_everything_still_commits(self, db):
        con = db.connect("SHARD:4xCPU,replicas=2")
        con.execute(AGG)
        futures = [con.submit(AGG) for _ in range(2)]
        db.remove_shard()
        for future in futures:
            future.cancel()
        con.drain()
        backend = con.backend
        assert not backend.topology_pending()
        assert backend.partitioner.n_shards == 3
        assert_results_equal(
            fresh_result(AGG, 3, 2), con.execute(AGG)
        )


class TestResizeInvalidation:
    def test_commit_bumps_version_and_purges_traces(self, db):
        db.create_table("dim", {
            "k": np.arange(400, dtype=np.int64),
            "w": np.linspace(0.0, 1.0, 400),
        })
        join = ("SELECT sum(v) AS s FROM fact JOIN dim "
                "ON fact.k = dim.k WHERE w < 0.5")
        con = db.connect("SHARD:4xCPU,replicas=2")
        con.execute(join)
        con.execute(join)                   # memoise the join trace
        spec = con.engine
        assert any(
            key[1] == spec and entry.placements is not None
            for key, entry in db.plan_cache._entries.items()
        )
        version = db.catalog.version
        db.add_shard()
        assert db.catalog.version > version
        assert not any(
            key[1] == spec and entry.placements is not None
            for key, entry in db.plan_cache._entries.items()
        )
        assert_results_equal(
            db.connect("CPU").execute(join), con.execute(join),
            rtol=1e-5,
        )
