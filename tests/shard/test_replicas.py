"""Replicated shard topology (PR 10): chained-declustered copies,
re-partition-free failover, read balancing, and the ``cluster.*``
counters.

The load-bearing property: killing a node on a ``replicas=2`` cluster
changes *routing*, never *placement* — the layout signatures and the
active node set are bit-identical across the failover, and the results
match the clean run exactly (the promoted copy holds the same slice).
"""

import numpy as np
import pytest

from repro.api import Database
from repro.serve.faults import (
    NodeFault,
    RetryableFault,
    wrap_shard_child,
    wrap_shard_node,
)
from repro.shard.replica import ClusterStats, ReplicaRouting


def assert_results_equal(expected, got, rtol=1e-6):
    assert got.n_rows == expected.n_rows
    assert list(got.columns) == list(expected.columns)
    for name in expected.columns:
        np.testing.assert_allclose(
            got.columns[name].astype(np.float64),
            expected.columns[name].astype(np.float64),
            rtol=rtol, err_msg=name,
        )


@pytest.fixture
def db():
    rng = np.random.default_rng(41)
    database = Database()
    database.create_table("fact", {
        "k": rng.integers(0, 500, 6000).astype(np.int64),
        "v": rng.random(6000).astype(np.float64),
    })
    database.create_table("dim", {
        "k": np.arange(500, dtype=np.int64),
        "w": rng.random(500).astype(np.float64),
    })
    yield database
    database.close()


AGG = "SELECT sum(v) AS s, count(*) AS n FROM fact"
GROUPED = "SELECT k, sum(v) AS s FROM fact GROUP BY k"
JOIN = ("SELECT sum(v) AS s FROM fact JOIN dim ON fact.k = dim.k "
        "WHERE w < 0.5")


class TestReplicaRouting:
    def test_chained_declustering_hosts(self):
        routing = ReplicaRouting(4, replicas=3)
        # copy k of slot s lives on node (s + k) % n
        assert routing.host(0, 0) == 0
        assert routing.host(0, 2) == 2
        assert routing.host(3, 1) == 0
        assert routing.host(3, 2) == 1
        # every copy of one slot is on a distinct node
        for slot in range(4):
            hosts = {routing.host(slot, k) for k in range(3)}
            assert len(hosts) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicaRouting(2, replicas=3)
        with pytest.raises(ValueError):
            ReplicaRouting(2, replicas=0)

    def test_failover_is_a_routing_change(self):
        routing = ReplicaRouting(4, replicas=2)
        plan = routing.plan_failover(1, healthy=lambda n: n != 1)
        # node 1 serves exactly its primary slot; the replica of slot 1
        # lives on node 2
        assert plan == {1: 1}
        promoted, recovered = routing.apply(plan)
        assert (promoted, recovered) == (1, 0)
        assert routing.degraded
        assert routing.host(1) == 2
        # everything else still routes to its primary
        assert routing.slots_on(1) == []
        assert routing.promoted == {1}

    def test_failover_unservable_slot_returns_none(self):
        routing = ReplicaRouting(2, replicas=2)
        routing.apply({1: 1})                       # slot 1 -> node 0
        # now node 0 dies and node 1 is also unhealthy: slot 0 has no
        # healthy copy anywhere
        assert routing.plan_failover(0, healthy=lambda n: False) is None

    def test_rejoin_demotes_back_to_primaries(self):
        routing = ReplicaRouting(4, replicas=2)
        routing.apply(routing.plan_failover(1, lambda n: n != 1))
        assert routing.rejoin_plan(healthy=lambda n: n != 1) == {}
        plan = routing.rejoin_plan(healthy=lambda n: True)
        assert plan == {1: 0}
        promoted, recovered = routing.apply(plan)
        assert (promoted, recovered) == (0, 1)
        assert not routing.degraded

    def test_rotate_round_robins_the_copies(self):
        routing = ReplicaRouting(4, replicas=2)
        assert routing.rotate(1) is True
        assert routing.copy_of == [1, 1, 1, 1]
        assert routing.rotate(1) is False           # already there
        assert routing.rotate(2) is True
        assert routing.copy_of == [0, 0, 0, 0]
        # single-copy clusters never change
        assert ReplicaRouting(4, replicas=1).rotate(7) is False


class TestReplicatedExecution:
    @pytest.mark.parametrize("sql", [AGG, GROUPED, JOIN])
    def test_matches_unreplicated_layout(self, db, sql):
        plain = db.connect("SHARD:4xCPU").execute(sql)
        replicated = db.connect("SHARD:4xCPU,replicas=2").execute(sql)
        assert_results_equal(plain, replicated)

    def test_copies_hold_identical_slices(self, db):
        backend = db.connect("SHARD:4xCPU,replicas=3").backend
        for slot, row in enumerate(backend.partitioner.copies):
            primary = row[0]
            for copy_catalog in row[1:]:
                assert copy_catalog.row_count("fact") == \
                    primary.row_count("fact")
        # the primary list stays the catalogs alias older code uses
        assert backend.partitioner.catalogs == [
            row[0] for row in backend.partitioner.copies
        ]

    def test_read_balancing_rotates_without_version_bump(self, db):
        con = db.connect("SHARD:4xCPU,replicas=2")
        backend = con.backend
        version = db.catalog.version
        for _ in range(4):
            con.execute(AGG)
        stats = backend.cluster_stats()
        assert stats.reads_balanced >= 2
        # rotation swaps which copy serves reads...
        for slot in range(4):
            assert backend.children[slot] is \
                backend.copies[slot][backend.routing.copy_of[slot]]
        # ...but never re-partitions or invalidates plans
        assert db.catalog.version == version
        assert stats.topology_changes == 0


class TestFailover:
    def test_promotion_without_repartition(self, db):
        con = db.connect("SHARD:4xCPU,replicas=2")
        clean = con.execute(GROUPED)
        backend = con.backend
        signatures = dict(backend.partitioner._signatures)
        active = tuple(backend.partitioner.active)

        wrappers = wrap_shard_node(backend, 2)
        assert len(wrappers) == 2                   # primary + a replica
        for wrapper in wrappers:
            wrapper.always = NodeFault("node 2 down")
        assert_results_equal(clean, con.execute(GROUPED))

        stats = backend.cluster_stats()
        assert stats.promotions >= 1
        assert stats.topology_changes >= 1
        assert backend.routing.degraded
        # the acceptance assertion: failover is a pure routing change
        assert dict(backend.partitioner._signatures) == signatures
        assert tuple(backend.partitioner.active) == active
        assert backend.breakers().breaker(("shard", 2)).trips >= 1

    def test_degraded_reads_are_counted(self, db):
        con = db.connect("SHARD:4xCPU,replicas=2")
        con.execute(AGG)
        backend = con.backend
        for wrapper in wrap_shard_node(backend, 1):
            wrapper.always = NodeFault("node 1 down")
        con.execute(AGG)
        before = backend.cluster_stats().degraded_reads
        assert before >= 1
        con.execute(AGG)
        assert backend.cluster_stats().degraded_reads > before

    def test_promotion_invalidates_cached_join_traces(self, db):
        """Satellite: topology changes purge the engine's memoised
        placement/join-strategy traces eagerly, not lazily."""
        con = db.connect("SHARD:4xCPU,replicas=2")
        con.execute(JOIN)
        con.execute(JOIN)                  # second run stores the trace
        spec = con.engine

        stale_keys = [
            key for key, entry in db.plan_cache._entries.items()
            if key[1] == spec and entry.placements is not None
        ]
        assert stale_keys, "no trace was memoised"
        invalidations = db.plan_cache.stats.invalidations
        for wrapper in wrap_shard_node(con.backend, 0):
            wrapper.always = NodeFault("node 0 down")
        clean = db.connect("SHARD:4xCPU").execute(JOIN)
        assert_results_equal(clean, con.execute(JOIN))
        # the pre-failover traces were purged the moment the topology
        # moved (the post-failover run memoises a fresh one)
        assert all(key not in db.plan_cache._entries
                   for key in stale_keys)
        assert db.plan_cache.stats.invalidations > invalidations

    def test_recovery_rejoins_the_primary(self, db):
        con = db.connect("SHARD:4xCPU,replicas=2")
        clean = con.execute(GROUPED)
        backend = con.backend
        wrappers = wrap_shard_node(backend, 3)
        for wrapper in wrappers:
            wrapper.always = NodeFault("node 3 down")
        assert_results_equal(clean, con.execute(GROUPED))
        assert backend.routing.degraded

        for wrapper in wrappers:
            wrapper.always = None                   # node heals
        for _ in range(10):                         # cooldown ticks
            backend.query_boundary()
        assert not backend.routing.degraded
        stats = backend.cluster_stats()
        assert stats.recoveries >= 1
        assert_results_equal(clean, con.execute(GROUPED))

    def test_losing_every_copy_fails_the_query(self, db):
        con = db.connect("SHARD:2xCPU,replicas=2")
        con.execute(AGG)
        for node in (0, 1):
            for wrapper in wrap_shard_node(con.backend, node):
                wrapper.always = NodeFault(f"node {node} down")
        with pytest.raises(NodeFault):
            con.execute(AGG)

    def test_single_replica_keeps_exclusion_semantics(self, db):
        """replicas=1 (the default) still re-partitions over the
        healthy remainder — the PR-7 arc is unchanged."""
        con = db.connect("SHARD:3xCPU")
        clean = con.execute(AGG)
        sick = wrap_shard_child(con.backend, 1, {
            k: NodeFault("shard 1 down", node=1) for k in (1, 2, 3)
        })
        assert_results_equal(clean, con.execute(AGG))
        assert len(sick.injected) == 3
        assert con.backend.cluster_stats().promotions == 0


class TestRetryableBlips:
    def test_blip_absorbed_before_the_breaker(self, db):
        con = db.connect("SHARD:4xCPU,replicas=2")
        clean = con.execute(AGG)
        backend = con.backend
        faulty = wrap_shard_child(backend, 0, schedule={
            2: RetryableFault("network blip"),
        })
        trips = sum(b.trips for b in backend.breakers())
        assert_results_equal(clean, con.execute(AGG))
        assert len(faulty.injected) == 1
        assert backend.cluster_stats().retries >= 1
        # absorbed in place: no breaker charge, no promotion
        assert sum(b.trips for b in backend.breakers()) == trips
        assert not backend.routing.degraded

    def test_persistent_blip_escalates_to_the_breaker(self, db):
        con = db.connect("SHARD:4xCPU,replicas=2")
        clean = con.execute(AGG)
        backend = con.backend
        for wrapper in wrap_shard_node(backend, 1):
            wrapper.always = RetryableFault("stuck blip")
        assert_results_equal(clean, con.execute(AGG))
        # outlived the in-place retry budget: charged like a hard fault
        assert backend.cluster_stats().retries >= 1
        assert backend.breakers().breaker(("shard", 1)).trips >= 1
        assert backend.cluster_stats().promotions >= 1


class TestClusterMetricsSurface:
    def test_snapshot_exposes_cluster_namespace(self, db):
        con = db.connect("SHARD:4xCPU,replicas=2")
        con.execute(AGG)
        snapshot = con.metrics.snapshot()
        assert snapshot["cluster.nodes"] == 4
        assert snapshot["cluster.replicas"] == 2
        for field in ("promotions", "recoveries", "degraded_reads",
                      "retries", "ranges_migrated", "topology_changes",
                      "reads_balanced"):
            assert f"cluster.{field}" in snapshot

    def test_single_node_engines_have_no_cluster_section(self, db):
        con = db.connect("CPU")
        con.execute(AGG)
        assert con.backend.cluster_stats() is None
        assert not any(k.startswith("cluster.")
                       for k in con.metrics.snapshot())

    def test_stats_default_shape(self):
        stats = ClusterStats()
        assert stats.nodes == 0 and stats.replicas == 1
        assert stats.promotions == 0 and stats.ranges_migrated == 0
