"""Engine registry: spec grammar, canonicalization, registration,
override semantics, and the generated README engine table."""

import os

import numpy as np
import pytest

import repro
from repro.engines import (
    EngineConfig,
    EngineFamily,
    EngineRegistry,
    EngineSpecError,
    default_registry,
    engine_table_markdown,
)


class TestSpecGrammar:
    @pytest.mark.parametrize("text,canonical", [
        ("CPU", "CPU"),
        ("cpu", "CPU"),
        (" het ", "HET"),
        ("SHARD:4xHET", "SHARD:4xHET"),
        ("shard:4xhet", "SHARD:4xHET"),
        ("Shard:8xCpu", "SHARD:8xCPU"),
        ("SHARD:2xMS,hash", "SHARD:2xMS,hash"),
        ("shard:2xms,HASH", "SHARD:2xMS,hash"),
    ])
    def test_canonicalization(self, text, canonical):
        assert default_registry.parse(text).canonical == canonical

    def test_parse_fields(self):
        spec = default_registry.parse("shard:4xhet")
        assert spec.family == "SHARD"
        assert spec.count == 4
        assert spec.child == "HET"
        assert spec.flags == ()

    @pytest.mark.parametrize("bad", [
        "",                      # empty
        "   ",
        "TPU",                   # unknown family
        "CPU:2",                 # legacy family takes no parameters
        "CPU:4xGPU",             # replication arg on a simple family
        "SHARD:",                # empty parameter list
        "SHARD:hash",            # missing NxCHILD
        "SHARD:0xCPU",           # zero shards
        "SHARD:4xTPU",           # unknown child
        "SHARD:4xSHARD:2xCPU",   # nested composite child
        "SHARD:4xCPU,turbo",     # unknown flag
        "SHARD:4xCPU,hash,hash",  # duplicate flag
        "SHARD:4xCPU,2xMS",      # duplicate replication arg
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(EngineSpecError):
            default_registry.resolve(bad)

    def test_error_lists_registered_engines(self):
        with pytest.raises(EngineSpecError, match="SHARD:<N>x<CHILD>"):
            default_registry.parse("TPU")
        with pytest.raises(EngineSpecError, match="registered engines"):
            default_registry.parse("TPU")


class TestSpecParams:
    """NAME=VALUE parameters (PR 5): shard keys through the grammar."""

    def test_key_params_parse_and_canonicalise(self):
        spec = default_registry.parse(
            "shard:2xms,KEY=Orders.O_ORDERKEY,key=lineitem.l_orderkey"
        )
        assert spec.params == (
            ("key", "lineitem.l_orderkey"), ("key", "orders.o_orderkey"),
        )
        assert spec.canonical == (
            "SHARD:2xMS,key=lineitem.l_orderkey,key=orders.o_orderkey"
        )

    def test_param_order_does_not_split_the_engine(self):
        a = default_registry.parse(
            "SHARD:2xMS,key=orders.o_orderkey,key=lineitem.l_orderkey"
        )
        b = default_registry.parse(
            "SHARD:2xMS,key=lineitem.l_orderkey,key=orders.o_orderkey"
        )
        assert a.canonical == b.canonical

    def test_params_sort_with_flags(self):
        a = default_registry.parse("SHARD:2xMS,keys=infer,hash")
        b = default_registry.parse("SHARD:2xMS,hash,keys=infer")
        assert a.canonical == b.canonical == "SHARD:2xMS,hash,keys=infer"

    def test_param_values_accessor(self):
        spec = default_registry.parse(
            "SHARD:2xMS,key=a.x,key=b.y,join=broadcast"
        )
        assert spec.param_values("key") == ("a.x", "b.y")
        assert spec.param_values("join") == ("broadcast",)
        assert spec.param_values("nope") == ()

    def test_fusion_off_stays_a_flag(self):
        spec = default_registry.parse("SHARD:2xMS,fusion=off")
        assert "fusion=off" in spec.flags
        assert spec.params == ()

    @pytest.mark.parametrize("bad", [
        "SHARD:2xMS,key=",                # empty value
        "SHARD:2xMS,key=a.x,key=a.x",     # duplicate param
        "SHARD:2xMS,nope=1",              # unknown param name
        "CPU:key=a.x",                    # family without params
        "SHARD:2xMS,key=lineitem",        # not <table>.<column>
        "SHARD:2xMS,key=a.x,key=a.y",     # two keys for one table
        "SHARD:2xMS,keys=sideways",       # bad keys mode
        "SHARD:2xMS,keys=off,key=a.x",    # contradiction
        "SHARD:2xMS,join=zigzag",         # bad join strategy
    ])
    def test_bad_params_rejected(self, bad):
        with pytest.raises(EngineSpecError):
            default_registry.resolve(bad)

    def test_unknown_param_error_names_the_allowed_set(self):
        with pytest.raises(EngineSpecError, match="key=<value>"):
            default_registry.parse("SHARD:2xMS,nope=1")

    def test_conflicting_single_valued_params_rejected(self):
        for bad in ("SHARD:2xMS,keys=off,keys=infer",
                    "SHARD:2xMS,keys=infer,keys=off",
                    "SHARD:2xMS,join=auto,join=broadcast",
                    "SHARD:2xMS,join=broadcast,keys=infer"):
            with pytest.raises(EngineSpecError):
                default_registry.resolve(bad)

    def test_non_string_rejected(self):
        with pytest.raises(EngineSpecError):
            default_registry.parse(None)


class TestServeParams:
    """``timeout=`` / ``admission=`` (PR 7): the front door's serving
    parameters, accepted by every family like ``morsel=``."""

    @pytest.mark.parametrize("family", ["MS", "MP", "CPU", "GPU", "HET"])
    def test_every_simple_family_accepts_them(self, family):
        config = default_registry.resolve(
            f"{family}:admission=4,timeout=2.5"
        )
        assert config.admission == 4
        assert config.timeout_s == 2.5

    def test_shard_accepts_them(self):
        config = default_registry.resolve(
            "SHARD:2xMS,admission=2,timeout=1.5"
        )
        assert config.admission == 2
        assert config.timeout_s == 1.5

    def test_off_means_disabled(self):
        config = default_registry.resolve("MS:admission=off,timeout=off")
        assert config.admission == 0
        assert config.timeout_s == 0.0

    def test_params_canonicalise_sorted(self):
        a = default_registry.parse("MS:timeout=2.5,admission=4")
        b = default_registry.parse("ms:ADMISSION=4,timeout=2.5")
        assert a.canonical == b.canonical == "MS:admission=4,timeout=2.5"

    def test_defaults_are_off(self):
        config = default_registry.resolve("CPU")
        assert config.admission == 0
        assert config.timeout_s == 0.0

    @pytest.mark.parametrize("bad", [
        "MS:timeout=-1",                   # negative deadline
        "MS:timeout=zero",                 # not a number
        "MS:timeout=1,timeout=2",          # conflicting values
        "MS:admission=2.5",                # not an integer
        "MS:admission=-3",
        "MS:admission=lots",
        "MS:admission=1,admission=2",
        "SHARD:2xMS,timeout=never",
    ])
    def test_bad_values_rejected(self, bad):
        with pytest.raises(EngineSpecError):
            default_registry.resolve(bad)

    def test_spec_params_connect_end_to_end(self):
        db = repro.Database()
        db.create_table("t", {"x": np.arange(16, dtype=np.int32)})
        con = db.connect("MS:admission=2,timeout=1e6")
        result = con.execute("SELECT sum(x) AS s FROM t")
        assert int(result.column("s")[0]) == 120
        assert con.scheduler.admission_limit == 2


class TestTraceParams:
    """``trace=`` / ``obs_slow_ms=`` (PR 9): the observability
    parameters, accepted by every family like the serving ones."""

    @pytest.mark.parametrize("family", ["MS", "MP", "CPU", "GPU", "HET"])
    def test_every_simple_family_accepts_them(self, family):
        config = default_registry.resolve(
            f"{family}:trace=on,obs_slow_ms=2.5"
        )
        assert config.trace is True
        assert config.obs_slow_ms == 2.5

    def test_shard_accepts_them(self):
        config = default_registry.resolve(
            "SHARD:2xMS,trace=on,obs_slow_ms=5"
        )
        assert config.trace is True
        assert config.obs_slow_ms == 5.0

    def test_off_means_disabled(self):
        config = default_registry.resolve("MS:trace=off,obs_slow_ms=off")
        assert config.trace is False
        assert config.obs_slow_ms == 0.0

    def test_params_canonicalise_sorted(self):
        a = default_registry.parse("MS:obs_slow_ms=5,trace=on")
        b = default_registry.parse("ms:TRACE=on,obs_slow_ms=5")
        assert a.canonical == b.canonical == "MS:obs_slow_ms=5,trace=on"

    def test_defaults_are_off(self):
        config = default_registry.resolve("CPU")
        assert config.trace is False
        assert config.obs_slow_ms == 0.0
        if "REPRO_TRACE" not in os.environ:   # CI's trace-on job forces it
            assert config.traces is False

    def test_env_overrides_spec(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "on")
        assert default_registry.resolve("MS").traces is True
        monkeypatch.setenv("REPRO_TRACE", "off")
        assert default_registry.resolve("MS:trace=on").traces is False
        monkeypatch.delenv("REPRO_TRACE")
        assert default_registry.resolve("MS:trace=on").traces is True

    @pytest.mark.parametrize("bad", [
        "MS:trace=maybe",                  # not on/off
        "MS:trace=on,trace=off",           # conflicting values
        "MS:obs_slow_ms=-1",               # negative threshold
        "MS:obs_slow_ms=banana",           # not a number
        "MS:obs_slow_ms=1,obs_slow_ms=2",  # conflicting values
        "SHARD:2xMS,trace=always",
    ])
    def test_bad_values_rejected(self, bad):
        with pytest.raises(EngineSpecError):
            default_registry.resolve(bad)

    def test_spec_params_connect_end_to_end(self):
        db = repro.Database()
        db.create_table("t", {"x": np.arange(16, dtype=np.int32)})
        con = db.connect("MS:obs_slow_ms=0.000001,trace=on")
        result = con.execute("SELECT sum(x) AS s FROM t")
        assert int(result.column("s")[0]) == 120
        assert result.trace is not None
        assert result.trace.root().name == "query"
        assert len(con.metrics.slow_queries) == 1


class TestRegistry:
    def _family(self, name, description="test engine"):
        def configure(spec, registry):
            return EngineConfig(
                label=name, make=lambda cat, scale: None,
                is_ocelot=False, description=description,
                spec=spec.canonical,
            )

        return EngineFamily(name=name, configure=configure,
                            description=description, syntax=name)

    def test_register_and_resolve(self):
        registry = EngineRegistry()
        registry.register(self._family("TOY"))
        config = registry.resolve("toy")
        assert config.spec == "TOY"
        assert config.description == "test engine"

    def test_duplicate_registration_rejected(self):
        registry = EngineRegistry()
        registry.register(self._family("TOY"))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(self._family("TOY"))

    def test_override_replaces_and_invalidates(self):
        registry = EngineRegistry()
        registry.register(self._family("TOY", "v1"))
        first = registry.resolve("TOY")
        registry.register(self._family("TOY", "v2"), override=True)
        second = registry.resolve("TOY")
        assert first.description == "v1"
        assert second.description == "v2"

    def test_configs_memoised_per_canonical_spec(self):
        registry = EngineRegistry()
        registry.register(self._family("TOY"))
        assert registry.resolve("TOY") is registry.resolve("toy")

    def test_all_legacy_labels_connect_through_registry(self):
        db = repro.Database()
        db.create_table("t", {"x": np.arange(8, dtype=np.int32)})
        for label in ("MS", "MP", "CPU", "GPU", "HET"):
            con = db.connect(label)
            assert con.engine == label
            result = con.execute("SELECT count(*) AS n FROM t")
            assert int(result.column("n")[0]) == 8

    def test_connection_cached_per_canonical_spec(self):
        db = repro.Database()
        db.create_table("t", {"x": np.arange(300, dtype=np.int32)})
        a = db.connect("SHARD:2xMS")
        b = db.connect("shard:2xms")
        assert a is b

    def test_repro_engines_listing(self):
        names = [family.name for family in repro.engines()]
        for expected in ("MS", "MP", "CPU", "GPU", "HET", "SHARD"):
            assert expected in names


class TestReplicaGrammar:
    def test_colon_and_comma_separators_are_interchangeable(self):
        a = default_registry.parse("SHARD:4xCPU:replicas=2")
        b = default_registry.parse("SHARD:4xCPU,replicas=2")
        assert a.canonical == b.canonical == "SHARD:4xCPU,replicas=2"
        mixed = default_registry.parse("shard:4xcpu:replicas=2,hash")
        assert mixed.canonical == "SHARD:4xCPU,hash,replicas=2"

    def test_replicas_connects_and_defaults_to_one(self):
        import numpy as np

        db = repro.Database()
        db.create_table("t", {"v": np.arange(600, dtype=np.int64)})
        assert db.connect("SHARD:2xMS").backend.replicas == 1
        replicated = db.connect("SHARD:2xMS,replicas=2")
        assert replicated.backend.replicas == 2
        result = replicated.execute("SELECT sum(v) AS s FROM t")
        assert int(result.column("s")[0]) == 600 * 599 // 2

    @pytest.mark.parametrize("bad", [
        "SHARD:4xCPU,replicas=0",
        "SHARD:4xCPU,replicas=-1",
        "SHARD:4xCPU,replicas=two",
        "SHARD:4xCPU,replicas=",
        "SHARD:4xCPU,replicas=5",     # more copies than nodes
        "SHARD:4xCPU,replicas=2,replicas=3",
        "CPU:replicas=2",             # single-node engines have no copies
    ])
    def test_bad_replicas_rejected(self, bad):
        with pytest.raises(EngineSpecError):
            default_registry.resolve(bad)

    def test_replicas_error_message_names_declustering(self):
        with pytest.raises(EngineSpecError, match="chained declustering"):
            default_registry.resolve("SHARD:2xCPU,replicas=3")


class TestGeneratedDocs:
    def test_engine_table_contains_every_family(self):
        table = engine_table_markdown()
        for family in repro.engines():
            assert (family.syntax or family.name) in table

    def test_readme_engine_table_matches_registry(self):
        """The README's engine table is generated — regenerate with
        ``PYTHONPATH=src python -m repro.engines`` after registry
        changes."""
        from pathlib import Path

        readme = Path(__file__).resolve().parents[2] / "README.md"
        content = readme.read_text()
        assert engine_table_markdown() in content
        # the flag column advertises the serving parameters everywhere
        assert "`morsel=…`" in engine_table_markdown()
        assert "`timeout=…`" in engine_table_markdown()
        assert "`admission=…`" in engine_table_markdown()
        assert "`compression=…`" in engine_table_markdown()
        assert "`trace=…`" in engine_table_markdown()
        assert "`obs_slow_ms=…`" in engine_table_markdown()

    def test_elastic_cluster_docs_resolve(self):
        """The elastic-cluster feature (PR 10) is documented where the
        module docstrings point: ARCHITECTURE's "Elastic cluster"
        section exists and the README's generated table carries the
        ``replicas=`` grammar."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        architecture = (root / "ARCHITECTURE.md").read_text()
        assert "Elastic cluster" in architecture
        assert "chained declustering" in architecture
        assert "add_shard" in architecture
        readme = (root / "README.md").read_text()
        assert "replicas=<r>" in readme
        assert "replicas=<r>" in engine_table_markdown()

    def test_readme_references_resolve(self):
        """The README points at ARCHITECTURE.md sections by name; the
        sections must exist (and vice versa for the morsel switch)."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        architecture = (root / "ARCHITECTURE.md").read_text()
        assert "Morsel-driven execution" in architecture
        assert "Front door" in architecture
        assert "Compressed execution" in architecture
        readme = (root / "README.md").read_text()
        assert "Morsel-driven" in readme
        assert "REPRO_MORSEL" in readme
        assert "Front door" in readme
        assert "`admission=<n>`" in readme
        assert "`timeout=<seconds>`" in readme
        assert "Compressed execution" in readme
        assert "REPRO_COMPRESSION" in readme
        assert "`compression=off|auto|dict|rle|for`" in readme
        assert "Observability" in architecture
        assert "EXPLAIN ANALYZE" in architecture
        assert "REPRO_TRACE" in readme
        assert "`trace=on|off`" in readme
        assert "`obs_slow_ms=<ms>`" in readme
