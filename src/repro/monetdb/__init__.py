"""``repro.monetdb`` — the MonetDB column-store substrate (S3).

BATs, 128-byte-aligned storage with a callback-firing, schema-versioned
catalog, MAL plans, the operator-at-a-time interpreter (steppable per
instruction for the serve layer's interleaved sessions), the MS/MP
baseline backends, and the optimizer pipelines the Ocelot rewriter
plugs into.  (Layer map: ARCHITECTURE.md §"repro.monetdb".)
"""

from .bat import (
    BAT,
    OID_DTYPE,
    Owner,
    OwnershipError,
    Role,
    bitmap_bat,
    make_bat,
    oid_bat,
)
from .backends import (
    MonetDBBackend,
    MonetDBParallel,
    MonetDBSequential,
    group_ids,
    hash_join_pairs,
    select_bounds_to_op,
)
from .calc import CALC_OPS, COMPARE_FNS, calc_result_dtype
from .costmodel import DEFAULT_COST_MODEL, MonetDBCostModel, OpCost
from .interpreter import Backend, QueryResult, UnsupportedOperator, run_program
from .mal import NIL, ColumnRef, MALBuilder, MALInstruction, MALProgram, Var
from .optimizer import PIPELINES, get_pipeline
from .storage import ALIGNMENT, Catalog, aligned_array, aligned_empty, is_aligned

__all__ = [
    "ALIGNMENT",
    "BAT",
    "Backend",
    "CALC_OPS",
    "COMPARE_FNS",
    "Catalog",
    "ColumnRef",
    "DEFAULT_COST_MODEL",
    "MALBuilder",
    "MALInstruction",
    "MALProgram",
    "MonetDBBackend",
    "MonetDBCostModel",
    "MonetDBParallel",
    "MonetDBSequential",
    "NIL",
    "OID_DTYPE",
    "OpCost",
    "Owner",
    "OwnershipError",
    "PIPELINES",
    "QueryResult",
    "Role",
    "UnsupportedOperator",
    "Var",
    "aligned_array",
    "aligned_empty",
    "bitmap_bat",
    "calc_result_dtype",
    "get_pipeline",
    "group_ids",
    "hash_join_pairs",
    "is_aligned",
    "make_bat",
    "oid_bat",
    "run_program",
    "select_bounds_to_op",
]
