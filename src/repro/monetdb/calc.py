"""Shared ``batcalc`` semantics (result types, predicate application).

Both the MonetDB baselines and Ocelot's host code use these rules, so the
four configurations produce identical expression results — the drop-in
contract of the paper.
"""

from __future__ import annotations

import numpy as np

CALC_OPS = ("add", "sub", "mul", "div", "intdiv", "and", "or")


def _logical_and(a, b):
    return np.logical_and(a, b).astype(np.uint8)


def _logical_or(a, b):
    return np.logical_or(a, b).astype(np.uint8)


#: op name -> numpy implementation, the single source of truth shared
#: by the MonetDB baselines and the fused-expression evaluator (the
#: Ocelot kernels keep their own launch-argument table in
#: :mod:`repro.kernels.primitives`, which additionally carries the
#: reversed/bitwise variants the device code needs)
CALC_FNS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "intdiv": np.floor_divide,
    "and": _logical_and,
    "or": _logical_or,
}

COMPARE_FNS = {
    "eq": np.equal,
    "ne": np.not_equal,
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
}


def calc_result_dtype(a_dtype: np.dtype, b_dtype: np.dtype, op: str) -> np.dtype:
    """Result tail type of a ``batcalc`` arithmetic operation.

    Four-byte types stay four-byte (the paper's scope); integer division
    widens to ``float64`` (standing in for SQL decimal division).
    """
    a_dtype, b_dtype = np.dtype(a_dtype), np.dtype(b_dtype)
    if op in ("and", "or"):
        return np.dtype(np.uint8)
    if op == "div" and a_dtype.kind in "iu" and b_dtype.kind in "iu":
        return np.dtype(np.float64)
    return np.result_type(a_dtype, b_dtype)


def grouped_dtype(agg: str, values_dtype) -> np.dtype:
    """Result tail type of a grouped aggregate (shared engine rule)."""
    values_dtype = np.dtype(values_dtype)
    if agg in ("avg",):
        return np.dtype(np.float64)
    if agg == "count":
        return np.dtype(np.int64)
    if agg == "sum":
        return np.dtype(np.float64 if values_dtype.kind == "f" else np.int64)
    return values_dtype


def broadcast_operands(a, b):
    """Resolve (array|scalar, array|scalar) operands to numpy values."""
    a_arr = np.asarray(a) if not np.isscalar(a) else a
    b_arr = np.asarray(b) if not np.isscalar(b) else b
    return a_arr, b_arr
