"""The MonetDB operator backends: **MS** (sequential) and **MP** (parallel).

These are the paper's baselines.  Operators execute for real on numpy
arrays (their results are the ground truth the Ocelot operators are tested
against) and charge simulated time to the backend clock through the cost
model (:mod:`repro.monetdb.costmodel`).

MS and MP share one operator set; they differ only in how an operator's
:class:`~repro.monetdb.costmodel.OpCost` is converted to seconds — MP
divides parallelisable work across cores (Mitosis), pays a per-operator
dataflow overhead, and pays to merge partial results (``mat.pack``),
which is why MonetDB's oid-list selection gets *more* expensive with
selectivity while Ocelot's bitmaps stay flat (Fig. 5(a)/(b)).

Conventions shared with Ocelot (drop-in contract):

* selections return oid lists — **global** positions into the base BAT,
* joins return position pairs ordered by (left position, right position),
* group ids are dense and assigned in ascending key order,
* descending sorts are the exact reversal of the stable ascending sort.
"""

from __future__ import annotations

import numpy as np

from ..kernels.aggregation import segmented_reduce
from ..kernels.selection import predicate_mask
from .bat import BAT, OID_DTYPE, Role, bitmap_bat, make_bat, oid_bat
from .calc import (
    CALC_FNS,
    CALC_OPS,
    COMPARE_FNS,
    calc_result_dtype,
    grouped_dtype,
)
from .costmodel import DEFAULT_COST_MODEL, MonetDBCostModel, OpCost
from .interpreter import Backend
from .mal import ColumnRef
from .storage import Catalog


def select_bounds_to_op(lo, hi, li: bool, hi_incl: bool) -> tuple[str, object, object]:
    """Translate MonetDB ``select`` bounds into a predicate op."""
    if lo is not None and hi is not None:
        op = {"tt": "[]", "tf": "[)", "ft": "(]", "ff": "()"}[
            ("t" if li else "f") + ("t" if hi_incl else "f")
        ]
        return op, lo, hi
    if lo is not None:
        return (">=" if li else ">"), lo, None
    if hi is not None:
        return ("<=" if hi_incl else "<"), hi, None
    raise ValueError("select needs at least one bound")


def hash_join_pairs(
    left: np.ndarray, right: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Equi-join positions in canonical (left asc, right asc) order."""
    if left.size == 0 or right.size == 0:
        return np.empty(0, OID_DTYPE), np.empty(0, OID_DTYPE)
    order = np.argsort(right, kind="stable").astype(np.int64)
    sorted_right = right[order]
    starts = np.searchsorted(sorted_right, left, side="left")
    ends = np.searchsorted(sorted_right, left, side="right")
    counts = (ends - starts).astype(np.int64)
    total = int(counts.sum())
    lpos = np.repeat(np.arange(left.size, dtype=np.int64), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    intra = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    rpos = order[np.repeat(starts.astype(np.int64), counts) + intra]
    return lpos.astype(OID_DTYPE), rpos.astype(OID_DTYPE)


def group_ids(values: np.ndarray) -> tuple[np.ndarray, int]:
    """Dense group ids in ascending key order (engine-wide convention)."""
    unique = np.unique(values)
    gids = np.searchsorted(unique, values).astype(OID_DTYPE)
    return gids, int(unique.size)


class MonetDBBackend(Backend):
    """Operator set + cost accounting for the MonetDB baselines."""

    label = "MS"
    parallel = False

    def __init__(
        self,
        catalog: Catalog,
        cost_model: MonetDBCostModel = DEFAULT_COST_MODEL,
        data_scale: float = 1.0,
    ):
        self.model = cost_model
        #: nominal scaling (one in-process element stands for this many
        #: modelled elements; see DESIGN.md §2)
        self.data_scale = float(data_scale)
        self._clock = 0.0
        #: per-op cost trace of the last query (benchmarks consume this to
        #: e.g. exclude hash-build or merge components, paper footnotes).
        self.trace: list[tuple[OpCost, float]] = []
        super().__init__(catalog)

    # -- clock ---------------------------------------------------------------

    def begin(self) -> None:
        self._clock = 0.0
        self.trace = []

    def _charge(self, cost: OpCost) -> None:
        if cost.scaled and self.data_scale != 1.0:
            cost = OpCost(
                op=cost.op,
                work=cost.work * self.data_scale,
                serial=cost.serial * self.data_scale,
                merge_bytes=int(cost.merge_bytes * self.data_scale),
                scaled=False,
            )
        seconds = (
            cost.parallel_seconds(self.model)
            if self.parallel
            else cost.sequential_seconds(self.model)
        )
        self._clock += seconds
        self.trace.append((cost, seconds))

    def elapsed(self) -> float:
        return self._clock

    # -- registration -----------------------------------------------------------

    def _register_ops(self) -> None:
        m = self
        reg = self.register
        reg("sql.bind", m.op_bind)
        reg("algebra.select", m.op_select)
        reg("algebra.thetaselect", m.op_thetaselect)
        reg("algebra.projection", m.op_projection)
        reg("algebra.join", m.op_join)
        reg("algebra.thetajoin", m.op_thetajoin)
        reg("algebra.semijoin", m.op_semijoin)
        reg("algebra.antijoin", m.op_antijoin)
        reg("algebra.sort", m.op_sort)
        reg("algebra.firstn", m.op_firstn)
        reg("algebra.oidunion", m.op_oidunion)
        reg("algebra.oidintersect", m.op_oidintersect)
        reg("algebra.hashbuild", m.op_hashbuild)
        reg("bat.mirror", m.op_mirror)
        reg("group.group", m.op_group)
        reg("group.subgroup", m.op_subgroup)
        for agg in ("sum", "min", "max", "count", "avg"):
            reg(f"aggr.{agg}", self._make_scalar_agg(agg))
        for agg in ("sum", "min", "max", "avg"):
            reg(f"aggr.sub{agg}", self._make_grouped_agg(agg))
        reg("aggr.subcount", m.op_subcount)
        for op in CALC_OPS:
            reg(f"batcalc.{op}", self._make_calc(op))
        for op in COMPARE_FNS:
            reg(f"batcalc.{op}", self._make_compare(op))
        reg("batcalc.ifthenelse", m.op_ifthenelse)
        reg("fuse.pipe", m.op_fuse_pipe)
        # host-side scalar arithmetic (MAL's calc module)
        reg("calc.add", lambda a, b: a + b)
        reg("calc.sub", lambda a, b: a - b)
        reg("calc.mul", lambda a, b: a * b)
        reg("calc.div", lambda a, b: a / b)
        # compressed-execution forms (delegate back to the ops above
        # when a column is stored plain)
        from ..compress.ops import register_compress_ops

        register_compress_ops(self)

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def _tail(value) -> np.ndarray:
        if isinstance(value, BAT):
            return value.values
        return value

    # -- operators ---------------------------------------------------------------

    def op_bind(self, ref: ColumnRef) -> BAT:
        return self.catalog.bat(ref.table, ref.column)

    def op_select(self, b: BAT, cand, lo, hi, li, hi_incl, anti) -> BAT:
        op, lo_v, hi_v = select_bounds_to_op(lo, hi, bool(li), bool(hi_incl))
        return self._select_common(b, cand, op, lo_v, hi_v, bool(anti))

    def op_thetaselect(self, b: BAT, cand, val, op: str) -> BAT:
        return self._select_common(b, cand, op, val, None, False)

    def _select_common(self, b, cand, op, lo, hi, anti) -> BAT:
        values = b.values
        if cand is not None:
            base = cand.values.astype(np.int64, copy=False)
            scanned = values[base]
        else:
            base = None
            scanned = values
        mask = predicate_mask(scanned, op, lo, hi)
        if anti:
            mask = ~mask
        hits = np.nonzero(mask)[0]
        oids = (base[hits] if base is not None else hits).astype(OID_DTYPE)
        model = self.model
        self._charge(
            OpCost(
                op="algebra.select",
                work=model.ns(scanned.size, model.select_scan_ns)
                + model.ns(oids.size, model.select_result_ns),
                merge_bytes=oids.nbytes,
            )
        )
        return oid_bat(oids)

    def op_projection(self, oids: BAT, b: BAT) -> BAT:
        idx = oids.values.astype(np.int64, copy=False)
        gather_rows = getattr(b, "gather_rows", None)
        if gather_rows is not None:
            # encoded source: materialise only the fetched rows through
            # the codec instead of decoding the whole tail first
            out = gather_rows(idx)
        else:
            out = b.values[idx]
        model = self.model
        self._charge(
            OpCost(
                op="algebra.projection",
                work=model.ns(idx.size, model.fetch_ns),
                merge_bytes=out.nbytes,
            )
        )
        return make_bat(out)

    def op_join(self, l: BAT, r: BAT) -> tuple[BAT, BAT]:
        lv, rv = l.values, r.values
        lpos, rpos = hash_join_pairs(lv, rv)
        model = self.model
        self._charge(
            OpCost(
                op="algebra.join",
                serial=model.ns(rv.size, model.hash_build_ns),
                work=model.ns(lv.size, model.hash_probe_ns)
                + model.ns(lpos.size, model.fetch_ns),
                merge_bytes=lpos.nbytes + rpos.nbytes,
            )
        )
        return oid_bat(lpos), oid_bat(rpos)

    def op_thetajoin(self, l: BAT, r: BAT, op: str) -> tuple[BAT, BAT]:
        lv, rv = l.values, r.values
        lpos_parts, rpos_parts = [], []
        block = 8192
        for lo_i in range(0, lv.size, block):
            chunk = lv[lo_i : lo_i + block]
            li, ri = np.nonzero(predicate_mask(chunk[:, None], op, rv, None))
            lpos_parts.append((lo_i + li).astype(OID_DTYPE))
            rpos_parts.append(ri.astype(OID_DTYPE))
        lpos = np.concatenate(lpos_parts) if lpos_parts else np.empty(0, OID_DTYPE)
        rpos = np.concatenate(rpos_parts) if rpos_parts else np.empty(0, OID_DTYPE)
        model = self.model
        scale = self.data_scale
        nominal_pairs = (lv.size * scale) * max(rv.size * scale, 1)
        self._charge(
            OpCost(
                op="algebra.thetajoin",
                work=model.ns(nominal_pairs, model.nl_pair_ns),
                merge_bytes=int((lpos.nbytes + rpos.nbytes) * scale),
                scaled=False,
            )
        )
        return oid_bat(lpos), oid_bat(rpos)

    def op_semijoin(self, l: BAT, r: BAT) -> BAT:
        return self._membership(l, r, keep_matching=True)

    def op_antijoin(self, l: BAT, r: BAT) -> BAT:
        return self._membership(l, r, keep_matching=False)

    def _membership(self, l: BAT, r: BAT, keep_matching: bool) -> BAT:
        lv, rv = l.values, r.values
        member = np.isin(lv, rv)
        if not keep_matching:
            member = ~member
        pos = np.nonzero(member)[0].astype(OID_DTYPE)
        model = self.model
        self._charge(
            OpCost(
                op="algebra.semijoin" if keep_matching else "algebra.antijoin",
                serial=model.ns(rv.size, model.hash_build_ns),
                work=model.ns(lv.size, model.hash_probe_ns),
                merge_bytes=pos.nbytes,
            )
        )
        return oid_bat(pos)

    def op_sort(self, b: BAT, descending) -> tuple[BAT, BAT]:
        values = b.values
        if descending:
            # Stable-descending convention shared with Ocelot: ties keep
            # their original (ascending-position) order, which equals a
            # stable ascending sort on order-complemented keys.
            from ..kernels.radix_sort import encode_keys

            keys = np.bitwise_not(encode_keys(values))
            order = np.argsort(keys, kind="stable").astype(OID_DTYPE)
        else:
            order = np.argsort(values, kind="stable").astype(OID_DTYPE)
        out = values[order.astype(np.int64)]
        model = self.model
        nominal = int(values.size * self.data_scale)
        result_bytes = int((out.nbytes + order.nbytes) * self.data_scale)
        self._charge(
            OpCost(
                op="algebra.sort",
                work=model.sort_work(nominal) + model.materialize(result_bytes),
                merge_bytes=result_bytes,
                scaled=False,
            )
        )
        return make_bat(out, sorted_=not descending), oid_bat(order)

    def op_firstn(self, b: BAT, n, asc) -> BAT:
        """Top-N (MonetDB-only; Ocelot lacks an efficient top-k, App. A)."""
        values = b.values
        n = min(int(n), values.size)
        order = np.argsort(values, kind="stable")
        if not asc:
            order = order[::-1]
        pos = order[:n].astype(OID_DTYPE)
        model = self.model
        self._charge(
            OpCost(
                op="algebra.firstn",
                work=model.sort_work(int(values.size * self.data_scale)),
                scaled=False,
            )
        )
        return oid_bat(pos)

    def op_mirror(self, b: BAT) -> BAT:
        model = self.model
        self._charge(
            OpCost(op="bat.mirror", work=model.materialize(4 * b.count))
        )
        return oid_bat(np.arange(b.count, dtype=OID_DTYPE))

    def op_hashbuild(self, b: BAT) -> int:
        """Build (and discard) a hash table over ``b`` — MonetDB's
        ``bat.hash``; sequential in MonetDB (paper §5.2.4)."""
        values = b.values
        model = self.model
        self._charge(
            OpCost(
                op="algebra.hashbuild",
                serial=model.ns(values.size, model.hash_build_ns),
            )
        )
        return int(np.unique(values).size)

    def op_oidunion(self, a: BAT, b: BAT) -> BAT:
        """Union of two sorted candidate lists (disjunctive predicates)."""
        out = np.union1d(a.values, b.values).astype(OID_DTYPE)
        model = self.model
        self._charge(
            OpCost(
                op="algebra.oidunion",
                work=model.materialize(a.values.nbytes + b.values.nbytes)
                + model.ns(out.size, model.select_result_ns),
                merge_bytes=out.nbytes,
            )
        )
        return oid_bat(out)

    def op_oidintersect(self, a: BAT, b: BAT) -> BAT:
        """Intersection of two sorted candidate lists."""
        out = np.intersect1d(a.values, b.values).astype(OID_DTYPE)
        model = self.model
        self._charge(
            OpCost(
                op="algebra.oidintersect",
                work=model.materialize(a.values.nbytes + b.values.nbytes)
                + model.ns(out.size, model.select_result_ns),
                merge_bytes=out.nbytes,
            )
        )
        return oid_bat(out)

    def op_group(self, b: BAT) -> tuple[BAT, int]:
        values = b.values
        gids, ngroups = group_ids(values)
        model = self.model
        # sorted inputs group by neighbour comparison, not hashing
        per_ns = model.calc_ns if b.sorted else model.group_ns
        self._charge(
            OpCost(
                op="group.group",
                work=model.ns(values.size, per_ns),
                merge_bytes=gids.nbytes,
            )
        )
        return BAT(gids, Role.VALUES, tag=""), ngroups

    def op_subgroup(self, b: BAT, gids: BAT, ngroups) -> tuple[BAT, int]:
        values = b.values
        inner, n_inner = group_ids(values)
        combined = gids.values.astype(np.uint64) * np.uint64(n_inner) + inner
        out, n_out = group_ids(combined)
        model = self.model
        self._charge(
            OpCost(
                op="group.subgroup",
                work=model.ns(2 * values.size, model.group_ns),
                merge_bytes=out.nbytes,
            )
        )
        return BAT(out, Role.VALUES, tag=""), n_out

    # -- aggregation -------------------------------------------------------------

    def _make_scalar_agg(self, agg: str):
        def op(b: BAT):
            model = self.model
            if agg == "count":
                # metadata answers this — never touch (or decode) the tail
                n = int(b.count)
                self._charge(
                    OpCost(op="aggr.count", work=model.ns(n, model.agg_ns))
                )
                return n
            values = b.values
            self._charge(
                OpCost(
                    op=f"aggr.{agg}",
                    work=model.ns(values.size, model.agg_ns),
                )
            )
            if values.size == 0:
                # SQL returns NULL for empty SUM/AVG; without NULLs the
                # engines agree on 0 (min/max stay undefined).
                if agg in ("sum", "avg"):
                    return 0.0 if values.dtype.kind == "f" or agg == "avg" else 0
                raise ValueError(f"aggr.{agg} over empty input")
            if agg == "sum":
                return float(np.sum(values, dtype=np.float64)) if (
                    values.dtype.kind == "f"
                ) else int(np.sum(values, dtype=np.int64))
            if agg == "avg":
                return float(np.mean(values, dtype=np.float64))
            reduced = values.min() if agg == "min" else values.max()
            return reduced.item()

        op.__name__ = f"op_aggr_{agg}"
        return op

    def _make_grouped_agg(self, agg: str):
        def op(vals: BAT, gids: BAT, ngroups):
            values, groups = vals.values, gids.values
            ngroups_i = int(ngroups)
            model = self.model
            self._charge(
                OpCost(
                    op=f"aggr.sub{agg}",
                    work=model.ns(values.size, model.grouped_agg_ns),
                    merge_bytes=8 * ngroups_i * model.cores,
                )
            )
            if agg == "avg":
                sums = segmented_reduce(groups, values, ngroups_i, "sum", np.float64)
                counts = segmented_reduce(groups, None, ngroups_i, "count", np.int64)
                out = sums / np.maximum(counts, 1)
            else:
                dtype = grouped_dtype(agg, values.dtype)
                out = segmented_reduce(groups, values, ngroups_i, agg, dtype)
            return make_bat(out)

        op.__name__ = f"op_aggr_sub{agg}"
        return op

    def op_subcount(self, gids: BAT, ngroups) -> BAT:
        groups = gids.values
        ngroups_i = int(ngroups)
        model = self.model
        self._charge(
            OpCost(
                op="aggr.subcount",
                work=model.ns(groups.size, model.grouped_agg_ns),
                merge_bytes=8 * ngroups_i * model.cores,
            )
        )
        return make_bat(segmented_reduce(groups, None, ngroups_i, "count", np.int64))

    # -- batcalc -------------------------------------------------------------------

    def _make_calc(self, op: str):
        py_op = CALC_FNS[op]

        def fn(a, b):
            a_v, b_v = self._tail(a), self._tail(b)
            n = a_v.size if isinstance(a_v, np.ndarray) else b_v.size
            a_dt = a_v.dtype if isinstance(a_v, np.ndarray) else np.min_scalar_type(a_v)
            b_dt = b_v.dtype if isinstance(b_v, np.ndarray) else np.min_scalar_type(b_v)
            dtype = calc_result_dtype(a_dt, b_dt, op)
            out = py_op(a_v, b_v).astype(dtype, copy=False)
            model = self.model
            self._charge(
                OpCost(
                    op=f"batcalc.{op}",
                    work=model.ns(n, model.calc_ns),
                    merge_bytes=out.nbytes,
                )
            )
            return make_bat(out)

        fn.__name__ = f"op_batcalc_{op}"
        return fn

    def _make_compare(self, op: str):
        np_fn = COMPARE_FNS[op]

        def fn(a, b):
            a_v, b_v = self._tail(a), self._tail(b)
            n = a_v.size if isinstance(a_v, np.ndarray) else b_v.size
            out = np_fn(a_v, b_v).astype(np.uint8)
            model = self.model
            self._charge(
                OpCost(
                    op=f"batcalc.{op}",
                    work=model.ns(n, model.calc_ns),
                    merge_bytes=out.nbytes,
                )
            )
            return make_bat(out)

        fn.__name__ = f"op_batcalc_{op}"
        return fn

    def op_fuse_pipe(self, spec, *inputs):
        """One fused element-wise region, evaluated in a single pass
        (see :mod:`repro.fuse`): one cost charge for the whole chain
        instead of one materialisation per operator."""
        from ..fuse.dispatch import monetdb_pipe

        return monetdb_pipe(self, spec, *inputs)

    def op_ifthenelse(self, cond: BAT, a, b) -> BAT:
        cond_v = cond.values
        a_v, b_v = self._tail(a), self._tail(b)
        a_dt = a_v.dtype if isinstance(a_v, np.ndarray) else np.min_scalar_type(a_v)
        b_dt = b_v.dtype if isinstance(b_v, np.ndarray) else np.min_scalar_type(b_v)
        dtype = np.result_type(a_dt, b_dt)
        out = np.where(cond_v != 0, a_v, b_v).astype(dtype, copy=False)
        model = self.model
        self._charge(
            OpCost(
                op="batcalc.ifthenelse",
                work=model.ns(cond_v.size, model.calc_ns),
                merge_bytes=out.nbytes,
            )
        )
        return make_bat(out)


class MonetDBSequential(MonetDBBackend):
    """The paper's **MS** configuration: one core, no parallelism."""

    label = "MS"
    parallel = False


class MonetDBParallel(MonetDBBackend):
    """The paper's **MP** configuration: Mitosis + Dataflow parallelism."""

    label = "MP"
    parallel = True
