"""MAL interpreter: executes plans against a pluggable operator backend.

The same :class:`~repro.monetdb.mal.MALProgram` runs on any backend — the
two MonetDB baselines or Ocelot — which is exactly the drop-in-replacement
architecture of the paper (§3.1): the rewriter changes module names, the
interpreter stays oblivious.

Execution is operator-at-a-time: each instruction consumes materialised
inputs and produces materialised outputs (for Ocelot, "materialised"
means scheduled on the device with event-tracked buffers; the host only
blocks at ``sync`` points, §3.4).
"""

from __future__ import annotations

import abc
import contextlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .bat import BAT, Role
from .mal import MALProgram, Var
from .storage import Catalog


class UnsupportedOperator(LookupError):
    """Backend has no implementation for a MAL operation."""


class UnsupportedFeature(RuntimeError):
    """An optional backend feature was invoked without being declared.

    Callers must gate on the corresponding capability flag
    (:attr:`Backend.replays_placements` /
    :attr:`Backend.pipelines_sessions`) instead of probing with
    ``hasattr`` — the flags *are* the protocol."""


class Backend(abc.ABC):
    """An operator set + simulated clock, addressable by ``module.fn``.

    This is the formal backend protocol every engine implements — the
    two MonetDB baselines, the single-device Ocelot backends, the
    heterogeneous scheduler and the sharded multi-node engine all plug
    into the same interpreter through it.  Beyond the required operator
    registry and clock, the protocol has *declared* optional features:

    * :attr:`replays_placements` — the backend records per-instruction
      scheduling decisions and can replay a recorded trace
      (:meth:`install_replay` / :meth:`take_trace`); the plan cache uses
      this to skip re-scoring repeat queries.
    * :attr:`pipelines_sessions` — the backend supports multiple
      in-flight queries with isolated per-session timelines
      (:meth:`open_session` / :meth:`activate_session` /
      :meth:`close_session`); the serve layer's session scheduler
      interleaves queries only on such backends.

    A feature's methods raise :class:`UnsupportedFeature` unless the
    backend declares the flag — callers gate on the flag, never on
    ``hasattr``.
    """

    #: configuration label as used in the paper's figures (MS/MP/CPU/GPU).
    label: str = "?"

    #: declared feature: placement-trace recording and replay.
    replays_placements: bool = False
    #: declared feature: per-session timelines for pipelined execution.
    pipelines_sessions: bool = False

    #: the active query's :class:`~repro.obs.tracer.Tracer`, or None.
    #: A traced :class:`ProgramRun` points this at its tracer for the
    #: duration of each step, so deeper layers (the morsel runner, the
    #: heterogeneous dispatcher, the shard fan-out) can attach spans
    #: without plumbing a tracer through every call signature.  Checked
    #: with one ``is not None`` per site — the whole cost when off.
    tracer = None

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._registry: dict[str, Callable] = {}
        self._register_ops()

    # -- registration -------------------------------------------------------

    def register(self, op: str, fn: Callable) -> None:
        self._registry[op] = fn

    @abc.abstractmethod
    def _register_ops(self) -> None:
        """Populate the operator registry."""

    def resolve(self, op: str) -> Callable:
        try:
            return self._registry[op]
        except KeyError:
            raise UnsupportedOperator(
                f"backend {self.label!r} does not implement {op}"
            ) from None

    def supports(self, op: str) -> bool:
        return op in self._registry

    def supported_ops(self) -> list[str]:
        return sorted(self._registry)

    # -- timing -------------------------------------------------------------------

    @abc.abstractmethod
    def begin(self) -> None:
        """Reset the per-query clock."""

    @abc.abstractmethod
    def elapsed(self) -> float:
        """Simulated seconds consumed since :meth:`begin`."""

    def elapsed_now(self) -> float:
        """Read the per-query clock **without** synchronising.

        ``elapsed()`` may be a sync point (Ocelot's joins the device
        queue like ``clFinish``, flooring subsequent commands), which
        is correct at a query boundary but would perturb the simulated
        schedule if read mid-flight.  The tracer samples this instead:
        backends whose timelines can run ahead override it with a pure
        observation so tracing never changes query timings."""
        return self.elapsed()

    def compression_stats(self):
        """Compression counters for the storage this backend reads.

        The default reports the catalog's own counters (encoded
        columns, bytes saved, decode events — see
        :class:`repro.compress.stats.CompressionStats`); the sharded
        engine overrides this to fold its per-shard catalogs in.
        """
        return self.catalog.compression

    def interconnect_traffic(self):
        """Interconnect byte counters, for multi-node backends.

        Single-node engines move nothing between nodes and return
        ``None``; the sharded engine returns its
        :class:`~repro.shard.backend.ShardTraffic` (per-query +
        cumulative ``bytes_broadcast`` / ``bytes_shuffled`` /
        ``bytes_gathered``), surfaced as ``Connection.interconnect``.
        """
        return None

    def memory_managers(self):
        """The backend's Ocelot memory managers (one per owned device).

        The MonetDB baselines own none; the single-device Ocelot
        backends return one, the heterogeneous scheduler one per pooled
        device, and the sharded engine folds its children's in.  The
        metrics registry sums their counters under the ``mm.``
        namespace (see :mod:`repro.obs.metrics`)."""
        return ()

    def query_overhead_s(self) -> float:
        """Fixed per-query framework cost charged by the *last* query.

        Benchmarks in operator-timing mode (paper §5.2) subtract this so
        microbenchmark points measure the operator, not the SDK.  The
        MonetDB baselines charge none; Ocelot backends report their
        device's (or, for the heterogeneous scheduler, devices') share.
        """
        return 0.0

    # -- resilience (circuit breakers) ---------------------------------------

    def breakers(self):
        """The backend's circuit-breaker board (created on first use).

        Single-node backends keep one breaker under the key ``"self"``;
        tiered backends (shards, devices) keep one per node.  See
        :mod:`repro.serve.resilience`.
        """
        board = getattr(self, "_breaker_board", None)
        if board is None:
            from ..serve.resilience import BreakerBoard

            board = self._breaker_board = BreakerBoard()
        return board

    def query_boundary(self) -> None:
        """Hook: called by the serving layer between queries.

        Advances the breaker clock (cooldowns are measured in query
        boundaries, not wall time) and lets the backend re-admit nodes
        whose breakers allow a probe again.  Topology changes — a
        sharded backend excluding or re-including a shard — happen only
        here, never mid-query.
        """
        board = getattr(self, "_breaker_board", None)
        if board is not None:
            board.tick()
            self._recover_nodes()

    def _recover_nodes(self) -> None:
        """Hook for tiered backends: re-admit half-open nodes."""

    def check_admission(self) -> None:
        """Raise :class:`~repro.serve.resilience.CircuitOpen` when the
        backend as a whole refuses work (its own breaker is open)."""
        board = getattr(self, "_breaker_board", None)
        if board is None:
            return
        breaker = board.breaker("self")
        if not breaker.allow():
            from ..serve.resilience import CircuitOpen

            raise CircuitOpen(
                f"backend {self.label!r} circuit breaker is open "
                f"(trips={breaker.trips})"
            )

    def note_node_failure(self, error) -> str:
        """Record a transient failure against the responsible breaker.

        Returns the serving layer's next move: ``"retry"`` (same
        topology), ``"rerouted"`` (the node was taken out of service —
        placement traces are stale, re-plan), or ``"fail"`` (no healthy
        topology remains; surface the error).  The single-node default
        charges the backend's own breaker: while it stays closed the
        query may retry, once it trips there is nowhere to route.
        """
        breaker = self.breakers().breaker("self")
        breaker.record_failure()
        if not breaker.allow():
            return "fail"
        return "retry"

    def note_query_success(self) -> None:
        """A query completed cleanly: credit the serving breakers."""
        board = getattr(self, "_breaker_board", None)
        if board is not None:
            board.record_success()

    # -- elasticity (replicated / resizable clusters) -------------------------

    def cluster_stats(self):
        """Cluster-level counters, for elastic multi-node backends.

        Single-node engines have no cluster and return ``None``; the
        sharded engine returns its
        :class:`~repro.shard.replica.ClusterStats` (promotions,
        recoveries, migrated ranges, in-place retries, ...), surfaced
        under the ``cluster.*`` metrics namespace."""
        return None

    def cluster_nodes(self):
        """Current node count of an elastic backend, or ``None``.

        ``Database.add_shard()`` / ``remove_shard()`` use this to find
        resizable connections and compute their target topology (a
        backend mid-resize reports the *target* count, so repeated
        resizes compose)."""
        return None

    def topology_pending(self) -> bool:
        """Whether a topology change (staged resize, pending failover)
        is waiting on future query boundaries to complete.  The serve
        layer drains this after a batch finishes, so migrations always
        conclude even once traffic stops."""
        return False

    def end_of_query(self, intermediates: list) -> None:
        """Hook: a finished query's leftover values go out of scope.

        Receives every non-result variable of the query's environment;
        the backend decides what recycling means for its value model —
        the default drops non-base BATs through the catalog's recycle
        callbacks (which the Ocelot Memory Managers subscribe to).
        """
        self.release_intermediates(intermediates)

    def release_intermediates(self, values) -> None:
        """Recycle values whose last consumer has run.

        The interpreter's liveness pass and the morsel executor call
        this as soon as a variable goes dead — mid-query — instead of
        waiting for :meth:`end_of_query`.  The default mirrors the
        end-of-query recycling (non-base BATs through the catalog's
        recycle callbacks, which is idempotent); backends whose values
        are consumed lazily after their last static use (the sharded
        engine's grouped partials) override this with a no-op.
        """
        for value in values:
            if isinstance(value, BAT) and not value.is_base:
                self.catalog.notify_recycled(value)

    # -- morsel-driven execution -------------------------------------------------

    def morsel_runner(self, spec, inputs):
        """Build the executor for one ``morsel.run`` instruction.

        The default streams oid-range slices through the region (see
        :class:`repro.morsel.run.MorselRun`); backends whose values are
        not plain host BATs run the region whole-column instead."""
        from ..morsel.run import MorselRun

        return MorselRun(self, spec, inputs)

    def morsel_scope(self):
        """Context manager entered around each morsel of a region.

        The heterogeneous scheduler pins every dispatch inside the scope
        to the least-loaded device, making the morsel its work-stealing
        unit; plain backends need no scoping."""
        return contextlib.nullcontext()

    def slice_base(self, bat: BAT, lo: int, hi: int) -> BAT:
        """Cached view of rows ``[lo, hi)`` of a host-resident BAT.

        Mirrors the heterogeneous pool's ``slice_bat`` (which the HET
        backend delegates to, sharing its device-placement cache): the
        full range returns the BAT itself, and a slice of a persistent
        column counts as base storage like the column."""
        if lo == 0 and hi == bat.count:
            return bat
        cache = getattr(self, "_slice_cache", None)
        if cache is None:
            cache = self._slice_cache = {}
        key = (bat.bat_id, lo, hi)
        sliced = cache.get(key)
        if sliced is None:
            slice_rows = getattr(bat, "slice_rows", None)
            if slice_rows is not None:
                # an encoded column slices in the compressed domain —
                # never decode a whole column just to cut a morsel
                sliced = slice_rows(lo, hi)
                sliced.is_base = bat.is_base
                cache[key] = sliced
                return sliced
            values = bat.peek_values()
            if values is None:
                raise ValueError(f"cannot slice device-only BAT {bat.tag!r}")
            sliced = BAT(
                values[lo:hi],
                Role.VALUES,
                key=bat.key,
                sorted_=bat.sorted,
                tag=f"{bat.tag}[{lo}:{hi}]",
            )
            sliced.is_base = bat.is_base
            cache[key] = sliced
        return sliced

    # -- optional feature: placement replay (replays_placements) -----------------

    def install_replay(self, placements) -> None:
        """Arm the next query with a recorded decision trace."""
        raise UnsupportedFeature(
            f"backend {self.label!r} does not declare replays_placements"
        )

    def take_trace(self) -> tuple[list, int]:
        """Harvest the last query's decision trace; ``(trace, replayed)``."""
        raise UnsupportedFeature(
            f"backend {self.label!r} does not declare replays_placements"
        )

    # -- optional feature: per-session timelines (pipelines_sessions) ------------

    def open_session(self, session: str, replay=None) -> float:
        """Register one in-flight query; returns its submit epoch."""
        raise UnsupportedFeature(
            f"backend {self.label!r} does not declare pipelines_sessions"
        )

    def activate_session(self, session: str | None) -> None:
        """Attribute subsequent dispatches to ``session`` (None = plain)."""
        raise UnsupportedFeature(
            f"backend {self.label!r} does not declare pipelines_sessions"
        )

    def close_session(self, session: str) -> float:
        """Drop a finished query's state; returns its completion epoch."""
        raise UnsupportedFeature(
            f"backend {self.label!r} does not declare pipelines_sessions"
        )

    # -- lifecycle ----------------------------------------------------------------

    def schema_changed(self) -> None:
        """Hook: the owning database ran DDL against the catalog.

        Stateless backends need nothing (they read the catalog on every
        bind); backends holding derived schema state — e.g. the sharded
        engine's per-shard catalogs — resynchronise here."""
        cache = getattr(self, "_slice_cache", None)
        if cache:
            cache.clear()

    def shutdown(self) -> None:
        """Hook: the owning connection closed; release device state."""

    # -- result collection ----------------------------------------------------------

    def collect(self, value) -> np.ndarray:
        """Materialise one result column on the host.

        Scalars (ungrouped aggregates) become one-row columns."""
        if isinstance(value, BAT):
            return value.values
        return np.atleast_1d(np.asarray(value))

    def collect_results(self, result_columns, resolve) -> dict[str, np.ndarray]:
        """Materialise the whole result set on the host.

        ``result_columns`` is the program's ordered (name, Var) list and
        ``resolve`` maps a Var to its runtime value.  The default
        collects column by column; backends whose result merge needs
        cross-column context (the sharded engine aligns grouped partials
        by key across every column) override this instead of
        :meth:`collect`."""
        return {
            name: self.collect(resolve(var)) for name, var in result_columns
        }


@dataclass
class QueryResult:
    """Result set plus simulated timing and execution statistics."""

    columns: dict[str, np.ndarray]
    elapsed: float
    backend: str
    program: MALProgram
    instruction_count: int = 0
    env: dict = field(default_factory=dict)
    #: the query's :class:`~repro.obs.tracer.Tracer` when it ran traced
    #: (``trace=on`` spec / ``REPRO_TRACE`` / ``analyze=True``), else None
    trace: object = None

    @property
    def n_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]


class ProgramRun:
    """Stepwise execution of one program: one instruction per step.

    ``run_program`` drives a :class:`ProgramRun` to completion for the
    classic one-query-at-a-time path.  The serve layer's session
    scheduler (see ARCHITECTURE.md) instead interleaves ``step()`` calls
    of several in-flight queries round-robin, which is what lets
    independent queries overlap on the heterogeneous pool's per-device
    timelines.  Each run owns its private variable environment, so
    concurrent queries are isolated by construction.
    """

    def __init__(self, program: MALProgram, backend: Backend,
                 tracer=None):
        self.program = program
        self.backend = backend
        #: optional per-query tracer; the caller installs the backend's
        #: clock on it before constructing the run (see
        #: :func:`run_program` and the session scheduler)
        self.tracer = tracer
        self._root_span = None
        self._instr_span = None
        self._instr_pc = -1
        self.env: dict[str, object] = {}
        self._pc = 0
        self._morsel_run = None
        # liveness: a variable dies after its last static use; result
        # columns stay live until collection
        result_vars = {var.name for _, var in program.result_columns}
        self._dies_at: dict[str, int] = {}
        for index, instruction in enumerate(program.instructions):
            for arg in instruction.var_args():
                if arg.name not in result_vars:
                    self._dies_at[arg.name] = index
        self._released: set[str] = set()

    @property
    def done(self) -> bool:
        return self._pc >= len(self.program.instructions)

    @property
    def next_op(self) -> str | None:
        """The operation the next ``step()`` will execute."""
        if self.done:
            return None
        return self.program.instructions[self._pc].op

    def resolve_arg(self, arg):
        if isinstance(arg, Var):
            try:
                return self.env[arg.name]
            except KeyError:
                raise NameError(
                    f"{self.program.name}: variable {arg.name} used "
                    f"before assignment"
                ) from None
        return arg

    def step(self) -> bool:
        """Execute the next unit of work; returns False when exhausted.

        One unit is one instruction — except for ``morsel.run``, where
        each step advances the region by a single morsel, so pipelined
        schedulers interleave queries at morsel granularity."""
        if self.done:
            return False
        if self.tracer is not None:
            return self._step_traced()
        instruction = self.program.instructions[self._pc]
        if instruction.op == "morsel.run":
            return self._step_morsel(instruction)
        fn = self.backend.resolve(instruction.op)
        args = [self.resolve_arg(a) for a in instruction.args]
        out = fn(*args)
        self._assign(instruction, out)
        self._release_dead(self._pc)
        self._pc += 1
        return not self.done

    def _step_traced(self) -> bool:
        """One step with span bookkeeping (``self.tracer`` is set).

        Each instruction gets one span named after its op; a
        ``morsel.run`` instruction's span stays open across the steps
        that advance it morsel by morsel, with the per-morsel spans
        nested inside.  The tracer is exposed as ``backend.tracer`` for
        the step's duration so deeper layers (dispatch, shard fan-out)
        attach child spans."""
        tracer = self.tracer
        if self._root_span is None:
            tracer.wall_s = None
            self._root_span = tracer.begin(
                "query", cat="query", engine=self.backend.label,
                query=self.program.name,
            )
        pc = self._pc
        instruction = self.program.instructions[pc]
        span = self._instr_span
        if span is None or self._instr_pc != pc:
            span = tracer.begin(instruction.op, cat="instruction")
            self._instr_span, self._instr_pc = span, pc
        previous = self.backend.tracer
        self.backend.tracer = tracer
        try:
            if instruction.op == "morsel.run":
                more = self._step_morsel(instruction)
            else:
                fn = self.backend.resolve(instruction.op)
                args = [self.resolve_arg(a) for a in instruction.args]
                out = fn(*args)
                self._assign(instruction, out)
                self._release_dead(pc)
                self._pc += 1
                more = not self.done
        finally:
            self.backend.tracer = previous
            if self._pc != pc:
                self._close_instruction_span(instruction, span)
        return more

    def _close_instruction_span(self, instruction, span) -> None:
        from ..obs.tracer import describe_value

        args = {}
        if instruction.results:
            out = self.env.get(instruction.results[0].name)
            if out is not None:
                args = {
                    key: value
                    for key, value in describe_value(out).items()
                    if value is not None
                }
        if instruction.op == "sql.bind":
            ref = instruction.args[0]
            span.args.setdefault("column", f"{ref.table}.{ref.column}")
        # single-device engines have no deeper placement spans; label
        # the instruction itself so the profile's device column fills
        if not any("device" in child.args for child in span.walk()):
            span.args["device"] = self.backend.label
        self.tracer.end(span, **args)
        self._instr_span = None

    def _assign(self, instruction, out) -> None:
        results = instruction.results
        if len(results) == 1:
            self.env[results[0].name] = out
        elif results:
            if not isinstance(out, tuple) or len(out) != len(results):
                raise TypeError(
                    f"{instruction.op} returned {type(out).__name__}, "
                    f"expected {len(results)} results"
                )
            for var, value in zip(results, out):
                self.env[var.name] = value

    def _step_morsel(self, instruction) -> bool:
        """Advance an in-flight morsel region by one morsel."""
        if self._morsel_run is None:
            spec = instruction.args[0]
            inputs = [self.resolve_arg(a) for a in instruction.args[1:]]
            self._morsel_run = self.backend.morsel_runner(spec, inputs)
        if self._morsel_run.step():
            return True
        outputs = self._morsel_run.outputs
        self._morsel_run = None
        self._assign(
            instruction,
            outputs if len(instruction.results) != 1 else outputs[0],
        )
        self._release_dead(self._pc)
        self._pc += 1
        return not self.done

    def _release_dead(self, index: int) -> None:
        """Recycle every variable whose last static use just ran."""
        dying = [
            name for name, death in self._dies_at.items()
            if death == index and name not in self._released
            and name in self.env
        ]
        if not dying:
            return
        self._released.update(dying)
        live = [
            value for name, value in self.env.items()
            if name not in self._released
        ]
        dead = []
        for name in dying:
            # dead names leave the environment so end-of-query recycling
            # never re-notifies what was already released here
            value = self.env.pop(name)
            # an alias may still be live under another name (``sync``
            # returns its argument): never release a live object
            if any(value is alive for alive in live):
                continue
            dead.append(value)
        if dead:
            self.backend.release_intermediates(dead)

    def run(self) -> None:
        while self.step():
            pass

    def collect(self, elapsed: float) -> QueryResult:
        """Materialise the result set and release the intermediates."""
        columns = self.backend.collect_results(
            self.program.result_columns, self.resolve_arg
        )
        result_vars = {var.name for _, var in self.program.result_columns}
        intermediates = [
            v for k, v in self.env.items() if k not in result_vars
        ]
        self.backend.end_of_query(intermediates)
        if self.tracer is not None:
            if self._root_span is not None:
                self.tracer.end(self._root_span)
            self.tracer.close_open()
            self.tracer.wall_s = elapsed
        return QueryResult(
            columns=columns,
            elapsed=elapsed,
            backend=self.backend.label,
            program=self.program,
            instruction_count=len(self.program.instructions),
            env=self.env,
            trace=self.tracer,
        )


def run_program(program: MALProgram, backend: Backend,
                tracer=None) -> QueryResult:
    """Interpret ``program`` on ``backend`` and collect its result set.

    ``tracer`` (a :class:`repro.obs.tracer.Tracer`) turns on span
    recording for this query; its clock is pointed at the backend's
    per-query simulated clock."""
    backend.begin()
    if tracer is not None:
        tracer.clock = backend.elapsed_now
    run = ProgramRun(program, backend, tracer=tracer)
    run.run()
    return run.collect(backend.elapsed())
