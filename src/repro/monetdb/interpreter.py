"""MAL interpreter: executes plans against a pluggable operator backend.

The same :class:`~repro.monetdb.mal.MALProgram` runs on any backend — the
two MonetDB baselines or Ocelot — which is exactly the drop-in-replacement
architecture of the paper (§3.1): the rewriter changes module names, the
interpreter stays oblivious.

Execution is operator-at-a-time: each instruction consumes materialised
inputs and produces materialised outputs (for Ocelot, "materialised"
means scheduled on the device with event-tracked buffers; the host only
blocks at ``sync`` points, §3.4).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .bat import BAT
from .mal import MALProgram, Var
from .storage import Catalog


class UnsupportedOperator(LookupError):
    """Backend has no implementation for a MAL operation."""


class UnsupportedFeature(RuntimeError):
    """An optional backend feature was invoked without being declared.

    Callers must gate on the corresponding capability flag
    (:attr:`Backend.replays_placements` /
    :attr:`Backend.pipelines_sessions`) instead of probing with
    ``hasattr`` — the flags *are* the protocol."""


class Backend(abc.ABC):
    """An operator set + simulated clock, addressable by ``module.fn``.

    This is the formal backend protocol every engine implements — the
    two MonetDB baselines, the single-device Ocelot backends, the
    heterogeneous scheduler and the sharded multi-node engine all plug
    into the same interpreter through it.  Beyond the required operator
    registry and clock, the protocol has *declared* optional features:

    * :attr:`replays_placements` — the backend records per-instruction
      scheduling decisions and can replay a recorded trace
      (:meth:`install_replay` / :meth:`take_trace`); the plan cache uses
      this to skip re-scoring repeat queries.
    * :attr:`pipelines_sessions` — the backend supports multiple
      in-flight queries with isolated per-session timelines
      (:meth:`open_session` / :meth:`activate_session` /
      :meth:`close_session`); the serve layer's session scheduler
      interleaves queries only on such backends.

    A feature's methods raise :class:`UnsupportedFeature` unless the
    backend declares the flag — callers gate on the flag, never on
    ``hasattr``.
    """

    #: configuration label as used in the paper's figures (MS/MP/CPU/GPU).
    label: str = "?"

    #: declared feature: placement-trace recording and replay.
    replays_placements: bool = False
    #: declared feature: per-session timelines for pipelined execution.
    pipelines_sessions: bool = False

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._registry: dict[str, Callable] = {}
        self._register_ops()

    # -- registration -------------------------------------------------------

    def register(self, op: str, fn: Callable) -> None:
        self._registry[op] = fn

    @abc.abstractmethod
    def _register_ops(self) -> None:
        """Populate the operator registry."""

    def resolve(self, op: str) -> Callable:
        try:
            return self._registry[op]
        except KeyError:
            raise UnsupportedOperator(
                f"backend {self.label!r} does not implement {op}"
            ) from None

    def supports(self, op: str) -> bool:
        return op in self._registry

    def supported_ops(self) -> list[str]:
        return sorted(self._registry)

    # -- timing -------------------------------------------------------------------

    @abc.abstractmethod
    def begin(self) -> None:
        """Reset the per-query clock."""

    @abc.abstractmethod
    def elapsed(self) -> float:
        """Simulated seconds consumed since :meth:`begin`."""

    def interconnect_traffic(self):
        """Interconnect byte counters, for multi-node backends.

        Single-node engines move nothing between nodes and return
        ``None``; the sharded engine returns its
        :class:`~repro.shard.backend.ShardTraffic` (per-query +
        cumulative ``bytes_broadcast`` / ``bytes_shuffled`` /
        ``bytes_gathered``), surfaced as ``Connection.interconnect``.
        """
        return None

    def query_overhead_s(self) -> float:
        """Fixed per-query framework cost charged by the *last* query.

        Benchmarks in operator-timing mode (paper §5.2) subtract this so
        microbenchmark points measure the operator, not the SDK.  The
        MonetDB baselines charge none; Ocelot backends report their
        device's (or, for the heterogeneous scheduler, devices') share.
        """
        return 0.0

    def end_of_query(self, intermediates: list) -> None:
        """Hook: a finished query's leftover values go out of scope.

        Receives every non-result variable of the query's environment;
        the backend decides what recycling means for its value model —
        the default drops non-base BATs through the catalog's recycle
        callbacks (which the Ocelot Memory Managers subscribe to).
        """
        for value in intermediates:
            if isinstance(value, BAT) and not value.is_base:
                self.catalog.notify_recycled(value)

    # -- optional feature: placement replay (replays_placements) -----------------

    def install_replay(self, placements) -> None:
        """Arm the next query with a recorded decision trace."""
        raise UnsupportedFeature(
            f"backend {self.label!r} does not declare replays_placements"
        )

    def take_trace(self) -> tuple[list, int]:
        """Harvest the last query's decision trace; ``(trace, replayed)``."""
        raise UnsupportedFeature(
            f"backend {self.label!r} does not declare replays_placements"
        )

    # -- optional feature: per-session timelines (pipelines_sessions) ------------

    def open_session(self, session: str, replay=None) -> float:
        """Register one in-flight query; returns its submit epoch."""
        raise UnsupportedFeature(
            f"backend {self.label!r} does not declare pipelines_sessions"
        )

    def activate_session(self, session: str | None) -> None:
        """Attribute subsequent dispatches to ``session`` (None = plain)."""
        raise UnsupportedFeature(
            f"backend {self.label!r} does not declare pipelines_sessions"
        )

    def close_session(self, session: str) -> float:
        """Drop a finished query's state; returns its completion epoch."""
        raise UnsupportedFeature(
            f"backend {self.label!r} does not declare pipelines_sessions"
        )

    # -- lifecycle ----------------------------------------------------------------

    def schema_changed(self) -> None:
        """Hook: the owning database ran DDL against the catalog.

        Stateless backends need nothing (they read the catalog on every
        bind); backends holding derived schema state — e.g. the sharded
        engine's per-shard catalogs — resynchronise here."""

    def shutdown(self) -> None:
        """Hook: the owning connection closed; release device state."""

    # -- result collection ----------------------------------------------------------

    def collect(self, value) -> np.ndarray:
        """Materialise one result column on the host.

        Scalars (ungrouped aggregates) become one-row columns."""
        if isinstance(value, BAT):
            return value.values
        return np.atleast_1d(np.asarray(value))

    def collect_results(self, result_columns, resolve) -> dict[str, np.ndarray]:
        """Materialise the whole result set on the host.

        ``result_columns`` is the program's ordered (name, Var) list and
        ``resolve`` maps a Var to its runtime value.  The default
        collects column by column; backends whose result merge needs
        cross-column context (the sharded engine aligns grouped partials
        by key across every column) override this instead of
        :meth:`collect`."""
        return {
            name: self.collect(resolve(var)) for name, var in result_columns
        }


@dataclass
class QueryResult:
    """Result set plus simulated timing and execution statistics."""

    columns: dict[str, np.ndarray]
    elapsed: float
    backend: str
    program: MALProgram
    instruction_count: int = 0
    env: dict = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]


class ProgramRun:
    """Stepwise execution of one program: one instruction per step.

    ``run_program`` drives a :class:`ProgramRun` to completion for the
    classic one-query-at-a-time path.  The serve layer's session
    scheduler (see ARCHITECTURE.md) instead interleaves ``step()`` calls
    of several in-flight queries round-robin, which is what lets
    independent queries overlap on the heterogeneous pool's per-device
    timelines.  Each run owns its private variable environment, so
    concurrent queries are isolated by construction.
    """

    def __init__(self, program: MALProgram, backend: Backend):
        self.program = program
        self.backend = backend
        self.env: dict[str, object] = {}
        self._pc = 0

    @property
    def done(self) -> bool:
        return self._pc >= len(self.program.instructions)

    @property
    def next_op(self) -> str | None:
        """The operation the next ``step()`` will execute."""
        if self.done:
            return None
        return self.program.instructions[self._pc].op

    def resolve_arg(self, arg):
        if isinstance(arg, Var):
            try:
                return self.env[arg.name]
            except KeyError:
                raise NameError(
                    f"{self.program.name}: variable {arg.name} used "
                    f"before assignment"
                ) from None
        return arg

    def step(self) -> bool:
        """Execute the next instruction; returns False when exhausted."""
        if self.done:
            return False
        instruction = self.program.instructions[self._pc]
        fn = self.backend.resolve(instruction.op)
        args = [self.resolve_arg(a) for a in instruction.args]
        out = fn(*args)
        results = instruction.results
        if len(results) == 1:
            self.env[results[0].name] = out
        elif results:
            if not isinstance(out, tuple) or len(out) != len(results):
                raise TypeError(
                    f"{instruction.op} returned {type(out).__name__}, "
                    f"expected {len(results)} results"
                )
            for var, value in zip(results, out):
                self.env[var.name] = value
        self._pc += 1
        return not self.done

    def run(self) -> None:
        while self.step():
            pass

    def collect(self, elapsed: float) -> QueryResult:
        """Materialise the result set and release the intermediates."""
        columns = self.backend.collect_results(
            self.program.result_columns, self.resolve_arg
        )
        result_vars = {var.name for _, var in self.program.result_columns}
        intermediates = [
            v for k, v in self.env.items() if k not in result_vars
        ]
        self.backend.end_of_query(intermediates)
        return QueryResult(
            columns=columns,
            elapsed=elapsed,
            backend=self.backend.label,
            program=self.program,
            instruction_count=len(self.program.instructions),
            env=self.env,
        )


def run_program(program: MALProgram, backend: Backend) -> QueryResult:
    """Interpret ``program`` on ``backend`` and collect its result set."""
    backend.begin()
    run = ProgramRun(program, backend)
    run.run()
    return run.collect(backend.elapsed())
