"""Optimizer pipelines (paper §4.3).

MonetDB organises plan transformations into named optimizer pipelines.
The paper adds one: ``ocelot_pipe`` — the *sequential* pipeline (default
minus parallelisation) plus the Ocelot query rewriter.  Mitosis/Dataflow
parallelism for MP is applied at execution time by the parallel backend's
cost model, so ``mitosis_pipe`` is structurally the identity here (noted
as a deviation in DESIGN.md).
"""

from __future__ import annotations

from typing import Callable

from .mal import MALProgram

Pipeline = Callable[[MALProgram], MALProgram]


def sequential_pipe(program: MALProgram) -> MALProgram:
    """Default pipeline minus parallelisation: the plan as compiled."""
    return program


def mitosis_pipe(program: MALProgram) -> MALProgram:
    """MP pipeline: plan unchanged; slicing is modelled in the backend."""
    return program


def ocelot_pipe(program: MALProgram) -> MALProgram:
    """Sequential pipeline + operator fusion + the Ocelot rewriter.

    Fusion runs first (collapsing element-wise chains into ``fuse.pipe``
    regions, see :mod:`repro.fuse`) so the rewriter reroutes whole fused
    regions to ``ocelot.pipe`` alongside the ordinary module swaps.

    A *named* pipeline has no engine context, so only the global
    ``REPRO_FUSION`` gate applies here; the per-engine ``fusion=off``
    spec flag lives in :meth:`repro.engines.EngineConfig.plan`, which is
    the pipeline every connection actually runs.
    """
    from ..fuse import fuse_program, fusion_enabled
    from ..ocelot.rewriter import rewrite_for_ocelot

    if fusion_enabled():
        program = fuse_program(program)
    return rewrite_for_ocelot(program)


PIPELINES: dict[str, Pipeline] = {
    "sequential_pipe": sequential_pipe,
    "mitosis_pipe": mitosis_pipe,
    "ocelot_pipe": ocelot_pipe,
}


def get_pipeline(name: str) -> Pipeline:
    try:
        return PIPELINES[name]
    except KeyError:
        raise LookupError(
            f"unknown optimizer pipeline {name!r}; "
            f"available: {sorted(PIPELINES)}"
        ) from None
