"""Storage layer: aligned allocation and the BAT catalog ("BBP").

Two of the paper's §4.3 MonetDB modifications live here:

* ``aligned_empty`` returns 128-byte aligned memory — the Intel OpenCL
  SDK makes extensive use of SSE operations that require it,
* the catalog fires callbacks when BATs are deleted or recycled, so the
  Ocelot Memory Manager can drop the corresponding device buffers from
  its cache immediately.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from .bat import BAT, make_bat

ALIGNMENT = 128


def aligned_empty(n: int, dtype, alignment: int = ALIGNMENT) -> np.ndarray:
    """Uninitialised 1-D array whose data pointer is ``alignment``-aligned."""
    dtype = np.dtype(dtype)
    nbytes = int(n) * dtype.itemsize
    raw = np.empty(nbytes + alignment, dtype=np.uint8)
    offset = (-raw.ctypes.data) % alignment
    # The slice keeps `raw` alive through its .base chain.
    return raw[offset : offset + nbytes].view(dtype)


def aligned_array(data: np.ndarray, alignment: int = ALIGNMENT) -> np.ndarray:
    """Aligned copy of ``data``."""
    data = np.asarray(data)
    out = aligned_empty(data.size, data.dtype, alignment)
    np.copyto(out, data.ravel())
    return out


def is_aligned(array: np.ndarray, alignment: int = ALIGNMENT) -> bool:
    """Whether the data pointer is aligned (vacuously true when empty)."""
    return array.size == 0 or array.ctypes.data % alignment == 0


class Catalog:
    """The BAT registry (MonetDB's BBP, radically simplified).

    Tables are collections of named columns; each column is a BAT.  The
    catalog is also the integration point for Ocelot's resource-management
    callbacks (paper §4.3).
    """

    def __init__(self) -> None:
        from ..compress.stats import CompressionStats

        self._tables: dict[str, dict[str, BAT]] = {}
        self._delete_callbacks: list[Callable[[BAT], None]] = []
        #: per-catalog compression counters, shared by every EncodedBAT
        #: this catalog creates (``Connection.compression`` reads it)
        self.compression = CompressionStats()
        #: monotonic DDL counter; every create/drop bumps it.  The serve
        #: layer's plan cache keys compiled plans by this version, so a
        #: schema change implicitly invalidates every cached plan.
        self.version = 0
        #: declared shard keys: table -> (column, domain | None).  Pure
        #: metadata at this layer — the sharded engine's partitioner
        #: reads it to co-partition tables sharing a key domain (rows
        #: placed by key value, equi-joins on the key run shard-local).
        self.shard_keys: dict[str, tuple[str, "str | None"]] = {}

    # -- schema ------------------------------------------------------------

    def create_table(self, table: str, columns: dict[str, np.ndarray]) -> None:
        """Register a table from column arrays (stored 128-byte aligned).

        Under ``REPRO_COMPRESSION`` settings other than ``off``, each
        column is offered to :func:`repro.compress.choose_encoding`;
        columns it accepts are stored as
        :class:`~repro.compress.encoded.EncodedBAT` — compressed at
        rest, decoded only at result materialisation — the rest stay
        plain arrays."""
        if table in self._tables:
            raise ValueError(f"table {table!r} already exists")
        if not columns:
            raise ValueError(f"table {table!r} needs at least one column")
        sizes = {arr.shape[0] for arr in columns.values()}
        if len(sizes) != 1:
            raise ValueError(f"table {table!r} columns differ in length")
        bats = {
            col: self._column_bat(arr, tag=f"{table}.{col}")
            for col, arr in columns.items()
        }
        for bat in bats.values():
            bat.is_base = True
        self._tables[table] = bats
        self.version += 1

    def _column_bat(self, arr: np.ndarray, tag: str) -> BAT:
        """A base column's BAT: encoded when a codec pays off."""
        from ..compress import EncodedBAT, choose_encoding, storage_mode

        mode = storage_mode()
        encoding = choose_encoding(np.ascontiguousarray(arr), mode)
        stats = self.compression
        if encoding is None:
            if mode != "off":
                stats.columns_plain += 1
            return make_bat(aligned_array(arr), tag=tag)
        stats.columns_encoded += 1
        stats.bytes_physical += encoding.physical_nbytes
        stats.bytes_nominal += encoding.nominal_nbytes
        return EncodedBAT(encoding, tag=tag, stats=stats)

    def drop_table(self, table: str) -> None:
        for bat in self._tables.pop(table).values():
            self._fire_delete(bat)
        self.shard_keys.pop(table, None)
        self.version += 1

    def declare_shard_key(self, table: str, column: str,
                          domain: "str | None" = None) -> None:
        """Declare ``table.column`` as the table's shard key.

        ``domain`` names the shared key space; tables declaring keys in
        the same domain co-partition (``lineitem.l_orderkey`` and
        ``orders.o_orderkey`` both default to domain ``"orderkey"`` —
        see :meth:`repro.shard.partition.default_key_domain`).  This is
        DDL: the version bump invalidates cached plans (whose join
        strategies may depend on the old layout) and prompts live
        sharded backends to re-partition.
        """
        self.bat(table, column)     # raises on unknown table/column
        self.shard_keys[table] = (column, domain)
        self.version += 1

    def bump_version(self) -> None:
        """Bump the DDL counter without a schema change.

        For layout changes that invalidate cached plans the same way
        DDL does — e.g. the sharded engine adopting an inferred shard
        key, which re-partitions tables and stales any memoised join
        strategy."""
        self.version += 1

    # -- lookup ----------------------------------------------------------------

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def columns(self, table: str) -> list[str]:
        return list(self._tables[table])

    def has_table(self, table: str) -> bool:
        return table in self._tables

    def bat(self, table: str, column: str) -> BAT:
        try:
            return self._tables[table][column]
        except KeyError:
            raise KeyError(f"no column {table}.{column}") from None

    def row_count(self, table: str) -> int:
        first = next(iter(self._tables[table].values()))
        return first.count

    def base_bats(self) -> Iterator[BAT]:
        for cols in self._tables.values():
            yield from cols.values()

    # -- Ocelot callbacks (paper §4.3) -------------------------------------------

    def on_delete(self, callback: Callable[[BAT], None]) -> None:
        """Subscribe to BAT delete/recycle notifications."""
        self._delete_callbacks.append(callback)

    def off_delete(self, callback: Callable[[BAT], None]) -> None:
        """Unsubscribe (a closed connection's Memory Manager must not
        keep receiving notifications); missing subscriptions are fine."""
        try:
            self._delete_callbacks.remove(callback)
        except ValueError:
            pass

    def _fire_delete(self, bat: BAT) -> None:
        # an encoded column's derived payload BATs (dictionary codes,
        # run values) may be device-cached under their own identities;
        # drop those device copies along with the column itself
        for derived in getattr(bat, "derived_bats", ()):
            self._fire_delete(derived)
        for callback in self._delete_callbacks:
            callback(bat)

    def notify_recycled(self, bat: BAT) -> None:
        """An intermediate BAT went out of scope (end of query)."""
        self._fire_delete(bat)
