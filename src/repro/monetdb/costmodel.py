"""Cost model for the MonetDB baselines (MS and MP).

The paper's two baseline configurations are hand-tuned native code:

* **MS** — sequential MonetDB on one core,
* **MP** — MonetDB with the Mitosis and Dataflow optimizers: columns are
  sliced into per-core fragments, operators run on the slices in
  parallel, and partial results are merged (``mat.pack``) afterwards.

Operators execute for real (numpy) in :mod:`repro.monetdb.backends`;
these constants translate the operator's abstract work into simulated
seconds.  They are calibrated against the paper's Xeon E5620 figures
(§5.2) — see EXPERIMENTS.md for the calibration record.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

GB = 1024**3


@dataclass(frozen=True)
class MonetDBCostModel:
    """Per-operation cost constants (seconds derived from ns / GB/s)."""

    # sequential per-element costs (nanoseconds)
    select_scan_ns: float = 4.0       # predicate evaluation per value
    select_result_ns: float = 10.0    # qualifying-oid materialisation
    fetch_ns: float = 2.8             # left fetch join per value
    agg_ns: float = 0.85              # ungrouped aggregation per value
    grouped_agg_ns: float = 6.5       # grouped aggregation per value
    hash_build_ns: float = 7.0        # sequential hash-table insert
    hash_probe_ns: float = 8.0        # hash-join probe per element
    group_ns: float = 10.0             # hash grouping per row
    sort_cmp_ns: float = 1.3          # per comparison (n log n of them)
    calc_ns: float = 0.9              # batcalc per value
    nl_pair_ns: float = 0.7           # nested-loop per candidate pair
    # bandwidth for bulk materialisation (GB/s, single core)
    materialize_gbs: float = 5.0
    # parallel execution (Mitosis / Dataflow)
    cores: int = 4
    par_speedup: float = 3.2          # achievable speedup on 4 cores
    par_op_overhead_s: float = 0.0004  # dataflow scheduling per op
    merge_gbs: float = 4.0            # mat.pack merge bandwidth

    # -- helpers ----------------------------------------------------------

    def ns(self, count: float, per_ns: float) -> float:
        return count * per_ns * 1e-9

    def materialize(self, nbytes: float) -> float:
        return nbytes / (self.materialize_gbs * GB)

    def merge(self, nbytes: float) -> float:
        return nbytes / (self.merge_gbs * GB)

    def sort_work(self, n: int) -> float:
        if n <= 1:
            return 0.0
        return self.ns(n * math.log2(n), self.sort_cmp_ns)


@dataclass
class OpCost:
    """One operator invocation's cost decomposition.

    ``work`` parallelises under Mitosis; ``serial`` does not (hash-table
    builds, final merges of ordered results); ``merge_bytes`` is the
    partial-result volume ``mat.pack`` has to concatenate in MP.

    ``scaled`` marks costs computed from *actual* element counts that the
    backend should multiply by its nominal ``data_scale``; operators with
    non-linear cost (sort, nested loops) compute nominal costs themselves
    and set it to False.
    """

    op: str
    work: float = 0.0
    serial: float = 0.0
    merge_bytes: int = 0
    scaled: bool = True

    def sequential_seconds(self, model: MonetDBCostModel) -> float:
        return self.work + self.serial

    def parallel_seconds(self, model: MonetDBCostModel) -> float:
        return (
            self.work / model.par_speedup
            + self.serial
            + model.par_op_overhead_s
            + model.merge(self.merge_bytes)
        )


DEFAULT_COST_MODEL = MonetDBCostModel()
