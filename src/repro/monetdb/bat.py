"""Binary Association Tables — MonetDB's column representation.

A BAT is a (virtual-oid head, value tail) column.  As in MonetDB, the
head is never materialised: ``hseqbase`` is 0 throughout this repo and an
oid *is* a position into the tail.  The paper's four MonetDB modifications
(§4.3) appear here and in :mod:`repro.monetdb.storage`:

* the ``owner`` flag marking a BAT as Ocelot-owned (its tail may live
  only on the device until a ``sync``),
* 128-byte aligned tail allocation (the Intel OpenCL SDK's SSE paths
  require it),
* catalog callbacks on delete/recycle so Ocelot's Memory Manager can drop
  device buffers eagerly.

Besides plain value tails, two Ocelot-internal roles exist: ``oids``
(candidate lists / join indices) and ``bitmap`` (selection results, never
exposed across the MonetDB interface — the Memory Manager materialises
them into oid lists on demand, paper §4.1.1).
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..cl.buffer import Buffer

_bat_ids = itertools.count(1)

#: dtypes admissible as BAT tails (paper scope: four-byte types, plus the
#: internal representations and wide aggregate results).
TAIL_DTYPES = frozenset(
    np.dtype(t) for t in (np.int32, np.float32, np.uint32, np.uint8,
                          np.int64, np.float64)
)

OID_DTYPE = np.dtype(np.uint32)


class Owner(enum.Enum):
    MONETDB = "monetdb"
    OCELOT = "ocelot"


class Role(enum.Enum):
    VALUES = "values"    # ordinary value tail
    OIDS = "oids"        # candidate list / join index
    BITMAP = "bitmap"    # Ocelot-internal selection bitmap


class OwnershipError(RuntimeError):
    """Host access to a BAT whose tail is Ocelot-owned (undefined in the
    paper's model; we fail loudly instead)."""


class BAT:
    """A column: dense void head + typed tail."""

    def __init__(
        self,
        values: Optional[np.ndarray],
        role: Role = Role.VALUES,
        *,
        nbits: int | None = None,
        key: bool = False,
        sorted_: bool = False,
        tag: str = "",
    ):
        self.bat_id = next(_bat_ids)
        self.tag = tag or f"bat{self.bat_id}"
        self.role = role
        self.owner = Owner.MONETDB
        self._values = values
        #: logical element count; for bitmaps the number of bits.
        self._count = nbits if nbits is not None else (
            0 if values is None else int(values.size)
        )
        self.key = key          # tail values unique ("tkey")
        self.sorted = sorted_   # tail ascending ("tsorted")
        #: Ocelot Memory Manager linkage (device buffer reference).
        self.device_ref: "Buffer | None" = None
        #: set by the catalog for persistent (base) columns.
        self.is_base = False
        #: engine-internal annotations (e.g. Ocelot caches the
        #: materialised oid list of a bitmap BAT here).
        self.aux: dict = {}
        if values is not None:
            dtype = np.dtype(values.dtype)
            if dtype not in TAIL_DTYPES:
                raise TypeError(f"unsupported tail dtype {dtype}")

    # -- access ----------------------------------------------------------

    @property
    def count(self) -> int:
        """Logical size (bits for bitmap-role BATs)."""
        return self._count

    def __len__(self) -> int:
        return self._count

    @property
    def dtype(self) -> np.dtype:
        if self._values is not None:
            return self._values.dtype
        if self.device_ref is not None:
            return self.device_ref.dtype
        raise OwnershipError(f"BAT {self.tag!r} has no tail at all")

    @property
    def values(self) -> np.ndarray:
        """Host-resident tail.  Raises if the BAT is Ocelot-owned and has
        not been synchronised back (paper §3.4: results are undefined; we
        refuse instead)."""
        if self.owner is Owner.OCELOT or self._values is None:
            raise OwnershipError(
                f"BAT {self.tag!r} is Ocelot-owned; call ocelot.sync first"
            )
        return self._values

    @property
    def has_host_values(self) -> bool:
        return self._values is not None and self.owner is Owner.MONETDB

    # -- ownership handover ------------------------------------------------

    def give_to_ocelot(self) -> None:
        self.owner = Owner.OCELOT

    def return_to_monetdb(self, values: np.ndarray) -> None:
        """Hand the tail back to MonetDB (done by the sync operator)."""
        self._values = values
        self._count = int(values.size)
        self.owner = Owner.MONETDB

    def peek_values(self) -> Optional[np.ndarray]:
        """Tail without the ownership check (engine internals only)."""
        return self._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "host" if self._values is not None else "device"
        return (
            f"<BAT #{self.bat_id} {self.tag!r} {self.role.value} "
            f"n={self._count} {where} owner={self.owner.value}>"
        )


def make_bat(values: np.ndarray, tag: str = "", **flags) -> BAT:
    """BAT over an existing host array (no copy)."""
    return BAT(np.ascontiguousarray(values), Role.VALUES, tag=tag, **flags)


def oid_bat(oids: np.ndarray, tag: str = "") -> BAT:
    """Candidate-list BAT (uint32 oids)."""
    return BAT(
        np.ascontiguousarray(oids, dtype=OID_DTYPE), Role.OIDS, tag=tag
    )


def bitmap_bat(bits: np.ndarray, nbits: int, tag: str = "") -> BAT:
    """Ocelot-internal bitmap BAT (uint8 payload, ``nbits`` logical bits)."""
    return BAT(
        np.ascontiguousarray(bits, dtype=np.uint8),
        Role.BITMAP,
        nbits=nbits,
        tag=tag,
    )
