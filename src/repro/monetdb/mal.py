"""MAL — the MonetDB Assembly Language (plan representation).

Queries compile to flat sequences of instructions over single-assignment
variables::

    X_1 := sql.bind("lineitem", "l_quantity");
    X_2 := algebra.select(X_1, nil, 1, 24, true, true, false);
    X_3 := algebra.projection(X_2, X_1);
    X_4 := aggr.sum(X_3);

Ocelot advertises its operators through the same calling interface (the
"MAL binding", paper §3.2), which is what makes them drop-in replacements:
the query rewriter only has to swap the module name of an instruction and
insert ``ocelot.sync`` calls at ownership boundaries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Var:
    """A MAL single-assignment variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ColumnRef:
    """A reference to a persistent column, resolved via ``sql.bind``."""

    table: str
    column: str

    def __repr__(self) -> str:
        return f"{self.table}.{self.column}"


#: MAL ``nil``.
NIL = None


def _format_arg(arg: object) -> str:
    if arg is None:
        return "nil"
    if isinstance(arg, Var):
        return arg.name
    if isinstance(arg, ColumnRef):
        return f'"{arg.table}"."{arg.column}"'
    if isinstance(arg, str):
        return f'"{arg}"'
    if isinstance(arg, bool):
        return "true" if arg else "false"
    return repr(arg)


@dataclass(frozen=True)
class MALInstruction:
    """``results := module.function(args...)``"""

    results: tuple[Var, ...]
    module: str
    function: str
    args: tuple[object, ...]

    @property
    def op(self) -> str:
        return f"{self.module}.{self.function}"

    def with_module(self, module: str) -> "MALInstruction":
        return MALInstruction(self.results, module, self.function, self.args)

    def var_args(self) -> list[Var]:
        return [a for a in self.args if isinstance(a, Var)]

    def format(self) -> str:
        lhs = ", ".join(v.name for v in self.results)
        rhs = f"{self.op}({', '.join(_format_arg(a) for a in self.args)})"
        return f"{lhs} := {rhs};" if self.results else f"{rhs};"


@dataclass
class MALProgram:
    """A compiled query plan plus its result-set specification."""

    name: str
    instructions: list[MALInstruction] = field(default_factory=list)
    #: ordered (column name, variable) pairs forming the result set.
    result_columns: list[tuple[str, Var]] = field(default_factory=list)

    def format(self) -> str:
        lines = [f"function user.{self.name}();"]
        lines += [f"    {ins.format()}" for ins in self.instructions]
        result = ", ".join(
            f"{name}={var.name}" for name, var in self.result_columns
        )
        lines.append(f"    sql.resultSet({result});")
        lines.append("end user." + self.name + ";")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.instructions)


class MALBuilder:
    """Fluent construction of MAL programs with fresh variable names."""

    def __init__(self, name: str):
        self.program = MALProgram(name=name)
        self._counter = itertools.count(1)

    def fresh(self) -> Var:
        return Var(f"X_{next(self._counter)}")

    def emit(
        self,
        module: str,
        function: str,
        args: Sequence[object],
        n_results: int = 1,
    ):
        """Append an instruction; returns its result Var (or tuple)."""
        results = tuple(self.fresh() for _ in range(n_results))
        self.program.instructions.append(
            MALInstruction(results, module, function, tuple(args))
        )
        if n_results == 0:
            return None
        if n_results == 1:
            return results[0]
        return results

    def bind(self, table: str, column: str) -> Var:
        return self.emit("sql", "bind", (ColumnRef(table, column),))

    def returns(self, columns: Iterable[tuple[str, Var]]) -> MALProgram:
        self.program.result_columns = list(columns)
        return self.program
