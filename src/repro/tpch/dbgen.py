"""Deterministic mini-scale TPC-H data generator.

Generates the Appendix-A-modified schema at ``1/SCALE_DOWN`` of the real
row counts (DESIGN.md §2): ``generate(sf=8)`` produces the paper's SF-8
workload shape at 1/100 volume, to be executed with ``data_scale =
SCALE_DOWN`` so that simulated times, transfer volumes and device-memory
pressure correspond to the full-size scale factor.

The generator follows dbgen's value distributions where they matter to
the workload (uniform dates across 1992-1998, discounts 0-0.10, one order
spawning 1-7 lineitems, ~2/3 of customers with orders, prices correlated
with quantity) and is fully deterministic per (sf, seed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..monetdb.storage import Catalog
from .schema import DICTIONARIES, SCALE_DOWN, TABLES, date_add_days

_EPOCH_START = 19920101
_EPOCH_END = 19981201


def _random_dates(rng: np.random.Generator, n: int,
                  start: int = _EPOCH_START, end: int = 19980802) -> np.ndarray:
    """Uniform YYYYMMDD dates in [start, end]."""
    import datetime

    def _to_ord(d: int) -> int:
        year, rem = divmod(d, 10000)
        month, day = divmod(rem, 100)
        return datetime.date(year, month, day).toordinal()

    lo, hi = _to_ord(start), _to_ord(end)
    ordinals = rng.integers(lo, hi + 1, n)
    # vectorised ordinal -> YYYYMMDD via a lookup table over the epoch
    table = np.empty(hi - lo + 2 + 4000, dtype=np.int32)
    for o in range(lo, hi + 2 + 4000):
        d = datetime.date.fromordinal(o)
        table[o - lo] = d.year * 10000 + d.month * 100 + d.day
    return table[ordinals - lo].astype(np.int32), table, lo


@dataclass
class TPCHData:
    """Generated tables + metadata (row counts, scale bookkeeping)."""

    sf: float
    seed: int
    tables: dict[str, dict[str, np.ndarray]]

    @property
    def data_scale(self) -> float:
        """``data_scale`` for engines so nominal sizes equal real TPC-H."""
        return float(SCALE_DOWN)

    def rows(self, table: str) -> int:
        cols = self.tables[table]
        return len(next(iter(cols.values())))

    def install(self, catalog: Catalog) -> None:
        for name, columns in self.tables.items():
            catalog.create_table(name, columns)


def _rows_for(table: str, sf: float) -> int:
    base = TABLES[table].sf1_rows
    if table in ("region", "nation"):
        return base  # fixed-size tables
    return max(1, int(base * sf / SCALE_DOWN))


def generate(sf: float = 1.0, seed: int = 7) -> TPCHData:
    """Generate a deterministic mini-scale TPC-H instance."""
    rng = np.random.default_rng(
        np.random.SeedSequence([int(seed), int(sf * 1000)])
    )
    tables: dict[str, dict[str, np.ndarray]] = {}

    # -- region / nation (fixed) ------------------------------------------
    tables["region"] = {
        "r_regionkey": np.arange(5, dtype=np.int32),
        "r_name": np.arange(5, dtype=np.int32),
    }
    n_nations = len(DICTIONARIES["nation_name"])
    tables["nation"] = {
        "n_nationkey": np.arange(n_nations, dtype=np.int32),
        "n_name": np.arange(n_nations, dtype=np.int32),
        "n_regionkey": rng.integers(0, 5, n_nations).astype(np.int32),
    }

    # -- supplier -----------------------------------------------------------
    n_supp = _rows_for("supplier", sf)
    tables["supplier"] = {
        "s_suppkey": np.arange(1, n_supp + 1, dtype=np.int32),
        "s_name": np.arange(n_supp, dtype=np.int32),
        "s_nationkey": rng.integers(0, n_nations, n_supp).astype(np.int32),
        "s_acctbal": rng.uniform(-999.99, 9999.99, n_supp).astype(np.float32),
    }

    # -- customer -------------------------------------------------------------
    n_cust = _rows_for("customer", sf)
    n_segments = len(DICTIONARIES["mktsegment"])
    tables["customer"] = {
        "c_custkey": np.arange(1, n_cust + 1, dtype=np.int32),
        "c_name": np.arange(n_cust, dtype=np.int32),
        "c_nationkey": rng.integers(0, n_nations, n_cust).astype(np.int32),
        "c_mktsegment": rng.integers(0, n_segments, n_cust).astype(np.int32),
        "c_acctbal": rng.uniform(-999.99, 9999.99, n_cust).astype(np.float32),
    }

    # -- part --------------------------------------------------------------------
    n_part = _rows_for("part", sf)
    tables["part"] = {
        "p_partkey": np.arange(1, n_part + 1, dtype=np.int32),
        "p_brand": rng.integers(0, len(DICTIONARIES["brand"]), n_part).astype(np.int32),
        "p_type": rng.integers(0, len(DICTIONARIES["part_type"]), n_part).astype(np.int32),
        "p_container": rng.integers(0, len(DICTIONARIES["container"]), n_part).astype(np.int32),
        "p_size": rng.integers(1, 51, n_part).astype(np.int32),
        "p_retailprice": (
            900 + (np.arange(1, n_part + 1) % 1000) / 10
        ).astype(np.float32),
    }

    # -- partsupp (each part supplied by up to 4 suppliers) ------------------------
    per_part = min(4, max(1, n_supp))
    ps_part = np.repeat(tables["part"]["p_partkey"], per_part)
    ps_supp = (
        (ps_part + np.tile(np.arange(per_part), n_part)
         * max(1, n_supp // per_part)) % n_supp + 1
    ).astype(np.int32)
    n_ps = ps_part.size
    tables["partsupp"] = {
        "ps_partkey": ps_part.astype(np.int32),
        "ps_suppkey": ps_supp,
        "ps_availqty": rng.integers(1, 10000, n_ps).astype(np.int32),
        "ps_supplycost": rng.uniform(1.0, 1000.0, n_ps).astype(np.float32),
    }

    # -- orders ---------------------------------------------------------------------
    n_orders = _rows_for("orders", sf)
    orderdates, _date_table, _lo = _random_dates(rng, n_orders)
    # only ~2/3 of customers have orders (dbgen convention)
    cust_with_orders = max(1, (2 * n_cust) // 3)
    o_custkey = rng.integers(1, cust_with_orders + 1, n_orders).astype(np.int32)
    n_prios = len(DICTIONARIES["orderpriority"])
    tables["orders"] = {
        "o_orderkey": np.arange(1, n_orders + 1, dtype=np.int32),
        "o_custkey": o_custkey,
        "o_orderstatus": np.zeros(n_orders, dtype=np.int32),  # set below
        "o_totalprice": np.zeros(n_orders, dtype=np.float32),
        "o_orderdate": orderdates,
        "o_orderpriority": rng.integers(0, n_prios, n_orders).astype(np.int32),
        "o_shippriority": np.zeros(n_orders, dtype=np.int32),
    }

    # -- lineitem (1..7 lines per order) ------------------------------------------------
    lines_per_order = rng.integers(1, 8, n_orders)
    l_orderkey = np.repeat(tables["orders"]["o_orderkey"], lines_per_order)
    n_line = l_orderkey.size
    l_linenumber = (
        np.arange(n_line) - np.repeat(
            np.concatenate(([0], np.cumsum(lines_per_order)[:-1])),
            lines_per_order,
        ) + 1
    ).astype(np.int32)
    quantity = rng.integers(1, 51, n_line).astype(np.float32)
    l_partkey = rng.integers(1, n_part + 1, n_line).astype(np.int32)
    retail = tables["part"]["p_retailprice"][l_partkey - 1]
    extendedprice = (quantity * retail).astype(np.float32)
    base_date = np.repeat(orderdates, lines_per_order)
    ship_delta = rng.integers(1, 122, n_line)
    commit_delta = rng.integers(30, 91, n_line)
    receipt_delta = rng.integers(1, 31, n_line)
    shipdate = _shift_dates(base_date, ship_delta)
    commitdate = _shift_dates(base_date, commit_delta)
    receiptdate = _shift_dates(shipdate, receipt_delta)
    n_modes = len(DICTIONARIES["shipmode"])
    n_instr = len(DICTIONARIES["shipinstruct"])
    # returnflag: 'R'/'A' only for early orders (dbgen: receipt <= currentdate)
    returnable = receiptdate <= 19950617
    rf = np.where(
        returnable,
        rng.integers(0, 2, n_line),  # A or N... A=0, N=1
        1,
    )
    rf = np.where(returnable & (rng.random(n_line) < 0.5), 2, rf)  # R
    linestatus = (shipdate > 19950617).astype(np.int32)  # F=0 / O=1
    tables["lineitem"] = {
        "l_orderkey": l_orderkey.astype(np.int32),
        "l_partkey": l_partkey,
        "l_suppkey": (
            (l_partkey + rng.integers(0, 4, n_line) * max(1, n_supp // 4))
            % n_supp + 1
        ).astype(np.int32),
        "l_linenumber": l_linenumber,
        "l_quantity": quantity,
        "l_extendedprice": extendedprice,
        "l_discount": (rng.integers(0, 11, n_line) / 100.0).astype(np.float32),
        "l_tax": (rng.integers(0, 9, n_line) / 100.0).astype(np.float32),
        "l_returnflag": rf.astype(np.int32),
        "l_linestatus": linestatus,
        "l_shipdate": shipdate,
        "l_commitdate": commitdate,
        "l_receiptdate": receiptdate,
        "l_shipmode": rng.integers(0, n_modes, n_line).astype(np.int32),
        "l_shipinstruct": rng.integers(0, n_instr, n_line).astype(np.int32),
    }

    # order status from line status (dbgen rule): F if all lines F,
    # O if all open, else P
    f_lines = np.bincount(
        l_orderkey - 1, weights=(linestatus == 0), minlength=n_orders
    )
    status = np.where(
        f_lines == lines_per_order, 0, np.where(f_lines == 0, 1, 2)
    )
    tables["orders"]["o_orderstatus"] = status.astype(np.int32)
    order_price = np.bincount(
        l_orderkey - 1, weights=extendedprice, minlength=n_orders
    )
    tables["orders"]["o_totalprice"] = order_price.astype(np.float32)

    return TPCHData(sf=sf, seed=seed, tables=tables)


def _shift_dates(dates: np.ndarray, deltas: np.ndarray) -> np.ndarray:
    """Vectorised YYYYMMDD + days via ordinal round-trip."""
    import datetime

    # Convert via ordinals with a memoised table over the date domain.
    years, rem = np.divmod(dates, 10000)
    months, days = np.divmod(rem, 100)
    base = np.array(
        [datetime.date(1992, 1, 1).toordinal()], dtype=np.int64
    )[0]
    # days-from-civil (Howard Hinnant's algorithm), vectorised
    y = years.astype(np.int64) - (months <= 2)
    era = y // 400
    yoe = y - era * 400
    mp = (months.astype(np.int64) + 9) % 12
    doy = (153 * mp + 2) // 5 + days.astype(np.int64) - 1
    doe = yoe * 365 + yoe // 4 - yoe // 100 + doy
    ordinal = era * 146097 + doe + 60  # proleptic ordinal (0003-01-01 ~ 719468 base)
    ordinal = ordinal + deltas.astype(np.int64)
    # back: civil-from-days
    z = ordinal - 60
    era = z // 146097
    doe = z - era * 146097
    yoe = (doe - doe // 1460 + doe // 36524 - doe // 146096) // 365
    y = yoe + era * 400
    doy = doe - (365 * yoe + yoe // 4 - yoe // 100)
    mp = (5 * doy + 2) // 153
    d = doy - (153 * mp + 2) // 5 + 1
    m = mp + 3 - 12 * (mp >= 10)
    y = y + (m <= 2)
    return (y * 10000 + m * 100 + d).astype(np.int32)
