"""TPC-H schema, modified per the paper's Appendix A.

All ``DECIMAL`` fields are ``REAL`` (float32), all identifiers/dates are
four-byte integers, and string columns are **dictionary-encoded** int32
codes (Ocelot supports only equality on strings, which dictionary codes
preserve; the queries' LIKE/substring predicates were removed with their
queries in Appendix A).

Dates are encoded as ``YYYYMMDD`` integers: range predicates coincide
with chronological order and ``EXTRACT(YEAR)`` is an integer division by
10000.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

INT = np.dtype(np.int32)
REAL = np.dtype(np.float32)
DATE = np.dtype(np.int32)   # YYYYMMDD
CODE = np.dtype(np.int32)   # dictionary code


@dataclass(frozen=True)
class Column:
    name: str
    dtype: np.dtype
    #: column holds dictionary codes (binder maps string literals)
    dictionary: str | None = None


@dataclass(frozen=True)
class Table:
    name: str
    columns: tuple[Column, ...]
    #: rows at scale factor 1 of the paper's TPC-H, divided by
    #: ``SCALE_DOWN`` for the mini generator (DESIGN.md §2)
    sf1_rows: int
    primary_key: str | None = None
    #: column -> (referenced table, referenced key)
    foreign_keys: dict = field(default_factory=dict)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column {self.name}.{name}")


#: The mini-scale divisor: mini-SF(s) generates sf1_rows * s / SCALE_DOWN
#: rows and runs with ``data_scale = SCALE_DOWN`` so nominal volumes (and
#: therefore simulated times and device-memory pressure) match the
#: paper's real scale factors.
SCALE_DOWN = 100


def _cols(*specs) -> tuple[Column, ...]:
    out = []
    for spec in specs:
        name, dtype = spec[0], spec[1]
        dictionary = spec[2] if len(spec) > 2 else None
        out.append(Column(name, np.dtype(dtype), dictionary))
    return tuple(out)


REGION = Table(
    name="region",
    sf1_rows=5,
    primary_key="r_regionkey",
    columns=_cols(
        ("r_regionkey", INT),
        ("r_name", CODE, "region_name"),
    ),
)

NATION = Table(
    name="nation",
    sf1_rows=25,
    primary_key="n_nationkey",
    foreign_keys={"n_regionkey": ("region", "r_regionkey")},
    columns=_cols(
        ("n_nationkey", INT),
        ("n_name", CODE, "nation_name"),
        ("n_regionkey", INT),
    ),
)

SUPPLIER = Table(
    name="supplier",
    sf1_rows=10_000,
    primary_key="s_suppkey",
    foreign_keys={"s_nationkey": ("nation", "n_nationkey")},
    columns=_cols(
        ("s_suppkey", INT),
        ("s_name", CODE, "supplier_name"),
        ("s_nationkey", INT),
        ("s_acctbal", REAL),
    ),
)

CUSTOMER = Table(
    name="customer",
    sf1_rows=150_000,
    primary_key="c_custkey",
    foreign_keys={"c_nationkey": ("nation", "n_nationkey")},
    columns=_cols(
        ("c_custkey", INT),
        ("c_name", CODE, "customer_name"),
        ("c_nationkey", INT),
        ("c_mktsegment", CODE, "mktsegment"),
        ("c_acctbal", REAL),
    ),
)

PART = Table(
    name="part",
    sf1_rows=200_000,
    primary_key="p_partkey",
    columns=_cols(
        ("p_partkey", INT),
        ("p_brand", CODE, "brand"),
        ("p_type", CODE, "part_type"),
        ("p_container", CODE, "container"),
        ("p_size", INT),
        ("p_retailprice", REAL),
    ),
)

PARTSUPP = Table(
    name="partsupp",
    sf1_rows=800_000,
    foreign_keys={
        "ps_partkey": ("part", "p_partkey"),
        "ps_suppkey": ("supplier", "s_suppkey"),
    },
    columns=_cols(
        ("ps_partkey", INT),
        ("ps_suppkey", INT),
        ("ps_availqty", INT),
        ("ps_supplycost", REAL),
    ),
)

ORDERS = Table(
    name="orders",
    sf1_rows=1_500_000,
    primary_key="o_orderkey",
    foreign_keys={"o_custkey": ("customer", "c_custkey")},
    columns=_cols(
        ("o_orderkey", INT),
        ("o_custkey", INT),
        ("o_orderstatus", CODE, "orderstatus"),
        ("o_totalprice", REAL),
        ("o_orderdate", DATE),
        ("o_orderpriority", CODE, "orderpriority"),
        ("o_shippriority", INT),
    ),
)

LINEITEM = Table(
    name="lineitem",
    sf1_rows=6_000_000,
    foreign_keys={
        "l_orderkey": ("orders", "o_orderkey"),
        "l_partkey": ("part", "p_partkey"),
        "l_suppkey": ("supplier", "s_suppkey"),
    },
    columns=_cols(
        ("l_orderkey", INT),
        ("l_partkey", INT),
        ("l_suppkey", INT),
        ("l_linenumber", INT),
        ("l_quantity", REAL),
        ("l_extendedprice", REAL),
        ("l_discount", REAL),
        ("l_tax", REAL),
        ("l_returnflag", CODE, "returnflag"),
        ("l_linestatus", CODE, "linestatus"),
        ("l_shipdate", DATE),
        ("l_commitdate", DATE),
        ("l_receiptdate", DATE),
        ("l_shipmode", CODE, "shipmode"),
        ("l_shipinstruct", CODE, "shipinstruct"),
    ),
)

TABLES: dict[str, Table] = {
    t.name: t
    for t in (REGION, NATION, SUPPLIER, CUSTOMER, PART, PARTSUPP, ORDERS,
              LINEITEM)
}


#: Fixed string dictionaries (TPC-H value domains).
DICTIONARIES: dict[str, list[str]] = {
    "region_name": ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"],
    "nation_name": [
        "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
        "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
        "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
        "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
        "UNITED STATES",
    ],
    "mktsegment": [
        "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY",
    ],
    "orderpriority": [
        "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW",
    ],
    "orderstatus": ["F", "O", "P"],
    "returnflag": ["A", "N", "R"],
    "linestatus": ["F", "O"],
    "shipmode": ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"],
    "shipinstruct": [
        "COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN",
    ],
    "brand": [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)],
    "container": [
        f"{size} {kind}"
        for size in ("SM", "LG", "MED", "JUMBO", "WRAP")
        for kind in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
    ],
    "part_type": [
        f"{p1} {p2} {p3}"
        for p1 in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
        for p2 in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
        for p3 in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
    ],
    # synthetic name dictionaries are generated per scale by dbgen
}


def dict_code(dictionary: str, literal: str) -> int:
    """Dictionary code of a string literal (raises on unknown values)."""
    try:
        return DICTIONARIES[dictionary].index(literal)
    except (KeyError, ValueError):
        raise LookupError(
            f"literal {literal!r} not in dictionary {dictionary!r}"
        ) from None


def date_literal(text: str) -> int:
    """``'1994-01-01'`` -> 19940101 (the YYYYMMDD int32 encoding)."""
    parts = text.split("-")
    if len(parts) != 3:
        raise ValueError(f"bad date literal {text!r}")
    year, month, day = (int(p) for p in parts)
    return year * 10000 + month * 100 + day


def date_add_days(date: int, days: int) -> int:
    """Date arithmetic on the YYYYMMDD encoding (exact civil calendar)."""
    import datetime

    year, rem = divmod(int(date), 10000)
    month, day = divmod(rem, 100)
    moved = datetime.date(year, month, day) + datetime.timedelta(days=days)
    return moved.year * 10000 + moved.month * 100 + moved.day
