"""The paper's modified TPC-H workload (Appendix A).

Fourteen queries: 1, 3, 4, 5, 6, 7, 8, 10, 11, 12, 15, 17, 19, 21.
Seven were omitted by the paper (2, 9, 13, 14, 16, 20, 22 — LIKE /
substring / 8-byte-join requirements) and Q18 was skipped "due to
problems with MonetDB".

Texts follow the reproduction dialect (see :mod:`repro.sql.lower`):

* explicit left-deep ``JOIN ... ON`` chains, fact table first so hash
  builds land on the smaller (usually key) side — the plan shape
  MonetDB's optimizer produces,
* correlated subqueries appear pre-decorrelated — ``EXISTS`` as
  ``SEMI JOIN``, per-group comparisons as joins against grouped derived
  tables (Q4, Q17, Q21),
* the Appendix-A modifications applied: sorting clauses removed
  (Q1 ``l_linestatus``, Q3 ``o_orderdate``, Q7 ``supp_nation``/
  ``l_year``, Q21 ``s_name``), ``LIMIT`` removed (Q3, Q10),
  ``DECIMAL -> REAL`` via the schema,
* Q6's inclusive discount bounds are widened by 1e-4 so that the
  float32 (REAL) representation of 0.05/0.07 stays inside the range on
  every engine.
"""

Q1 = """
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag
"""

Q3 = """
SELECT l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM lineitem
JOIN orders ON l_orderkey = o_orderkey
JOIN customer ON o_custkey = c_custkey
WHERE c_mktsegment = 'BUILDING'
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC
"""

Q4 = """
SELECT o_orderpriority, count(*) AS order_count
FROM orders
SEMI JOIN (
    SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate
) late ON o_orderkey = late.l_orderkey
WHERE o_orderdate >= DATE '1993-07-01'
  AND o_orderdate < DATE '1993-07-01' + INTERVAL '3' MONTH
GROUP BY o_orderpriority
ORDER BY o_orderpriority
"""

Q5 = """
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem
JOIN orders ON l_orderkey = o_orderkey
JOIN customer ON o_custkey = c_custkey
JOIN supplier ON l_suppkey = s_suppkey
JOIN nation ON s_nationkey = n_nationkey
JOIN region ON n_regionkey = r_regionkey
WHERE r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1994-01-01' + INTERVAL '1' YEAR
  AND c_nationkey = s_nationkey
GROUP BY n_name
ORDER BY revenue DESC
"""

Q6 = """
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
  AND l_discount BETWEEN 0.0499 AND 0.0701
  AND l_quantity < 24
"""

Q7 = """
SELECT supp_nation, cust_nation, l_year, sum(volume) AS revenue
FROM (
    SELECT n1.n_name AS supp_nation,
           n2.n_name AS cust_nation,
           EXTRACT(YEAR FROM l_shipdate) AS l_year,
           l_extendedprice * (1 - l_discount) AS volume
    FROM lineitem
    JOIN supplier ON s_suppkey = l_suppkey
    JOIN orders ON o_orderkey = l_orderkey
    JOIN customer ON c_custkey = o_custkey
    JOIN nation n1 ON s_nationkey = n1.n_nationkey
    JOIN nation n2 ON c_nationkey = n2.n_nationkey
    WHERE l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
      AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
        OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
) shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY cust_nation
"""

Q8 = """
SELECT o_year,
       sum(brazil_volume) / sum(volume) AS mkt_share
FROM (
    SELECT EXTRACT(YEAR FROM o_orderdate) AS o_year,
           l_extendedprice * (1 - l_discount) AS volume,
           CASE WHEN n2.n_name = 'BRAZIL'
                THEN l_extendedprice * (1 - l_discount)
                ELSE 0 END AS brazil_volume
    FROM lineitem
    JOIN part ON p_partkey = l_partkey
    JOIN supplier ON s_suppkey = l_suppkey
    JOIN orders ON l_orderkey = o_orderkey
    JOIN customer ON o_custkey = c_custkey
    JOIN nation n1 ON c_nationkey = n1.n_nationkey
    JOIN region ON n1.n_regionkey = r_regionkey
    JOIN nation n2 ON s_nationkey = n2.n_nationkey
    WHERE r_name = 'AMERICA'
      AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
      AND p_type = 'ECONOMY ANODIZED STEEL'
) all_nations
GROUP BY o_year
ORDER BY o_year
"""

Q10 = """
SELECT c_custkey, c_name,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name
FROM lineitem
JOIN orders ON l_orderkey = o_orderkey
JOIN customer ON o_custkey = c_custkey
JOIN nation ON c_nationkey = n_nationkey
WHERE o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH
  AND l_returnflag = 'R'
GROUP BY c_custkey, c_name, c_acctbal, n_name
ORDER BY revenue DESC
"""

Q11 = """
SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS value
FROM partsupp
JOIN supplier ON ps_suppkey = s_suppkey
JOIN nation ON s_nationkey = n_nationkey
WHERE n_name = 'GERMANY'
GROUP BY ps_partkey
HAVING sum(ps_supplycost * ps_availqty) > (
    SELECT sum(ps_supplycost * ps_availqty) * 0.0001
    FROM partsupp
    JOIN supplier ON ps_suppkey = s_suppkey
    JOIN nation ON s_nationkey = n_nationkey
    WHERE n_name = 'GERMANY'
)
ORDER BY value DESC
"""

Q12 = """
SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority = '1-URGENT'
                 OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       sum(CASE WHEN o_orderpriority <> '1-URGENT'
                AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM lineitem
JOIN orders ON o_orderkey = l_orderkey
WHERE l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY l_shipmode
ORDER BY l_shipmode
"""

Q15 = """
WITH revenue AS (
    SELECT l_suppkey AS supplier_no,
           sum(l_extendedprice * (1 - l_discount)) AS total_revenue
    FROM lineitem
    WHERE l_shipdate >= DATE '1996-01-01'
      AND l_shipdate < DATE '1996-01-01' + INTERVAL '3' MONTH
    GROUP BY l_suppkey
)
SELECT s_suppkey, s_name, total_revenue
FROM supplier
JOIN revenue ON s_suppkey = supplier_no
WHERE total_revenue = (SELECT max(total_revenue) FROM revenue)
ORDER BY s_suppkey
"""

Q17 = """
SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem
JOIN part ON p_partkey = l_partkey
JOIN (
    SELECT l_partkey AS agg_partkey, 0.2 * avg(l_quantity) AS avg_quantity
    FROM lineitem
    GROUP BY l_partkey
) part_agg ON p_partkey = agg_partkey
WHERE p_brand = 'Brand#23'
  AND p_container = 'MED BOX'
  AND l_quantity < avg_quantity
"""

Q19 = """
SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem
JOIN part ON p_partkey = l_partkey
WHERE (p_brand = 'Brand#12'
       AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
       AND l_quantity >= 1 AND l_quantity <= 11
       AND p_size BETWEEN 1 AND 5
       AND l_shipmode IN ('AIR', 'REG AIR')
       AND l_shipinstruct = 'DELIVER IN PERSON')
   OR (p_brand = 'Brand#23'
       AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
       AND l_quantity >= 10 AND l_quantity <= 20
       AND p_size BETWEEN 1 AND 10
       AND l_shipmode IN ('AIR', 'REG AIR')
       AND l_shipinstruct = 'DELIVER IN PERSON')
   OR (p_brand = 'Brand#34'
       AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
       AND l_quantity >= 20 AND l_quantity <= 30
       AND p_size BETWEEN 1 AND 15
       AND l_shipmode IN ('AIR', 'REG AIR')
       AND l_shipinstruct = 'DELIVER IN PERSON')
"""

Q21 = """
SELECT s_name, count(*) AS numwait
FROM supplier
JOIN lineitem l1 ON s_suppkey = l1.l_suppkey
JOIN orders ON o_orderkey = l1.l_orderkey
JOIN nation ON s_nationkey = n_nationkey
JOIN (
    SELECT l_orderkey AS all_ok, count(*) AS supp_cnt
    FROM (
        SELECT l_orderkey, l_suppkey FROM lineitem
        GROUP BY l_orderkey, l_suppkey
    ) d1
    GROUP BY l_orderkey
) order_supp ON l1.l_orderkey = all_ok
JOIN (
    SELECT l_orderkey AS late_ok, count(*) AS late_cnt
    FROM (
        SELECT l_orderkey, l_suppkey FROM lineitem
        WHERE l_receiptdate > l_commitdate
        GROUP BY l_orderkey, l_suppkey
    ) d2
    GROUP BY l_orderkey
) late_supp ON l1.l_orderkey = late_ok
WHERE o_orderstatus = 'F'
  AND n_name = 'SAUDI ARABIA'
  AND l1.l_receiptdate > l1.l_commitdate
  AND supp_cnt > 1
  AND late_cnt = 1
GROUP BY s_name
ORDER BY numwait DESC
"""

#: query id -> SQL text, in the paper's figure order.
WORKLOAD: dict[str, str] = {
    "Q1": Q1, "Q3": Q3, "Q4": Q4, "Q5": Q5, "Q6": Q6, "Q7": Q7, "Q8": Q8,
    "Q10": Q10, "Q11": Q11, "Q12": Q12, "Q15": Q15, "Q17": Q17,
    "Q19": Q19, "Q21": Q21,
}

#: queries the paper omitted, with the Appendix-A reason.
OMITTED: dict[str, str] = {
    "Q2": "requires LIKE and an 8-byte-column join",
    "Q9": "requires LIKE on p_name",
    "Q13": "requires LIKE on o_comment",
    "Q14": "requires LIKE on p_type",
    "Q16": "requires LIKE on p_type",
    "Q18": "skipped due to problems with MonetDB",
    "Q20": "requires LIKE on p_name",
    "Q22": "requires substring on c_phone",
}
