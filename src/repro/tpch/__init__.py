"""``repro.tpch`` — the TPC-H substrate (S6): schema, dbgen, workload.
(Layer map: ARCHITECTURE.md §"repro.tpch and repro.bench".)"""

from .dbgen import TPCHData, generate
from .queries import OMITTED, WORKLOAD
from .schema import (
    DICTIONARIES,
    SCALE_DOWN,
    TABLES,
    date_add_days,
    date_literal,
    dict_code,
)
from .workload import SCHEMA, TPCHSchema, compile_query

__all__ = [
    "DICTIONARIES",
    "OMITTED",
    "SCALE_DOWN",
    "SCHEMA",
    "TABLES",
    "TPCHData",
    "TPCHSchema",
    "WORKLOAD",
    "compile_query",
    "date_add_days",
    "date_literal",
    "dict_code",
    "generate",
]
