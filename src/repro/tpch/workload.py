"""TPC-H workload plumbing: schema provider + compiled plan cache."""

from __future__ import annotations

from ..monetdb.mal import MALProgram
from ..sql.lower import SchemaProvider, compile_sql
from .schema import TABLES, dict_code


class TPCHSchema(SchemaProvider):
    """Schema/dictionary information for the SQL binder."""

    def has_table(self, table: str) -> bool:
        return table in TABLES

    def columns(self, table: str) -> list[str]:
        return [c.name for c in TABLES[table].columns]

    def dictionary(self, table: str, column: str):
        return TABLES[table].column(column).dictionary

    def dictionary_code(self, dictionary: str, literal: str) -> int:
        return dict_code(dictionary, literal)


SCHEMA = TPCHSchema()

_plan_cache: dict[str, MALProgram] = {}


def compile_query(query_id: str) -> MALProgram:
    """Compile (and cache) one workload query's MAL plan."""
    from .queries import WORKLOAD

    if query_id not in _plan_cache:
        _plan_cache[query_id] = compile_sql(
            WORKLOAD[query_id], SCHEMA, name=query_id
        )
    return _plan_cache[query_id]
