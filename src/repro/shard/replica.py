"""Replicated shard topology: routing, failover, and cluster counters.

Each key-range *slot* of the partitioned layout lives on a primary node
and ``R - 1`` replicas placed by chained declustering: copy ``k`` of
slot ``s`` resides on node ``(s + k) % n``.  Routing is therefore pure
arithmetic — no placement table needs to move when a node dies, the
surviving copies are already resident and failover reduces to choosing
a different ``copy_of[slot]``.

``ReplicaRouting`` owns that choice.  It is deliberately free of any
backend state so the failover logic stays unit-testable: the backend
hands it a health predicate and applies the returned plan.

``ClusterStats`` is the ``cluster.*`` metrics carrier surfaced through
``Backend.cluster_stats()`` and the obs snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional


@dataclass
class ClusterStats:
    """Counters for the ``cluster.*`` observability namespace."""

    nodes: int = 0
    replicas: int = 1
    promotions: int = 0
    recoveries: int = 0
    degraded_reads: int = 0
    retries: int = 0
    ranges_migrated: int = 0
    topology_changes: int = 0
    reads_balanced: int = 0


class ReplicaRouting:
    """Maps layout slots to the physical node currently serving them.

    ``copy_of[slot]`` selects which of the slot's ``replicas`` copies is
    live; the host node follows from chained declustering.  ``base`` is
    the read balancer's current rotation position — on a healthy
    cluster every slot reads copy ``base`` — and ``promoted`` tracks
    slots routed *away* from it by failover, i.e. the cluster is
    *degraded* while the set is non-empty.
    """

    def __init__(self, n_slots: int, replicas: int = 1):
        if n_slots < 1:
            raise ValueError("need at least one slot")
        if not 1 <= replicas <= n_slots:
            raise ValueError(
                f"replicas must be in 1..{n_slots}, got {replicas}"
            )
        self.n_slots = n_slots
        self.replicas = replicas
        self.copy_of = [0] * n_slots
        self.base = 0
        self.promoted: set[int] = set()

    # -- placement arithmetic -------------------------------------------

    def host(self, slot: int, copy: Optional[int] = None) -> int:
        """Physical node hosting ``copy`` of ``slot`` (live copy if
        ``copy`` is None)."""
        k = self.copy_of[slot] if copy is None else copy
        return (slot + k) % self.n_slots

    def slots_on(self, node: int) -> list[int]:
        """Slots whose *live* copy is currently served by ``node``."""
        return [s for s in range(self.n_slots) if self.host(s) == node]

    @property
    def degraded(self) -> bool:
        return bool(self.promoted)

    # -- failover planning ----------------------------------------------

    def plan_failover(
        self, node: int, healthy: Callable[[int], bool]
    ) -> Optional[Dict[int, int]]:
        """Plan promotions that route every slot off ``node``.

        Returns ``{slot: new_copy}`` for the affected slots, or ``None``
        when some slot has no healthy copy left (the caller must fail
        the query rather than half-promote).
        """
        plan: Dict[int, int] = {}
        for slot in self.slots_on(node):
            current = self.copy_of[slot]
            for step in range(1, self.replicas):
                candidate = (current + step) % self.replicas
                target = self.host(slot, candidate)
                if target != node and healthy(target):
                    plan[slot] = candidate
                    break
            else:
                return None
        return plan

    def rejoin_plan(
        self, healthy: Callable[[int], bool]
    ) -> Dict[int, int]:
        """Plan demotions back to the rotation-base copies whose host
        recovered."""
        return {
            slot: self.base
            for slot in sorted(self.promoted)
            if healthy(self.host(slot, self.base))
        }

    def apply(self, plan: Dict[int, int]) -> tuple[int, int]:
        """Apply a promotion/demotion plan; returns the number of
        (promotions, recoveries) actually performed.  A slot landing
        back on the rotation base is a recovery; anything else is a
        promotion away from it."""
        promotions = recoveries = 0
        for slot, copy in plan.items():
            if self.copy_of[slot] == copy:
                continue
            self.copy_of[slot] = copy
            if copy == self.base:
                self.promoted.discard(slot)
                recoveries += 1
            else:
                self.promoted.add(slot)
                promotions += 1
        return promotions, recoveries

    # -- read load balancing --------------------------------------------

    def rotate(self, turn: int) -> bool:
        """Route every slot to copy ``turn % replicas`` — the read
        load-balancer's round-robin step.  Only valid on a healthy
        cluster (no promotions in flight).  Returns True if any slot's
        route changed."""
        copy = turn % self.replicas
        if copy == self.base and not any(
            c != copy for c in self.copy_of
        ):
            return False
        self.base = copy
        changed = False
        for slot in range(self.n_slots):
            if self.copy_of[slot] != copy:
                self.copy_of[slot] = copy
                changed = True
        return changed
