"""Table partitioning across shard catalogs.

Each shard of the sharded engine is an independent single-node database:
it has its *own* :class:`~repro.monetdb.storage.Catalog` holding its
slice of every partitioned table (and a full copy of every replicated
one).  Positions, selections and joins inside a shard are therefore
plain shard-local operations — exactly the model of a cluster of
column-store nodes (Hespe et al.: partition the big table, replicate the
small ones, keep the merge cheap).

Row assignment, in order of precedence:

* **shard key** — a table with a declared shard key places each row by
  its *key value*.  Keys live in named **domains** (``l_orderkey`` and
  ``o_orderkey`` both default to domain ``"orderkey"``): every table
  keyed in one domain uses the *same* value-to-shard function, so equal
  keys land on equal shards across tables — the tables co-partition and
  equi-joins on the key run entirely shard-local.  In ``hash`` mode the
  function is a 64-bit mix of the key value modulo N; in ``range`` mode
  it is N value bands over the domain's *observed key histogram* (the
  union across all member tables, so the bands agree).  Bands are cut at
  weighted medians of the histogram, recursively splitting the heaviest
  band — a skewed domain still fills every shard as long as it has at
  least N distinct keys, instead of folding its load onto one band and
  leaving the rest empty.
* ``range`` (default, no key) — shard *s* holds the contiguous row range
  ``[s*n/N, (s+1)*n/N)``.  Concatenating per-shard rows in shard order
  reproduces the global base order, so even order-sensitive results
  match single-node execution exactly.
* ``hash`` (no key) — round-robin on the row id (row *i* lives on shard
  ``i % N``).  Row *sets* are preserved but unordered result row *order*
  may differ from single-node execution (as it does for keyed tables).

Tables with fewer than ``min_partition_rows`` rows are **replicated**
to every shard: dimension tables must be joinable everywhere without a
shuffle.  DDL on the parent database re-syncs every shard catalog
(creating/dropping per-shard tables bumps each child's schema version,
which is what invalidates per-shard cached state).  Every table carries
a **layout signature** (partitioned?, mode, key, band cuts, N); when a
re-sync observes a changed signature — a key was declared, a DDL
widened a range domain — the table is dropped from every shard and
re-partitioned, so a stale layout can never satisfy a co-partitioning
check it no longer honours.

**Replicas.**  With ``replicas=R`` every key-range slot keeps R
identical copy catalogs (``self.copies[slot]``); the backend maps copy
``k`` of slot ``s`` onto physical node ``(s + k) % N`` (chained
declustering) and routes reads between them.  The partitioner installs
the same slice into every copy, so a node failure never moves data —
failover is purely the backend's routing choice.  ``self.catalogs``
remains the list of primary copies, which is what every layout check
and test inspects.

**Online re-sharding.**  A partitioner built with ``eager=False`` stays
empty until :meth:`begin_migration`; :meth:`migrate_step` then installs
tables one at a time, so the backend can move key ranges incrementally
at query boundaries while in-flight work drains against the old layout.
"""

from __future__ import annotations

import re

import numpy as np

from ..monetdb.storage import Catalog

#: below this row count a table is replicated to every shard rather
#: than partitioned (dimension tables join locally without a shuffle)
DEFAULT_MIN_PARTITION_ROWS = 256

_PREFIX = re.compile(r"^[a-z0-9]+_")


def default_key_domain(column: str) -> str:
    """The default key domain: the column name sans table prefix.

    TPC-H columns follow ``<prefix>_<name>`` (``l_orderkey``,
    ``o_orderkey``), so foreign-key pairs fall into one domain without
    any declaration beyond the per-table key itself."""
    column = column.lower()
    return _PREFIX.sub("", column) or column


def hash_placement(values: np.ndarray, n_shards: int) -> np.ndarray:
    """Value -> shard id by a 64-bit finalizer mix, modulo ``n_shards``.

    Depends only on the value (not the table or the row position), so
    any two columns placed through it co-partition.  Floats truncate to
    int64 first — equal values still collide onto one shard, which is
    all placement needs."""
    v = np.asarray(values)
    if v.dtype.kind not in "iuf":
        raise ValueError(
            f"shard keys must be numeric, got dtype {v.dtype}"
        )
    with np.errstate(over="ignore"):
        h = v.astype(np.int64, copy=False).view(np.uint64)
        h = (h ^ (h >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        h = (h ^ (h >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        h = h ^ (h >> np.uint64(31))
        return (h % np.uint64(n_shards)).astype(np.int64)


def range_placement(values: np.ndarray, n_shards: int,
                    bounds: tuple[float, float]) -> np.ndarray:
    """Value -> shard id by N equal-width bands over ``bounds``.

    Values outside the bounds (a probe-side key missing from the domain
    tables) clip into the edge bands — placement stays total, and a key
    absent from the build side simply finds no match there."""
    lo, hi = bounds
    v = np.asarray(values).astype(np.float64, copy=False)
    span = max(float(hi) - float(lo), 0.0) + 1.0
    ids = np.floor((v - float(lo)) * n_shards / span).astype(np.int64)
    return np.clip(ids, 0, n_shards - 1)


def skew_bands(values: np.ndarray, n_bands: int) -> np.ndarray:
    """Histogram-aware band boundaries: ``min(n_bands, n_distinct)``
    non-empty value bands over the observed keys.

    Starts from one band covering every distinct key and repeatedly
    splits the heaviest band at its weighted median, so a hot key range
    spreads over many shards while the cold tail shares the rest — the
    fix for skewed domains folding onto a single equal-width band.
    Returns the inclusive upper boundary of each band but the last
    (``n_bands - 1`` cuts); an empty result means one all-covering
    band."""
    uniq, counts = np.unique(
        np.asarray(values).astype(np.float64, copy=False),
        return_counts=True,
    )
    if uniq.size == 0:
        return np.empty(0, dtype=np.float64)
    want = min(int(n_bands), int(uniq.size))
    # bands are half-open index ranges [lo, hi) into ``uniq``
    bands = [(0, int(uniq.size))]
    cum = np.concatenate(([0], np.cumsum(counts)))
    while len(bands) < want:
        heaviest, weight = None, -1
        for i, (lo, hi) in enumerate(bands):
            if hi - lo < 2:
                continue            # one distinct key: cannot split
            if cum[hi] - cum[lo] > weight:
                heaviest, weight = i, cum[hi] - cum[lo]
        if heaviest is None:
            break
        lo, hi = bands.pop(heaviest)
        target = (cum[lo] + cum[hi]) / 2.0
        cut = int(np.searchsorted(cum[lo + 1:hi], target, side="left"))
        cut = min(max(cut + lo + 1, lo + 1), hi - 1)
        bands.extend([(lo, cut), (cut, hi)])
    bands.sort()
    return np.array(
        [uniq[hi - 1] for (lo, hi) in bands[:-1]], dtype=np.float64
    )


def band_placement(values: np.ndarray,
                   boundaries: np.ndarray) -> np.ndarray:
    """Value -> band id against :func:`skew_bands` boundaries.

    Boundary ``i`` is the inclusive upper edge of band ``i``; any value
    above the last boundary lands in the final band, so placement stays
    total for probe-side keys never seen in the domain histogram."""
    v = np.asarray(values).astype(np.float64, copy=False)
    return np.searchsorted(
        np.asarray(boundaries, dtype=np.float64), v, side="left"
    ).astype(np.int64)


class ShardPartitioner:
    """Keeps N shard catalogs (x R copies) in sync with one parent."""

    def __init__(
        self,
        parent: Catalog,
        n_shards: int,
        mode: str = "range",
        min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS,
        shard_keys: "dict[str, str] | None" = None,
        use_declared_keys: bool = True,
        replicas: int = 1,
        eager: bool = True,
    ):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if mode not in ("range", "hash"):
            raise ValueError(f"unknown partition mode {mode!r}")
        if not 1 <= replicas <= n_shards:
            raise ValueError(
                f"replicas must be in 1..{n_shards}, got {replicas}"
            )
        self.parent = parent
        self.n_shards = n_shards
        self.mode = mode
        self.replicas = replicas
        self.min_partition_rows_raw = int(min_partition_rows)
        self.min_partition_rows = max(int(min_partition_rows), n_shards)
        #: honour keys declared on the parent catalog (the ``keys=off``
        #: spec flag clears this: pure row-id placement, the PR-3 layout)
        self.use_declared_keys = use_declared_keys
        #: engine-local declarations (spec ``key=...`` params, inferred
        #: keys) — these override catalog-level declarations
        self._local_keys: dict[str, tuple[str, "str | None"]] = {
            table: (column, None)
            for table, column in (shard_keys or {}).items()
        }
        #: ``copies[slot][k]`` — copy ``k`` of slot ``slot``'s slice;
        #: every copy in a row holds identical data
        self.copies = [
            [Catalog() for _ in range(replicas)]
            for _ in range(n_shards)
        ]
        #: the primary copies — the list every layout check inspects
        self.catalogs = [row[0] for row in self.copies]
        #: physical shard ids currently holding data, in logical order;
        #: the circuit-breaker board shrinks this to route around a sick
        #: node (:meth:`set_active`) and restores it on recovery
        self.active: tuple = tuple(range(n_shards))
        #: table -> True if partitioned, False if replicated
        self.partitioned: dict[str, bool] = {}
        #: effective keys this sync: table -> (column, domain)
        self.keys: dict[str, tuple[str, str]] = {}
        #: domain -> (min, max) over every member table's key column
        self.domains: dict[str, tuple[float, float]] = {}
        #: domain -> skew-aware band boundaries (range mode only)
        self.bands: dict[str, np.ndarray] = {}
        #: table -> layout signature of the slices currently installed
        self._signatures: dict[str, tuple] = {}
        #: tables still to install during a staged migration
        self._pending_tables: "list[str] | None" = None
        if eager:
            self.sync()

    def is_partitioned(self, table: str) -> bool:
        return self.partitioned.get(table, False)

    @property
    def n_active(self) -> int:
        """How many shards currently hold data (placement fan-out)."""
        return len(self.active)

    def _all_catalogs(self):
        for row in self.copies:
            yield from row

    def set_active(self, active) -> None:
        """Re-partition every table over the given physical shards.

        ``active`` is the physical shard ids (in logical order) that
        should hold data; excluded shards are emptied.  Changing the
        active set changes every table's layout signature, so the next
        :meth:`sync` (run immediately) drops and re-slices everything —
        route-around is a full re-partition, exactly what an
        unreplicated cluster must pay to shed a dead node.  (With
        ``replicas > 1`` the backend never calls this on failure: the
        ranges are already resident elsewhere and failover is a pure
        routing change.)"""
        active = tuple(active)
        if not active:
            raise ValueError("need at least one active shard")
        if sorted(set(active)) != sorted(active) or not all(
                0 <= p < self.n_shards for p in active):
            raise ValueError(f"bad active shard set {active!r}")
        self.active = active
        self.sync()

    # -- shard keys ----------------------------------------------------------

    def declare_key(self, table: str, column: str,
                    domain: "str | None" = None,
                    sync: bool = True) -> None:
        """Declare a shard key locally (spec param / inferred key).

        Takes effect on the next :meth:`sync` (immediately by default):
        the table's layout signature changes, so its shard slices are
        re-partitioned by key value."""
        self._local_keys[table] = (column, domain)
        if sync:
            self.sync()

    def key_of(self, table: str) -> "tuple[str, str] | None":
        """``(column, domain)`` the table is currently partitioned by."""
        if not self.partitioned.get(table, False):
            return None
        return self.keys.get(table)

    def is_key_aligned(self, table: str, column: str) -> bool:
        """Whether ``table`` is partitioned by exactly ``column``."""
        key = self.key_of(table)
        return key is not None and key[0] == column

    def co_located(self, left: "tuple[str, str]",
                   right: "tuple[str, str]") -> bool:
        """Whether an equi-join on these ``(table, column)`` sides is
        fully shard-local: both tables partitioned by exactly those
        columns, in one shared key domain (same placement function)."""
        lkey = self.key_of(left[0])
        rkey = self.key_of(right[0])
        return (
            lkey is not None and rkey is not None
            and lkey[0] == left[1] and rkey[0] == right[1]
            and lkey[1] == rkey[1]
        )

    def key_placement(self, domain: str):
        """The value-to-shard function of one key domain."""
        if self.mode == "hash":
            return lambda values: hash_placement(values, self.n_active)
        boundaries = self.bands[domain]
        return lambda values: band_placement(values, boundaries)

    def default_placement(self, values: np.ndarray) -> np.ndarray:
        """Domain-free placement for ad-hoc shuffles (both-side hash
        re-partition of a join on undeclared columns)."""
        return hash_placement(values, self.n_active)

    def _effective_keys(self, parent_tables) -> dict:
        declared: dict[str, tuple[str, "str | None"]] = {}
        if self.use_declared_keys:
            declared.update(self.parent.shard_keys)
        declared.update(self._local_keys)
        keys: dict[str, tuple[str, str]] = {}
        for table, (column, domain) in declared.items():
            if table not in parent_tables:
                continue
            if column not in self.parent.columns(table):
                raise ValueError(
                    f"shard key {table}.{column}: no such column"
                )
            keys[table] = (column, domain or default_key_domain(column))
        return keys

    # -- row assignment ------------------------------------------------------

    def _slice_masks(self, name: str) -> "list | None":
        """Per-shard row masks for a keyed table (None = unkeyed)."""
        key = self.keys.get(name)
        if key is None:
            return None
        column, domain = key
        values = self.parent.bat(name, column).values
        ids = self.key_placement(domain)(values)
        return [ids == shard for shard in range(self.n_active)]

    def _slice(self, values: np.ndarray, shard: int) -> np.ndarray:
        n = values.shape[0]
        if self.mode == "hash":
            return values[shard::self.n_active]
        lo = shard * n // self.n_active
        hi = (shard + 1) * n // self.n_active
        return values[lo:hi]

    def _signature(self, name: str, partition: bool) -> tuple:
        key = self.keys.get(name)
        bounds = self.domains.get(key[1]) if key else None
        cuts = None
        if key is not None and self.mode == "range":
            boundaries = self.bands.get(key[1])
            if boundaries is not None:
                cuts = tuple(boundaries.tolist())
        return (partition, self.mode, key, bounds, cuts, self.active)

    # -- synchronisation -----------------------------------------------------

    def _refresh_layout(self, parent_tables) -> None:
        """Recompute keys, domain bounds and range-band boundaries."""
        self.keys = self._effective_keys(parent_tables)
        for name in list(self.keys):
            rows = self.parent.row_count(name)
            if rows < self.min_partition_rows:
                del self.keys[name]     # replicated: key is irrelevant
        self.domains = {}
        members: dict[str, list] = {}
        for name, (column, domain) in self.keys.items():
            values = self.parent.bat(name, column).values
            if values.dtype.kind not in "iuf":
                raise ValueError(
                    f"shard key {name}.{column} must be numeric, "
                    f"got dtype {values.dtype}"
                )
            lo = float(values.min()) if values.size else 0.0
            hi = float(values.max()) if values.size else 0.0
            have = self.domains.get(domain)
            if have is not None:
                lo, hi = min(lo, have[0]), max(hi, have[1])
            self.domains[domain] = (lo, hi)
            if self.mode == "range":
                members.setdefault(domain, []).append(values)
        self.bands = {}
        if self.mode == "range":
            for domain, arrays in members.items():
                observed = np.concatenate(
                    [np.asarray(a, dtype=np.float64) for a in arrays]
                )
                self.bands[domain] = skew_bands(observed, self.n_active)

    def _install_table(self, name: str) -> int:
        """(Re-)install one table's slices; returns the number of
        logical slots that received fresh data (ranges moved)."""
        rows = self.parent.row_count(name)
        partition = rows >= self.min_partition_rows
        self.partitioned[name] = partition
        signature = self._signature(name, partition)
        if self._signatures.get(name) != signature:
            for catalog in self._all_catalogs():
                if catalog.has_table(name):
                    catalog.drop_table(name)
        self._signatures[name] = signature
        for phys in set(range(self.n_shards)) - set(self.active):
            for catalog in self.copies[phys]:
                if catalog.has_table(name):
                    catalog.drop_table(name)
        masks = self._slice_masks(name) if partition else None
        installed = 0
        for shard, phys in enumerate(self.active):
            columns = None
            fresh = False
            for catalog in self.copies[phys]:
                if catalog.has_table(name):
                    continue
                if columns is None:
                    columns = {}
                    for column in self.parent.columns(name):
                        values = self.parent.bat(name, column).values
                        if not partition:
                            columns[column] = values
                        elif masks is not None:
                            columns[column] = values[masks[shard]]
                        else:
                            columns[column] = self._slice(values, shard)
                catalog.create_table(name, columns)
                fresh = True
            if fresh:
                installed += 1
        return installed

    def sync(self) -> None:
        """Bring every shard catalog up to date with the parent.

        New parent tables are partitioned or replicated per the size
        policy; dropped parent tables are dropped from every shard
        (firing the per-shard delete callbacks, so shard-local device
        caches release their buffers).  A table whose layout signature
        changed — key declared, band cuts moved, partition policy
        flipped — is dropped and re-partitioned, so shard slices always
        reflect the placement function the co-partitioning checks
        assume.  Both directions bump each child catalog's schema
        version.
        """
        parent_tables = set(self.parent.tables())
        for catalog in self._all_catalogs():
            for stale in set(catalog.tables()) - parent_tables:
                catalog.drop_table(stale)
        for name in list(self.partitioned):
            if name not in parent_tables:
                del self.partitioned[name]
                self._signatures.pop(name, None)
        self._refresh_layout(parent_tables)
        for name in self.parent.tables():
            self._install_table(name)
        self._pending_tables = None

    # -- staged migration (online re-sharding) -------------------------------

    def begin_migration(self) -> None:
        """Prepare an incremental :meth:`sync`: compute the new layout
        now, but defer installing tables to :meth:`migrate_step` calls
        (one per query boundary), so a resize proceeds while queries
        keep running against the old partitioner."""
        parent_tables = set(self.parent.tables())
        self._refresh_layout(parent_tables)
        self._pending_tables = sorted(parent_tables)

    def migrate_step(self, tables: int = 1) -> int:
        """Install up to ``tables`` pending tables; returns how many
        logical key-range slots received data."""
        moved = 0
        while tables > 0 and self._pending_tables:
            name = self._pending_tables.pop(0)
            moved += self._install_table(name)
            tables -= 1
        return moved

    @property
    def migration_done(self) -> bool:
        """True once a started migration has installed every table."""
        return (
            self._pending_tables is not None
            and not self._pending_tables
        )
