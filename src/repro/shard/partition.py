"""Table partitioning across shard catalogs.

Each shard of the sharded engine is an independent single-node database:
it has its *own* :class:`~repro.monetdb.storage.Catalog` holding its
slice of every partitioned table (and a full copy of every replicated
one).  Positions, selections and joins inside a shard are therefore
plain shard-local operations — exactly the model of a cluster of
column-store nodes (Hespe et al.: partition the big table, replicate the
small ones, keep the merge cheap).

Row assignment, in order of precedence:

* **shard key** — a table with a declared shard key places each row by
  its *key value*.  Keys live in named **domains** (``l_orderkey`` and
  ``o_orderkey`` both default to domain ``"orderkey"``): every table
  keyed in one domain uses the *same* value-to-shard function, so equal
  keys land on equal shards across tables — the tables co-partition and
  equi-joins on the key run entirely shard-local.  In ``hash`` mode the
  function is a 64-bit mix of the key value modulo N; in ``range`` mode
  it is N equal-width value bands over the domain's observed [min, max]
  (the union across all member tables, so the bands agree).
* ``range`` (default, no key) — shard *s* holds the contiguous row range
  ``[s*n/N, (s+1)*n/N)``.  Concatenating per-shard rows in shard order
  reproduces the global base order, so even order-sensitive results
  match single-node execution exactly.
* ``hash`` (no key) — round-robin on the row id (row *i* lives on shard
  ``i % N``).  Row *sets* are preserved but unordered result row *order*
  may differ from single-node execution (as it does for keyed tables).

Tables with fewer than ``min_partition_rows`` rows are **replicated**
to every shard: dimension tables must be joinable everywhere without a
shuffle.  DDL on the parent database re-syncs every shard catalog
(creating/dropping per-shard tables bumps each child's schema version,
which is what invalidates per-shard cached state).  Every table carries
a **layout signature** (partitioned?, mode, key, domain bounds, N); when
a re-sync observes a changed signature — a key was declared, a DDL
widened a range domain — the table is dropped from every shard and
re-partitioned, so a stale layout can never satisfy a co-partitioning
check it no longer honours.
"""

from __future__ import annotations

import re

import numpy as np

from ..monetdb.storage import Catalog

#: below this row count a table is replicated to every shard rather
#: than partitioned (dimension tables join locally without a shuffle)
DEFAULT_MIN_PARTITION_ROWS = 256

_PREFIX = re.compile(r"^[a-z0-9]+_")


def default_key_domain(column: str) -> str:
    """The default key domain: the column name sans table prefix.

    TPC-H columns follow ``<prefix>_<name>`` (``l_orderkey``,
    ``o_orderkey``), so foreign-key pairs fall into one domain without
    any declaration beyond the per-table key itself."""
    column = column.lower()
    return _PREFIX.sub("", column) or column


def hash_placement(values: np.ndarray, n_shards: int) -> np.ndarray:
    """Value -> shard id by a 64-bit finalizer mix, modulo ``n_shards``.

    Depends only on the value (not the table or the row position), so
    any two columns placed through it co-partition.  Floats truncate to
    int64 first — equal values still collide onto one shard, which is
    all placement needs."""
    v = np.asarray(values)
    if v.dtype.kind not in "iuf":
        raise ValueError(
            f"shard keys must be numeric, got dtype {v.dtype}"
        )
    with np.errstate(over="ignore"):
        h = v.astype(np.int64, copy=False).view(np.uint64)
        h = (h ^ (h >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        h = (h ^ (h >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        h = h ^ (h >> np.uint64(31))
        return (h % np.uint64(n_shards)).astype(np.int64)


def range_placement(values: np.ndarray, n_shards: int,
                    bounds: tuple[float, float]) -> np.ndarray:
    """Value -> shard id by N equal-width bands over ``bounds``.

    Values outside the bounds (a probe-side key missing from the domain
    tables) clip into the edge bands — placement stays total, and a key
    absent from the build side simply finds no match there."""
    lo, hi = bounds
    v = np.asarray(values).astype(np.float64, copy=False)
    span = max(float(hi) - float(lo), 0.0) + 1.0
    ids = np.floor((v - float(lo)) * n_shards / span).astype(np.int64)
    return np.clip(ids, 0, n_shards - 1)


class ShardPartitioner:
    """Keeps N shard catalogs in sync with one parent catalog."""

    def __init__(
        self,
        parent: Catalog,
        n_shards: int,
        mode: str = "range",
        min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS,
        shard_keys: "dict[str, str] | None" = None,
        use_declared_keys: bool = True,
    ):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if mode not in ("range", "hash"):
            raise ValueError(f"unknown partition mode {mode!r}")
        self.parent = parent
        self.n_shards = n_shards
        self.mode = mode
        self.min_partition_rows = max(int(min_partition_rows), n_shards)
        #: honour keys declared on the parent catalog (the ``keys=off``
        #: spec flag clears this: pure row-id placement, the PR-3 layout)
        self.use_declared_keys = use_declared_keys
        #: engine-local declarations (spec ``key=...`` params, inferred
        #: keys) — these override catalog-level declarations
        self._local_keys: dict[str, tuple[str, "str | None"]] = {
            table: (column, None)
            for table, column in (shard_keys or {}).items()
        }
        self.catalogs = [Catalog() for _ in range(n_shards)]
        #: physical shard ids currently holding data, in logical order;
        #: the circuit-breaker board shrinks this to route around a sick
        #: node (:meth:`set_active`) and restores it on recovery
        self.active: tuple = tuple(range(n_shards))
        #: table -> True if partitioned, False if replicated
        self.partitioned: dict[str, bool] = {}
        #: effective keys this sync: table -> (column, domain)
        self.keys: dict[str, tuple[str, str]] = {}
        #: domain -> (min, max) over every member table's key column
        self.domains: dict[str, tuple[float, float]] = {}
        #: table -> layout signature of the slices currently installed
        self._signatures: dict[str, tuple] = {}
        self.sync()

    def is_partitioned(self, table: str) -> bool:
        return self.partitioned.get(table, False)

    @property
    def n_active(self) -> int:
        """How many shards currently hold data (placement fan-out)."""
        return len(self.active)

    def set_active(self, active) -> None:
        """Re-partition every table over the given physical shards.

        ``active`` is the physical shard ids (in logical order) that
        should hold data; excluded shards are emptied.  Changing the
        active set changes every table's layout signature, so the next
        :meth:`sync` (run immediately) drops and re-slices everything —
        route-around is a full re-partition, exactly what a real
        cluster would pay to shed a dead node."""
        active = tuple(active)
        if not active:
            raise ValueError("need at least one active shard")
        if sorted(set(active)) != sorted(active) or not all(
                0 <= p < self.n_shards for p in active):
            raise ValueError(f"bad active shard set {active!r}")
        self.active = active
        self.sync()

    # -- shard keys ----------------------------------------------------------

    def declare_key(self, table: str, column: str,
                    domain: "str | None" = None,
                    sync: bool = True) -> None:
        """Declare a shard key locally (spec param / inferred key).

        Takes effect on the next :meth:`sync` (immediately by default):
        the table's layout signature changes, so its shard slices are
        re-partitioned by key value."""
        self._local_keys[table] = (column, domain)
        if sync:
            self.sync()

    def key_of(self, table: str) -> "tuple[str, str] | None":
        """``(column, domain)`` the table is currently partitioned by."""
        if not self.partitioned.get(table, False):
            return None
        return self.keys.get(table)

    def is_key_aligned(self, table: str, column: str) -> bool:
        """Whether ``table`` is partitioned by exactly ``column``."""
        key = self.key_of(table)
        return key is not None and key[0] == column

    def co_located(self, left: "tuple[str, str]",
                   right: "tuple[str, str]") -> bool:
        """Whether an equi-join on these ``(table, column)`` sides is
        fully shard-local: both tables partitioned by exactly those
        columns, in one shared key domain (same placement function)."""
        lkey = self.key_of(left[0])
        rkey = self.key_of(right[0])
        return (
            lkey is not None and rkey is not None
            and lkey[0] == left[1] and rkey[0] == right[1]
            and lkey[1] == rkey[1]
        )

    def key_placement(self, domain: str):
        """The value-to-shard function of one key domain."""
        if self.mode == "hash":
            return lambda values: hash_placement(values, self.n_active)
        bounds = self.domains[domain]
        return lambda values: range_placement(
            values, self.n_active, bounds
        )

    def default_placement(self, values: np.ndarray) -> np.ndarray:
        """Domain-free placement for ad-hoc shuffles (both-side hash
        re-partition of a join on undeclared columns)."""
        return hash_placement(values, self.n_active)

    def _effective_keys(self, parent_tables) -> dict:
        declared: dict[str, tuple[str, "str | None"]] = {}
        if self.use_declared_keys:
            declared.update(self.parent.shard_keys)
        declared.update(self._local_keys)
        keys: dict[str, tuple[str, str]] = {}
        for table, (column, domain) in declared.items():
            if table not in parent_tables:
                continue
            if column not in self.parent.columns(table):
                raise ValueError(
                    f"shard key {table}.{column}: no such column"
                )
            keys[table] = (column, domain or default_key_domain(column))
        return keys

    # -- row assignment ------------------------------------------------------

    def _slice_masks(self, name: str) -> "list | None":
        """Per-shard row masks for a keyed table (None = unkeyed)."""
        key = self.keys.get(name)
        if key is None:
            return None
        column, domain = key
        values = self.parent.bat(name, column).values
        ids = self.key_placement(domain)(values)
        return [ids == shard for shard in range(self.n_active)]

    def _slice(self, values: np.ndarray, shard: int) -> np.ndarray:
        n = values.shape[0]
        if self.mode == "hash":
            return values[shard::self.n_active]
        lo = shard * n // self.n_active
        hi = (shard + 1) * n // self.n_active
        return values[lo:hi]

    def _signature(self, name: str, partition: bool) -> tuple:
        key = self.keys.get(name)
        bounds = self.domains.get(key[1]) if key else None
        return (partition, self.mode, key, bounds, self.active)

    # -- synchronisation -----------------------------------------------------

    def sync(self) -> None:
        """Bring every shard catalog up to date with the parent.

        New parent tables are partitioned or replicated per the size
        policy; dropped parent tables are dropped from every shard
        (firing the per-shard delete callbacks, so shard-local device
        caches release their buffers).  A table whose layout signature
        changed — key declared, domain bounds moved, partition policy
        flipped — is dropped and re-partitioned, so shard slices always
        reflect the placement function the co-partitioning checks
        assume.  Both directions bump each child catalog's schema
        version.
        """
        parent_tables = set(self.parent.tables())
        for catalog in self.catalogs:
            for stale in set(catalog.tables()) - parent_tables:
                catalog.drop_table(stale)
        for name in list(self.partitioned):
            if name not in parent_tables:
                del self.partitioned[name]
                self._signatures.pop(name, None)

        self.keys = self._effective_keys(parent_tables)
        for name in list(self.keys):
            rows = self.parent.row_count(name)
            if rows < self.min_partition_rows:
                del self.keys[name]     # replicated: key is irrelevant
        self.domains = {}
        for name, (column, domain) in self.keys.items():
            values = self.parent.bat(name, column).values
            if values.dtype.kind not in "iuf":
                raise ValueError(
                    f"shard key {name}.{column} must be numeric, "
                    f"got dtype {values.dtype}"
                )
            lo = float(values.min()) if values.size else 0.0
            hi = float(values.max()) if values.size else 0.0
            have = self.domains.get(domain)
            if have is not None:
                lo, hi = min(lo, have[0]), max(hi, have[1])
            self.domains[domain] = (lo, hi)

        for name in self.parent.tables():
            rows = self.parent.row_count(name)
            partition = rows >= self.min_partition_rows
            self.partitioned[name] = partition
            signature = self._signature(name, partition)
            if self._signatures.get(name) != signature:
                for catalog in self.catalogs:
                    if catalog.has_table(name):
                        catalog.drop_table(name)
            self._signatures[name] = signature
            for phys in set(range(self.n_shards)) - set(self.active):
                if self.catalogs[phys].has_table(name):
                    self.catalogs[phys].drop_table(name)
            masks = self._slice_masks(name) if partition else None
            for shard, phys in enumerate(self.active):
                catalog = self.catalogs[phys]
                if catalog.has_table(name):
                    continue
                columns = {}
                for column in self.parent.columns(name):
                    values = self.parent.bat(name, column).values
                    if not partition:
                        columns[column] = values
                    elif masks is not None:
                        columns[column] = values[masks[shard]]
                    else:
                        columns[column] = self._slice(values, shard)
                catalog.create_table(name, columns)
