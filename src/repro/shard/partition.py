"""Table partitioning across shard catalogs.

Each shard of the sharded engine is an independent single-node database:
it has its *own* :class:`~repro.monetdb.storage.Catalog` holding its
slice of every partitioned table (and a full copy of every replicated
one).  Positions, selections and joins inside a shard are therefore
plain shard-local operations — exactly the model of a cluster of
column-store nodes (Hespe et al.: partition the big table, replicate the
small ones, keep the merge cheap).

Two row-assignment schemes:

* ``range`` (default) — shard *s* holds the contiguous row range
  ``[s*n/N, (s+1)*n/N)``.  Concatenating per-shard rows in shard order
  reproduces the global base order, so even order-sensitive results
  match single-node execution exactly.
* ``hash`` — round-robin on the row id (row *i* lives on shard
  ``i % N``), the classic hash-on-key placement degenerated to the row
  id since the reproduction has no declared shard keys.  Row *sets* are
  preserved but unordered result row *order* may differ from
  single-node execution.

Tables with fewer than ``min_partition_rows`` rows are **replicated**
to every shard: dimension tables must be joinable everywhere without a
shuffle.  DDL on the parent database re-syncs every shard catalog
(creating/dropping per-shard tables bumps each child's schema version,
which is what invalidates per-shard cached state).
"""

from __future__ import annotations

import numpy as np

from ..monetdb.storage import Catalog

#: below this row count a table is replicated to every shard rather
#: than partitioned (dimension tables join locally without a shuffle)
DEFAULT_MIN_PARTITION_ROWS = 256


class ShardPartitioner:
    """Keeps N shard catalogs in sync with one parent catalog."""

    def __init__(
        self,
        parent: Catalog,
        n_shards: int,
        mode: str = "range",
        min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS,
    ):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if mode not in ("range", "hash"):
            raise ValueError(f"unknown partition mode {mode!r}")
        self.parent = parent
        self.n_shards = n_shards
        self.mode = mode
        self.min_partition_rows = max(int(min_partition_rows), n_shards)
        self.catalogs = [Catalog() for _ in range(n_shards)]
        #: table -> True if partitioned, False if replicated
        self.partitioned: dict[str, bool] = {}
        self.sync()

    def is_partitioned(self, table: str) -> bool:
        return self.partitioned.get(table, False)

    # -- row assignment ------------------------------------------------------

    def _slice(self, values: np.ndarray, shard: int) -> np.ndarray:
        n = values.shape[0]
        if self.mode == "hash":
            return values[shard::self.n_shards]
        lo = shard * n // self.n_shards
        hi = (shard + 1) * n // self.n_shards
        return values[lo:hi]

    # -- synchronisation -----------------------------------------------------

    def sync(self) -> None:
        """Bring every shard catalog up to date with the parent.

        New parent tables are partitioned or replicated per the size
        policy; dropped parent tables are dropped from every shard
        (firing the per-shard delete callbacks, so shard-local device
        caches release their buffers).  Both directions bump each child
        catalog's schema version.
        """
        parent_tables = set(self.parent.tables())
        for shard, catalog in enumerate(self.catalogs):
            for stale in set(catalog.tables()) - parent_tables:
                catalog.drop_table(stale)
        for name in list(self.partitioned):
            if name not in parent_tables:
                del self.partitioned[name]
        for name in self.parent.tables():
            rows = self.parent.row_count(name)
            partition = rows >= self.min_partition_rows
            self.partitioned[name] = partition
            for shard, catalog in enumerate(self.catalogs):
                if catalog.has_table(name):
                    continue
                columns = {
                    column: (
                        self._slice(self.parent.bat(name, column).values,
                                    shard)
                        if partition
                        else self.parent.bat(name, column).values
                    )
                    for column in self.parent.columns(name)
                }
                catalog.create_table(name, columns)
