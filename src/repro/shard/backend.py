"""The sharded multi-node engine: N child backends + mat.pack merges.

``ShardedBackend`` is the engine registry's first *composable* client:
it implements the same formal :class:`~repro.monetdb.interpreter
.Backend` protocol as every single-node engine, but owns **N child
backends** (any registered family — MS, CPU, HET, ...), each bound to
its own shard catalog (:mod:`repro.shard.partition`).  The *same*
rewritten MAL program is interpreted once; every instruction fans out to
all shards through the children's own operator registries, so each shard
executes exactly the per-node plan a single-node engine would — the
paper's hardware-obliviousness lifted one level: the plan is also
*topology*-oblivious.

Values flowing through the interpreter are :class:`ShardedValue`
wrappers holding one part per shard plus merge provenance:

* values derived from **replicated** tables are identical on every
  shard — the merge takes shard 0's copy;
* row-space values from **partitioned** tables concatenate in shard
  order (with range partitioning that *is* the global base order);
* **aggregate partials** carry a fold tag: scalar aggregates fold on
  the driver; grouped aggregates are aligned **by group key** across
  shards (shard-local dense group ids are translated through each
  shard's key table) and folded mat.pack-style with the same fold
  semantics as the heterogeneous engine's partition merge —
  ``avg`` partials are computed as (sum, count) pairs so the merged
  average is exact;
* a partial consumed by a *later* operator (``HAVING`` over grouped
  sums, ``ORDER BY`` over aggregates, scalar arithmetic on a ``sum``)
  is **merged eagerly at that point** and re-broadcast to every shard —
  the scatter/gather boundary of a real cluster plan — after which the
  post-aggregation tail of the query runs identically everywhere.

Operators that fundamentally need global context — ``sort`` over a
partitioned row space, a join whose *both* sides are partitioned —
gather the needed side to the driver and broadcast it, trading
interconnect bytes for correctness (the classic broadcast join).
Gathers and merges charge simulated interconnect + driver time;
``elapsed`` is the slowest shard's clock plus that merge time, which is
what makes the fig. 10 makespan sweep meaningful.
"""

from __future__ import annotations

import numpy as np

from ..cl import GB
from ..engines import EngineConfig
from ..monetdb.bat import BAT, Role, make_bat
from ..monetdb.interpreter import Backend, UnsupportedOperator
from ..monetdb.storage import Catalog
from .partition import DEFAULT_MIN_PARTITION_ROWS, ShardPartitioner

#: simulated interconnect between shards and the driver (10 GbE-ish)
SHARD_NET_GBS = 8.0
#: per-gather/merge round-trip latency
SHARD_LATENCY_S = 40e-6

_SCALAR_AGGS = frozenset({"sum", "min", "max", "count", "avg"})
_GROUPED_AGGS = frozenset(
    {"subsum", "submin", "submax", "subcount", "subavg"}
)
#: fold op per aggregate partial (count partials fold by summing)
_FOLD_OF = {"sum": "sum", "count": "sum", "min": "min", "max": "max",
            "subsum": "sum", "subcount": "sum", "submin": "min",
            "submax": "max"}


class ShardedValue:
    """One interpreter value, sharded: a part per shard + provenance."""

    __slots__ = ("parts", "partitioned", "merge", "group", "pair",
                 "avg_dtype", "global_oids", "base_rows", "_gathered")

    def __init__(self, parts, partitioned, merge=None, group=None,
                 pair=None, avg_dtype=None, global_oids=False):
        self.parts = parts
        self.partitioned = partitioned
        #: fold tag ("sum"/"min"/"max"/"avg") for aggregate partials
        self.merge = merge
        #: the _Grouping aligning ngroups-wide partials, if grouped
        self.group = group
        #: (sums, counts) ShardedValues for exact avg merges
        self.pair = pair
        self.avg_dtype = avg_dtype
        #: positions referring to a *gathered* (global) row space —
        #: projections through them must gather their source column too
        self.global_oids = global_oids
        #: for position-valued columns: per-shard row counts of the
        #: space the positions index; gathering translates shard-local
        #: positions into the gathered layout by these offsets
        self.base_rows: "tuple[int, ...] | None" = None
        self._gathered = None      # cached broadcast after an eager merge

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "part" if self.partitioned else "repl"
        extra = f" merge={self.merge}" if self.merge else ""
        return f"<SV {kind}x{len(self.parts)}{extra}>"


class _Grouping:
    """Cross-shard alignment of one grouping's dense local group ids.

    Built when ``group.group`` / ``group.subgroup`` runs over
    partitioned rows.  Every shard assigns its own dense gids in
    ascending key order (the engine-wide convention); :meth:`merged`
    computes, lazily, the sorted global key table and each shard's
    ``local gid -> global group index`` map, which is what lets grouped
    partials fold by *key* even though the id spaces differ per shard.
    """

    def __init__(self, backend: "ShardedBackend", key_bats,
                 gids_bats, ngroups, outer: "_Grouping | None" = None,
                 outer_gids=None):
        self.backend = backend
        self.key_bats = key_bats          # per-shard grouped column
        self.gids_bats = gids_bats        # per-shard dense id rows
        self.ngroups = ngroups            # per-shard group counts
        self.outer = outer                # subgroup: the outer grouping
        self.outer_gids = outer_gids      # per-shard outer id rows
        self._merged = None
        self._key_cache: dict[int, np.ndarray] = {}

    def keys_matrix(self, shard: int) -> np.ndarray:
        """(ngroups_s, n_key_columns) matrix of shard-local group keys,
        row ``g`` holding local group ``g``'s key tuple (ascending)."""
        cached = self._key_cache.get(shard)
        if cached is not None:
            return cached
        values = self.backend._host_values(shard, self.key_bats[shard])
        if self.outer is None:
            keys = np.unique(values).reshape(-1, 1)
        else:
            gids = self.backend._host_values(
                shard, self.gids_bats[shard]
            ).astype(np.int64, copy=False)
            outer_gids = self.backend._host_values(
                shard, self.outer_gids[shard]
            ).astype(np.int64, copy=False)
            # first row of each dense id; ids ascend in key order, so
            # np.unique's sorted ids line up with row positions 0..n-1
            _ids, first = np.unique(gids, return_index=True)
            outer_keys = self.outer.keys_matrix(shard)
            keys = np.column_stack(
                [outer_keys[outer_gids[first]], values[first]]
            )
        if keys.shape[0] != int(self.ngroups[shard]):
            raise AssertionError(
                "shard group keys out of step with dense ids"
            )
        self._key_cache[shard] = keys
        return keys

    def merged(self):
        """``(n_global, maps)``: global group count and, per shard, the
        ``local gid -> global index`` translation (global groups sorted
        ascending by key tuple — the single-node output convention)."""
        if self._merged is None:
            mats = [
                self.keys_matrix(s)
                for s in range(len(self.key_bats))
            ]
            common = np.result_type(*[m.dtype for m in mats])
            stacked = np.vstack([m.astype(common, copy=False)
                                 for m in mats])
            uniq, inverse = np.unique(
                stacked, axis=0, return_inverse=True
            )
            inverse = np.asarray(inverse).reshape(-1)
            maps, offset = [], 0
            for m in mats:
                maps.append(inverse[offset:offset + m.shape[0]])
                offset += m.shape[0]
            self._merged = (uniq.shape[0], maps)
            self.backend._charge_merge(int(stacked.nbytes))
        return self._merged


def _fold_identity(op: str, dtype: np.dtype):
    if op == "sum":
        return 0
    info = (np.finfo(dtype) if np.issubdtype(dtype, np.floating)
            else np.iinfo(dtype))
    return info.max if op == "min" else info.min


class ShardedBackend(Backend):
    """MAL backend fanning every instruction across N shard backends."""

    def __init__(
        self,
        catalog: Catalog,
        child_config: EngineConfig,
        n_shards: int,
        data_scale: float = 1.0,
        mode: str = "range",
        min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS,
        label: str = "SHARD",
    ):
        self.label = label
        self.child_config = child_config
        self.data_scale = float(data_scale)
        self.partitioner = ShardPartitioner(
            catalog, n_shards, mode=mode,
            min_partition_rows=min_partition_rows,
        )
        self.children: list[Backend] = [
            child_config.make(shard_catalog, data_scale)
            for shard_catalog in self.partitioner.catalogs
        ]
        self._merge_s = 0.0
        super().__init__(catalog)

    @property
    def n_shards(self) -> int:
        return len(self.children)

    # -- protocol: registration / resolution ---------------------------------

    def _register_ops(self) -> None:
        """No own operators: every op fans out to the children."""

    def resolve(self, op: str):
        # existence check up front so unsupported ops fail like any
        # other backend's resolve (children share one operator set)
        self.children[0].resolve(op)

        def fan(*args):
            return self._run_op(op, args)

        return fan

    def supports(self, op: str) -> bool:
        return self.children[0].supports(op)

    def supported_ops(self) -> list[str]:
        return self.children[0].supported_ops()

    # -- protocol: timing ------------------------------------------------------

    def begin(self) -> None:
        for child in self.children:
            child.begin()
        self._merge_s = 0.0

    def elapsed(self) -> float:
        """Slowest shard + driver-side gather/merge time.

        Shards are independent nodes: their simulated clocks advance
        concurrently, so the query's makespan is the maximum, plus the
        serial driver work (merges, gathers, broadcasts)."""
        return max(child.elapsed() for child in self.children) \
            + self._merge_s

    def query_overhead_s(self) -> float:
        return max(child.query_overhead_s() for child in self.children)

    def _charge_merge(self, nbytes: int) -> None:
        """Interconnect + driver cost of moving ``nbytes`` (actual array
        bytes; scaled to nominal) through the merge point."""
        nominal = nbytes * self.data_scale
        self._merge_s += SHARD_LATENCY_S + nominal / (SHARD_NET_GBS * GB)

    # -- protocol: lifecycle ------------------------------------------------------

    def schema_changed(self) -> None:
        """Parent DDL: re-partition and bump every shard's catalog."""
        self.partitioner.sync()

    def shutdown(self) -> None:
        for child in self.children:
            child.shutdown()

    def end_of_query(self, intermediates: list) -> None:
        per_child: list[list] = [[] for _ in self.children]
        for value in intermediates:
            for sv in self._component_values(value):
                for shard, part in enumerate(sv.parts):
                    per_child[shard].append(part)
        for child, leftovers in zip(self.children, per_child):
            child.end_of_query(leftovers)

    def _component_values(self, value):
        """A value's ShardedValues incl. avg pairs and cached gathers."""
        if not isinstance(value, ShardedValue):
            return
        yield value
        if value.pair is not None:
            for sub in value.pair:
                yield from self._component_values(sub)
        if isinstance(value._gathered, ShardedValue):
            yield from self._component_values(value._gathered)

    # -- shard-local helpers -------------------------------------------------------

    def _localize(self, shard: int, args):
        return [
            a.parts[shard] if isinstance(a, ShardedValue) else a
            for a in args
        ]

    def _host_values(self, shard: int, part) -> np.ndarray:
        """Host tail of one shard's BAT, syncing through the shard's own
        backend (charging that shard's clock) when device-resident.

        Synced device results are backed by ``max(count, 1)``-element
        buffers, so a count-0 BAT (a shard whose filter matched nothing)
        carries one element of padding — truncate to the logical count
        or gathers and folds would fabricate a phantom row."""
        if not isinstance(part, BAT):
            return part
        if not part.has_host_values:
            self.children[shard].resolve("ocelot.sync")(part)
        values = part.values
        if values.shape[0] != part.count:
            return values[:part.count]
        return values

    def _fan(self, op: str, args, partitioned=None) -> object:
        outs = [
            self.children[shard].resolve(op)(*self._localize(shard, args))
            for shard in range(self.n_shards)
        ]
        if partitioned is None:
            partitioned = any(
                isinstance(a, ShardedValue) and a.partitioned
                for a in args
            )
        first = outs[0]
        if isinstance(first, tuple):
            return tuple(
                ShardedValue([o[i] for o in outs], partitioned)
                for i in range(len(first))
            )
        return ShardedValue(outs, partitioned)

    # -- the dispatch ----------------------------------------------------------------

    def _run_op(self, op: str, args):
        # aggregate partials consumed by a downstream operator merge
        # here — the cluster plan's scatter/gather boundary
        args = [self._demote(a) for a in args]
        fn = op.split(".", 1)[1] if "." in op else op
        if fn in _SCALAR_AGGS:
            return self._scalar_agg(op, fn, args)
        if fn in _GROUPED_AGGS:
            return self._grouped_agg(op, fn, args)
        handler = getattr(self, f"_op_{fn}", None)
        if handler is not None:
            return handler(op, args)
        return self._fan(op, args)

    def _demote(self, value):
        """Merge an aggregate-partial argument and broadcast the result."""
        if not isinstance(value, ShardedValue) or value.merge is None:
            return value
        if value._gathered is None:
            if value.group is not None:
                merged = self._fold_grouped(value)
                self._charge_merge(int(merged.nbytes) * self.n_shards)
                value._gathered = ShardedValue(
                    [make_bat(merged, tag="shard_merge")
                     for _ in range(self.n_shards)],
                    partitioned=False,
                )
            else:
                value._gathered = self._fold_scalar(value)
                self._charge_merge(8 * self.n_shards)
        return value._gathered

    # -- aggregates -----------------------------------------------------------------

    def _scalar_agg(self, op: str, fn: str, args):
        partitioned = any(
            isinstance(a, ShardedValue) and a.partitioned for a in args
        )
        if not partitioned:
            return self._fan(op, args, partitioned=False)
        module = op.split(".", 1)[0]
        # shards whose filtered input is empty contribute the fold
        # identity, not a partial — single-node engines (rightly) refuse
        # e.g. min() over an empty column, and a shard must not turn a
        # non-empty global aggregate into that refusal.  When *every*
        # shard is empty, run one child anyway so the global query keeps
        # exact single-node empty-input semantics (0 for sum, an error
        # for min/max).
        b = args[0]
        active = [
            shard for shard in range(self.n_shards)
            if not (isinstance(b, ShardedValue)
                    and isinstance(b.parts[shard], BAT)
                    and b.parts[shard].count == 0)
        ] or [0]

        def fan_active(op_name: str) -> ShardedValue:
            parts = [None] * self.n_shards
            for shard in active:
                parts[shard] = self.children[shard].resolve(op_name)(
                    *self._localize(shard, args)
                )
            return ShardedValue(parts, True)

        if fn == "avg":
            sums = fan_active(f"{module}.sum")
            counts = fan_active(f"{module}.count")
            sums.merge, counts.merge = "sum", "sum"
            return ShardedValue([None] * self.n_shards, True,
                                merge="avg", pair=(sums, counts))
        out = fan_active(op)
        out.merge = _FOLD_OF[fn]
        return out

    def _grouped_agg(self, op: str, fn: str, args):
        gids = args[0] if fn == "subcount" else args[1]
        partitioned = any(
            isinstance(a, ShardedValue) and a.partitioned for a in args
        )
        if not partitioned:
            return self._fan(op, args, partitioned=False)
        grouping = getattr(gids, "group", None) if isinstance(
            gids, ShardedValue) else None
        if grouping is None:
            raise UnsupportedOperator(
                f"{op} over partitioned rows without a sharded grouping "
                f"— plan shape not supported by the SHARD engine"
            )
        module = op.split(".", 1)[0]
        if fn == "subavg":
            vals = args[0]
            sums = self._grouped_agg(f"{module}.subsum", "subsum", args)
            counts = self._grouped_agg(
                f"{module}.subcount", "subcount", args[1:]
            )
            dtype = None
            if isinstance(vals, ShardedValue) \
                    and isinstance(vals.parts[0], BAT):
                from ..monetdb.calc import grouped_dtype

                dtype = grouped_dtype("avg", vals.parts[0].dtype)
            return ShardedValue(
                [None] * self.n_shards, True, merge="avg",
                group=grouping, pair=(sums, counts), avg_dtype=dtype,
            )
        out = self._fan(op, args, partitioned=True)
        out.merge = _FOLD_OF[fn]
        out.group = grouping
        return out

    def _fold_scalar(self, value: ShardedValue):
        if value.merge == "avg":
            total = self._fold_scalar(value.pair[0])
            count = self._fold_scalar(value.pair[1])
            return float(total) / max(float(count), 1.0)
        # empty shards were skipped at fan-out time (None = identity)
        parts = [p for p in value.parts if p is not None]
        if value.merge == "sum":
            total = parts[0]
            for part in parts[1:]:
                total = total + part
            return total
        if value.merge == "min":
            return min(parts)
        if value.merge == "max":
            return max(parts)
        if value.merge == "first" or not value.partitioned:
            return parts[0]
        raise UnsupportedOperator(
            "partitioned scalar without merge semantics reached a "
            "merge point (unsupported plan shape for SHARD)"
        )

    def _fold_grouped(self, value: ShardedValue) -> np.ndarray:
        """Key-aligned fold of an ngroups-wide partial across shards,
        in ascending global key order (the single-node convention)."""
        grouping = value.group
        n_global, maps = grouping.merged()
        if value.merge == "avg":
            sums = self._fold_grouped(value.pair[0]).astype(np.float64)
            counts = self._fold_grouped(value.pair[1]).astype(np.float64)
            avg = sums / np.maximum(counts, 1.0)
            return avg.astype(value.avg_dtype or np.float64)
        arrays = [
            self._host_values(shard, part)
            for shard, part in enumerate(value.parts)
        ]
        dtype = np.result_type(*[np.asarray(a).dtype for a in arrays])
        out = np.full(n_global, _fold_identity(value.merge, dtype),
                      dtype=dtype)
        for shard, vals in enumerate(arrays):
            idx = maps[shard]
            if value.merge == "sum":
                out[idx] = out[idx] + vals
            elif value.merge == "min":
                out[idx] = np.minimum(out[idx], vals)
            else:
                out[idx] = np.maximum(out[idx], vals)
        return out

    # -- gathers (global row-space operators) ------------------------------------

    def _gather_rows(self, value: ShardedValue) -> ShardedValue:
        """Concatenate a partitioned row-space value on the driver and
        broadcast it to every shard (sort / broadcast-join path).

        Every gathered column of one row space concatenates in shard
        order, so gathered layouts are mutually consistent; *position*
        columns additionally translate shard-local positions into that
        layout via their space's per-shard row counts (``base_rows``).
        """
        if value._gathered is None:
            arrays = [
                self._host_values(shard, part)
                for shard, part in enumerate(value.parts)
            ]
            positions = any(
                isinstance(p, BAT) and p.role is Role.OIDS
                for p in value.parts
            )
            if positions:
                if value.base_rows is None:
                    raise UnsupportedOperator(
                        "cannot gather a sharded position column whose "
                        "row space is unknown (unsupported plan shape "
                        "for SHARD)"
                    )
                offsets = np.concatenate(
                    ([0], np.cumsum(value.base_rows[:-1]))
                ).astype(np.int64)
                arrays = [
                    a.astype(np.int64) + offsets[s]
                    for s, a in enumerate(arrays)
                ]
                merged = np.concatenate(arrays)
                from ..monetdb.bat import OID_DTYPE, oid_bat

                bats = [
                    oid_bat(merged.astype(OID_DTYPE), tag="shard_gather")
                    for _ in range(self.n_shards)
                ]
            else:
                merged = np.concatenate(arrays)
                bats = [
                    make_bat(merged, tag="shard_gather")
                    for _ in range(self.n_shards)
                ]
            self._charge_merge(int(merged.nbytes) * (1 + self.n_shards))
            gathered = ShardedValue(bats, partitioned=False)
            # offset-translated positions now live in the gathered
            # (global) layout — consumers must gather their sources too
            gathered.global_oids = positions
            value._gathered = gathered
        return value._gathered

    def _needs_gather(self, value) -> bool:
        return isinstance(value, ShardedValue) and value.partitioned

    @staticmethod
    def _counts(value) -> "tuple[int, ...] | None":
        if not isinstance(value, ShardedValue):
            return None
        if not all(isinstance(p, BAT) for p in value.parts):
            return None
        return tuple(int(p.count) for p in value.parts)

    # -- special operators ------------------------------------------------------------

    def _op_bind(self, op: str, args):
        ref = args[0]
        return self._fan(
            op, args,
            partitioned=self.partitioner.is_partitioned(ref.table),
        )

    def _op_select(self, op: str, args):
        out = self._fan(op, args)
        if isinstance(out, ShardedValue):
            out.base_rows = self._counts(args[0])
        return out

    _op_thetaselect = _op_select
    _op_mirror = _op_select

    def _op_pipe(self, op, args):
        """Fused regions (repro.fuse) fan out unchanged — they stay
        element-wise per row, so each shard runs the same single-pass
        kernel over its slice.  Selection outputs are shard-local
        positions like any unfused select, so they carry the input's
        per-shard row counts for a later gather."""
        out = self._fan(op, args)
        spec = args[0]
        sharded = [a for a in args[1:] if isinstance(a, ShardedValue)]
        rows = self._counts(sharded[0]) if sharded else None
        outputs = out if isinstance(out, tuple) else (out,)
        for value, fused_output in zip(outputs, spec.outputs):
            if isinstance(value, ShardedValue) and fused_output.is_select:
                value.base_rows = rows
        return out

    def _op_oidunion(self, op: str, args):
        out = self._fan(op, args)
        if isinstance(out, ShardedValue) \
                and isinstance(args[0], ShardedValue):
            out.base_rows = args[0].base_rows
        return out

    _op_oidintersect = _op_oidunion

    def _op_group(self, op: str, args):
        b = args[0]
        gids, ngroups = self._fan(op, args)
        if self._needs_gather(b):
            grouping = _Grouping(
                self, key_bats=list(b.parts), gids_bats=list(gids.parts),
                ngroups=[int(n) for n in ngroups.parts],
            )
            gids.group = grouping
        return gids, ngroups

    def _op_subgroup(self, op: str, args):
        b, outer_gids = args[0], args[1]
        gids, ngroups = self._fan(op, args)
        if gids.partitioned:
            outer = getattr(outer_gids, "group", None) if isinstance(
                outer_gids, ShardedValue) else None
            if outer is None:
                raise UnsupportedOperator(
                    f"{op}: subgrouping partitioned rows without a "
                    f"sharded outer grouping is not supported"
                )
            grouping = _Grouping(
                self, key_bats=list(b.parts), gids_bats=list(gids.parts),
                ngroups=[int(n) for n in ngroups.parts],
                outer=outer, outer_gids=list(outer_gids.parts),
            )
            gids.group = grouping
        return gids, ngroups

    def _op_sort(self, op: str, args):
        b = args[0]
        gathered = self._needs_gather(b)
        if gathered:
            args = [self._gather_rows(b)] + list(args[1:])
        sorted_sv, order_sv = self._fan(op, args, partitioned=False)
        if gathered:
            order_sv.global_oids = True
        return sorted_sv, order_sv

    def _op_firstn(self, op: str, args):
        b = args[0]
        if self._needs_gather(b):
            args = [self._gather_rows(b)] + list(args[1:])
        return self._fan(op, args, partitioned=False)

    def _op_projection(self, op: str, args):
        oids, source = args[0], args[1]
        if isinstance(oids, ShardedValue) and oids.global_oids \
                and self._needs_gather(source):
            # positions refer to a gathered (global) row space: the
            # source column must be gathered the same way; whether the
            # *output* is shard-local still follows the position lists
            # (a per-shard pair list projected through a broadcast
            # column yields per-shard results)
            args = [oids, self._gather_rows(source)] + list(args[2:])
        out = self._fan(op, args)
        if isinstance(out, ShardedValue) and isinstance(source, ShardedValue):
            # a projection's output *values* are drawn from the source,
            # so whatever space those values index (row-map composition
            # through shard-local or gathered spaces) carries over
            out.base_rows = source.base_rows
            out.global_oids = source.global_oids
        return out

    def _op_join(self, op: str, args):
        left, right = args[0], args[1]
        gathered = False
        if self._needs_gather(left) and self._needs_gather(right):
            # broadcast join: gather the build side to every shard
            args = [left, self._gather_rows(right)] + list(args[2:])
            gathered = True
        lpos, rpos = self._fan(
            op, args, partitioned=True if gathered else None
        )
        lpos.base_rows = self._counts(left)
        if gathered:
            rpos.global_oids = True
        else:
            rpos.base_rows = self._counts(right)
        return lpos, rpos

    _op_thetajoin = _op_join

    def _op_semijoin(self, op: str, args):
        left, right = args[0], args[1]
        if self._needs_gather(right):
            # membership is against the *whole* right side; gather it
            args = [left, self._gather_rows(right)] + list(args[2:])
        out = self._fan(op, args, partitioned=self._needs_gather(left))
        if isinstance(out, ShardedValue):
            out.base_rows = self._counts(left)
        return out

    _op_antijoin = _op_semijoin

    # -- protocol: result collection ---------------------------------------------------

    def collect_results(self, result_columns, resolve):
        return {
            name: self._collect_value(resolve(var))
            for name, var in result_columns
        }

    def _collect_value(self, value) -> np.ndarray:
        if not isinstance(value, ShardedValue):
            return np.atleast_1d(np.asarray(value))
        if value.merge is not None:
            if value.group is not None:
                merged = self._fold_grouped(value)
                self._charge_merge(int(merged.nbytes))
                return merged
            return np.atleast_1d(np.asarray(self._fold_scalar(value)))
        if not value.partitioned:
            return self.children[0].collect(value.parts[0])
        if not all(isinstance(part, BAT) for part in value.parts):
            raise UnsupportedOperator(
                "per-shard scalar without merge semantics reached the "
                "result set — the SHARD engine cannot fold it (e.g. "
                "hashbuild's distinct count is not additive across "
                "shards)"
            )
        arrays = [
            np.atleast_1d(np.asarray(self._host_values(shard, part)))
            for shard, part in enumerate(value.parts)
        ]
        merged = np.concatenate(arrays)
        self._charge_merge(int(merged.nbytes))
        return merged

    def collect(self, value):
        return self._collect_value(value)
