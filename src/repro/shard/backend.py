"""The sharded multi-node engine: N child backends + mat.pack merges.

``ShardedBackend`` is the engine registry's first *composable* client:
it implements the same formal :class:`~repro.monetdb.interpreter
.Backend` protocol as every single-node engine, but owns **N child
backends** (any registered family — MS, CPU, HET, ...), each bound to
its own shard catalog (:mod:`repro.shard.partition`).  The *same*
rewritten MAL program is interpreted once; every instruction fans out to
all shards through the children's own operator registries, so each shard
executes exactly the per-node plan a single-node engine would — the
paper's hardware-obliviousness lifted one level: the plan is also
*topology*-oblivious.

Values flowing through the interpreter are :class:`ShardedValue`
wrappers holding one part per shard plus merge provenance:

* values derived from **replicated** tables are identical on every
  shard — the merge takes shard 0's copy;
* row-space values from **partitioned** tables concatenate in shard
  order (with range partitioning that *is* the global base order);
* **aggregate partials** carry a fold tag: scalar aggregates fold on
  the driver; grouped aggregates are aligned **by group key** across
  shards (shard-local dense group ids are translated through each
  shard's key table) and folded mat.pack-style with the same fold
  semantics as the heterogeneous engine's partition merge —
  ``avg`` partials are computed as (sum, count) pairs so the merged
  average is exact;
* a partial consumed by a *later* operator (``HAVING`` over grouped
  sums, ``ORDER BY`` over aggregates, scalar arithmetic on a ``sum``)
  is **merged eagerly at that point** and re-broadcast to every shard —
  the scatter/gather boundary of a real cluster plan — after which the
  post-aggregation tail of the query runs identically everywhere.

Operators that fundamentally need global context — ``sort`` over a
partitioned row space — gather the needed side to the driver and
broadcast it.  A join whose *both* sides are partitioned goes through a
**join planner** that picks the cheapest correct strategy:

* **co-located** — both key columns are the declared (or inferred)
  shard keys of their base tables in one key domain
  (:class:`~repro.shard.partition.ShardPartitioner`), so every matching
  pair already lives on one shard: the join fans out shard-local with
  *zero* driver traffic;
* **shuffle** — the ``shard.shuffle`` operator hash-re-partitions the
  *smaller* side's (key, oid) pairs shard-to-shard (to the keyed side's
  placement when one side is key-aligned, by value hash on both sides
  otherwise); later projections through the shuffled side's positions
  fetch only the rows a shard actually needs, instead of broadcasting
  whole columns;
* **broadcast** — the PR-3 fallback (and the ``join=broadcast``
  baseline): gather the build side to the driver and re-broadcast it
  to every shard.

The chosen strategy per join site is recorded as a decision trace and
memoised by the serve layer's plan cache (the same
``replays_placements`` protocol the heterogeneous engine uses), so a
repeat query replays its strategies instead of re-planning; DDL bumps
the schema version and invalidates the trace with the plan.

Gathers, shuffles and merges charge simulated interconnect + driver
time and are counted per byte moved in :class:`InterconnectTraffic`
(``Connection.interconnect``); ``elapsed`` is the slowest shard's clock
plus that merge time, which is what makes the fig. 10 makespan and
join-traffic sweeps meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cl import GB
from ..engines import EngineConfig
from ..monetdb.bat import BAT, OID_DTYPE, Role, make_bat, oid_bat
from ..monetdb.interpreter import Backend, UnsupportedOperator
from ..monetdb.storage import Catalog
from .partition import DEFAULT_MIN_PARTITION_ROWS, ShardPartitioner
from .replica import ClusterStats, ReplicaRouting

#: simulated interconnect between shards and the driver (10 GbE-ish)
SHARD_NET_GBS = 8.0
#: per-gather/merge round-trip latency
SHARD_LATENCY_S = 40e-6

#: in-place retries the fan-out site absorbs before a fault reaches
#: the breaker path (transient blips vs. hard faults)
FAN_RETRIES = 2
#: simulated backoff charged per in-place retry (doubles per attempt)
RETRY_BACKOFF_S = 200e-6
#: tables migrated per query boundary during an online resize
MIGRATE_TABLES_PER_BOUNDARY = 2

#: join strategies the planner can pick (and the plan cache replays)
JOIN_LOCAL = "local"                  # >=1 side replicated: plain fan-out
JOIN_COLOCATED = "colocated"          # key-aligned sides: zero traffic
JOIN_SHUFFLE_LEFT = "shuffle-left"    # re-partition left to right's keys
JOIN_SHUFFLE_RIGHT = "shuffle-right"  # re-partition right to left's keys
JOIN_SHUFFLE_BOTH = "shuffle-both"    # hash re-partition both sides
JOIN_BROADCAST = "broadcast"          # gather + re-broadcast (PR-3 path)


@dataclass
class InterconnectTraffic:
    """Simulated interconnect bytes moved, by transfer pattern.

    Bytes are *nominal* (scaled by the dataset's ``data_scale``, like
    the simulated clock), so counters line up with the makespan charges
    and with the paper-scale data volumes.  Each pattern additionally
    tracks a ``*_physical`` counter: the bytes a transfer would move if
    it shipped columns in their *encoded* form (:mod:`repro.compress`)
    instead of decoded arrays — equal to the nominal counter when
    nothing on the wire was compressed.

    .. note:: superseded by the unified metrics registry — the same
       counters appear under ``interconnect.*`` (cumulative) and
       ``interconnect.query.*`` (per query) in
       ``Connection.metrics.snapshot()``; ``Connection.interconnect``
       keeps returning this live object."""

    #: driver gather + re-broadcast to every shard (broadcast joins,
    #: eager aggregate merges re-broadcast to the shards)
    bytes_broadcast: int = 0
    #: shard-to-shard hash re-partitions and targeted row fetches
    bytes_shuffled: int = 0
    #: driver-only gathers (result collection, grouped key merges)
    bytes_gathered: int = 0
    #: encoded-wire counterparts, by the same pattern
    bytes_broadcast_physical: int = 0
    bytes_shuffled_physical: int = 0
    bytes_gathered_physical: int = 0

    @property
    def bytes_total(self) -> int:
        return (self.bytes_broadcast + self.bytes_shuffled
                + self.bytes_gathered)

    @property
    def bytes_total_physical(self) -> int:
        return (self.bytes_broadcast_physical
                + self.bytes_shuffled_physical
                + self.bytes_gathered_physical)

    def add(self, kind: str, nbytes: int,
            physical: "int | None" = None) -> None:
        setattr(self, f"bytes_{kind}",
                getattr(self, f"bytes_{kind}") + int(nbytes))
        physical = nbytes if physical is None else physical
        setattr(self, f"bytes_{kind}_physical",
                getattr(self, f"bytes_{kind}_physical") + int(physical))

    def reset(self) -> None:
        self.bytes_broadcast = self.bytes_shuffled = 0
        self.bytes_gathered = 0
        self.bytes_broadcast_physical = self.bytes_shuffled_physical = 0
        self.bytes_gathered_physical = 0

    def __str__(self) -> str:
        return (
            f"broadcast={self.bytes_broadcast} "
            f"shuffled={self.bytes_shuffled} "
            f"gathered={self.bytes_gathered} "
            f"physical={self.bytes_total_physical}"
        )


@dataclass
class ShardTraffic:
    """Per-query and cumulative interconnect counters
    (``Connection.interconnect``)."""

    query: InterconnectTraffic = field(default_factory=InterconnectTraffic)
    total: InterconnectTraffic = field(default_factory=InterconnectTraffic)

    def __str__(self) -> str:
        return f"query: {self.query}  total: {self.total}"


_SCALAR_AGGS = frozenset({"sum", "min", "max", "count", "avg"})
_GROUPED_AGGS = frozenset(
    {"subsum", "submin", "submax", "subcount", "subavg"}
)
#: fold op per aggregate partial (count partials fold by summing)
_FOLD_OF = {"sum": "sum", "count": "sum", "min": "min", "max": "max",
            "subsum": "sum", "subcount": "sum", "submin": "min",
            "submax": "max"}


class ShardedValue:
    """One interpreter value, sharded: a part per shard + provenance."""

    __slots__ = ("parts", "partitioned", "merge", "group", "pair",
                 "avg_dtype", "global_oids", "base_rows", "_gathered",
                 "origin", "remote_oids", "repl_space")

    def __init__(self, parts, partitioned, merge=None, group=None,
                 pair=None, avg_dtype=None, global_oids=False):
        self.parts = parts
        self.partitioned = partitioned
        #: fold tag ("sum"/"min"/"max"/"avg") for aggregate partials
        self.merge = merge
        #: the _Grouping aligning ngroups-wide partials, if grouped
        self.group = group
        #: (sums, counts) ShardedValues for exact avg merges
        self.pair = pair
        self.avg_dtype = avg_dtype
        #: positions referring to a *gathered* (global) row space —
        #: projections through them must gather their source column too
        self.global_oids = global_oids
        #: for position-valued columns: per-shard row counts of the
        #: space the positions index; gathering translates shard-local
        #: positions into the gathered layout by these offsets
        self.base_rows: "tuple[int, ...] | None" = None
        self._gathered = None      # cached broadcast after an eager merge
        #: (table, column) whose base values these are, tracked only
        #: while every shard's part is still a subset of that shard's
        #: *own* rows of the base table (bind, and projections through
        #: shard-local positions, preserve it; gathers, shuffles and
        #: computed values clear it).  The join planner's key-alignment
        #: checks hang off this.
        self.origin: "tuple[str, str] | None" = None
        #: positions valued in the shard-order-concatenated layout of a
        #: row space that *stays partitioned* (a shuffled join side):
        #: projections through them fetch only the referenced rows from
        #: their owner shards instead of gathering the whole column
        self.remote_oids = False
        #: positions into a row space that is identical on every shard
        #: (a replicated table, a broadcast value): valid anywhere
        #: without translation — gathers and remote fetches must not
        #: apply per-shard offsets to them
        self.repl_space = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "part" if self.partitioned else "repl"
        extra = f" merge={self.merge}" if self.merge else ""
        return f"<SV {kind}x{len(self.parts)}{extra}>"


class _Grouping:
    """Cross-shard alignment of one grouping's dense local group ids.

    Built when ``group.group`` / ``group.subgroup`` runs over
    partitioned rows.  Every shard assigns its own dense gids in
    ascending key order (the engine-wide convention); :meth:`merged`
    computes, lazily, the sorted global key table and each shard's
    ``local gid -> global group index`` map, which is what lets grouped
    partials fold by *key* even though the id spaces differ per shard.
    """

    def __init__(self, backend: "ShardedBackend", key_bats,
                 gids_bats, ngroups, outer: "_Grouping | None" = None,
                 outer_gids=None):
        self.backend = backend
        self.key_bats = key_bats          # per-shard grouped column
        self.gids_bats = gids_bats        # per-shard dense id rows
        self.ngroups = ngroups            # per-shard group counts
        self.outer = outer                # subgroup: the outer grouping
        self.outer_gids = outer_gids      # per-shard outer id rows
        self._merged = None
        self._key_cache: dict[int, np.ndarray] = {}

    def keys_matrix(self, shard: int) -> np.ndarray:
        """(ngroups_s, n_key_columns) matrix of shard-local group keys,
        row ``g`` holding local group ``g``'s key tuple (ascending)."""
        cached = self._key_cache.get(shard)
        if cached is not None:
            return cached
        values = self.backend._host_values(shard, self.key_bats[shard])
        if self.outer is None:
            keys = np.unique(values).reshape(-1, 1)
        else:
            gids = self.backend._host_values(
                shard, self.gids_bats[shard]
            ).astype(np.int64, copy=False)
            outer_gids = self.backend._host_values(
                shard, self.outer_gids[shard]
            ).astype(np.int64, copy=False)
            # first row of each dense id; ids ascend in key order, so
            # np.unique's sorted ids line up with row positions 0..n-1
            _ids, first = np.unique(gids, return_index=True)
            outer_keys = self.outer.keys_matrix(shard)
            keys = np.column_stack(
                [outer_keys[outer_gids[first]], values[first]]
            )
        if keys.shape[0] != int(self.ngroups[shard]):
            raise AssertionError(
                "shard group keys out of step with dense ids"
            )
        self._key_cache[shard] = keys
        return keys

    def merged(self):
        """``(n_global, maps)``: global group count and, per shard, the
        ``local gid -> global index`` translation (global groups sorted
        ascending by key tuple — the single-node output convention)."""
        if self._merged is None:
            mats = [
                self.keys_matrix(s)
                for s in range(len(self.key_bats))
            ]
            common = np.result_type(*[m.dtype for m in mats])
            stacked = np.vstack([m.astype(common, copy=False)
                                 for m in mats])
            uniq, inverse = np.unique(
                stacked, axis=0, return_inverse=True
            )
            inverse = np.asarray(inverse).reshape(-1)
            maps, offset = [], 0
            for m in mats:
                maps.append(inverse[offset:offset + m.shape[0]])
                offset += m.shape[0]
            self._merged = (uniq.shape[0], maps)
            self.backend._charge_merge(int(stacked.nbytes))
        return self._merged


def _fold_identity(op: str, dtype: np.dtype):
    if op == "sum":
        return 0
    info = (np.finfo(dtype) if np.issubdtype(dtype, np.floating)
            else np.iinfo(dtype))
    return info.max if op == "min" else info.min


@dataclass
class _ShardQueryCtx:
    """Per-query bookkeeping, one per in-flight session query.

    Mirrors the heterogeneous engine's ``_QueryState``: everything the
    backend used to keep as per-query instance attributes now lives
    here, so the serve layer can interleave N queries on one sharded
    backend without them corrupting each other's traces, merge clocks
    or scratch lists."""

    #: serial driver-side merge/gather seconds of this query
    merge_s: float = 0.0
    #: join-site decisions, harvested by the plan cache
    trace: list = field(default_factory=list)
    #: installed decision trace being consumed positionally
    replay: "list | None" = None
    replay_pos: int = 0
    #: driver-created helper values (shuffled key columns) recycled
    #: with the query
    scratch: list = field(default_factory=list)


class _ShardTimelines:
    """Simulated per-shard clocks + the driver's merge clock.

    The sharded analogue of the heterogeneous pool's device queues,
    with exactly the surface the serve layer's session scheduler needs
    (``makespan``/``open_session``/``close_session``).  Each session
    turn charges its measured per-shard work and driver merge time
    here: work on one shard serialises on that shard's clock, but one
    query's driver merge overlaps with another query's shard scans —
    which is what makes concurrent ``submit()`` batches finish in less
    simulated makespan than the serial sum (fig. 9, across shards)."""

    def __init__(self, n_shards: int):
        #: one clock per shard plus the driver's merge clock (last)
        self.clocks = [0.0] * (n_shards + 1)
        #: per-session frontier: nothing of the session may start earlier
        self.frontiers: dict[str, float] = {}

    def makespan(self) -> float:
        return max(self.clocks)

    def open_session(self, session: str) -> float:
        epoch = self.makespan()
        self.frontiers[session] = epoch
        return epoch

    def charge(self, session: str, shard_deltas, merge_delta: float) -> None:
        frontier = self.frontiers.get(session, 0.0)
        reached = frontier
        for shard, delta in enumerate(shard_deltas):
            if delta <= 0.0:
                continue
            self.clocks[shard] = max(self.clocks[shard], frontier) + delta
            reached = max(reached, self.clocks[shard])
        if merge_delta > 0.0:
            self.clocks[-1] = max(self.clocks[-1], reached) + merge_delta
            reached = self.clocks[-1]
        self.frontiers[session] = reached

    def close_session(self, session: str) -> float:
        return self.frontiers.pop(session, self.makespan())


class ShardedBackend(Backend):
    """MAL backend fanning every instruction across N shard backends."""

    #: the join planner's strategy decisions are recorded per query and
    #: replayed by the plan cache on repeat queries (same protocol as
    #: the heterogeneous engine's placement traces)
    replays_placements = True
    #: the serve layer may interleave in-flight queries: shards are
    #: independent nodes with their own clocks, so one query's driver
    #: merges overlap with another query's shard scans
    pipelines_sessions = True

    def __init__(
        self,
        catalog: Catalog,
        child_config: EngineConfig,
        n_shards: int,
        data_scale: float = 1.0,
        mode: str = "range",
        min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS,
        label: str = "SHARD",
        shard_keys: "dict[str, str] | None" = None,
        use_declared_keys: bool = True,
        infer_keys: bool = False,
        join_strategy: str = "auto",
        replicas: int = 1,
    ):
        self.label = label
        self.child_config = child_config
        self.data_scale = float(data_scale)
        #: requested replica count (a resize re-clamps to min(R, N))
        self._replicas_arg = int(replicas)
        self.replicas = min(int(replicas), n_shards)
        self.partitioner = ShardPartitioner(
            catalog, n_shards, mode=mode,
            min_partition_rows=min_partition_rows,
            shard_keys=shard_keys,
            use_declared_keys=use_declared_keys,
            replicas=self.replicas,
        )
        #: ``copies[slot][k]`` — one child backend per copy catalog;
        #: chained declustering maps copy ``k`` of slot ``s`` onto
        #: physical node ``(s + k) % N``
        self.copies: list[list[Backend]] = [
            [child_config.make(copy_catalog, data_scale)
             for copy_catalog in row]
            for row in self.partitioner.copies
        ]
        #: the primary-copy roster, one child per shard slot; the
        #: fault harness wraps entries here (``wrap_shard_child``)
        self.all_children: list[Backend] = [
            row[0] for row in self.copies
        ]
        #: slot -> live copy routing (failover + read balancing)
        self.routing = ReplicaRouting(n_shards, self.replicas)
        #: ``cluster.*`` metrics (promotions, migrations, retries, ...)
        self.cluster = ClusterStats(
            nodes=n_shards, replicas=self.replicas
        )
        #: round-robin step counter for read load balancing
        self._balance = 0
        #: observer fired after any applied topology change (the
        #: connection hooks eager plan-cache invalidation here)
        self.on_topology_change = None
        #: staged partitioner of an in-progress online resize
        self._staged: "ShardPartitioner | None" = None
        #: the *active* children every fan-out/merge loop runs over —
        #: shrinks when a shard's circuit breaker trips (route-around)
        self.children: list[Backend] = list(self.all_children)
        #: physical shard ids currently routed around (open breakers;
        #: only used without replicas — promotions replace exclusion)
        self._excluded: set[int] = set()
        self._topology_stale = False
        #: interconnect byte counters (Connection.interconnect)
        self.traffic = ShardTraffic()
        #: ``keys=infer``: adopt observed join columns as shard keys
        self.infer_keys = infer_keys
        #: ``join=broadcast`` forces the PR-3 baseline for benchmarks
        self.join_strategy = join_strategy
        self._observed_joins: list[tuple] = []
        self._inferred: set[tuple] = set()
        self._armed_replay: "list[tuple[str, str]] | None" = None
        #: per-query bookkeeping: the plain-execution context plus one
        #: context per in-flight serve-layer session
        self._default_ctx = _ShardQueryCtx()
        self._session_ctxs: dict[str, _ShardQueryCtx] = {}
        self.current_session: "str | None" = None
        #: (per-child elapsed, merge_s) snapshot at session activation,
        #: consumed when the session deactivates to charge the turn
        self._turn_baseline: "tuple[list[float], float] | None" = None
        #: per-shard + driver clocks for pipelined sessions (the serve
        #: scheduler reads ``pool.makespan()``)
        self.pool = _ShardTimelines(n_shards)
        super().__init__(catalog)

    @property
    def n_shards(self) -> int:
        return len(self.children)

    # -- per-query context (plain or session-scoped) ---------------------------

    def _ctx(self) -> _ShardQueryCtx:
        session = self.current_session
        if session is not None:
            ctx = self._session_ctxs.get(session)
            if ctx is not None:
                return ctx
        return self._default_ctx

    # the pre-session code (and its tests) addresses the per-query state
    # as flat attributes; keep that surface as properties over the
    # active context so both execution paths share one implementation
    @property
    def _merge_s(self) -> float:
        return self._ctx().merge_s

    @_merge_s.setter
    def _merge_s(self, value: float) -> None:
        self._ctx().merge_s = value

    @property
    def _trace(self):
        return self._ctx().trace

    @_trace.setter
    def _trace(self, value) -> None:
        self._ctx().trace = value

    @property
    def _replay(self):
        return self._ctx().replay

    @_replay.setter
    def _replay(self, value) -> None:
        self._ctx().replay = value

    @property
    def _replay_pos(self) -> int:
        return self._ctx().replay_pos

    @_replay_pos.setter
    def _replay_pos(self, value: int) -> None:
        self._ctx().replay_pos = value

    @property
    def _scratch(self):
        return self._ctx().scratch

    @_scratch.setter
    def _scratch(self, value) -> None:
        self._ctx().scratch = value

    # -- protocol: registration / resolution ---------------------------------

    def _register_ops(self) -> None:
        """Own operators (the children cover everything else): the hash
        re-partition primitive backing the shuffle join."""
        self.register("shard.shuffle", self._shuffle_op)

    def resolve(self, op: str):
        own = self._registry.get(op)
        if own is not None:
            return own
        # existence check up front so unsupported ops fail like any
        # other backend's resolve (children share one operator set)
        self.children[0].resolve(op)

        def fan(*args):
            return self._run_op(op, args)

        return fan

    def supports(self, op: str) -> bool:
        return op in self._registry or self.children[0].supports(op)

    def supported_ops(self) -> list[str]:
        return sorted(set(self.children[0].supported_ops())
                      | set(self._registry))

    # -- protocol: timing ------------------------------------------------------

    def begin(self) -> None:
        for child in self.children:
            child.begin()
        # reset in place: references to con.interconnect.query held
        # across queries keep reading the live per-query counters
        self.traffic.query.reset()
        self._default_ctx = _ShardQueryCtx()
        self._default_ctx.replay = self._armed_replay
        self._armed_replay = None
        if self.routing.degraded:
            self.cluster.degraded_reads += 1

    def query_boundary(self) -> None:
        """Between-queries hook: breaker ticks (base class) plus
        per-query counter hygiene.  Pipelined sessions never call
        :meth:`begin` (each flight gets its own timeline instead), and a
        query dying mid-plan skips its own cleanup — either way the next
        query must start from zeroed per-query traffic.  Reset is in
        place so live references to ``con.interconnect.query`` keep
        reading the current counters.  This is also where the elastic
        machinery runs: staged resizes migrate a few key ranges, and a
        healthy replicated cluster rotates its read routing."""
        super().query_boundary()
        self.traffic.query.reset()
        self._advance_resize()
        if not self._session_ctxs:
            self._maybe_rotate_reads()

    # -- protocol: per-session timelines (pipelines_sessions) ------------------

    def open_session(self, session: str, replay=None) -> float:
        """Register one in-flight query; returns its submit epoch."""
        ctx = _ShardQueryCtx()
        ctx.replay = replay or None
        self._session_ctxs[session] = ctx
        if self.routing.degraded:
            self.cluster.degraded_reads += 1
        return self.pool.open_session(session)

    def activate_session(self, session: "str | None") -> None:
        """Attribute subsequent work (child clock advances, driver
        merges) to ``session`` — ``None`` restores plain execution and
        charges the just-finished turn to the session's timeline."""
        previous = self.current_session
        if previous is not None and self._turn_baseline is not None:
            self._charge_turn(previous)
        self.current_session = session
        if session is not None:
            if session not in self._session_ctxs:
                self._session_ctxs[session] = _ShardQueryCtx()
            self._turn_baseline = (
                self._hosts(),
                [child.elapsed() for child in self.children],
                self._session_ctxs[session].merge_s,
            )
        else:
            self._turn_baseline = None

    def _hosts(self) -> tuple:
        """Physical node serving each live child, in slot order.

        Without replicas this is the partitioner's active set; with
        replicas it follows the routing's chained-declustering copy
        choice — after a failover two slots may share one node."""
        if self.replicas > 1:
            return tuple(
                self.routing.host(slot)
                for slot in range(len(self.children))
            )
        return tuple(self.partitioner.active)

    def _charge_turn(self, session: str) -> None:
        """Charge one scheduler turn's measured work to the timelines.

        Children are shared across sessions, but the scheduler is
        single-threaded: everything their clocks advanced since this
        session was activated is this session's work.  The timeline
        pool is *physical*-sized (a routed-around shard keeps its
        clock), so per-child deltas scatter to their host nodes —
        additively, because two promoted slots may share one host."""
        hosts, baseline, merge_base = self._turn_baseline
        self._turn_baseline = None
        deltas = [0.0] * (len(self.pool.clocks) - 1)
        for host, child, before in zip(hosts, self.children, baseline):
            deltas[host] += max(0.0, child.elapsed() - before)
        ctx = self._session_ctxs.get(session)
        merge_delta = max(
            0.0, (ctx.merge_s if ctx is not None else 0.0) - merge_base
        )
        if merge_delta > 0.0 or any(d > 0.0 for d in deltas):
            self.pool.charge(session, deltas, merge_delta)

    def close_session(self, session: str) -> float:
        """Drop a finished query's context; returns its completion
        epoch.  The context's scratch moves to the plain context so the
        subsequent ``end_of_query`` (which runs session-less) still
        recycles the query's driver-created helpers."""
        ctx = self._session_ctxs.pop(session, None)
        if ctx is not None:
            self._default_ctx.scratch.extend(ctx.scratch)
        if self.current_session == session:
            self.current_session = None
            self._turn_baseline = None
        return self.pool.close_session(session)

    # -- morsel-driven execution -----------------------------------------------

    def morsel_runner(self, spec, inputs):
        """Morsel regions run whole-column on the sharded engine: its
        values are distributed :class:`ShardedValue` fans whose rows
        already live morsel-like on N nodes, and the fan/merge machinery
        (traces, traffic, metadata propagation) must see exactly the
        member instructions it would otherwise.  The region still steps
        one member per scheduler turn, so in-flight queries interleave
        at sub-query granularity."""
        from ..morsel.run import MorselRun

        return MorselRun(self, spec, inputs, whole=True)

    def release_intermediates(self, values) -> None:
        """No-op: sharded values are consumed lazily after their last
        static use (grouped partials re-read key columns at merge time,
        ``avg`` pairs fold at collection), so early release would free
        parts a later merge still needs.  ``end_of_query`` remains the
        recycle point."""

    # -- protocol: strategy-trace replay (replays_placements) ------------------

    def install_replay(self, placements) -> None:
        """Arm the next query with a memoised join-strategy trace."""
        self._armed_replay = placements or None

    def take_trace(self) -> tuple[list, int]:
        """Harvest the last query's join decisions; ``(trace,
        replayed)`` where ``replayed`` counts decisions served from the
        installed trace instead of planned fresh."""
        return list(self._trace), self._replay_pos

    def elapsed(self) -> float:
        """Slowest shard + driver-side gather/merge time.

        Shards are independent nodes: their simulated clocks advance
        concurrently, so the query's makespan is the maximum, plus the
        serial driver work (merges, gathers, broadcasts)."""
        return max(child.elapsed() for child in self.children) \
            + self._merge_s

    def elapsed_now(self) -> float:
        return max(child.elapsed_now() for child in self.children) \
            + self._merge_s

    def query_overhead_s(self) -> float:
        return max(child.query_overhead_s() for child in self.children)

    def _charge_merge(self, nbytes: int, kind: str = "gathered",
                      physical_nbytes: "int | None" = None) -> None:
        """Interconnect + driver cost of moving ``nbytes`` (actual array
        bytes; scaled to nominal) through the merge point.  ``kind``
        classifies the transfer pattern for the traffic counters:
        ``"broadcast"`` (gather + re-broadcast), ``"shuffled"``
        (shard-to-shard moves and targeted fetches) or ``"gathered"``
        (driver-only).  ``physical_nbytes`` — when the moved columns are
        stored encoded — is what the transfer would put on the wire in
        compressed form; it feeds the ``*_physical`` traffic counters
        only, while the simulated wire time stays charged at nominal
        width so the timing baselines are unaffected by storage mode."""
        nominal = int(nbytes * self.data_scale)
        physical = (nominal if physical_nbytes is None
                    else int(physical_nbytes * self.data_scale))
        tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(f"interconnect.{kind}", cat="interconnect",
                                tid="interconnect", kind=kind,
                                bytes=nominal, bytes_physical=physical)
        self._merge_s += SHARD_LATENCY_S + nominal / (SHARD_NET_GBS * GB)
        self.traffic.query.add(kind, nominal, physical)
        self.traffic.total.add(kind, nominal, physical)
        if tracer is not None:
            tracer.end(span)
            tracer.event(f"interconnect.{kind}", cat="interconnect",
                         tid="interconnect", kind=kind, bytes=nominal,
                         bytes_physical=physical)

    def interconnect_traffic(self) -> ShardTraffic:
        """Per-query + cumulative interconnect byte counters."""
        return self.traffic

    def memory_managers(self):
        """Every child node's memory managers (empty for MonetDB
        children, one per pooled device for Ocelot/HET children)."""
        return tuple(
            manager
            for row in self.copies
            for child in row
            for manager in child.memory_managers()
        )

    def compression_stats(self):
        """Driver-catalog counters folded with every shard's: each
        shard catalog re-encodes its own partition at ``create_table``
        time, so the storage picture spans all of them."""
        combined = self.catalog.compression.snapshot()
        for row in self.copies:
            for child in row:
                combined.add(child.compression_stats())
        return combined

    # -- protocol: lifecycle ------------------------------------------------------

    def schema_changed(self) -> None:
        """Parent DDL: re-partition and bump every shard's catalog.

        The partitioner re-slices any table whose layout signature
        changed (a declared key, moved domain bounds), so join planning
        never sees shard slices laid out by a scheme the catalog no
        longer declares.  A staged resize restarts from the new schema
        (its pre-DDL layout plan is void)."""
        self.partitioner.sync()
        if self._staged is not None:
            target = self._staged.n_shards
            self._staged = None
            self.request_resize(target)

    # -- circuit breakers: route reads around a sick shard ---------------------

    def note_node_failure(self, error) -> str:
        """Charge the failed shard's breaker; route around it on trip.

        A :class:`~repro.serve.faults.NodeFault` carrying a shard id
        charges that shard's breaker.  What a trip (or an already-open
        breaker) means depends on the topology:

        * **with replicas** the dead node's key ranges are already
          resident on other nodes — each affected slot *promotes* its
          next healthy copy.  No data moves and no table re-partitions;
          the child roster swap waits for the next query boundary
          (in-flight values hold parts fanned over the old roster).
          Only when some slot has no healthy copy left does the query
          fail.
        * **without replicas** the shard is *excluded* and every table
          re-partitions over the healthy remainder at the next query
          boundary.  The last healthy shard is never excluded: with
          nowhere left to route, the query fails.

        Faults without a node fall back to the backend-wide breaker."""
        node = getattr(error, "node", None)
        if node is None or not 0 <= node < len(self.pool.clocks) - 1:
            return super().note_node_failure(error)
        breaker = self.breakers().breaker(("shard", node))
        tripped = breaker.record_failure()
        if tripped or not breaker.allow():
            if self.replicas > 1:
                plan = self.routing.plan_failover(
                    node, self._node_healthy
                )
                if plan is None:
                    return "fail"
                if plan:
                    promoted, _ = self.routing.apply(plan)
                    self.cluster.promotions += promoted
                    self._topology_stale = True
                return "rerouted"
            healthy = len(self.all_children) - len(self._excluded)
            if node not in self._excluded and healthy <= 1:
                return "fail"
            if node not in self._excluded:
                self._excluded.add(node)
                self._topology_stale = True
            return "rerouted"
        return "retry"

    def _node_healthy(self, node: int) -> bool:
        """Whether a physical node's breaker admits work."""
        return self.breakers().breaker(("shard", node)).allow()

    def _recover_nodes(self) -> None:
        """Between queries: route back to nodes whose breakers cooled
        down (half-open probes re-trip with doubled backoff on the next
        failure), then apply any pending topology change."""
        board = getattr(self, "_breaker_board", None)
        if board is not None:
            if self.replicas > 1:
                plan = self.routing.rejoin_plan(self._node_healthy)
                if plan:
                    _, recovered = self.routing.apply(plan)
                    self.cluster.recoveries += recovered
                    self._topology_stale = True
            else:
                for node in sorted(self._excluded):
                    if board.breaker(("shard", node)).allow():
                        self._excluded.discard(node)
                        self._topology_stale = True
        if self._topology_stale:
            self._apply_topology()

    def _rebuild_children(self) -> None:
        """Swap the live child roster to match routing + active set."""
        if self.replicas > 1:
            self.children = [
                self.copies[slot][self.routing.copy_of[slot]]
                for slot in range(self.partitioner.n_shards)
            ]
        else:
            self.children = [
                self.all_children[phys]
                for phys in self.partitioner.active
            ]

    def _apply_topology(self) -> None:
        """Apply a pending routing/roster change at a query boundary.

        With replicas this is *purely* a routing change: the promoted
        copies already hold their slots' slices, so the partitioner
        (and every layout signature) is untouched — the asserted
        zero-re-partition failover.  Without replicas the healthy
        remainder re-partitions every table.  Both paths bump the
        catalog version (memoised join traces assumed the old roster)
        and fire the topology observer so trace-carrying plan-cache
        entries are invalidated eagerly, not lazily."""
        self._topology_stale = False
        if self.replicas <= 1:
            healthy = [
                phys for phys in range(len(self.all_children))
                if phys not in self._excluded
            ]
            self.partitioner.set_active(healthy)
        self._rebuild_children()
        self.catalog.bump_version()
        self.cluster.topology_changes += 1
        self._notify_topology_change()

    def _notify_topology_change(self) -> None:
        if self.on_topology_change is not None:
            self.on_topology_change(self)

    # -- read load balancing across healthy replicas ----------------------------

    def _maybe_rotate_reads(self) -> None:
        """Round-robin reads over each slot's copies, one rotation per
        query boundary — only on a fully healthy, idle cluster (no
        promotions, no staged resize, no open breakers, no in-flight
        sessions), so balancing never interferes with failover or
        migration.  Copies are identical, so no version bump: memoised
        join traces stay valid across rotations."""
        if self.replicas <= 1 or self._staged is not None:
            return
        if self.routing.degraded or self._topology_stale:
            return
        board = getattr(self, "_breaker_board", None)
        if board is not None and board.open_nodes():
            return
        self._balance += 1
        if self.routing.rotate(self._balance):
            self._rebuild_children()
            self.cluster.reads_balanced += 1

    # -- online re-sharding ------------------------------------------------------

    def cluster_stats(self) -> ClusterStats:
        return self.cluster

    def cluster_nodes(self) -> int:
        """Current node count (a staged resize reports its target)."""
        if self._staged is not None:
            return self._staged.n_shards
        return self.partitioner.n_shards

    def topology_pending(self) -> bool:
        return self._staged is not None or self._topology_stale

    def request_resize(self, n_new: int) -> None:
        """Stage an online resize to ``n_new`` shards.

        Builds the target layout *empty* and migrates key ranges
        incrementally at query boundaries (:meth:`_advance_resize`):
        in-flight queries keep draining against the old layout, and the
        swap commits only once every table is installed and no session
        is in flight.  New admissions after the commit route to the new
        topology (the catalog-version bump recompiles their plans)."""
        if n_new < 1:
            raise ValueError("need at least one shard")
        current = self.partitioner
        staged = ShardPartitioner(
            self.catalog, n_new, mode=current.mode,
            min_partition_rows=current.min_partition_rows_raw,
            use_declared_keys=current.use_declared_keys,
            replicas=min(self._replicas_arg, n_new),
            eager=False,
        )
        staged._local_keys = dict(current._local_keys)
        staged.begin_migration()
        self._staged = staged

    def _advance_resize(self) -> None:
        """One query boundary's worth of migration work."""
        staged = self._staged
        if staged is None:
            return
        if not staged.migration_done:
            moved = staged.migrate_step(MIGRATE_TABLES_PER_BOUNDARY)
            self.cluster.ranges_migrated += moved
        if staged.migration_done and not self._session_ctxs:
            self._commit_resize()

    def _commit_resize(self) -> None:
        """Swap the fully-migrated layout in; a fresh roster, routing
        and timeline pool (clocks seeded at the old makespan, so the
        simulated time base stays monotonic)."""
        staged = self._staged
        self._staged = None
        epoch = self.pool.makespan()
        self.partitioner = staged
        self.replicas = staged.replicas
        self.copies = [
            [self.child_config.make(copy_catalog, self.data_scale)
             for copy_catalog in row]
            for row in staged.copies
        ]
        self.all_children = [row[0] for row in self.copies]
        self.routing = ReplicaRouting(staged.n_shards, staged.replicas)
        self._excluded = set()
        self._topology_stale = False
        self._rebuild_children()
        self.pool = _ShardTimelines(staged.n_shards)
        self.pool.clocks = [epoch] * (staged.n_shards + 1)
        self.cluster.nodes = staged.n_shards
        self.cluster.replicas = staged.replicas
        self.cluster.topology_changes += 1
        self.catalog.bump_version()
        self._notify_topology_change()

    def shutdown(self) -> None:
        self._session_ctxs.clear()
        self.current_session = None
        for row in self.copies:
            for child in row:
                child.shutdown()

    def end_of_query(self, intermediates: list) -> None:
        per_child: list[list] = [[] for _ in self.children]
        for value in list(intermediates) + self._scratch:
            for sv in self._component_values(value):
                for shard, part in enumerate(sv.parts):
                    per_child[shard].append(part)
        self._scratch = []
        for child, leftovers in zip(self.children, per_child):
            child.end_of_query(leftovers)
        if self.infer_keys:
            self._adopt_inferred_keys()
        self._observed_joins = []

    def _adopt_inferred_keys(self) -> None:
        """``keys=infer``: adopt observed join columns as shard keys.

        A join the planner could not co-locate between two base columns
        is the signal: both tables adopt those columns as keys in one
        shared domain, the partitioner re-slices them, and the parent
        schema version bumps so cached plans (whose memoised strategies
        assumed the old layout) recompile.  Each table is adopted at
        most once — the first observed join wins — so repeated queries
        cannot thrash the layout."""
        adopted = False
        for (lt, lc), (rt, rc) in self._observed_joins:
            if lt == rt:
                continue                      # self-joins teach nothing
            if self.partitioner.key_of(lt) or self.partitioner.key_of(rt):
                continue                      # respect existing keys
            if lt in self._inferred or rt in self._inferred:
                continue
            if not (self.partitioner.is_partitioned(lt)
                    and self.partitioner.is_partitioned(rt)):
                continue
            domain = "~".join(sorted((f"{lt}.{lc}", f"{rt}.{rc}")))
            self.partitioner.declare_key(lt, lc, domain=domain,
                                         sync=False)
            self.partitioner.declare_key(rt, rc, domain=domain,
                                         sync=False)
            self._inferred.update((lt, rt))
            adopted = True
        if adopted:
            self.partitioner.sync()
            self.catalog.bump_version()

    def _component_values(self, value):
        """A value's ShardedValues incl. avg pairs and cached gathers."""
        if not isinstance(value, ShardedValue):
            return
        yield value
        if value.pair is not None:
            for sub in value.pair:
                yield from self._component_values(sub)
        if isinstance(value._gathered, ShardedValue):
            yield from self._component_values(value._gathered)

    # -- shard-local helpers -------------------------------------------------------

    def _localize(self, shard: int, args):
        return [
            a.parts[shard] if isinstance(a, ShardedValue) else a
            for a in args
        ]

    def _host_values(self, shard: int, part) -> np.ndarray:
        """Host tail of one shard's BAT, syncing through the shard's own
        backend (charging that shard's clock) when device-resident.

        Synced device results are backed by ``max(count, 1)``-element
        buffers, so a count-0 BAT (a shard whose filter matched nothing)
        carries one element of padding — truncate to the logical count
        or gathers and folds would fabricate a phantom row."""
        if not isinstance(part, BAT):
            return part
        if not part.has_host_values:
            self.children[shard].resolve("ocelot.sync")(part)
        values = part.values
        if values.shape[0] != part.count:
            return values[:part.count]
        return values

    def _dispatch(self, shard: int, op: str, args):
        """Run one operator on one shard, absorbing transient blips
        with an in-place retry (simulated backoff, doubling) before
        anything reaches the breaker path.  A fault that outlives the
        retry budget is *hard*: it propagates to ``note_node_failure``
        and charges the shard's breaker like any other failure."""
        from ..serve.faults import RetryableFault

        backoff = RETRY_BACKOFF_S
        for attempt in range(FAN_RETRIES + 1):
            try:
                return self.children[shard].resolve(op)(
                    *self._localize(shard, args)
                )
            except RetryableFault:
                if attempt >= FAN_RETRIES:
                    raise
                self.cluster.retries += 1
                self._merge_s += backoff
                backoff *= 2.0

    def _fan(self, op: str, args, partitioned=None) -> object:
        tracer = self.tracer
        if tracer is None:
            outs = [
                self._dispatch(shard, op, args)
                for shard in range(self.n_shards)
            ]
        else:
            # one span per shard lane; the child backend sees the tracer
            # too, so a composite child (SHARD:NxHET) nests its dispatch
            # spans under its shard's lane
            outs = []
            for shard in range(self.n_shards):
                child = self.children[shard]
                span = tracer.begin(op, cat="shard",
                                    tid=f"shard{shard}", shard=shard,
                                    device=f"shard{shard}")
                child.tracer = tracer
                try:
                    outs.append(self._dispatch(shard, op, args))
                finally:
                    child.tracer = None
                    tracer.end(span)
        if partitioned is None:
            partitioned = any(
                isinstance(a, ShardedValue) and a.partitioned
                for a in args
            )
        first = outs[0]
        if isinstance(first, tuple):
            return tuple(
                ShardedValue([o[i] for o in outs], partitioned)
                for i in range(len(first))
            )
        return ShardedValue(outs, partitioned)

    # -- the dispatch ----------------------------------------------------------------

    def _run_op(self, op: str, args):
        # aggregate partials consumed by a downstream operator merge
        # here — the cluster plan's scatter/gather boundary
        args = [self._demote(a) for a in args]
        fn = op.split(".", 1)[1] if "." in op else op
        if fn in _SCALAR_AGGS:
            return self._scalar_agg(op, fn, args)
        if fn in _GROUPED_AGGS:
            return self._grouped_agg(op, fn, args)
        handler = getattr(self, f"_op_{fn}", None)
        if handler is not None:
            return handler(op, args)
        return self._fan(op, args)

    def _demote(self, value):
        """Merge an aggregate-partial argument and broadcast the result."""
        if not isinstance(value, ShardedValue) or value.merge is None:
            return value
        if value._gathered is None:
            if value.group is not None:
                merged = self._fold_grouped(value)
                self._charge_merge(int(merged.nbytes) * self.n_shards,
                                   kind="broadcast")
                value._gathered = ShardedValue(
                    [make_bat(merged, tag="shard_merge")
                     for _ in range(self.n_shards)],
                    partitioned=False,
                )
            else:
                value._gathered = self._fold_scalar(value)
                self._charge_merge(8 * self.n_shards, kind="broadcast")
        return value._gathered

    # -- aggregates -----------------------------------------------------------------

    def _scalar_agg(self, op: str, fn: str, args):
        partitioned = any(
            isinstance(a, ShardedValue) and a.partitioned for a in args
        )
        if not partitioned:
            return self._fan(op, args, partitioned=False)
        module = op.split(".", 1)[0]
        # shards whose filtered input is empty contribute the fold
        # identity, not a partial — single-node engines (rightly) refuse
        # e.g. min() over an empty column, and a shard must not turn a
        # non-empty global aggregate into that refusal.  When *every*
        # shard is empty, run one child anyway so the global query keeps
        # exact single-node empty-input semantics (0 for sum, an error
        # for min/max).
        b = args[0]
        active = [
            shard for shard in range(self.n_shards)
            if not (isinstance(b, ShardedValue)
                    and isinstance(b.parts[shard], BAT)
                    and b.parts[shard].count == 0)
        ] or [0]

        def fan_active(op_name: str) -> ShardedValue:
            parts = [None] * self.n_shards
            for shard in active:
                parts[shard] = self._dispatch(shard, op_name, args)
            return ShardedValue(parts, True)

        if fn == "avg":
            sums = fan_active(f"{module}.sum")
            counts = fan_active(f"{module}.count")
            sums.merge, counts.merge = "sum", "sum"
            return ShardedValue([None] * self.n_shards, True,
                                merge="avg", pair=(sums, counts))
        out = fan_active(op)
        out.merge = _FOLD_OF[fn]
        return out

    def _grouped_agg(self, op: str, fn: str, args):
        gids = args[0] if fn == "subcount" else args[1]
        partitioned = any(
            isinstance(a, ShardedValue) and a.partitioned for a in args
        )
        if not partitioned:
            return self._fan(op, args, partitioned=False)
        grouping = getattr(gids, "group", None) if isinstance(
            gids, ShardedValue) else None
        if grouping is None:
            raise UnsupportedOperator(
                f"{op} over partitioned rows without a sharded grouping "
                f"— plan shape not supported by the SHARD engine"
            )
        module = op.split(".", 1)[0]
        if fn == "subavg":
            vals = args[0]
            sums = self._grouped_agg(f"{module}.subsum", "subsum", args)
            counts = self._grouped_agg(
                f"{module}.subcount", "subcount", args[1:]
            )
            dtype = None
            if isinstance(vals, ShardedValue) \
                    and isinstance(vals.parts[0], BAT):
                from ..monetdb.calc import grouped_dtype

                dtype = grouped_dtype("avg", vals.parts[0].dtype)
            return ShardedValue(
                [None] * self.n_shards, True, merge="avg",
                group=grouping, pair=(sums, counts), avg_dtype=dtype,
            )
        out = self._fan(op, args, partitioned=True)
        out.merge = _FOLD_OF[fn]
        out.group = grouping
        return out

    def _fold_scalar(self, value: ShardedValue):
        if value.merge == "avg":
            total = self._fold_scalar(value.pair[0])
            count = self._fold_scalar(value.pair[1])
            return float(total) / max(float(count), 1.0)
        # empty shards were skipped at fan-out time (None = identity)
        parts = [p for p in value.parts if p is not None]
        if value.merge == "sum":
            total = parts[0]
            for part in parts[1:]:
                total = total + part
            return total
        if value.merge == "min":
            return min(parts)
        if value.merge == "max":
            return max(parts)
        if value.merge == "first" or not value.partitioned:
            return parts[0]
        raise UnsupportedOperator(
            "partitioned scalar without merge semantics reached a "
            "merge point (unsupported plan shape for SHARD)"
        )

    def _fold_grouped(self, value: ShardedValue) -> np.ndarray:
        """Key-aligned fold of an ngroups-wide partial across shards,
        in ascending global key order (the single-node convention)."""
        grouping = value.group
        n_global, maps = grouping.merged()
        if value.merge == "avg":
            sums = self._fold_grouped(value.pair[0]).astype(np.float64)
            counts = self._fold_grouped(value.pair[1]).astype(np.float64)
            avg = sums / np.maximum(counts, 1.0)
            return avg.astype(value.avg_dtype or np.float64)
        arrays = [
            self._host_values(shard, part)
            for shard, part in enumerate(value.parts)
        ]
        dtype = np.result_type(*[np.asarray(a).dtype for a in arrays])
        out = np.full(n_global, _fold_identity(value.merge, dtype),
                      dtype=dtype)
        for shard, vals in enumerate(arrays):
            idx = maps[shard]
            if value.merge == "sum":
                out[idx] = out[idx] + vals
            elif value.merge == "min":
                out[idx] = np.minimum(out[idx], vals)
            else:
                out[idx] = np.maximum(out[idx], vals)
        return out

    # -- gathers (global row-space operators) ------------------------------------

    def _gather_rows(self, value: ShardedValue) -> ShardedValue:
        """Concatenate a partitioned row-space value on the driver and
        broadcast it to every shard (sort / broadcast-join path).

        Every gathered column of one row space concatenates in shard
        order, so gathered layouts are mutually consistent; *position*
        columns additionally translate shard-local positions into that
        layout via their space's per-shard row counts (``base_rows``).
        """
        if value._gathered is None:
            arrays = [
                self._host_values(shard, part)
                for shard, part in enumerate(value.parts)
            ]
            positions = (
                value.base_rows is not None or value.remote_oids
                or value.global_oids or value.repl_space
                or any(isinstance(p, BAT) and p.role is Role.OIDS
                       for p in value.parts)
            )
            if positions:
                if value.global_oids or value.remote_oids \
                        or value.repl_space:
                    # already valued in a global (or shard-agnostic)
                    # layout — no per-shard offset translation to apply
                    pass
                elif value.base_rows is None:
                    raise UnsupportedOperator(
                        "cannot gather a sharded position column whose "
                        "row space is unknown (unsupported plan shape "
                        "for SHARD)"
                    )
                else:
                    offsets = np.concatenate(
                        ([0], np.cumsum(value.base_rows[:-1]))
                    ).astype(np.int64)
                    arrays = [
                        a.astype(np.int64) + offsets[s]
                        for s, a in enumerate(arrays)
                    ]
                merged = np.concatenate(arrays)
                bats = [
                    oid_bat(merged.astype(OID_DTYPE), tag="shard_gather")
                    for _ in range(self.n_shards)
                ]
                physical = int(merged.nbytes)
            else:
                merged = np.concatenate(arrays)
                bats = [
                    make_bat(merged, tag="shard_gather")
                    for _ in range(self.n_shards)
                ]
                # encoded parts would ship (and re-broadcast) their
                # codec payloads, not the decoded arrays
                physical = self._physical_nbytes(value.parts, arrays)
            self._charge_merge(int(merged.nbytes) * (1 + self.n_shards),
                               kind="broadcast",
                               physical_nbytes=physical
                               * (1 + self.n_shards))
            gathered = ShardedValue(bats, partitioned=False)
            # offset-translated positions now live in the gathered
            # (global) layout — consumers must gather their sources too
            gathered.global_oids = positions
            value._gathered = gathered
        return value._gathered

    def _needs_gather(self, value) -> bool:
        return isinstance(value, ShardedValue) and value.partitioned

    @staticmethod
    def _physical_nbytes(parts, arrays) -> int:
        """Wire bytes if each part shipped in its *stored* form: the
        codec payload size for encoded parts (``repro.compress``), the
        plain array size otherwise."""
        total = 0
        for part, arr in zip(parts, arrays):
            physical = getattr(part, "physical_nbytes", None)
            total += int(physical if physical is not None
                         else np.asarray(arr).nbytes)
        return total

    @staticmethod
    def _counts(value) -> "tuple[int, ...] | None":
        if not isinstance(value, ShardedValue):
            return None
        if not all(isinstance(p, BAT) for p in value.parts):
            return None
        return tuple(int(p.count) for p in value.parts)

    def _mark_space(self, pos, space) -> None:
        """Annotate a position column with the row space it indexes:
        per-shard counts when the space is partitioned (gathers and
        remote fetches translate by them), or ``repl_space`` when the
        space is identical on every shard (positions valid anywhere,
        translation would corrupt them)."""
        if not isinstance(pos, ShardedValue):
            return
        if self._needs_gather(space):
            pos.base_rows = self._counts(space)
        else:
            pos.repl_space = True

    # -- special operators ------------------------------------------------------------

    def _op_bind(self, op: str, args):
        ref = args[0]
        partitioned = self.partitioner.is_partitioned(ref.table)
        out = self._fan(op, args, partitioned=partitioned)
        if partitioned and isinstance(out, ShardedValue):
            out.origin = (ref.table, ref.column)
        if self.tracer is not None and isinstance(out, ShardedValue):
            # runtime truth for EXPLAIN ANALYZE: each shard catalog
            # encodes its own partition, so the codec a shard actually
            # read can differ from the driver catalog's whole-column
            # choice that plain explain() renders
            self.tracer.annotate(
                column=f"{ref.table}.{ref.column}",
                shard_encodings=[
                    getattr(getattr(part, "encoding", None), "kind", None)
                    for part in out.parts
                ],
            )
        return out

    def _op_select(self, op: str, args):
        out = self._fan(op, args)
        self._mark_space(out, args[0])
        return out

    _op_thetaselect = _op_select
    _op_mirror = _op_select

    def _op_pipe(self, op, args):
        """Fused regions (repro.fuse) fan out unchanged — they stay
        element-wise per row, so each shard runs the same single-pass
        kernel over its slice.  Selection outputs are shard-local
        positions like any unfused select, so they carry the input's
        per-shard row counts for a later gather."""
        out = self._fan(op, args)
        spec = args[0]
        space = next(
            (a for a in args[1:] if self._needs_gather(a)),
            next((a for a in args[1:] if isinstance(a, ShardedValue)),
                 None),
        )
        outputs = out if isinstance(out, tuple) else (out,)
        for value, fused_output in zip(outputs, spec.outputs):
            if isinstance(value, ShardedValue) and fused_output.is_select \
                    and space is not None:
                self._mark_space(value, space)
        return out

    def _op_oidunion(self, op: str, args):
        out = self._fan(op, args)
        if isinstance(out, ShardedValue) \
                and isinstance(args[0], ShardedValue):
            out.base_rows = args[0].base_rows
            out.repl_space = args[0].repl_space
        return out

    _op_oidintersect = _op_oidunion

    def _op_group(self, op: str, args):
        b = args[0]
        gids, ngroups = self._fan(op, args)
        if self._needs_gather(b):
            grouping = _Grouping(
                self, key_bats=list(b.parts), gids_bats=list(gids.parts),
                ngroups=[int(n) for n in ngroups.parts],
            )
            gids.group = grouping
        return gids, ngroups

    def _op_subgroup(self, op: str, args):
        b, outer_gids = args[0], args[1]
        gids, ngroups = self._fan(op, args)
        if gids.partitioned:
            outer = getattr(outer_gids, "group", None) if isinstance(
                outer_gids, ShardedValue) else None
            if outer is None:
                raise UnsupportedOperator(
                    f"{op}: subgrouping partitioned rows without a "
                    f"sharded outer grouping is not supported"
                )
            grouping = _Grouping(
                self, key_bats=list(b.parts), gids_bats=list(gids.parts),
                ngroups=[int(n) for n in ngroups.parts],
                outer=outer, outer_gids=list(outer_gids.parts),
            )
            gids.group = grouping
        return gids, ngroups

    def _op_sort(self, op: str, args):
        b = args[0]
        gathered = self._needs_gather(b)
        if gathered:
            args = [self._gather_rows(b)] + list(args[1:])
        sorted_sv, order_sv = self._fan(op, args, partitioned=False)
        if gathered:
            order_sv.global_oids = True
        return sorted_sv, order_sv

    def _op_firstn(self, op: str, args):
        b = args[0]
        if self._needs_gather(b):
            args = [self._gather_rows(b)] + list(args[1:])
        return self._fan(op, args, partitioned=False)

    def _op_projection(self, op: str, args):
        oids, source = args[0], args[1]
        source_gathered = False
        if isinstance(oids, ShardedValue) and oids.remote_oids \
                and self._needs_gather(source) \
                and self._counts(source) is not None:
            # positions refer to the concatenated layout of a row space
            # that is still partitioned (a shuffled join side): fetch
            # exactly the referenced rows from their owner shards
            # instead of broadcasting the whole column
            return self._remote_project(oids, source)
        if isinstance(oids, ShardedValue) \
                and (oids.global_oids or oids.remote_oids) \
                and self._needs_gather(source):
            # positions refer to a gathered (global) row space: the
            # source column must be gathered the same way; whether the
            # *output* is shard-local still follows the position lists
            # (a per-shard pair list projected through a broadcast
            # column yields per-shard results)
            args = [oids, self._gather_rows(source)] + list(args[2:])
            source_gathered = True
        out = self._fan(op, args)
        if isinstance(out, ShardedValue) and isinstance(source, ShardedValue):
            # a projection's output *values* are drawn from the source,
            # so whatever space those values index (row-map composition
            # through shard-local or gathered spaces) carries over
            out.base_rows = source.base_rows
            out.global_oids = source.global_oids
            out.remote_oids = source.remote_oids
            out.repl_space = source.repl_space
            if not source_gathered and isinstance(oids, ShardedValue) \
                    and oids.partitioned and not oids.global_oids \
                    and not oids.remote_oids:
                # shard-local positions into a still-aligned source:
                # the output rows remain each shard's own base rows
                out.origin = source.origin
        return out

    def _remote_project(self, oids: ShardedValue, source: ShardedValue):
        """Targeted cross-shard fetch: project remote positions through
        a partitioned source, moving only the referenced rows.

        The source's per-shard parts concatenate (positions translating
        by their space's offsets) into the layout the remote positions
        are valued in; each shard then fetches its hit rows, and only
        rows owned by *another* shard are charged to the interconnect —
        the second half of the shuffle join's traffic win."""
        counts = self._counts(source)
        offsets = np.concatenate(
            ([0], np.cumsum(counts[:-1]))
        ).astype(np.int64)
        arrays = [
            np.asarray(self._host_values(shard, part))
            for shard, part in enumerate(source.parts)
        ]
        # the source's *values* are positions into some other space when
        # it carries that space's per-shard counts or one of the
        # position-layout flags (role alone is not enough: a projected
        # row map is a VALUES-role BAT of positions)
        positions = (
            source.base_rows is not None or source.remote_oids
            or source.global_oids or source.repl_space
            or any(isinstance(p, BAT) and p.role is Role.OIDS
                   for p in source.parts)
        )
        if positions and not (source.global_oids or source.remote_oids
                              or source.repl_space):
            if source.base_rows is None:
                raise UnsupportedOperator(
                    "cannot re-partition a sharded position column "
                    "whose row space is unknown (unsupported plan "
                    "shape for SHARD)"
                )
            space = np.concatenate(
                ([0], np.cumsum(source.base_rows[:-1]))
            ).astype(np.int64)
            arrays = [
                a.astype(np.int64) + space[s]
                for s, a in enumerate(arrays)
            ]
        concat = np.concatenate(arrays)
        # an encoded source would ship fetched rows in its stored form;
        # approximate with the source's overall physical/nominal ratio
        # (position columns are never encoded, so their ratio is 1)
        src_nominal = sum(int(np.asarray(a).nbytes) for a in arrays)
        src_ratio = (self._physical_nbytes(source.parts, arrays)
                     / src_nominal) if src_nominal else 1.0
        bounds = np.append(offsets, len(concat)).astype(np.int64)
        parts, moved = [], 0
        for shard in range(self.n_shards):
            pos = np.asarray(
                self._host_values(shard, oids.parts[shard])
            ).astype(np.int64, copy=False)
            values = concat[pos]
            owner = np.searchsorted(bounds, pos, side="right") - 1
            moved += int(values[owner != shard].nbytes)
            if positions:
                parts.append(oid_bat(values.astype(OID_DTYPE),
                                     tag="shard_fetch"))
            else:
                parts.append(make_bat(values, tag="shard_fetch"))
        self._charge_merge(moved, kind="shuffled",
                           physical_nbytes=int(moved * src_ratio))
        out = ShardedValue(parts, partitioned=True)
        if positions:
            # fetched values are positions in the source space's own
            # concatenated layout — still remote for the next hop (or
            # global / shard-agnostic when the source's values already
            # were)
            out.global_oids = source.global_oids
            out.repl_space = source.repl_space
            out.remote_oids = not (source.global_oids
                                   or source.repl_space)
        return out

    # -- the join planner --------------------------------------------------------

    def _aligned_key(self, value) -> "tuple[str, str] | None":
        """The value's ``(table, column)`` origin, when that column is
        its table's shard key and the rows are still shard-aligned."""
        if not isinstance(value, ShardedValue) or value.origin is None:
            return None
        if value.global_oids or value.remote_oids:
            return None
        table, column = value.origin
        if self.partitioner.is_key_aligned(table, column):
            return value.origin
        return None

    def _plan_join(self, op: str, left, right) -> str:
        """Pick (or replay) the strategy for one equi-join site.

        Every ``algebra.join`` call appends exactly one decision to the
        query's trace, so a memoised trace replays positionally.  A
        replayed decision is sanity-checked against the current layout
        — a trace can only come from the same (SQL, engine spec, schema
        version) plan-cache key, but the check keeps a stale trace from
        ever producing a wrong join."""
        if self._replay is not None \
                and self._replay_pos < len(self._replay):
            site, strategy = self._replay[self._replay_pos]
            if site == op and self._join_valid(strategy, left, right):
                self._replay_pos += 1
                self._trace.append((op, strategy))
                return strategy
            self._replay = None     # out of step: plan fresh from here
        strategy = self._decide_join(left, right)
        self._trace.append((op, strategy))
        return strategy

    def _decide_join(self, left, right) -> str:
        if not (self._needs_gather(left) and self._needs_gather(right)):
            return JOIN_LOCAL
        if self.join_strategy == "broadcast":
            # the strict PR-3 baseline: every partitioned-both-sides
            # join broadcasts, even on a key-partitioned layout
            return JOIN_BROADCAST
        lkey = self._aligned_key(left)
        rkey = self._aligned_key(right)
        if lkey and rkey and self.partitioner.co_located(lkey, rkey):
            return JOIN_COLOCATED
        if isinstance(left, ShardedValue) and left.origin \
                and isinstance(right, ShardedValue) and right.origin:
            # a broadcast/shuffle between two base columns is the
            # signal the key-inference satellite adopts (keys=infer)
            self._observed_joins.append((left.origin, right.origin))
        lcounts, rcounts = self._counts(left), self._counts(right)
        if lkey and rcounts is not None:
            return JOIN_SHUFFLE_RIGHT
        if rkey and lcounts is not None:
            return JOIN_SHUFFLE_LEFT
        if lcounts is not None and rcounts is not None \
                and self._shuffleable(left) and self._shuffleable(right):
            return JOIN_SHUFFLE_BOTH
        return JOIN_BROADCAST

    def _join_valid(self, strategy: str, left, right) -> bool:
        if strategy == JOIN_LOCAL:
            return not (self._needs_gather(left)
                        and self._needs_gather(right))
        if strategy == JOIN_BROADCAST:
            return True     # correct in every layout, never optimal
        if strategy == JOIN_COLOCATED:
            lkey, rkey = self._aligned_key(left), self._aligned_key(right)
            return bool(lkey and rkey
                        and self.partitioner.co_located(lkey, rkey))
        if strategy == JOIN_SHUFFLE_RIGHT:
            return bool(self._aligned_key(left)
                        and self._counts(right) is not None)
        if strategy == JOIN_SHUFFLE_LEFT:
            return bool(self._aligned_key(right)
                        and self._counts(left) is not None)
        if strategy == JOIN_SHUFFLE_BOTH:
            return self._counts(left) is not None \
                and self._counts(right) is not None \
                and self._shuffleable(left) and self._shuffleable(right)
        return False

    @staticmethod
    def _shuffleable(value) -> bool:
        return all(
            isinstance(p, BAT) and p.dtype.kind in "iuf"
            for p in value.parts
        )

    def _op_join(self, op: str, args):
        left, right = args[0], args[1]
        strategy = self._plan_join(op, left, right)
        if strategy == JOIN_COLOCATED:
            # key-aligned sides: every matching pair is already on one
            # shard — the join fans out with zero driver traffic
            lpos, rpos = self._fan(op, args, partitioned=True)
            self._mark_space(lpos, left)
            self._mark_space(rpos, right)
            return lpos, rpos
        if strategy in (JOIN_SHUFFLE_LEFT, JOIN_SHUFFLE_RIGHT,
                        JOIN_SHUFFLE_BOTH):
            return self._shuffle_join(op, args, strategy)
        return self._broadcast_join(op, args)

    def _broadcast_join(self, op: str, args):
        """The PR-3 fallback: gather the build side to every shard."""
        left, right = args[0], args[1]
        gathered = False
        if self._needs_gather(left) and self._needs_gather(right):
            args = [left, self._gather_rows(right)] + list(args[2:])
            gathered = True
        lpos, rpos = self._fan(
            op, args, partitioned=True if gathered else None
        )
        self._mark_space(lpos, left)
        if gathered:
            rpos.global_oids = True
        else:
            self._mark_space(rpos, right)
        return lpos, rpos

    _op_thetajoin = _broadcast_join

    def _shuffle_join(self, op: str, args, strategy: str):
        """Hash-shuffle join: re-partition the unaligned side(s) by key
        value so the join runs shard-local, moving only (key, oid)
        pairs shard-to-shard.

        With one side key-aligned the other side re-partitions to the
        aligned table's placement function; with neither aligned both
        sides re-partition by value hash.  A shuffled side's output
        positions are valued in its original concatenated row space
        (``remote_oids``), so later projections fetch only the rows
        each shard holds pairs for."""
        left, right = args[0], args[1]
        if strategy == JOIN_SHUFFLE_RIGHT:
            table, _column = self._aligned_key(left)
            place = self.partitioner.key_placement(
                self.partitioner.key_of(table)[1]
            )
        elif strategy == JOIN_SHUFFLE_LEFT:
            table, _column = self._aligned_key(right)
            place = self.partitioner.key_placement(
                self.partitioner.key_of(table)[1]
            )
        else:
            place = self.partitioner.default_placement
        new_left, lmap = left, None
        new_right, rmap = right, None
        if strategy in (JOIN_SHUFFLE_LEFT, JOIN_SHUFFLE_BOTH):
            new_left, lmap = self._shuffle(left, place)
        if strategy in (JOIN_SHUFFLE_RIGHT, JOIN_SHUFFLE_BOTH):
            new_right, rmap = self._shuffle(right, place)
        lpos, rpos = self._fan(
            op, [new_left, new_right] + list(args[2:]), partitioned=True
        )
        lpos = self._translate_pos(lpos, lmap, left)
        rpos = self._translate_pos(rpos, rmap, right)
        return lpos, rpos

    def _translate_pos(self, pos: ShardedValue, mapping, side):
        """Map positions out of a shuffled layout back into the side's
        original (concatenated) row space via the shuffled oids."""
        if mapping is None:
            self._mark_space(pos, side)
            return pos
        parts = []
        for shard in range(self.n_shards):
            local = np.asarray(
                self._host_values(shard, pos.parts[shard])
            ).astype(np.int64, copy=False)
            parts.append(oid_bat(mapping[shard][local].astype(OID_DTYPE),
                                 tag="shard_unshuffle"))
        out = ShardedValue(parts, partitioned=True)
        out.remote_oids = True
        return out

    def _shuffle(self, value: ShardedValue, place):
        """The ``shard.shuffle`` primitive: re-partition a key column by
        key value.  Returns the shuffled column (a new ShardedValue) and
        the per-shard global-oid arrays mapping shuffled rows back to
        the value's original concatenated layout.  Only rows that change
        shards are charged to the interconnect."""
        counts = self._counts(value)
        offsets = np.concatenate(
            ([0], np.cumsum(counts[:-1]))
        ).astype(np.int64)
        dest_keys: list[list] = [[] for _ in range(self.n_shards)]
        dest_oids: list[list] = [[] for _ in range(self.n_shards)]
        moved = 0
        moved_physical = 0
        dtype = None
        for shard in range(self.n_shards):
            part = value.parts[shard]
            keys = np.asarray(self._host_values(shard, part))
            dtype = keys.dtype if dtype is None else dtype
            # encoded key columns ship their moved rows in stored form;
            # approximate with the part's physical/nominal ratio (oids
            # travel at full width either way)
            part_physical = getattr(part, "physical_nbytes", None)
            key_ratio = (part_physical / keys.nbytes
                         if part_physical is not None and keys.nbytes
                         else 1.0)
            ids = place(keys)
            goids = np.arange(keys.shape[0], dtype=np.int64) \
                + offsets[shard]
            for dest in range(self.n_shards):
                mask = ids == dest
                if not mask.any():
                    continue
                moved_keys = keys[mask]
                moved_oids = goids[mask]
                dest_keys[dest].append(moved_keys)
                dest_oids[dest].append(moved_oids)
                if dest != shard:
                    moved += int(moved_keys.nbytes) \
                        + int(moved_oids.nbytes)
                    moved_physical += \
                        int(moved_keys.nbytes * key_ratio) \
                        + int(moved_oids.nbytes)
        self._charge_merge(moved, kind="shuffled",
                           physical_nbytes=moved_physical)
        parts, mapping = [], []
        for dest in range(self.n_shards):
            keys = (np.concatenate(dest_keys[dest]) if dest_keys[dest]
                    else np.empty(0, dtype=dtype))
            goids = (np.concatenate(dest_oids[dest]) if dest_oids[dest]
                     else np.empty(0, dtype=np.int64))
            parts.append(make_bat(keys, tag="shard_shuffle"))
            mapping.append(goids)
        out = ShardedValue(parts, partitioned=True)
        self._scratch.append(out)
        return out, mapping

    def _shuffle_op(self, value):
        """``shard.shuffle(column)``: hash re-partition a partitioned
        column by value; returns the shuffled column and the positions
        (in the input's concatenated layout) each shuffled row came
        from."""
        if not self._needs_gather(value) \
                or self._counts(value) is None:
            raise UnsupportedOperator(
                "shard.shuffle needs a partitioned column of per-shard "
                "BATs"
            )
        shuffled, mapping = self._shuffle(
            value, self.partitioner.default_placement
        )
        oids = ShardedValue(
            [oid_bat(m.astype(OID_DTYPE), tag="shard_shuffle_oids")
             for m in mapping],
            partitioned=True,
        )
        oids.remote_oids = True
        return shuffled, oids

    def _op_semijoin(self, op: str, args):
        left, right = args[0], args[1]
        lkey, rkey = self._aligned_key(left), self._aligned_key(right)
        if self._needs_gather(right) and not (
            lkey and rkey and self.partitioner.co_located(lkey, rkey)
        ):
            # membership is against the *whole* right side; gather it
            # (key-aligned sides skip this: every member is local)
            args = [left, self._gather_rows(right)] + list(args[2:])
        out = self._fan(op, args, partitioned=self._needs_gather(left))
        self._mark_space(out, left)
        return out

    _op_antijoin = _op_semijoin

    # -- protocol: result collection ---------------------------------------------------

    def collect_results(self, result_columns, resolve):
        return {
            name: self._collect_value(resolve(var))
            for name, var in result_columns
        }

    def _collect_value(self, value) -> np.ndarray:
        if not isinstance(value, ShardedValue):
            return np.atleast_1d(np.asarray(value))
        if value.merge is not None:
            if value.group is not None:
                merged = self._fold_grouped(value)
                self._charge_merge(int(merged.nbytes))
                return merged
            # each shard ships its scalar partial to the driver
            self._charge_merge(8 * self.n_shards)
            return np.atleast_1d(np.asarray(self._fold_scalar(value)))
        if not value.partitioned:
            return self.children[0].collect(value.parts[0])
        if not all(isinstance(part, BAT) for part in value.parts):
            raise UnsupportedOperator(
                "per-shard scalar without merge semantics reached the "
                "result set — the SHARD engine cannot fold it (e.g. "
                "hashbuild's distinct count is not additive across "
                "shards)"
            )
        arrays = [
            np.atleast_1d(np.asarray(self._host_values(shard, part)))
            for shard, part in enumerate(value.parts)
        ]
        merged = np.concatenate(arrays)
        self._charge_merge(
            int(merged.nbytes),
            physical_nbytes=self._physical_nbytes(value.parts, arrays),
        )
        return merged

    def collect(self, value):
        return self._collect_value(value)
