"""``repro.shard`` — the sharded multi-node engine (``SHARD:<N>x<CHILD>``).

ROADMAP's multi-backend sharding item: partition *tables* (not just
operators) across N simulated nodes.  The package composes over the
engine registry rather than special-casing anything:

* :class:`~repro.shard.partition.ShardPartitioner` keeps one catalog
  per shard in sync with the parent database — large tables range- (or
  hash-) partitioned, small ones replicated — and re-syncs on DDL,
  bumping every child's schema version.
* :class:`~repro.shard.backend.ShardedBackend` implements the formal
  Backend protocol by fanning each MAL instruction across N *child
  backends* of any registered family and merging aggregate partials
  mat.pack-style (scalar folds, key-aligned grouped folds, exact
  (sum, count) averages), with eager merge + re-broadcast at
  post-aggregation consumption points and broadcast joins / driver
  gathers where an operator needs global context.

Since PR 5 the backend is **shard-key-aware**: tables can declare a
shard key (catalog-level via ``Database.declare_shard_key``, spec-level
via ``key=<table>.<column>`` parameters, or inferred from observed join
columns under ``keys=infer``), rows are then placed by key value, and
the join planner runs key-aligned equi-joins entirely shard-local —
zero driver traffic — with a hash-shuffle re-partition
(``shard.shuffle``) covering the unaligned cases and the PR-3
broadcast-gather kept as the ``join=broadcast`` baseline.

Registered as the ``SHARD`` engine family::

    con = db.connect("SHARD:4xHET")    # 4 nodes, each running HET
    con = db.connect("SHARD:8xCPU")    # 8 single-device nodes
    con = db.connect("SHARD:4xCPU,hash")   # round-robin row placement
    con = db.connect(                  # co-partition on the order key
        "SHARD:4xMS,key=lineitem.l_orderkey,key=orders.o_orderkey"
    )
    con = db.connect("SHARD:4xMS,keys=infer")     # adopt observed keys
    con = db.connect("SHARD:4xMS,join=broadcast")  # PR-3 baseline
    con = db.connect("SHARD:4xCPU:replicas=2")    # 2 copies per range

The spec's child component is resolved through the same registry, so
anything registered with :func:`repro.register_engine` — including
other composites-to-be — can serve as the per-node engine.

Since PR 10 the cluster is **elastic** (ARCHITECTURE.md "Elastic
cluster"): ``replicas=<r>`` keeps every key range on r
chained-declustered copies — reads rotate across healthy copies, a
breaker trip promotes a replica *without re-partitioning* — and
``Database.add_shard()`` / ``remove_shard()`` re-shard online,
migrating key ranges incrementally at query boundaries while in-flight
``submit()`` batches drain against the old layout.
"""

from __future__ import annotations

from ..engines import (
    ADMISSION_PARAM,
    COMPRESSION_PARAM,
    FUSION_OFF,
    MORSEL_PARAM,
    OBS_SLOW_PARAM,
    TIMEOUT_PARAM,
    TRACE_PARAM,
    EngineConfig,
    EngineFamily,
    EngineSpec,
    EngineSpecError,
    parse_admission_setting,
    parse_compression_setting,
    parse_morsel_setting,
    parse_slow_ms_setting,
    parse_timeout_setting,
    parse_trace_setting,
    register_engine,
)
from .backend import (
    InterconnectTraffic,
    ShardTraffic,
    ShardedBackend,
    ShardedValue,
)
from .partition import (
    DEFAULT_MIN_PARTITION_ROWS,
    ShardPartitioner,
    default_key_domain,
)

__all__ = [
    "DEFAULT_MIN_PARTITION_ROWS",
    "InterconnectTraffic",
    "ShardPartitioner",
    "ShardTraffic",
    "ShardedBackend",
    "ShardedValue",
    "default_key_domain",
]


def _parse_spec_keys(spec: EngineSpec) -> "dict[str, str]":
    """``key=<table>.<column>`` params -> {table: column}."""
    shard_keys: dict[str, str] = {}
    for value in spec.param_values("key"):
        table, dot, column = value.partition(".")
        if not dot or not table or not column:
            raise EngineSpecError(
                f"engine spec {spec.canonical!r}: key={value!r} must "
                f"name a column as <table>.<column>"
            )
        if shard_keys.get(table, column) != column:
            raise EngineSpecError(
                f"engine spec {spec.canonical!r}: table {table!r} "
                f"declares two shard keys"
            )
        shard_keys[table] = column
    return shard_keys


def _configure(spec: EngineSpec, registry) -> EngineConfig:
    if spec.count is None or spec.child is None:
        raise EngineSpecError(
            "the SHARD family requires an <N>x<CHILD> argument, "
            "e.g. SHARD:4xHET or SHARD:8xCPU"
        )
    child = registry.resolve(spec.child)
    mode = "hash" if "hash" in spec.flags else "range"
    n_shards = spec.count
    shard_keys = _parse_spec_keys(spec)

    def single_param(name: str, default: str) -> str:
        values = spec.param_values(name)
        if len(values) > 1:
            raise EngineSpecError(
                f"engine spec {spec.canonical!r}: conflicting "
                f"{name}= values {', '.join(values)}"
            )
        return values[0] if values else default

    keys_mode = single_param("keys", "declared")
    if keys_mode not in ("declared", "infer", "off"):
        raise EngineSpecError(
            f"engine spec {spec.canonical!r}: keys= must be 'infer' or "
            f"'off' (declared keys are honoured by default)"
        )
    if keys_mode == "off" and shard_keys:
        raise EngineSpecError(
            f"engine spec {spec.canonical!r}: keys=off contradicts "
            f"the spec's key= declarations"
        )
    join = single_param("join", "auto")
    if join not in ("auto", "broadcast"):
        raise EngineSpecError(
            f"engine spec {spec.canonical!r}: join= must be "
            f"'broadcast' (the planner is the default)"
        )
    if join == "broadcast" and keys_mode == "infer":
        raise EngineSpecError(
            f"engine spec {spec.canonical!r}: keys=infer is pointless "
            f"under join=broadcast (inferred keys could never be used)"
        )
    replicas_text = single_param("replicas", "1")
    if not replicas_text.isdigit() or int(replicas_text) < 1:
        raise EngineSpecError(
            f"engine spec {spec.canonical!r}: replicas= must be a "
            f"positive integer (got {replicas_text!r})"
        )
    replicas = int(replicas_text)
    if replicas > n_shards:
        raise EngineSpecError(
            f"engine spec {spec.canonical!r}: replicas={replicas} "
            f"exceeds the node count {n_shards} (chained declustering "
            f"places each copy on a distinct node)"
        )

    def make(catalog, data_scale):
        return ShardedBackend(
            catalog, child, n_shards, data_scale=data_scale,
            mode=mode, label=spec.canonical,
            shard_keys=shard_keys,
            use_declared_keys=keys_mode != "off",
            infer_keys=keys_mode == "infer",
            join_strategy=join,
            replicas=replicas,
        )

    morsel, morsel_size = parse_morsel_setting(spec)
    return EngineConfig(
        label=spec.canonical,
        make=make,
        is_ocelot=child.is_ocelot,
        description=(
            f"{n_shards} simulated nodes each running {child.label}, "
            f"tables {mode}-partitioned, mat.pack-style merges"
        ),
        pipelines_sessions=True,
        fusion=FUSION_OFF not in spec.flags,
        morsel=morsel,
        morsel_size=morsel_size,
        timeout_s=parse_timeout_setting(spec),
        admission=parse_admission_setting(spec),
        compression=parse_compression_setting(spec),
        trace=parse_trace_setting(spec),
        obs_slow_ms=parse_slow_ms_setting(spec),
        spec=spec.canonical,
    )


register_engine(EngineFamily(
    name="SHARD",
    configure=_configure,
    description=(
        "N-node sharded execution over any registered child engine: "
        "tables partitioned per node (by declared/inferred shard keys "
        "when given), key-aligned joins shard-local, hash-shuffle "
        "re-partition otherwise, aggregate partials merged "
        "mat.pack-style on the driver; replicas=<r> keeps each key "
        "range on r chained-declustered copies for load-balanced "
        "reads and re-partition-free failover"
    ),
    syntax=(
        "SHARD:<N>x<CHILD>[,hash][,key=<t>.<c>][,keys=infer|off]"
        "[,join=broadcast][,replicas=<r>]"
    ),
    takes_child=True,
    # range partitioning is the default and deliberately NOT a flag:
    # "SHARD:2xCPU,range" aliasing "SHARD:2xCPU" would split the plan
    # cache and the connection cache over one identical engine
    allowed_flags=frozenset({"hash", FUSION_OFF}),
    allowed_params=frozenset({
        "key", "keys", "join", "replicas",
        ADMISSION_PARAM, COMPRESSION_PARAM, MORSEL_PARAM,
        OBS_SLOW_PARAM, TIMEOUT_PARAM, TRACE_PARAM,
    }),
))
