"""``repro.shard`` — the sharded multi-node engine (``SHARD:<N>x<CHILD>``).

ROADMAP's multi-backend sharding item: partition *tables* (not just
operators) across N simulated nodes.  The package composes over the
engine registry rather than special-casing anything:

* :class:`~repro.shard.partition.ShardPartitioner` keeps one catalog
  per shard in sync with the parent database — large tables range- (or
  hash-) partitioned, small ones replicated — and re-syncs on DDL,
  bumping every child's schema version.
* :class:`~repro.shard.backend.ShardedBackend` implements the formal
  Backend protocol by fanning each MAL instruction across N *child
  backends* of any registered family and merging aggregate partials
  mat.pack-style (scalar folds, key-aligned grouped folds, exact
  (sum, count) averages), with eager merge + re-broadcast at
  post-aggregation consumption points and broadcast joins / driver
  gathers where an operator needs global context.

Registered as the ``SHARD`` engine family::

    con = db.connect("SHARD:4xHET")    # 4 nodes, each running HET
    con = db.connect("SHARD:8xCPU")    # 8 single-device nodes
    con = db.connect("SHARD:4xCPU,hash")   # round-robin row placement

The spec's child component is resolved through the same registry, so
anything registered with :func:`repro.register_engine` — including
other composites-to-be — can serve as the per-node engine.
"""

from __future__ import annotations

from ..engines import (
    FUSION_OFF,
    EngineConfig,
    EngineFamily,
    EngineSpec,
    EngineSpecError,
    register_engine,
)
from .backend import ShardedBackend, ShardedValue
from .partition import DEFAULT_MIN_PARTITION_ROWS, ShardPartitioner

__all__ = [
    "DEFAULT_MIN_PARTITION_ROWS",
    "ShardPartitioner",
    "ShardedBackend",
    "ShardedValue",
]


def _configure(spec: EngineSpec, registry) -> EngineConfig:
    if spec.count is None or spec.child is None:
        raise EngineSpecError(
            "the SHARD family requires an <N>x<CHILD> argument, "
            "e.g. SHARD:4xHET or SHARD:8xCPU"
        )
    child = registry.resolve(spec.child)
    mode = "hash" if "hash" in spec.flags else "range"
    n_shards = spec.count

    def make(catalog, data_scale):
        return ShardedBackend(
            catalog, child, n_shards, data_scale=data_scale,
            mode=mode, label=spec.canonical,
        )

    return EngineConfig(
        label=spec.canonical,
        make=make,
        is_ocelot=child.is_ocelot,
        description=(
            f"{n_shards} simulated nodes each running {child.label}, "
            f"tables {mode}-partitioned, mat.pack-style merges"
        ),
        fusion=FUSION_OFF not in spec.flags,
        spec=spec.canonical,
    )


register_engine(EngineFamily(
    name="SHARD",
    configure=_configure,
    description=(
        "N-node sharded execution over any registered child engine: "
        "tables partitioned per node, aggregate partials merged "
        "mat.pack-style on the driver"
    ),
    syntax="SHARD:<N>x<CHILD>[,hash]",
    takes_child=True,
    # range partitioning is the default and deliberately NOT a flag:
    # "SHARD:2xCPU,range" aliasing "SHARD:2xCPU" would split the plan
    # cache and the connection cache over one identical engine
    allowed_flags=frozenset({"hash", FUSION_OFF}),
))
