"""``EncodedBAT`` — a base column stored compressed, decoded lazily.

A drop-in :class:`~repro.monetdb.bat.BAT` subclass whose tail lives as
a codec payload (:mod:`repro.compress.codecs`) instead of a plain
array.  Everything that inspects metadata (``count``, ``dtype``,
``key``/``sorted``) works without touching the payload; reading
``values`` triggers **late materialisation** — the whole tail is
decoded once, cached, and counted in the catalog's
:class:`~repro.compress.stats.CompressionStats` so the zero-decode
tests can see it.

The compressed execution paths never take that hit: they ask for the
*compute-domain* companion BATs instead —

* :meth:`code_bat` — the dictionary codes / FOR deltas as a plain BAT
  (uint8/uint32 tail; uint16 payloads are widened to uint32 lazily
  since uint16 is not an admissible tail dtype).  Marked ``is_base`` so
  device memory managers cache the *codes* (that is the HET
  GPU-ceiling win) and registered in :attr:`derived_bats` so catalog
  deletion drops those device copies too.
* :meth:`run_value_bat` — an RLE column's run values (original dtype),
  for run-level selections and aggregations over ``n_runs`` elements.
* :meth:`slice_rows` — an encoded view of rows ``[lo, hi)`` (morsels,
  shard partitions) that decodes only its own range when materialised,
  counted as a *partial* decode.
"""

from __future__ import annotations

import numpy as np

from ..monetdb.bat import BAT, Owner, Role
from .codecs import DictEncoding, FOREncoding, RLEEncoding
from .stats import CompressionStats


class EncodedBAT(BAT):
    """A BAT whose tail is stored as a codec payload."""

    def __init__(self, encoding, *, tag: str = "", key: bool = False,
                 sorted_: bool = False,
                 stats: "CompressionStats | None" = None,
                 full_column: bool = True):
        super().__init__(None, Role.VALUES, tag=tag, key=key,
                         sorted_=sorted_)
        self.encoding = encoding
        self._count = encoding.count
        self.stats = stats
        #: whether a decode counts as a full-column materialisation
        self.full_column = full_column
        #: companion BATs derived from the payload (codes, run values);
        #: the catalog recurses over these on delete so device caches
        #: drop the code buffers along with the column
        self.derived_bats: list[BAT] = []
        self._code_bat: BAT | None = None
        self._run_value_bat: BAT | None = None
        self._dict_bat: BAT | None = None

    # -- metadata (no decode) ---------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        return self.encoding.dtype

    @property
    def physical_nbytes(self) -> int:
        return int(self.encoding.physical_nbytes)

    @property
    def nominal_nbytes(self) -> int:
        return int(self.encoding.nominal_nbytes)

    @property
    def has_host_values(self) -> bool:
        # the host can always produce the tail (by decoding); only an
        # Ocelot ownership hand-over makes it unreadable
        return self.owner is Owner.MONETDB

    # -- late materialisation ---------------------------------------------

    def _decode(self) -> np.ndarray:
        if self._values is None:
            from ..monetdb.storage import aligned_array

            self._values = aligned_array(self.encoding.decode())
            if self.stats is not None:
                if self.full_column:
                    self.stats.decode_events += 1
                else:
                    self.stats.partial_decodes += 1
        return self._values

    @property
    def values(self) -> np.ndarray:
        if self.owner is Owner.OCELOT:
            return super().values      # raises OwnershipError
        return self._decode()

    def peek_values(self) -> np.ndarray:
        return self._decode()

    # -- compute-domain companions ----------------------------------------

    def code_bat(self) -> "BAT | None":
        """The per-row integer payload as a plain BAT, if the codec has
        one: dictionary codes or FOR deltas.  Shares row positions with
        the column, so selections/groupings over it yield oids/gids
        valid for the original."""
        if self._code_bat is not None:
            return self._code_bat
        encoding = self.encoding
        if isinstance(encoding, DictEncoding):
            payload = encoding.codes
        elif isinstance(encoding, FOREncoding):
            payload = encoding.deltas
        else:
            return None
        if payload.dtype == np.uint16:
            # uint16 is not an admissible tail dtype; widen for compute
            payload = payload.astype(np.uint32)
        elif payload.dtype == np.uint64:
            payload = payload.astype(np.int64)
        # the payload carries the column's own tag: it is row-aligned
        # (same cardinality, predicate selectivity carries over 1:1),
        # so per-tag feedback — HET's learned selectivities — keeps
        # accumulating under the column whichever domain executed
        bat = BAT(np.ascontiguousarray(payload), Role.VALUES,
                  key=False, sorted_=self.sorted, tag=self.tag)
        # persistent like the column itself: device managers may cache
        # the codes across queries (the point of executing compressed)
        bat.is_base = self.is_base
        self.derived_bats.append(bat)
        self._code_bat = bat
        return bat

    def run_value_bat(self) -> "BAT | None":
        """An RLE column's run values as a plain BAT (``n_runs`` rows)."""
        if self._run_value_bat is not None:
            return self._run_value_bat
        encoding = self.encoding
        if not isinstance(encoding, RLEEncoding):
            return None
        bat = BAT(np.ascontiguousarray(encoding.run_values), Role.VALUES,
                  key=False, sorted_=False, tag=f"{self.tag}#runs")
        bat.is_base = self.is_base
        self.derived_bats.append(bat)
        self._run_value_bat = bat
        return bat

    def dict_bat(self) -> "BAT | None":
        """A dictionary column's sorted value table as a (tiny) plain
        BAT — the lookup side of a device-resident projection: gather
        codes by oid, then gather values by code."""
        if self._dict_bat is not None:
            return self._dict_bat
        encoding = self.encoding
        if not isinstance(encoding, DictEncoding):
            return None
        bat = BAT(np.ascontiguousarray(encoding.dictionary), Role.VALUES,
                  key=True, sorted_=True, tag=f"{self.tag}#dict")
        bat.is_base = self.is_base
        self.derived_bats.append(bat)
        self._dict_bat = bat
        return bat

    def gather_rows(self, idx: np.ndarray) -> np.ndarray:
        """Materialise only rows ``idx`` (host-side projection) without
        decoding the whole tail — counted as a *partial* decode."""
        if self._values is not None:
            return self._values[idx]
        encoding = self.encoding
        if isinstance(encoding, DictEncoding):
            out = encoding.dictionary[encoding.codes[idx]]
        elif isinstance(encoding, FOREncoding):
            out = (encoding.deltas[idx].astype(np.int64)
                   + encoding.frame).astype(self.dtype)
        else:
            run_idx = np.searchsorted(encoding.ends, idx, side="right")
            out = encoding.run_values[run_idx]
        if self.stats is not None:
            self.stats.partial_decodes += 1
        return out

    def slice_rows(self, lo: int, hi: int) -> "EncodedBAT":
        """An encoded view of rows ``[lo, hi)`` — still compressed; its
        eventual decode is a *partial* materialisation."""
        sliced = EncodedBAT(
            self.encoding.slice_(lo, hi),
            tag=f"{self.tag}[{lo}:{hi}]",
            key=self.key, sorted_=self.sorted,
            stats=self.stats, full_column=False,
        )
        return sliced

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EncodedBAT #{self.bat_id} {self.tag!r} "
            f"{self.encoding.kind} n={self._count} "
            f"{self.physical_nbytes}/{self.nominal_nbytes}B>"
        )
