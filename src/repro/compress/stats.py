"""Compression observability: per-catalog counters.

One :class:`CompressionStats` instance hangs off every
:class:`~repro.monetdb.storage.Catalog` (``catalog.compression``) and is
shared by every :class:`~repro.compress.encoded.EncodedBAT` the catalog
creates, so ``Connection.compression`` can answer the questions the
ISSUE cares about: how many base columns were encoded, how many bytes
that saved, and — crucially — how often an operator had to fall back to
a **full-column decode** instead of executing on the compressed
representation.  The zero-decode acceptance tests snapshot these
counters around a query and assert ``decode_events`` did not move.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CompressionStats:
    """Counters for one catalog's compressed columns.

    ``decode_events`` counts *full-column* materialisations (an encoded
    base column's whole tail rebuilt in host memory); each column decodes
    at most once per lifetime because the decoded tail is cached.
    ``partial_decodes`` counts row-range / run-subset materialisations
    (morsel slices, late-materialised grouped-aggregate results) — these
    are the *point* of late materialisation and are tracked separately
    so the zero-full-decode assertions stay meaningful.

    .. note:: superseded by the unified metrics registry — the same
       counters appear under ``compress.*`` in
       ``Connection.metrics.snapshot()``; ``Connection.compression``
       keeps returning this live object.
    """

    #: base columns stored encoded vs. kept as plain arrays
    columns_encoded: int = 0
    columns_plain: int = 0
    #: tail bytes of the encoded columns: as stored (physical) and as
    #: they would be stored uncompressed (nominal)
    bytes_physical: int = 0
    bytes_nominal: int = 0
    #: full-column decompressions (late materialisation falling back to
    #: the whole tail) and partial-range decompressions
    decode_events: int = 0
    partial_decodes: int = 0

    @property
    def bytes_saved(self) -> int:
        return self.bytes_nominal - self.bytes_physical

    @property
    def ratio(self) -> float:
        """Nominal / physical bytes over the encoded columns (>= 1)."""
        if self.bytes_physical <= 0:
            return 1.0
        return self.bytes_nominal / self.bytes_physical

    def snapshot(self) -> "CompressionStats":
        """An independent copy (tests diff before/after a query)."""
        return CompressionStats(
            columns_encoded=self.columns_encoded,
            columns_plain=self.columns_plain,
            bytes_physical=self.bytes_physical,
            bytes_nominal=self.bytes_nominal,
            decode_events=self.decode_events,
            partial_decodes=self.partial_decodes,
        )

    def add(self, other: "CompressionStats") -> "CompressionStats":
        """Fold another instance in (SHARD sums parent + children)."""
        self.columns_encoded += other.columns_encoded
        self.columns_plain += other.columns_plain
        self.bytes_physical += other.bytes_physical
        self.bytes_nominal += other.bytes_nominal
        self.decode_events += other.decode_events
        self.partial_decodes += other.partial_decodes
        return self

    def __str__(self) -> str:
        return (
            f"compression<{self.columns_encoded} encoded / "
            f"{self.columns_plain} plain, "
            f"{self.bytes_physical}/{self.bytes_nominal}B physical/nominal "
            f"({self.ratio:.2f}x), {self.decode_events} decodes, "
            f"{self.partial_decodes} partial>"
        )
