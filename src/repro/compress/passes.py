"""The compression rewrite pass and its gating.

Mirrors ``fuse``/``morsel``: a plan-level pass
(:func:`compress_program`) rewrites operators that consume a **base
column directly** (the result of ``sql.bind``) into their
compression-aware ``compress.*`` forms, and an environment variable /
spec parameter pair gates the whole subsystem:

* ``compression=off|auto|dict|rle|for`` — per-engine spec parameter
  accepted by every family; ``auto`` (the default) lets
  :func:`~repro.compress.codecs.choose_encoding` pick per column,
  the codec names restrict it to one family, ``off`` disables both
  storage encoding and the pass,
* ``REPRO_COMPRESSION`` — the global override, used by the CI
  ``compression-off`` A/B job exactly like ``REPRO_FUSION`` /
  ``REPRO_MORSEL``.

Only bind-direct consumers are rewritten: that is where the encoded
representation lives (intermediates are plain BATs), and it keeps the
pass trivially safe — every ``compress.*`` operator re-checks its
input at runtime and delegates to the ordinary operator when the
column turned out plain (or encoded with a codec the operator cannot
exploit), so the same compiled plan is correct for *any* storage
state.  The effective mode is part of the serve layer's plan-cache key,
so compiled-with and compiled-without plans never mix.
"""

from __future__ import annotations

import os

from ..monetdb.mal import MALInstruction, MALProgram, Var

#: the global override, like REPRO_FUSION / REPRO_MORSEL
COMPRESSION_ENV = "REPRO_COMPRESSION"

#: admissible settings for the spec param and the env override
MODES = ("off", "auto", "dict", "rle", "for")

_OFF_WORDS = ("off", "0", "false", "no")

#: scalar aggregates with a compressed-domain evaluation
_SCALAR_AGGS = ("sum", "min", "max", "count", "avg")

#: grouped aggregates with a compressed-domain evaluation (dictionary
#: order isomorphism: min/max commute with the code mapping)
_GROUPED_AGGS = ("submin", "submax")


def env_compression() -> "str | None":
    """The ``REPRO_COMPRESSION`` override, normalised, or ``None``."""
    raw = os.environ.get(COMPRESSION_ENV, "").strip().lower()
    if not raw:
        return None
    if raw in _OFF_WORDS:
        return "off"
    if raw in MODES:
        return raw
    return None


def storage_mode() -> str:
    """The mode governing *storage-time* encoding (``create_table``)."""
    return env_compression() or "auto"


def effective_compression(config) -> str:
    """The mode a connection actually runs under: env beats spec."""
    override = env_compression()
    if override is not None:
        return override
    return getattr(config, "compression", "auto")


def compress_program(program: MALProgram, mode: str) -> MALProgram:
    """Rewrite bind-direct operators into ``compress.*`` forms.

    Idempotent; a no-op under ``mode == "off"``.  Each rewritten
    instruction gains a trailing ``mode`` literal so the runtime
    operator knows which codecs it may exploit.
    """
    if mode == "off":
        return program
    instructions = program.instructions
    if any(i.module == "compress" for i in instructions):
        return program     # already rewritten: the pass is a no-op

    bind_results = {
        i.results[0].name
        for i in instructions
        if i.op == "sql.bind" and i.results
    }

    def _is_bind(arg) -> bool:
        return isinstance(arg, Var) and arg.name in bind_results

    rewritten = []
    changed = False
    for instruction in instructions:
        replacement = _rewrite(instruction, _is_bind, mode)
        if replacement is not None:
            rewritten.append(replacement)
            changed = True
        else:
            rewritten.append(instruction)
    if not changed:
        return program
    return MALProgram(
        name=program.name,
        instructions=rewritten,
        result_columns=list(program.result_columns),
    )


def _compressed(instruction: MALInstruction, mode: str) -> MALInstruction:
    return MALInstruction(
        instruction.results, "compress", instruction.function,
        instruction.args + (mode,),
    )


def _rewrite(instruction: MALInstruction, is_bind, mode: str):
    """The ``compress.*`` replacement for one instruction, or None."""
    op = instruction.op
    args = instruction.args
    if op in ("algebra.select", "algebra.thetaselect", "group.group"):
        if args and is_bind(args[0]):
            return _compressed(instruction, mode)
        return None
    if instruction.module == "aggr":
        fn = instruction.function
        if fn in _SCALAR_AGGS and len(args) == 1 and is_bind(args[0]):
            return _compressed(instruction, mode)
        if fn in _GROUPED_AGGS and args and is_bind(args[0]):
            return _compressed(instruction, mode)
    return None
