"""``compress.*`` — operators that execute on compressed columns.

Registered on every *leaf* backend (MonetDB MS/MP, Ocelot, HET; the
sharded backend fans the instructions to its children untouched).  Each
operator re-checks its input at runtime: a plain BAT, or an encoding
the connection's ``compression=`` mode does not admit, simply
**delegates to the ordinary operator** — which reads ``values`` and
thereby takes the whole-column decode fallback.  That makes the
rewritten plan correct for any storage state, keeps prepared/cached
plans valid across tables, and means the compressed paths are pure
opportunism:

* **dictionary selections** translate value bounds into *code* bounds
  (binary search over the sorted dictionary) and run the ordinary
  select over the narrow code payload — on Ocelot devices the codes
  are what gets uploaded and cached, which is the GPU-ceiling win,
* **frame-of-reference selections** shift the bounds by the frame and
  scan the narrow deltas,
* **RLE selections and aggregations** touch ``n_runs`` elements
  instead of ``n`` rows, expanding qualifying runs into row oids,
* **scalar aggregates** fold over the payload (``sum`` via
  code-histogram · dictionary, run-value · run-length dot, frame
  arithmetic) with the same result dtypes as the native operators,
* **grouped aggregation over dictionary codes**: the dictionary is
  sorted, so grouping the codes yields exactly the dense
  ascending-key gids of grouping the values, and per-group code
  min/max map back through the dictionary — returned still encoded
  (late materialisation all the way to the result set).
"""

from __future__ import annotations

import numpy as np

from ..monetdb.bat import BAT, oid_bat
from ..monetdb.costmodel import OpCost
from .codecs import DictEncoding, FOREncoding, RLEEncoding, _narrowest_uint
from .encoded import EncodedBAT


def _encoding(b, mode: str):
    """The input's codec payload, if the mode admits executing on it."""
    if not isinstance(b, EncodedBAT):
        return None
    if mode != "auto" and b.encoding.kind != mode:
        return None
    return b.encoding


def _resolver(backend, fn: str, native_module: str):
    """The delegate for ``fn``: the Ocelot form when the backend has
    one (device execution over the narrow payload), else the native
    host operator."""
    ocelot = f"ocelot.{fn}"
    if backend.supports(ocelot):
        return backend.resolve(ocelot)
    return backend.resolve(f"{native_module}.{fn}")


def _charge(backend, op: str, elements: int, per_ns_attr: str = "agg_ns",
            merge_bytes: int = 0) -> None:
    """Charge simulated time on cost-modelled backends (no-op on
    backends whose delegates do their own accounting)."""
    model = getattr(backend, "model", None)
    charge = getattr(backend, "_charge", None)
    if model is None or charge is None:
        return
    charge(OpCost(
        op=op,
        work=model.ns(elements, getattr(model, per_ns_attr)),
        merge_bytes=merge_bytes,
    ))


def _sync_to_host(backend, bat):
    """Materialise a delegate's (possibly device-owned) BAT result."""
    if isinstance(bat, BAT) and not bat.has_host_values:
        return backend.resolve("ocelot.sync")(bat)
    return bat


# -- selections ------------------------------------------------------------

_EMPTY_RANGE = (1, 0, True, True)      # a predicate no value satisfies


def _dict_code_bounds(dictionary, lo, hi, li, hi_incl):
    """Translate value bounds into an inclusive code range (or the
    empty range): the dictionary is sorted, so a value predicate is a
    contiguous code interval."""
    cl = 0
    if lo is not None:
        cl = int(np.searchsorted(dictionary, lo,
                                 side="left" if li else "right"))
    ch = len(dictionary) - 1
    if hi is not None:
        side = "right" if hi_incl else "left"
        ch = int(np.searchsorted(dictionary, hi, side=side)) - 1
    if cl > ch:
        return _EMPTY_RANGE
    return cl, ch, True, True


def _for_shifted_bounds(frame, payload_dtype, lo, hi, li, hi_incl):
    """Shift value bounds into the unsigned delta domain, clamping
    out-of-range integer bounds (the payload dtype cannot represent
    them, and numpy 2 refuses out-of-bound ordered comparisons)."""
    dmax = int(np.iinfo(payload_dtype).max)
    lo_s = None if lo is None else lo - frame
    hi_s = None if hi is None else hi - frame
    if isinstance(lo_s, (int, np.integer)):
        if lo_s > dmax:
            return _EMPTY_RANGE
        if lo_s < 0:
            lo_s, li = 0, True
    if isinstance(hi_s, (int, np.integer)):
        if hi_s < 0:
            return _EMPTY_RANGE
        if hi_s > dmax:
            hi_s = None
    if lo_s is None and hi_s is None:
        # both bounds degenerated to always-true
        lo_s, li = 0, True
    return lo_s, hi_s, li, hi_incl


def _rle_row_oids(encoding: RLEEncoding, run_idx: np.ndarray) -> np.ndarray:
    """Expand qualifying run indices into ascending row positions."""
    ends = encoding.ends
    starts = (ends - encoding.run_lengths).astype(np.int64)
    sel_starts = starts[run_idx]
    sel_lens = encoding.run_lengths[run_idx].astype(np.int64)
    total = int(sel_lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.repeat(sel_starts, sel_lens)
    offsets = np.concatenate(([0], np.cumsum(sel_lens)[:-1]))
    out += np.arange(total, dtype=np.int64) - np.repeat(offsets, sel_lens)
    return out


def _compressed_select(backend, b, cand, lo, hi, li, hi_incl, anti, mode):
    encoding = _encoding(b, mode)
    select = _resolver(backend, "select", "algebra")
    if encoding is None:
        return select(b, cand, lo, hi, li, hi_incl, anti)

    if isinstance(encoding, DictEncoding):
        cl, ch, cli, chi = _dict_code_bounds(
            encoding.dictionary, lo, hi, li, hi_incl
        )
        return select(b.code_bat(), cand, cl, ch, cli, chi, anti)

    if isinstance(encoding, FOREncoding):
        code_bat = b.code_bat()
        lo_s, hi_s, li_s, hi_incl_s = _for_shifted_bounds(
            encoding.frame, code_bat.dtype, lo, hi, li, hi_incl
        )
        return select(code_bat, cand, lo_s, hi_s, li_s, hi_incl_s, anti)

    # RLE: select over the run values (n_runs elements), then expand
    # qualifying runs into row oids; candidates intersect afterwards
    # because they are row positions, not run positions.
    run_sel = _sync_to_host(
        backend, select(b.run_value_bat(), None, lo, hi, li, hi_incl, anti)
    )
    run_idx = run_sel.values.astype(np.int64, copy=False)
    oids = _rle_row_oids(encoding, run_idx)
    if cand is not None:
        oids = np.intersect1d(
            oids, cand.values.astype(np.int64, copy=False)
        )
    _charge(backend, "compress.select", oids.size,
            per_ns_attr="select_result_ns", merge_bytes=int(oids.nbytes))
    return oid_bat(oids, tag=f"{b.tag}#sel")


def _theta_bounds(val, op: str):
    """A thetaselect predicate as (lo, hi, li, hi_incl, anti)."""
    return {
        "==": (val, val, True, True, False),
        "!=": (val, val, True, True, True),
        "<":  (None, val, True, False, False),
        "<=": (None, val, True, True, False),
        ">":  (val, None, False, True, False),
        ">=": (val, None, True, True, False),
    }[op]


# -- scalar aggregation -----------------------------------------------------


def _dict_sum(encoding: DictEncoding):
    counts = np.bincount(
        encoding.codes.astype(np.int64, copy=False),
        minlength=len(encoding.dictionary),
    )
    d = encoding.dictionary
    if d.dtype.kind == "f":
        return float(np.dot(counts, d.astype(np.float64)))
    return int(np.dot(counts, d.astype(np.int64)))


def _rle_sum(encoding: RLEEncoding):
    v, n = encoding.run_values, encoding.run_lengths
    if v.dtype.kind == "f":
        return float(np.dot(n.astype(np.float64), v.astype(np.float64)))
    return int(np.dot(n.astype(np.int64), v.astype(np.int64)))


def _for_sum(encoding: FOREncoding):
    total = encoding.frame * encoding.count + int(
        np.sum(encoding.deltas, dtype=np.int64)
    )
    if encoding.dtype.kind == "f":      # pragma: no cover - int-only codec
        return float(total)
    return int(total)


def _compressed_scalar_agg(backend, b, agg: str, mode: str):
    encoding = None if agg == "count" else _encoding(b, mode)
    if agg == "count" and isinstance(b, EncodedBAT):
        # never decode just to count: the row count is metadata
        _charge(backend, "compress.count", b.count)
        return int(b.count)
    if encoding is None:
        return _resolver(backend, agg, "aggr")(b)

    if agg in ("sum", "avg"):
        if isinstance(encoding, DictEncoding):
            total = _dict_sum(encoding)
            _charge(backend, f"compress.{agg}", encoding.count)
        elif isinstance(encoding, RLEEncoding):
            total = _rle_sum(encoding)
            _charge(backend, f"compress.{agg}", encoding.n_runs)
        else:
            total = _for_sum(encoding)
            _charge(backend, f"compress.{agg}", encoding.count)
        if agg == "sum":
            return total
        return float(total) / float(b.count)

    # min / max
    if isinstance(encoding, DictEncoding):
        if b.full_column:
            # a base column's dictionary holds exactly the values
            # present, sorted: min/max are its end points
            _charge(backend, f"compress.{agg}", len(encoding.dictionary))
            d = encoding.dictionary
            return (d[0] if agg == "min" else d[-1]).item()
        code = encoding.codes.min() if agg == "min" else encoding.codes.max()
        _charge(backend, f"compress.{agg}", encoding.count)
        return encoding.dictionary[int(code)].item()
    if isinstance(encoding, RLEEncoding):
        # fold over the run values (the delegate charges n_runs work)
        return _resolver(backend, agg, "aggr")(b.run_value_bat())
    # FOR: fold the deltas, add the frame back
    reduced = _resolver(backend, agg, "aggr")(b.code_bat())
    return (np.int64(encoding.frame) + np.int64(reduced)).astype(
        encoding.dtype
    ).item()


# -- grouping / grouped aggregation ----------------------------------------


def _compressed_group(backend, b, mode: str):
    encoding = _encoding(b, mode)
    if isinstance(encoding, (DictEncoding, FOREncoding)):
        # codes/deltas are order-isomorphic to the values (sorted
        # dictionary, positive frame offsets): grouping them yields the
        # same dense ascending-key gids and group count
        return _resolver(backend, "group", "group")(b.code_bat())
    return _resolver(backend, "group", "group")(b)


def _compressed_grouped_minmax(backend, b, gids, ngroups, agg: str,
                               mode: str):
    encoding = _encoding(b, mode)
    if not isinstance(encoding, DictEncoding):
        return _resolver(backend, agg, "aggr")(b, gids, ngroups)
    # per-group min/max commute with the monotone code -> value map:
    # reduce the codes, map the winners through the dictionary, and
    # return the result *still dictionary-encoded* (late
    # materialisation: it only decodes if the result set reads it)
    reduced = _sync_to_host(
        backend,
        _resolver(backend, agg, "aggr")(b.code_bat(), gids, ngroups),
    )
    codes = reduced.values.astype(
        _narrowest_uint(max(len(encoding.dictionary) - 1, 0)), copy=False
    )
    return EncodedBAT(
        DictEncoding(dictionary=encoding.dictionary, codes=codes),
        tag=f"{b.tag}#{agg}", stats=b.stats, full_column=False,
    )


# -- registration -----------------------------------------------------------


def register_compress_ops(backend) -> None:
    """Register the ``compress.*`` operator set on a leaf backend."""

    def op_select(b, cand, lo, hi, li, hi_incl, anti, mode):
        return _compressed_select(
            backend, b, cand, lo, hi, bool(li), bool(hi_incl), bool(anti),
            mode,
        )

    def op_thetaselect(b, cand, val, op, mode):
        lo, hi, li, hi_incl, anti = _theta_bounds(val, op)
        return _compressed_select(
            backend, b, cand, lo, hi, li, hi_incl, anti, mode
        )

    def op_group(b, mode):
        return _compressed_group(backend, b, mode)

    backend.register("compress.select", op_select)
    backend.register("compress.thetaselect", op_thetaselect)
    backend.register("compress.group", op_group)
    for agg in ("sum", "min", "max", "count", "avg"):
        def op_scalar(b, mode, _agg=agg):
            return _compressed_scalar_agg(backend, b, _agg, mode)
        backend.register(f"compress.{agg}", op_scalar)
    for agg in ("submin", "submax"):
        def op_grouped(b, gids, ngroups, mode, _agg=agg):
            return _compressed_grouped_minmax(
                backend, b, gids, ngroups, _agg, mode
            )
        backend.register(f"compress.{agg}", op_grouped)
