"""Lightweight column codecs: dictionary, RLE, frame-of-reference.

The three families the compression-for-analytics playbook (PAPERS.md)
recommends for TPC-H-shaped data, implemented as plain numpy payload
holders with a uniform interface:

* :class:`DictEncoding` — sorted unique dictionary + per-row codes in
  the narrowest unsigned width the cardinality allows.  The dictionary
  being *sorted* is load-bearing: range predicates translate to code
  ranges and ``group.group`` over codes yields the same dense gids as
  over the values (both derive group ids in ascending value order).
* :class:`RLEEncoding` — run values + run lengths; selections and
  aggregations touch ``n_runs`` elements instead of ``n`` rows.
* :class:`FOREncoding` — frame of reference (minimum) + unsigned deltas
  bit-packed to the narrowest width.  Integer columns only; the
  YYYYMMDD date columns are the target (span ~60k → uint16 deltas).

Every codec supports ``encode``/``decode``/``slice_`` unconditionally —
including empty, constant, and all-distinct inputs — so the hypothesis
round-trip suite can hit each one directly; :func:`choose_encoding` is
the ``auto`` policy that decides which (if any) a base column keeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: columns shorter than this are never worth encoding
MIN_ENCODE_ROWS = 16

#: keep an encoding only if it beats the plain tail by at least this
#: factor (physical < nominal * MAX_PHYSICAL_FRACTION)
MAX_PHYSICAL_FRACTION = 0.75

#: the ``compression=`` modes that name a single codec
CODEC_KINDS = ("dict", "rle", "for")


def _narrowest_uint(max_value: int) -> np.dtype:
    """Smallest unsigned dtype that can hold ``max_value``."""
    if max_value < (1 << 8):
        return np.dtype(np.uint8)
    if max_value < (1 << 16):
        return np.dtype(np.uint16)
    if max_value < (1 << 32):
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


@dataclass
class DictEncoding:
    """Sorted-unique dictionary + narrow per-row codes."""

    dictionary: np.ndarray     # sorted unique values, original dtype
    codes: np.ndarray          # uint8/uint16/uint32 indexes into it

    kind = "dict"

    @classmethod
    def encode(cls, values: np.ndarray) -> "DictEncoding":
        dictionary, inverse = np.unique(values, return_inverse=True)
        width = _narrowest_uint(max(len(dictionary) - 1, 0))
        return cls(dictionary=dictionary,
                   codes=inverse.astype(width, copy=False))

    @property
    def count(self) -> int:
        return int(self.codes.size)

    @property
    def dtype(self) -> np.dtype:
        return self.dictionary.dtype

    @property
    def physical_nbytes(self) -> int:
        return int(self.dictionary.nbytes + self.codes.nbytes)

    @property
    def nominal_nbytes(self) -> int:
        return int(self.count * self.dtype.itemsize)

    def decode(self) -> np.ndarray:
        if self.count == 0:
            return np.empty(0, dtype=self.dtype)
        return self.dictionary[self.codes]

    def slice_(self, lo: int, hi: int) -> "DictEncoding":
        return DictEncoding(dictionary=self.dictionary,
                            codes=self.codes[lo:hi])


@dataclass
class RLEEncoding:
    """Run-length encoding: value + length per run."""

    run_values: np.ndarray     # original dtype
    run_lengths: np.ndarray    # int32 (int64 for very long columns)
    dtype_: np.dtype = None    # tail dtype (run_values may be empty)

    kind = "rle"

    def __post_init__(self):
        if self.dtype_ is None:
            self.dtype_ = self.run_values.dtype
        self._ends = None

    @classmethod
    def encode(cls, values: np.ndarray) -> "RLEEncoding":
        n = int(values.size)
        if n == 0:
            return cls(run_values=values[:0].copy(),
                       run_lengths=np.empty(0, dtype=np.int32),
                       dtype_=values.dtype)
        boundaries = np.flatnonzero(values[1:] != values[:-1])
        starts = np.concatenate(([0], boundaries + 1))
        lengths = np.diff(np.concatenate((starts, [n])))
        length_dtype = np.int64 if n >= (1 << 31) else np.int32
        return cls(run_values=values[starts].copy(),
                   run_lengths=lengths.astype(length_dtype, copy=False),
                   dtype_=values.dtype)

    @property
    def ends(self) -> np.ndarray:
        """Cumulative run end offsets (cached)."""
        if self._ends is None:
            self._ends = np.cumsum(self.run_lengths)
        return self._ends

    @property
    def count(self) -> int:
        return int(self.run_lengths.sum())

    @property
    def n_runs(self) -> int:
        return int(self.run_values.size)

    @property
    def dtype(self) -> np.dtype:
        return self.dtype_

    @property
    def physical_nbytes(self) -> int:
        return int(self.run_values.nbytes + self.run_lengths.nbytes)

    @property
    def nominal_nbytes(self) -> int:
        return int(self.count * self.dtype.itemsize)

    def decode(self) -> np.ndarray:
        if self.n_runs == 0:
            return np.empty(0, dtype=self.dtype)
        return np.repeat(self.run_values, self.run_lengths)

    def slice_(self, lo: int, hi: int) -> "RLEEncoding":
        if hi <= lo:
            return RLEEncoding(run_values=self.run_values[:0].copy(),
                               run_lengths=np.empty(0, dtype=np.int32),
                               dtype_=self.dtype)
        ends = self.ends
        i0 = int(np.searchsorted(ends, lo, side="right"))
        i1 = int(np.searchsorted(ends, hi, side="left"))
        values = self.run_values[i0:i1 + 1].copy()
        lengths = self.run_lengths[i0:i1 + 1].astype(
            self.run_lengths.dtype, copy=True
        )
        if i0 == i1:
            lengths[0] = hi - lo
        else:
            start0 = int(ends[i0]) - int(self.run_lengths[i0])
            lengths[0] = int(ends[i0]) - max(lo, start0)
            lengths[-1] = hi - (int(ends[i1]) - int(self.run_lengths[i1]))
        return RLEEncoding(run_values=values, run_lengths=lengths,
                           dtype_=self.dtype)


@dataclass
class FOREncoding:
    """Frame of reference + narrow unsigned deltas (integers only)."""

    frame: int                 # the reference (column minimum)
    deltas: np.ndarray         # narrow unsigned offsets from the frame
    dtype_: np.dtype = None    # original integer dtype

    kind = "for"

    def __post_init__(self):
        if self.dtype_ is None:
            self.dtype_ = np.dtype(np.int64)

    @classmethod
    def encode(cls, values: np.ndarray) -> "FOREncoding":
        if values.size == 0:
            return cls(frame=0, deltas=np.empty(0, dtype=np.uint8),
                       dtype_=values.dtype)
        frame = int(values.min())
        spread = int(values.max()) - frame
        width = _narrowest_uint(spread)
        deltas = (values.astype(np.int64) - frame).astype(width)
        return cls(frame=frame, deltas=deltas, dtype_=values.dtype)

    @property
    def count(self) -> int:
        return int(self.deltas.size)

    @property
    def dtype(self) -> np.dtype:
        return self.dtype_

    @property
    def physical_nbytes(self) -> int:
        return int(self.deltas.nbytes + 8)      # + the frame itself

    @property
    def nominal_nbytes(self) -> int:
        return int(self.count * self.dtype.itemsize)

    def decode(self) -> np.ndarray:
        if self.count == 0:
            return np.empty(0, dtype=self.dtype)
        return (self.deltas.astype(np.int64) + self.frame).astype(
            self.dtype
        )

    def slice_(self, lo: int, hi: int) -> "FOREncoding":
        return FOREncoding(frame=self.frame, deltas=self.deltas[lo:hi],
                           dtype_=self.dtype)


def _candidates(values: np.ndarray, mode: str):
    """Codec instances worth considering for ``values`` under ``mode``."""
    kinds = CODEC_KINDS if mode == "auto" else (mode,)
    out = []
    if "dict" in kinds:
        out.append(DictEncoding.encode(values))
    if "rle" in kinds:
        out.append(RLEEncoding.encode(values))
    if "for" in kinds and values.dtype.kind in "iu":
        out.append(FOREncoding.encode(values))
    return out


def choose_encoding(values: np.ndarray, mode: str = "auto"):
    """Pick the best codec for a base column, or ``None`` to stay plain.

    A column is only encoded when it is 1-D numeric, long enough to
    matter, NaN-free (NaN breaks dictionary equality), and some codec
    beats the plain tail by :data:`MAX_PHYSICAL_FRACTION`.  Ties prefer
    dict > rle > for — the dict paths cover the most operators.
    """
    if mode == "off":
        return None
    if values.ndim != 1 or values.size < MIN_ENCODE_ROWS:
        return None
    if values.dtype.kind not in "iuf":
        return None
    if values.dtype.kind == "f" and not np.isfinite(values).all():
        return None
    best = None
    for candidate in _candidates(values, mode):
        if candidate.physical_nbytes >= (
                candidate.nominal_nbytes * MAX_PHYSICAL_FRACTION):
            continue
        if best is None or candidate.physical_nbytes < best.physical_nbytes:
            best = candidate
    return best
