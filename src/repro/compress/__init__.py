"""``repro.compress`` — compressed columns, executed compressed.

ROADMAP's compressed-execution item: base columns are stored under
lightweight codecs (dictionary / run-length / frame-of-reference,
:mod:`~repro.compress.codecs`) chosen per column at
``Catalog.create_table`` time, held as
:class:`~repro.compress.encoded.EncodedBAT` tails that decompress only
at result materialisation, and *executed on* directly: a rewrite pass
(:mod:`~repro.compress.passes`, mirroring ``fuse``/``morsel``) routes
bind-direct selections, groupings and aggregations to the
``compress.*`` operator set (:mod:`~repro.compress.ops`), which
evaluates them over the narrow payloads — code-domain comparisons,
run-level folds — and falls back to a whole-column decode whenever a
column turned out plain.  Gated by the ``compression=off|auto|dict|
rle|for`` spec parameter on every engine family and the
``REPRO_COMPRESSION`` environment override; observability through
``Connection.compression`` (:class:`~repro.compress.stats.CompressionStats`).
"""

from .codecs import (
    CODEC_KINDS,
    DictEncoding,
    FOREncoding,
    MIN_ENCODE_ROWS,
    RLEEncoding,
    choose_encoding,
)
from .encoded import EncodedBAT
from .ops import register_compress_ops
from .passes import (
    COMPRESSION_ENV,
    MODES,
    compress_program,
    effective_compression,
    env_compression,
    storage_mode,
)
from .stats import CompressionStats

__all__ = [
    "CODEC_KINDS",
    "COMPRESSION_ENV",
    "CompressionStats",
    "DictEncoding",
    "EncodedBAT",
    "FOREncoding",
    "MIN_ENCODE_ROWS",
    "MODES",
    "RLEEncoding",
    "choose_encoding",
    "compress_program",
    "effective_compression",
    "env_compression",
    "register_compress_ops",
    "storage_mode",
]
