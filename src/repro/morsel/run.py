"""Morsel-at-a-time execution of one pipelined region.

:class:`MorselRun` drives a ``morsel.run`` instruction (built by
:func:`repro.morsel.passes.morselize_program`) for one backend.  The
interpreter's :class:`~repro.monetdb.interpreter.ProgramRun` holds the
program counter on the instruction and calls :meth:`step` until the run
reports completion, so each scheduler turn advances exactly one morsel —
the serve layer's pipelined schedulers interleave *morsels* of different
queries, not whole instructions.

Two execution modes:

``sliced``
    The driving oid space ``[0, n)`` is cut into ``[lo, lo+size)``
    ranges.  Each step slices every input column (``Backend.slice_base``),
    runs all member instructions against the slices inside
    ``Backend.morsel_scope()`` (the HET scheduler pins the whole morsel
    to the least-loaded device there — the morsel is the work-stealing
    unit), accumulates the morsel's contribution to every escaping
    output, and immediately releases the morsel-local intermediates via
    ``Backend.release_intermediates``.  Peak intermediate footprint is
    one morsel per live column instead of one full column per operator.

``whole``
    One member instruction per step against the full inputs — bitwise
    the old instruction-at-a-time semantics (same operators, same
    order, same errors), but still with last-use release of region
    intermediates.  Chosen when the table fits in a single morsel, when
    no input is a plain BAT (the sharded backend's distributed values),
    or when the backend requests it.

Row-order preservation of every member operator makes the sliced mode
exact: selections emit ascending slice-local positions (offset by ``lo``
on escape), gathers and element-wise kernels keep row order, so the
concatenated chunks equal the whole-column result.  Scalar aggregates
fold per-morsel partials (``avg`` via per-morsel sum/count pairs);
morsels whose aggregate input is empty are skipped, keeping one empty
witness so a fully-empty region still produces the operator's own
empty-input behaviour.
"""

from __future__ import annotations

import numpy as np

from ..monetdb.bat import BAT, OID_DTYPE, Role, make_bat, oid_bat
from ..monetdb.mal import Var
from .passes import MorselRegion


class MorselRun:
    """Stepwise executor for one :class:`MorselRegion`."""

    def __init__(self, backend, spec: MorselRegion, inputs,
                 whole: bool = False):
        self.backend = backend
        self.spec = spec
        self.inputs = list(inputs)
        self._slots = {
            var.name: value for var, value in zip(spec.inputs, inputs)
        }
        flags = spec.sliced or (True,) * len(spec.inputs)
        self._sliced_names = {
            var.name for var, f in zip(spec.inputs, flags) if f
        }
        to_cut = [self._slots[name] for name in self._sliced_names]
        counts = {v.count for v in to_cut if isinstance(v, BAT)}
        self._n = next(iter(counts)) if counts else 0
        size = int(spec.size)
        self.whole = bool(
            whole or size <= 0 or len(counts) != 1 or self._n <= size
            or not all(isinstance(v, BAT) for v in to_cut)
        )
        if not self.whole:
            # sliced inputs may be device-resident (an aligned group-id
            # column, an escaped positions list): bring them host-side
            # once so every [lo, hi) cut is a cheap view
            for name in self._sliced_names:
                self._slots[name] = self._to_host(self._slots[name])
        self.outputs = None
        self._out_specs = {out.name: out for out in spec.outputs}
        # group chains: members grouped per morsel with the backend's
        # own operators, merged through a global key-tuple dictionary
        # (see _morsel_l2g / _chain_rank)
        self._gchains: dict[str, dict] = {}
        self._ng_chains: dict[str, dict] = {}
        for member in spec.members:
            if len(member.results) != 2:
                continue
            if member.function == "group" and len(member.args) == 1:
                base = {"members": (member,), "keys": (member.args[0],)}
            elif (member.function == "subgroup"
                    and len(member.args) == 3
                    and isinstance(member.args[1], Var)
                    and member.args[1].name in self._gchains):
                parent = self._gchains[member.args[1].name]
                base = {
                    "members": parent["members"] + (member,),
                    "keys": parent["keys"] + (member.args[0],),
                }
            else:
                continue
            base.update(
                gids=member.results[0].name, ng=member.results[1].name,
                dict={}, dtypes=None, gdtype=None,
            )
            self._gchains[member.results[0].name] = base
            self._ng_chains[member.results[1].name] = base
        self._out_member = {
            var.name: member
            for member in spec.members
            for var in member.results
            if var.name in self._out_specs
        }
        self._lo = 0
        self._member_pos = 0
        self._env: dict = {}
        self._chunks: dict[str, list] = {}
        self._agg_parts: dict[str, list] = {}
        self._gagg_parts: dict[str, list] = {}
        self._lgagg_parts: dict[str, list] = {}
        self._agg_witness: dict[str, BAT] = {}
        self._last_use: dict[str, int] = {}
        for index, member in enumerate(spec.members):
            for arg in member.var_args():
                self._last_use[arg.name] = index

    # -- driving -------------------------------------------------------------

    def step(self) -> bool:
        """Advance one unit of work; ``True`` while more work remains.

        On the final step the escaping outputs are assembled into
        :attr:`outputs` (same order as ``spec.outputs``).
        """
        if self.outputs is not None:
            return False
        if self.whole:
            return self._step_whole()
        return self._step_morsel()

    def _step_whole(self) -> bool:
        member = self.spec.members[self._member_pos]
        self._execute(member, self._env, self._slots)
        self._release_dead(self._member_pos)
        self._member_pos += 1
        if self._member_pos < len(self.spec.members):
            return True
        self.outputs = tuple(
            self._env[out.name] for out in self.spec.outputs
        )
        return False

    def _step_morsel(self) -> bool:
        lo = self._lo
        hi = min(lo + self.spec.size, self._n)
        tracer = self.backend.tracer
        span = None
        if tracer is not None:
            span = tracer.begin("morsel", cat="morsel",
                                lo=lo, hi=hi, rows=hi - lo)
        slices = {}
        for name, value in self._slots.items():
            slices[name] = (
                self.backend.slice_base(value, lo, hi)
                if name in self._sliced_names and isinstance(value, BAT)
                else value
            )
        try:
            local: dict = {}
            with self.backend.morsel_scope():
                for member in self.spec.members:
                    self._execute(member, local, slices)
                self._harvest(local, slices, lo)
            self._release_locals(local, slices)
        finally:
            if span is not None:
                tracer.end(span)
        self._lo = hi
        if hi < self._n:
            return True
        self._finalize()
        return False

    # -- member execution ----------------------------------------------------

    def _execute(self, member, env, slots) -> None:
        out = self._out_specs.get(
            member.results[0].name if member.results else ""
        )
        if (not self.whole and out is not None and out.kind == "scalar"):
            self._partial_agg(member, out, env, slots)
            return
        if (not self.whole and out is not None and out.kind == "gagg"):
            self._partial_gagg(member, out, env, slots)
            return
        fn = self.backend.resolve(member.op)
        args = [self._value(a, env, slots) for a in member.args]
        result = fn(*args)
        if len(member.results) == 1:
            env[member.results[0].name] = result
            return
        if not isinstance(result, tuple) or len(result) != len(member.results):
            raise TypeError(
                f"{member.op} returned {result!r} for "
                f"{len(member.results)} results"
            )
        for var, value in zip(member.results, result):
            env[var.name] = value

    def _value(self, arg, env, slots):
        if isinstance(arg, Var):
            if arg.name in env:
                return env[arg.name]
            return slots[arg.name]
        return arg

    def _partial_agg(self, member, out, env, slots) -> None:
        column = self._value(member.args[0], env, slots)
        parts = self._agg_parts.setdefault(out.name, [])
        if isinstance(column, BAT) and column.count == 0:
            # keep one empty witness so a region with no surviving rows
            # reproduces the operator's own empty-input behaviour
            if out.name not in self._agg_witness:
                self._agg_witness[out.name] = column
            return
        if out.fn == "avg":
            s = self.backend.resolve(f"{out.module}.sum")(column)
            c = self.backend.resolve(f"{out.module}.count")(column)
            parts.append((s, c))
        else:
            parts.append(
                self.backend.resolve(f"{out.module}.{out.fn}")(column)
            )

    def _partial_gagg(self, member, out, env, slots) -> None:
        """Grouped aggregate: fold one morsel's per-group partial table.

        Partials combine exactly — sum/count add, min/max meet at the
        dtype identity ``segmented_reduce`` fills empty groups with, and
        avg folds per-morsel sum+count pairs (the final divide matches
        the whole-column kernels' ``sums / max(counts, 1)``)."""
        gids_arg = member.args[-2]
        chain = (self._gchains.get(gids_arg.name)
                 if isinstance(gids_arg, Var) else None)
        if chain is not None:
            self._partial_lgagg(member, out, env, slots, chain)
            return
        args = [self._value(a, env, slots) for a in member.args]
        parts = self._gagg_parts.setdefault(out.name, [])
        if out.fn == "avg":
            values, gids, ngroups = args
            sums = self.backend.resolve(f"{out.module}.subsum")(
                values, gids, ngroups
            )
            counts = self.backend.resolve(f"{out.module}.subcount")(
                gids, ngroups
            )
            parts.append((self._value_array(sums),
                          self._value_array(counts)))
            env[f"{out.name}#sum"] = sums
            env[f"{out.name}#count"] = counts
            return
        partial = self.backend.resolve(member.op)(*args)
        parts.append(self._value_array(partial))
        env[out.name] = partial

    # -- in-region grouping (local groups + global key dictionary) -----------

    def _morsel_l2g(self, chain, env, slots) -> np.ndarray:
        """Local-group → global-slot mapping for one morsel.

        First occurrence per dense local id yields each local group's
        key tuple; unseen tuples claim the next dictionary slot.  Memoised
        per morsel in ``env`` under ``<gids>#l2g``."""
        cached = env.get(f"{chain['gids']}#l2g")
        if cached is not None:
            return cached
        gbat = env[chain["gids"]]
        lgids = self._value_array(gbat).astype(np.int64)
        lng = int(env[chain["ng"]])
        if chain["gdtype"] is None and isinstance(gbat, BAT):
            chain["gdtype"] = gbat.dtype
        if lng == 0:
            l2g = np.empty(0, dtype=np.int64)
        else:
            _, first = np.unique(lgids, return_index=True)
            cols = [
                np.asarray(
                    self._value_array(self._value(arg, env, slots))
                )[first]
                for arg in chain["keys"]
            ]
            if chain["dtypes"] is None:
                chain["dtypes"] = tuple(c.dtype for c in cols)
            table = chain["dict"]
            l2g = np.empty(lng, dtype=np.int64)
            for i, key in enumerate(zip(*(c.tolist() for c in cols))):
                slot = table.get(key)
                if slot is None:
                    slot = len(table)
                    table[key] = slot
                l2g[i] = slot
        env[f"{chain['gids']}#l2g"] = l2g
        return l2g

    def _partial_lgagg(self, member, out, env, slots, chain) -> None:
        """Grouped aggregate over in-region (per-morsel local) group ids:
        keep the morsel's partial table together with its local→global
        slot mapping; :meth:`_fold_lgagg` scatters them at finalize."""
        l2g = self._morsel_l2g(chain, env, slots)
        if l2g.size == 0:
            return
        parts = self._lgagg_parts.setdefault(out.name, [])
        args = [self._value(a, env, slots) for a in member.args]
        if out.fn == "avg":
            sums = self.backend.resolve(f"{out.module}.subsum")(*args)
            counts = self.backend.resolve(f"{out.module}.subcount")(
                *args[1:]
            )
            parts.append((l2g, self._value_array(sums),
                          self._value_array(counts)))
            env[f"{out.name}#sum"] = sums
            env[f"{out.name}#count"] = counts
            return
        partial = self.backend.resolve(member.op)(*args)
        parts.append((l2g, self._value_array(partial)))
        env[out.name] = partial

    def _chain_rank(self, chain) -> np.ndarray:
        """Dictionary slot → final group id, computed once at finalize.

        Replays the grouping chain over the distinct key tuples with the
        backend's own operators: dense-id numbering is a function of the
        distinct key set alone in every backend (ascending keys;
        ``subgroup`` ranks lexicographic ``(parent, inner)`` pairs), so
        this reproduces the whole-column numbering at dictionary size."""
        rank = chain.get("rank")
        if rank is not None:
            return rank
        table = chain["dict"]
        n = len(table)
        if n == 0:
            chain["rank"] = np.empty(0, dtype=np.int64)
            return chain["rank"]
        scratch = []
        gids = ngroups = None
        for k, (member, dtype) in enumerate(
                zip(chain["members"], chain["dtypes"])):
            keys = np.array([key[k] for key in table], dtype=dtype)
            kbat = make_bat(keys, tag="morsel_gkeys")
            fn = self.backend.resolve(member.op)
            if member.function == "group":
                gids, ngroups = fn(kbat)
            else:
                gids, ngroups = fn(kbat, gids, ngroups)
            scratch.extend((kbat, gids))
        rank = self._value_array(gids).astype(np.int64)
        if int(ngroups) != n:
            raise RuntimeError(
                f"morsel group merge: {n} distinct keys but the replay "
                f"produced {int(ngroups)} groups"
            )
        self.backend.release_intermediates(scratch)
        chain["rank"] = rank
        return rank

    def _fold_lgagg(self, out, chain) -> BAT:
        rank = self._chain_rank(chain)
        n = len(chain["dict"])
        parts = self._lgagg_parts.get(out.name, [])
        if out.fn == "avg":
            sums = np.zeros(n, dtype=np.float64)
            counts = np.zeros(n, dtype=np.int64)
            for l2g, s, c in parts:
                np.add.at(sums, l2g, s.astype(np.float64))
                np.add.at(counts, l2g, c.astype(np.int64))
            acc = sums / np.maximum(counts, 1)
        elif out.fn in ("sum", "count"):
            dtype = parts[0][1].dtype if parts else np.dtype(np.int64)
            acc = np.zeros(n, dtype=dtype)
            for l2g, p in parts:
                np.add.at(acc, l2g, p)
        else:
            dtype = parts[0][1].dtype if parts else np.dtype(np.float64)
            if out.fn == "min":
                identity = (np.inf if dtype.kind == "f"
                            else np.iinfo(dtype).max)
                acc = np.full(n, identity, dtype=dtype)
                for l2g, p in parts:
                    np.minimum.at(acc, l2g, p)
            else:
                identity = (-np.inf if dtype.kind == "f"
                            else np.iinfo(dtype).min)
                acc = np.full(n, identity, dtype=dtype)
                for l2g, p in parts:
                    np.maximum.at(acc, l2g, p)
        # dictionary slots are insertion-ordered; rank renumbers them to
        # the engine's own ascending convention
        final = np.empty_like(acc)
        final[rank] = acc
        return make_bat(np.asarray(final), tag=f"morsel_{out.name}")

    # -- escaping outputs ----------------------------------------------------

    def _harvest(self, local, slices, lo) -> None:
        for out in self.spec.outputs:
            if out.kind in ("scalar", "gagg"):
                continue
            if out.kind == "gscalar":
                # feed the dictionary even when no aggregate consumed it
                self._morsel_l2g(self._ng_chains[out.name], local, slices)
                continue
            if out.kind == "ggids":
                chain = self._gchains[out.name]
                l2g = self._morsel_l2g(chain, local, slices)
                lgids = self._value_array(
                    local[out.name]
                ).astype(np.int64)
                self._chunks.setdefault(out.name, []).append(l2g[lgids])
                continue
            value = local[out.name]
            if out.kind == "positions":
                oids = self._positions_array(value)
                self._chunks.setdefault(out.name, []).append(
                    oids.astype(np.int64) + lo
                )
            else:
                self._chunks.setdefault(out.name, []).append(
                    np.asarray(self._value_array(value))
                )

    def _finalize(self) -> None:
        outputs = []
        for out in self.spec.outputs:
            if out.kind == "scalar":
                outputs.append(self._fold(out))
            elif out.kind == "gagg":
                outputs.append(self._fold_gagg(out))
            elif out.kind == "gscalar":
                chain = self._ng_chains[out.name]
                self._chain_rank(chain)     # validates the replay count
                outputs.append(len(chain["dict"]))
            elif out.kind == "ggids":
                chain = self._gchains[out.name]
                rank = self._chain_rank(chain)
                chunks = self._chunks.get(out.name, [])
                ids = (np.concatenate(chunks) if chunks
                       else np.empty(0, dtype=np.int64))
                final = rank[ids] if rank.size else ids
                dtype = chain["gdtype"] or np.int64
                outputs.append(make_bat(
                    final.astype(dtype), tag=f"morsel_{out.name}"
                ))
            elif out.kind == "positions":
                chunks = self._chunks.get(out.name, [])
                oids = (np.concatenate(chunks) if chunks
                        else np.empty(0, dtype=np.int64))
                outputs.append(oid_bat(
                    oids.astype(OID_DTYPE), tag=f"morsel_{out.name}"
                ))
            else:
                chunks = self._chunks[out.name]
                outputs.append(make_bat(
                    np.concatenate(chunks), tag=f"morsel_{out.name}"
                ))
        for witness in self._agg_witness.values():
            self.backend.release_intermediates([witness])
        self.outputs = tuple(outputs)

    def _fold(self, out):
        parts = self._agg_parts.get(out.name, [])
        if not parts:
            witness = self._agg_witness.get(out.name)
            if witness is None:
                raise RuntimeError(
                    f"morsel region produced no input for {out.name}"
                )
            return self.backend.resolve(
                f"{out.module}.{out.fn}"
            )(witness)
        if out.fn == "avg":
            total = parts[0][0]
            count = parts[0][1]
            for s, c in parts[1:]:
                total = total + s
                count = count + c
            return total / count
        if out.fn in ("sum", "count"):
            total = parts[0]
            for p in parts[1:]:
                total = total + p
            return total
        if out.fn == "min":
            return min(parts)
        return max(parts)

    def _fold_gagg(self, out) -> BAT:
        member = self._out_member[out.name]
        gids_arg = member.args[-2]
        chain = (self._gchains.get(gids_arg.name)
                 if isinstance(gids_arg, Var) else None)
        if chain is not None:
            return self._fold_lgagg(out, chain)
        parts = self._gagg_parts[out.name]
        if out.fn == "avg":
            total = parts[0][0].astype(np.float64)
            counts = parts[0][1].astype(np.int64)
            for sums, c in parts[1:]:
                total = total + sums
                counts = counts + c
            folded = total / np.maximum(counts, 1)
        elif out.fn in ("sum", "count"):
            folded = parts[0]
            for p in parts[1:]:
                folded = folded + p
        elif out.fn == "min":
            folded = np.minimum.reduce(parts)
        else:
            folded = np.maximum.reduce(parts)
        return make_bat(np.asarray(folded), tag=f"morsel_{out.name}")

    # -- host materialisation ------------------------------------------------

    def _to_host(self, bat: BAT) -> BAT:
        if not bat.has_host_values and self.backend.supports("ocelot.sync"):
            synced = self.backend.resolve("ocelot.sync")(bat)
            if isinstance(synced, BAT):
                return synced
        return bat

    def _value_array(self, bat):
        if not isinstance(bat, BAT):
            return np.asarray(bat)
        bat = self._to_host(bat)
        values = np.asarray(bat.peek_values())
        if values.shape[0] != bat.count:
            values = values[: bat.count]
        return values

    def _positions_array(self, bat: BAT) -> np.ndarray:
        bat = self._to_host(bat)
        values = np.asarray(bat.peek_values())
        if bat.role is Role.BITMAP:
            nbits = getattr(bat, "nbits", None) or values.shape[0]
            return np.flatnonzero(values[:nbits]).astype(np.int64)
        if values.shape[0] != bat.count:
            values = values[: bat.count]
        return values.astype(np.int64)

    # -- liveness ------------------------------------------------------------

    def _release_dead(self, position: int) -> None:
        """Whole mode: release region defs past their last use."""
        dead = []
        for name, value in list(self._env.items()):
            if name in self._out_specs:
                continue
            if self._last_use.get(name, -1) > position:
                continue
            if any(value is slot for slot in self._slots.values()):
                continue
            dead.append(value)
            del self._env[name]
        if dead:
            self.backend.release_intermediates(dead)

    def _release_locals(self, local, slices) -> None:
        """Sliced mode: drop every morsel-local value once harvested."""
        dead = []
        witnesses = list(self._agg_witness.values())
        for value in local.values():
            if any(value is w for w in witnesses):
                continue
            if any(value is slot for slot in slices.values()):
                continue
            dead.append(value)
        if dead:
            self.backend.release_intermediates(dead)
