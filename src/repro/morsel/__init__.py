"""Morsel-driven execution: stream oid-range batches through pipelined
operator regions instead of materialising full columns between operators
(Leis et al., SIGMOD'14, applied to this repo's MAL/Ocelot stack)."""

from .passes import (
    DEFAULT_MORSEL_SIZE,
    MIN_REGION,
    MorselOutput,
    MorselRegion,
    count_regions,
    env_morsel_size,
    morsel_enabled,
    morselize_program,
)
from .run import MorselRun

__all__ = [
    "DEFAULT_MORSEL_SIZE",
    "MIN_REGION",
    "MorselOutput",
    "MorselRegion",
    "MorselRun",
    "count_regions",
    "env_morsel_size",
    "morsel_enabled",
    "morselize_program",
]
