"""The morsel pass: carve pipeline-safe regions out of a MAL plan.

A dataflow pass over a :class:`~repro.monetdb.mal.MALProgram` (mirroring
the fusion pass, :mod:`repro.fuse.passes`) that finds maximal *pipelined
regions* — chains of selections, gathers (``algebra.projection``),
element-wise ``batcalc`` / fused ``fuse.pipe`` work and terminal
aggregations — and replaces each region with a single ``morsel.run``
instruction carrying a :class:`MorselRegion` spec.

At execution time the interpreter hands the spec to the backend's
``morsel_runner`` (see :class:`repro.morsel.run.MorselRun`), which breaks
the driving row space into fixed-size morsels and streams each morsel
through the whole region: intermediates stay morsel-sized and are
released at last use instead of end-of-query, which is exactly the
memory-stall-dominated access pattern morsel-driven pipelining removes.

Two region shapes share one machinery:

*table-driven*
    Inputs are ``sql.bind`` results over one driving table; a single
    ``[lo, hi)`` oid range slices them all consistently.

*positions-driven*
    The drive is a previously-materialised positions column (a select
    result, sort order, or escaped output of an earlier region); the
    region's gathers read **whole** base columns at the sliced drive
    positions, element-wise work runs over the gathered morsels, and
    grouped aggregates (``aggr.subsum``/…) fold per-morsel partial
    tables that combine exactly (sum/count add, min/max meet at the
    dtype identity, avg via sum+count pairs).  This is the shape that
    keeps a query's post-``group`` projection→calc→aggregate pipeline
    morsel-sized.

Grouping itself (``group.group``/``group.subgroup``) may join a region
too: each morsel is grouped *locally* with the backend's own operators,
the run maintains a global dictionary of distinct key tuples, and the
grouped-aggregate partials are scattered through the local→global slot
mapping.  Dense group-id numbering in every backend is a function of
the distinct key set alone (ascending keys; ``subgroup`` ranks
lexicographic ``(parent, inner)`` pairs), so replaying the chain over
the collected distinct keys at finalize reproduces the whole-column
ids exactly — at dictionary size instead of column size.  The gids
column and the full-width grouping hash table never materialise unless
a gids definition actually escapes the region.

The pass understands both operator vocabularies — the MonetDB modules
(``algebra``/``batcalc``/``aggr``/``fuse``) and the post-rewrite Ocelot
module — so it runs *after* the Ocelot rewriter in every engine's
optimizer pipeline (:meth:`repro.engines.EngineConfig.plan`).

Safety rules, in order:

* every member is row-order-preserving (selections emit ascending
  positions, gathers and element-wise kernels preserve row order), so
  concatenating per-morsel outputs reproduces the whole-column result
  exactly,
* each definition is tracked with its *row space*: the driving space
  (``D`` for the bound table, ``proj:<drive>`` for a positions drive;
  slice-local positions offset by ``lo`` on escape) or a derived space
  created by each in-region projection; element-wise members require
  all operands in one space,
* an *external* BAT operand of an element-wise or grouped-aggregate
  member may join as an **aligned input** (sliced with the drive) only
  when the member's in-region operands live in the drive space itself —
  the one space fixed ``[lo, hi)`` ranges actually cut; plan validity
  guarantees the positional pairing that slicing preserves,
* a region is sealed the moment any non-member consumes one of its
  definitions (the fusion pass's rule) and split into variable-connected
  components,
* a component is dropped — left exactly in place — when an escaping
  positions column lives in a derived space (its morsel-local offsets
  are not reconstructible), when one value is used both sliced and
  whole, or when an escaping positions column feeds a single-device
  Ocelot ``oidunion``/``oidintersect`` (whose bitmap algebra rejects
  host oid lists), or when the component is smaller than
  ``MIN_REGION``.

The ``REPRO_MORSEL`` environment variable globally gates the pass
(``off``/``0``/``false``/``no`` disables it; a positive integer both
enables it and overrides the morsel size), and every engine family
accepts a ``morsel=off`` / ``morsel=<rows>`` spec parameter — the
whole-column path stays the A/B baseline, and the serve layer's plan
cache keys on the effective switch so the two compilations never mix.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass, field

from ..fuse.passes import FUSABLE_CALC
from ..monetdb.mal import MALInstruction, MALProgram, Var

#: default morsel size (rows per batch) — L2-friendly for 4-byte tails
DEFAULT_MORSEL_SIZE = 65536

#: minimum component size worth streaming (a single operator gains
#: nothing from morsel-at-a-time execution)
MIN_REGION = 2

_SELECT_OPS = frozenset({
    "algebra.select", "algebra.thetaselect",
    "ocelot.select", "ocelot.thetaselect",
    "compress.select", "compress.thetaselect",
})
_PROJECTION_OPS = frozenset({"algebra.projection", "ocelot.projection"})
_PIPE_OPS = frozenset({"fuse.pipe", "ocelot.pipe"})
_OIDCOMBINE_OPS = frozenset({
    "algebra.oidunion", "algebra.oidintersect",
    "ocelot.oidunion", "ocelot.oidintersect",
})
_SCALAR_AGG_FNS = frozenset({"sum", "min", "max", "count", "avg"})
_GROUP_AGG_FNS = frozenset({
    "subsum", "submin", "submax", "subcount", "subavg",
})
_AGG_MODULES = frozenset({"aggr", "ocelot"})

#: the driving row space of a table-driven region (the bound oid space)
_DRIVE = "D"

#: which result positions of an operator are BAT-valued, by function
#: name (module-agnostic: covers both algebra.* and the ocelot.* forms)
_FN_BAT_RESULTS = {
    "bind": (True,), "projection": (True,),
    "select": (True,), "thetaselect": (True,),
    "sort": (True, True), "join": (True, True), "thetajoin": (True, True),
    "semijoin": (True,), "antijoin": (True,), "firstn": (True,),
    "mirror": (True,), "group": (True, False), "subgroup": (True, False),
    "oidunion": (True,), "oidintersect": (True,),
    "subsum": (True,), "submin": (True,), "submax": (True,),
    "subcount": (True,), "subavg": (True,), "sync": (True,),
}


def morsel_enabled() -> bool:
    """Global switch: ``REPRO_MORSEL=off|0|false|no`` disables the pass."""
    return os.environ.get("REPRO_MORSEL", "on").strip().lower() not in (
        "off", "0", "false", "no",
    )


def env_morsel_size() -> "int | None":
    """A positive-integer ``REPRO_MORSEL`` overrides the morsel size."""
    raw = os.environ.get("REPRO_MORSEL", "").strip()
    if raw.isdigit() and int(raw) > 0:
        return int(raw)
    return None


@dataclass(frozen=True)
class MorselOutput:
    """One escaping definition of a region: what the run must rebuild."""

    name: str
    #: "value" | "positions" | "scalar" | "gagg" | "ggids" | "gscalar"
    kind: str
    fn: str = ""         # aggregate fold: sum/min/max/count/avg
    module: str = ""     # agg module ("aggr"/"ocelot"), for partials


@dataclass(frozen=True)
class MorselRegion:
    """One pipelined region: members, inputs and escaping outputs.

    Appears as the first argument of a ``morsel.run`` instruction, so
    ``explain()`` renders region boundaries through :meth:`__repr__`.
    """

    table: str                       # driving table or positions column
    size: int                        # rows per morsel
    members: tuple = ()              # member MALInstructions, in order
    inputs: tuple = ()               # region input Vars, first-use order
    outputs: tuple = ()              # MorselOutput per escaping def
    #: positions outputs valued in the driving space (offsettable by lo)
    drive_positions: frozenset = field(default_factory=frozenset)
    #: parallel to ``inputs``: True = cut per morsel, False = pass whole
    sliced: tuple = ()

    def __repr__(self) -> str:
        ops = "; ".join(m.op for m in self.members)
        outs = ", ".join(
            f"{o.name}:{o.fn or o.kind}" for o in self.outputs
        )
        return (
            f"region<{self.table}, {self.size} rows/morsel | "
            f"{ops} | out: {outs}>"
        )


def _literal(arg) -> bool:
    return not isinstance(arg, Var)


def _bat_flags(instruction: MALInstruction) -> tuple:
    if (instruction.module in ("batcalc", "fuse")
            or instruction.function in FUSABLE_CALC
            or instruction.function == "pipe"):
        return (True,) * len(instruction.results)
    return _FN_BAT_RESULTS.get(
        instruction.function, (False,) * len(instruction.results)
    )


def morselize_program(program: MALProgram,
                      size: int = DEFAULT_MORSEL_SIZE,
                      min_region: int = MIN_REGION) -> MALProgram:
    """Rewrite ``program``, collapsing pipelined regions to ``morsel.run``."""
    instructions = program.instructions
    if any(i.module == "morsel" for i in instructions):
        return program      # already morselized: the pass is a no-op
    result_vars = {var.name for _, var in program.result_columns}

    bind_table: dict[str, str] = {}
    total_uses: Counter = Counter()
    consumed_by: dict[str, list[str]] = {}
    bat_vars: set[str] = set()
    positions_vars: set[str] = set()
    for instruction in instructions:
        if instruction.op == "sql.bind" and instruction.results:
            ref = instruction.args[0]
            table = getattr(ref, "table", None)
            if table is not None:
                bind_table[instruction.results[0].name] = table
        if instruction.op in _SELECT_OPS or instruction.op in _OIDCOMBINE_OPS:
            positions_vars.add(instruction.results[0].name)
        elif instruction.function == "sort" and len(instruction.results) == 2:
            positions_vars.add(instruction.results[1].name)
        elif instruction.op in _PIPE_OPS:
            for var, out in zip(instruction.results,
                                instruction.args[0].outputs):
                if out.is_select:
                    positions_vars.add(var.name)
        for var, is_bat in zip(instruction.results, _bat_flags(instruction)):
            if is_bat:
                bat_vars.add(var.name)
        for arg in instruction.args:
            if isinstance(arg, Var):
                total_uses[arg.name] += 1
                consumed_by.setdefault(arg.name, []).append(instruction.op)

    # -- phase 1: sealed super-regions ---------------------------------------
    #: (member indices, drive) per sealed region
    regions: list[tuple[list[int], tuple]] = []
    members: list[int] = []
    #: member def -> (kind, row space); spaces: _DRIVE, "proj:<oids>", …
    defs: dict[str, tuple[str, str]] = {}
    #: the open region's drive: ("table", name) | ("positions", var)
    drive: list = [None]
    #: region input name -> "sliced" | "whole"
    input_mode: dict[str, str] = {}
    member_kinds: dict[int, tuple] = {}
    member_modes: dict[int, tuple] = {}

    def space_of_drive(d) -> "str | None":
        if d is None:
            return None
        return _DRIVE if d[0] == "table" else f"proj:{d[1]}"

    def classify(instruction: MALInstruction):
        """``(kinds, modes, drive)`` if the instruction can join the open
        region right now, else ``None``.  ``kinds`` holds one
        ``(kind, space)`` per result; ``modes`` the input-mode
        assignments the member relies on; ``drive`` the (possibly newly
        proposed) region drive."""
        op = instruction.op
        modes: list[tuple[str, str]] = []
        proposal: list = [drive[0]]

        def mode_ok(name: str, mode: str) -> bool:
            prev = input_mode.get(name)
            if prev is not None and prev != mode:
                return False
            for n, m in modes:
                if n == name and m != mode:
                    return False
            modes.append((name, mode))
            return True

        def vspace(arg) -> "str | None":
            """Row space of a value operand: an in-region definition, a
            drive-table bind, or an already-aligned sliced input."""
            if not isinstance(arg, Var):
                return None
            entry = defs.get(arg.name)
            if entry is not None:
                return entry[1] if entry[0] == "value" else None
            table = bind_table.get(arg.name)
            if table is not None:
                if proposal[0] is None:
                    proposal[0] = ("table", table)
                if proposal[0] == ("table", table) \
                        and mode_ok(arg.name, "sliced"):
                    return _DRIVE
                return None
            if input_mode.get(arg.name) == "sliced":
                space = space_of_drive(proposal[0])
                if space is not None and mode_ok(arg.name, "sliced"):
                    return space
            return None

        def align(args):
            """Admit external BAT operands as aligned (sliced) inputs:
            sound only when the member's in-region space is the drive
            space itself.  Returns the shared space or None."""
            spaces: set = set()
            ext: list[Var] = []
            for arg in args:
                if not isinstance(arg, Var):
                    return None
                space = vspace(arg)
                if space is None:
                    if arg.name in defs or arg.name not in bat_vars:
                        return None
                    ext.append(arg)
                    continue
                spaces.add(space)
            if len(spaces) != 1:
                return None
            space = spaces.pop()
            if ext:
                if space != space_of_drive(proposal[0]):
                    return None
                for arg in ext:
                    if not mode_ok(arg.name, "sliced"):
                        return None
            return space

        if op in _SELECT_OPS:
            src, cand = instruction.args[0], instruction.args[1]
            space = align((src,)) if isinstance(src, Var) else None
            if space is None:
                return None
            if cand is not None:
                if not isinstance(cand, Var):
                    return None
                if defs.get(cand.name) != ("positions", space):
                    return None
            if any(not _literal(a) for a in instruction.args[2:]):
                return None
            return ((("positions", space),), tuple(modes), proposal[0])

        if op in _PROJECTION_OPS:
            oids, src = instruction.args[0], instruction.args[1]
            if not isinstance(oids, Var):
                return None
            entry = defs.get(oids.name)
            if entry is not None:
                if entry[0] != "positions":
                    return None
                space = vspace(src)
                if space is None and entry[1] == space_of_drive(proposal[0]):
                    # gather through drive-space (slice-local) positions
                    # from an aligned external column
                    space = align((src,)) if isinstance(src, Var) else None
                if space != entry[1]:
                    return None
                kinds = (("value", f"proj:{oids.name}"),)
                return (kinds, tuple(modes), proposal[0])
            # a gather through an external positions column drives (or
            # joins) a positions-driven region: the sources stay whole,
            # the positions are cut into morsels
            if oids.name not in positions_vars:
                return None
            if proposal[0] is None:
                proposal[0] = ("positions", oids.name)
            elif proposal[0] != ("positions", oids.name):
                return None
            if not mode_ok(oids.name, "sliced"):
                return None
            if not isinstance(src, Var) or src.name in defs \
                    or src.name not in bat_vars:
                return None
            if not mode_ok(src.name, "whole"):
                return None
            kinds = (("value", f"proj:{oids.name}"),)
            return (kinds, tuple(modes), proposal[0])

        if (instruction.module in ("batcalc", "ocelot")
                and instruction.function in FUSABLE_CALC
                and len(instruction.results) == 1):
            var_args = instruction.var_args()
            if not var_args:
                return None
            space = align(var_args)
            if space is None:
                return None
            return ((("value", space),), tuple(modes), proposal[0])

        if op in _PIPE_OPS:
            spec = instruction.args[0]
            var_args = instruction.var_args()
            if not var_args:
                return None
            space = align(var_args)
            if space is None:
                return None
            kinds = tuple(
                ("positions" if out.is_select else "value", space)
                for out in spec.outputs
            )
            return (kinds, tuple(modes), proposal[0])

        if op in _OIDCOMBINE_OPS:
            a, b = instruction.args[0], instruction.args[1]
            if not isinstance(a, Var) or not isinstance(b, Var):
                return None
            ea, eb = defs.get(a.name), defs.get(b.name)
            if ea is None or ea != eb or ea[0] != "positions":
                return None
            return ((("positions", ea[1]),), tuple(modes), proposal[0])

        if (instruction.function == "group"
                and instruction.module in ("group", "ocelot")
                and len(instruction.results) == 2
                and len(instruction.args) == 1
                and isinstance(instruction.args[0], Var)):
            space = align(instruction.args)
            if space is None:
                return None
            # per-morsel local grouping; the run's key dictionary makes
            # the ids global again at finalize.  Neither result may be
            # consumed except by subgroup / grouped aggregates below.
            kinds = (("ggids", space), ("gscalar", space))
            return (kinds, tuple(modes), proposal[0])

        if (instruction.function == "subgroup"
                and instruction.module in ("group", "ocelot")
                and len(instruction.results) == 2
                and len(instruction.args) == 3):
            col, parent, ngroups = instruction.args
            if not isinstance(parent, Var) \
                    or defs.get(parent.name, ("",))[0] != "ggids":
                return None
            if not isinstance(ngroups, Var) \
                    or defs.get(ngroups.name, ("",))[0] != "gscalar":
                return None
            if not isinstance(col, Var):
                return None
            space = align((col,))
            if space is None or space != defs[parent.name][1]:
                return None
            kinds = (("ggids", space), ("gscalar", space))
            return (kinds, tuple(modes), proposal[0])

        if (instruction.module in _AGG_MODULES
                and instruction.function in _GROUP_AGG_FNS
                and len(instruction.results) == 1):
            args = instruction.args
            expect = 2 if instruction.function == "subcount" else 3
            if len(args) != expect:
                return None
            gids, ngroups = args[-2], args[-1]
            gentry = defs.get(gids.name) if isinstance(gids, Var) else None
            if gentry is not None and gentry[0] == "ggids":
                # in-region grouping: per-morsel local partials, merged
                # through the run's key dictionary at finalize
                if not isinstance(ngroups, Var) \
                        or defs.get(ngroups.name, ("",))[0] != "gscalar":
                    return None
                space = gentry[1]
                if expect == 3 and align(args[:1]) != space:
                    return None
                kinds = (("gagg", space),)
                return (kinds, tuple(modes), proposal[0])
            if isinstance(ngroups, Var):
                if ngroups.name in defs or ngroups.name in bat_vars:
                    return None
                if not mode_ok(ngroups.name, "whole"):
                    return None
            space = align(args[:-1])
            if space is None:
                return None
            # the per-group partial table lives in its own space that
            # no later member may consume (it only exists at finalize)
            kinds = (("gagg", space),)
            return (kinds, tuple(modes), proposal[0])

        if (instruction.module in _AGG_MODULES
                and instruction.function in _SCALAR_AGG_FNS
                and len(instruction.args) == 1
                and isinstance(instruction.args[0], Var)):
            if vspace(instruction.args[0]) is None:
                return None
            return ((("scalar", _DRIVE),), tuple(modes), proposal[0])

        return None

    def seal():
        if members and drive[0] is not None:
            regions.append((list(members), drive[0]))
        members.clear()
        defs.clear()
        input_mode.clear()
        drive[0] = None

    def admit(index: int, instruction: MALInstruction, plan) -> None:
        kinds, modes, proposed = plan
        members.append(index)
        drive[0] = proposed
        for name, mode in modes:
            input_mode[name] = mode
        for var, entry in zip(instruction.results, kinds):
            defs[var.name] = entry
        member_kinds[index] = kinds
        member_modes[index] = modes

    for index, instruction in enumerate(instructions):
        plan = classify(instruction)
        if members and plan is None and any(
            isinstance(a, Var) and a.name in defs
            for a in instruction.args
        ):
            seal()
            plan = classify(instruction)
        elif members and plan is None:
            # the instruction may be unable to join only because the
            # open region is driven elsewhere (a new pipeline over a
            # different table): if it could *start* a region, seal the
            # open one and let it.  Tried against cleared state and
            # rolled back when it changes nothing, so instructions that
            # are no member under any drive (binds, joins, sorts) never
            # cut a region short.
            saved = (dict(defs), dict(input_mode), drive[0])
            defs.clear()
            input_mode.clear()
            drive[0] = None
            plan = classify(instruction)
            defs.update(saved[0])
            input_mode.update(saved[1])
            drive[0] = saved[2]
            if plan is not None:
                seal()
        if plan is not None:
            admit(index, instruction, plan)
    seal()

    # -- phase 2: variable-connected components ------------------------------
    components: list[tuple[list[int], tuple]] = []
    for indices, region_drive in regions:
        for component in _connected_components(indices, instructions):
            components.append((component, region_drive))

    # -- phase 3: emit -------------------------------------------------------
    replaced: set[int] = set()
    region_at: dict[int, MALInstruction] = {}
    for component, region_drive in components:
        if len(component) < min_region:
            continue
        emitted = _build_region(
            component, instructions, region_drive,
            member_kinds, member_modes,
            total_uses, consumed_by, result_vars, size,
        )
        if emitted is None:
            continue
        replaced.update(component)
        region_at[component[-1]] = emitted

    if not region_at:
        return program
    out = MALProgram(
        name=program.name,
        result_columns=list(program.result_columns),
    )
    for index, instruction in enumerate(instructions):
        emitted = region_at.get(index)
        if emitted is not None:
            out.instructions.append(emitted)
        elif index not in replaced:
            out.instructions.append(instruction)
    return out


def _connected_components(region, instructions):
    """Split one sealed region into variable-connected components."""
    parent: dict[str, str] = {}

    def find(name: str) -> str:
        root = name
        while parent.setdefault(root, root) != root:
            root = parent[root]
        parent[name] = root
        return root

    def union(a: str, b: str) -> None:
        parent[find(a)] = find(b)

    for index in region:
        instruction = instructions[index]
        names = [instruction.results[0].name] + [
            a.name for a in instruction.var_args()
        ]
        for other in names[1:]:
            union(names[0], other)
    grouped: dict[str, list[int]] = {}
    for index in region:
        root = find(instructions[index].results[0].name)
        grouped.setdefault(root, []).append(index)
    return list(grouped.values())


def _build_region(indices, instructions, drive, member_kinds, member_modes,
                  total_uses, consumed_by, result_vars,
                  size) -> "MALInstruction | None":
    """One ``morsel.run`` instruction for a component (or ``None`` when
    the component is unsafe or has no live output — emit unchanged)."""
    members = [instructions[i] for i in indices]
    drive_space = _DRIVE if drive[0] == "table" else f"proj:{drive[1]}"

    defs: dict[str, tuple[str, str]] = {}
    for i in indices:
        for var, entry in zip(instructions[i].results, member_kinds[i]):
            defs[var.name] = entry
    mode: dict[str, str] = {}
    for i in indices:
        for name, m in member_modes[i]:
            if name in defs:
                continue
            if mode.get(name, m) != m:
                return None    # one value used both sliced and whole
            mode[name] = m

    inputs: list[Var] = []
    sliced: list[bool] = []
    seen: set[str] = set()
    for member in members:
        for arg in member.var_args():
            if arg.name in defs or arg.name in seen:
                continue
            m = mode.get(arg.name)
            if m is None:
                return None    # classification hole — stay safe
            seen.add(arg.name)
            inputs.append(arg)
            sliced.append(m == "sliced")

    internal: Counter = Counter()
    for member in members:
        for arg in member.args:
            if isinstance(arg, Var):
                internal[arg.name] += 1

    outputs: list[MorselOutput] = []
    out_vars: list[Var] = []
    drive_positions: set[str] = set()
    for member in members:
        for var in member.results:
            kind, space = defs[var.name]
            external = total_uses[var.name] - internal[var.name]
            if external <= 0 and var.name not in result_vars:
                continue
            if kind == "positions":
                if space != drive_space:
                    # morsel-local offsets into a derived space are not
                    # reconstructible base oids: leave the region alone
                    return None
                if any(op in ("ocelot.oidunion", "ocelot.oidintersect")
                       for op in consumed_by.get(var.name, ())):
                    # single-device Ocelot's bitmap algebra rejects
                    # host oid lists — keep the whole-column path here
                    return None
                drive_positions.add(var.name)
            if kind == "scalar":
                outputs.append(MorselOutput(
                    var.name, "scalar",
                    fn=member.function, module=member.module,
                ))
            elif kind == "gagg":
                outputs.append(MorselOutput(
                    var.name, "gagg",
                    fn=member.function[3:], module=member.module,
                ))
            else:
                outputs.append(MorselOutput(var.name, kind))
            out_vars.append(var)
    if not outputs:
        return None
    spec = MorselRegion(
        table=drive[1], size=int(size), members=tuple(members),
        inputs=tuple(inputs), outputs=tuple(outputs),
        drive_positions=frozenset(drive_positions),
        sliced=tuple(sliced),
    )
    return MALInstruction(
        tuple(out_vars), "morsel", "run", (spec,) + tuple(inputs)
    )


def count_regions(program: MALProgram) -> int:
    """Number of ``morsel.run`` instructions in a plan (test helper)."""
    return sum(1 for i in program.instructions if i.op == "morsel.run")
