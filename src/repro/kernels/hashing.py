"""Parallel hashing kernels (paper §4.1.4, after Alcantara et al. [2, 3]).

The paper's scheme, reproduced faithfully:

1. an **optimistic** round lets every thread insert its keys without any
   synchronisation — colliding distinct keys may overwrite each other;
2. a **check** round verifies every key ended up in the table;
3. a **pessimistic** round re-inserts failed keys with atomic
   compare-and-swap, re-hashing with **six strong hash functions** before
   reverting to **linear probing** from the last hash position;
4. if even that fails (probe limit), the host restarts with a larger
   table.  Restarts are avoided by over-allocating 1.4x for the observed
   ~75 % fill rate (host policy, :mod:`repro.ocelot.operators.hashing`).

No stash is used (the paper found none needed).  Tables are two ``uint32``
arrays (keys, values); ``EMPTY`` (0xFFFFFFFF) marks free slots, so keys
must not take that value — column values are bijectively encoded first
(:func:`repro.kernels.radix_sort.encode_keys` never produces 0xFFFFFFFF
for int32/float32; uint32 callers reserve it).

The vectorised driver emulates CAS deterministically: within one insertion
round the lowest-index pending key wins a contested slot, a legal CAS
outcome, and the same rule the reference interpreter applies — so both
drivers build identical tables.
"""

from __future__ import annotations

import numpy as np

from ..cl import CLError, KernelDef, KernelWork, params

EMPTY = np.uint32(0xFFFFFFFF)

#: Number of strong hash functions before linear probing (paper §4.1.4).
NUM_HASH_FUNCTIONS = 6

#: Maximum linear-probe distance before the build gives up and the host
#: restarts with a larger table.
PROBE_LIMIT = 64

# Odd multiplicative constants (Knuth-style golden-ratio family).
_MULTIPLIERS = np.array(
    [2654435761, 2246822519, 3266489917, 668265263, 374761393, 2166136261],
    dtype=np.uint64,
)
_MIXERS = np.array(
    [2484345967, 1831565813, 3571494541, 2654435789, 1099087573, 2971215073],
    dtype=np.uint64,
)


class TableFull(CLError):
    """Pessimistic insertion exceeded the probe limit; restart bigger."""


def hash_slot(keys: np.ndarray, func: int, m: int) -> np.ndarray:
    """The ``func``-th strong hash of ``keys`` into ``[0, m)``.

    Multiply-xorshift-multiply in 64-bit, reduced modulo the table size.
    """
    k = keys.astype(np.uint64, copy=False)
    h = (k * _MULTIPLIERS[func]) & np.uint64(0xFFFFFFFF)
    h ^= h >> np.uint64(16)
    h = (h * _MIXERS[func]) & np.uint64(0xFFFFFFFF)
    h ^= h >> np.uint64(13)
    return (h % np.uint64(m)).astype(np.int64)


def _scalar_slot(key: int, func: int, m: int) -> int:
    return int(hash_slot(np.array([key], dtype=np.uint32), func, m)[0])


# ---------------------------------------------------------------------------
# optimistic round
# ---------------------------------------------------------------------------

def _ht_optimistic_vec(ctx, tkeys, tvals, keys, vals, n, m):
    n, m = int(n), int(m)
    slots = hash_slot(keys[:n], 0, m)
    # Unsynchronised writes: numpy scatter keeps the *last* write per slot,
    # a legal outcome of the data race.  Key and value are written by the
    # same thread, so (key, value) stay consistent per slot.
    tkeys[slots] = keys[:n]
    tvals[slots] = vals[:n]


def _ht_optimistic_work(ctx, tkeys, tvals, keys, vals, n, m):
    n = int(n)
    distinct = _distinct_slot_estimate(keys[:n], int(m))
    table_bytes = 8 * int(m)
    random = 8 * n if table_bytes > _CACHE_RESIDENT_BYTES else 0
    return KernelWork(
        elements=n,
        bytes_read=8 * n,
        random_bytes=random,
        ops=6 * n,  # one strong hash
        atomic_ops=n,  # unsynchronised but *contended* writes
        atomic_addresses=distinct,
    )


def _distinct_slot_estimate(keys: np.ndarray, m: int) -> int:
    if keys.size == 0:
        return 1
    if keys.size <= 65536:
        return max(1, int(np.unique(keys).size))
    sample = keys[:: max(1, keys.size // 65536)]
    distinct = int(np.unique(sample).size)
    if distinct >= sample.size // 2:  # looks unique-ish: extrapolate
        distinct = int(distinct * keys.size / sample.size)
    return max(1, min(distinct, m))


def _ht_optimistic_ref(wi, tkeys, tvals, keys, vals, n, m):
    n, m = int(n), int(m)
    for i in wi.partition(n):
        slot = _scalar_slot(int(keys[i]), 0, m)
        tkeys[slot] = keys[i]
        tvals[slot] = vals[i]
    return
    yield  # pragma: no cover


HT_OPTIMISTIC = KernelDef(
    name="ht_insert_optimistic",
    params=params("inout:tkeys inout:tvals in:keys in:vals scalar:n scalar:m"),
    vec_fn=_ht_optimistic_vec,
    work_fn=_ht_optimistic_work,
    ref_fn=_ht_optimistic_ref,
    source="""
__kernel void ht_insert_optimistic(__global uint* tkeys, __global uint* tvals,
                                   __global const uint* keys,
                                   __global const uint* vals, uint n, uint m) {
    for (uint i = FIRST(n); i < LAST(n); i += STEP) {
        uint slot = hash0(keys[i]) % m;      /* no synchronisation */
        tkeys[slot] = keys[i];
        tvals[slot] = vals[i];
    }
}
""",
)


# ---------------------------------------------------------------------------
# check round
# ---------------------------------------------------------------------------

def _ht_check_vec(ctx, fail_bitmap, tkeys, keys, n, m):
    n, m = int(n), int(m)
    slots = hash_slot(keys[:n], 0, m)
    failed = tkeys[slots] != keys[:n]
    packed = np.packbits(failed, bitorder="little")
    fail_bitmap[: packed.size] = packed
    fail_bitmap[packed.size :] = 0


def _ht_check_work(ctx, fail_bitmap, tkeys, keys, n, m):
    n = int(n)
    table_bytes = 8 * int(m)
    random = 4 * n if table_bytes > _CACHE_RESIDENT_BYTES else 0
    return KernelWork(
        elements=n,
        bytes_read=4 * n,
        random_bytes=random,
        bytes_written=(n + 7) // 8,
        ops=7 * n,
    )


def _ht_check_ref(wi, fail_bitmap, tkeys, keys, n, m):
    n, m = int(n), int(m)
    nbytes = (n + 7) // 8
    for j in wi.partition(nbytes):
        byte = 0
        for k in range(8):
            i = 8 * j + k
            if i < n and tkeys[_scalar_slot(int(keys[i]), 0, m)] != keys[i]:
                byte |= 1 << k
        fail_bitmap[j] = byte
    return
    yield  # pragma: no cover


HT_CHECK = KernelDef(
    name="ht_check",
    params=params("out:fail_bitmap in:tkeys in:keys scalar:n scalar:m"),
    vec_fn=_ht_check_vec,
    work_fn=_ht_check_work,
    ref_fn=_ht_check_ref,
    source="""
__kernel void ht_check(__global uchar* fail, __global const uint* tkeys,
                       __global const uint* keys, uint n, uint m) {
    /* bit i set <=> keys[i] was overwritten during the optimistic round */
}
""",
)


# ---------------------------------------------------------------------------
# pessimistic round (one kernel: each thread CAS-loops until insertion)
# ---------------------------------------------------------------------------

def _insert_round(tkeys, tvals, pending_keys, pending_vals, slots):
    """Deterministic CAS emulation for one probe position.

    Every pending key attempts ``CAS(tkeys[slot], EMPTY -> key)``; ties on
    a slot go to the lowest pending index (stable first-wins).  Returns the
    mask of keys placed or already present after this round.
    """
    occupant = tkeys[slots]
    present = occupant == pending_keys
    empty = occupant == EMPTY
    if np.any(empty):
        cand_idx = np.nonzero(empty)[0]
        cand_slots = slots[cand_idx]
        first = np.unique(cand_slots, return_index=True)[1]
        winners = cand_idx[first]
        tkeys[slots[winners]] = pending_keys[winners]
        tvals[slots[winners]] = pending_vals[winners]
        present = tkeys[slots] == pending_keys
    return present


def _ht_pessimistic_vec(ctx, tkeys, tvals, stats, keys, vals, fail_bitmap, n, m):
    n, m = int(n), int(m)
    failed = np.unpackbits(fail_bitmap, bitorder="little", count=n).astype(bool)
    pending_keys = keys[:n][failed].copy()
    pending_vals = vals[:n][failed].copy()
    cas_attempts = 0
    for func in range(NUM_HASH_FUNCTIONS):
        if pending_keys.size == 0:
            break
        slots = hash_slot(pending_keys, func, m)
        cas_attempts += int(pending_keys.size)
        placed = _insert_round(tkeys, tvals, pending_keys, pending_vals, slots)
        pending_keys = pending_keys[~placed]
        pending_vals = pending_vals[~placed]

    if pending_keys.size:
        base = hash_slot(pending_keys, NUM_HASH_FUNCTIONS - 1, m)
        for distance in range(1, PROBE_LIMIT + 1):
            slots = (base + distance) % m
            cas_attempts += int(pending_keys.size)
            placed = _insert_round(
                tkeys, tvals, pending_keys, pending_vals, slots
            )
            pending_keys = pending_keys[~placed]
            pending_vals = pending_vals[~placed]
            base = base[~placed]
            if pending_keys.size == 0:
                break

    stats[0] = np.uint32(cas_attempts)
    stats[1] = np.uint32(pending_keys.size)  # unplaced -> host restarts
    # Persist for the cost model (work_fn runs after vec_fn).
    ctx.defines = dict(ctx.defines)
    ctx.defines["_LAST_CAS_ATTEMPTS"] = cas_attempts


def _ht_pessimistic_work(ctx, tkeys, tvals, stats, keys, vals, fail_bitmap, n, m):
    n = int(n)
    attempts = int(ctx.defines.get("_LAST_CAS_ATTEMPTS", 0))
    distinct = _distinct_slot_estimate(keys[:n], int(m))
    table_bytes = 8 * int(m)
    random = 8 * attempts if table_bytes > _CACHE_RESIDENT_BYTES else 0
    return KernelWork(
        elements=n,
        bytes_read=(n + 7) // 8,  # the failure bitmap
        random_bytes=random,
        ops=12 * attempts,
        atomic_ops=attempts,
        atomic_addresses=distinct,
    )


def _ht_pessimistic_ref(wi, tkeys, tvals, stats, keys, vals, fail_bitmap, n, m):
    """Sequential turn-taking emulation of the CAS loop.

    Work-items take turns in local-id order (one barrier per turn), each
    running its full insert loop over its *failed* keys.  This yields a
    first-wins outcome equivalent to the vectorised driver on a single
    work-group.
    """
    n, m = int(n), int(m)
    for turn in range(wi.global_size()):
        if wi.global_id() == turn:
            for i in wi.chunk(n):
                byte, bit = divmod(i, 8)
                if not (fail_bitmap[byte] & (1 << bit)):
                    continue
                key, val = int(keys[i]), int(vals[i])
                placed = False
                for func in range(NUM_HASH_FUNCTIONS):
                    slot = _scalar_slot(key, func, m)
                    if int(tkeys[slot]) == key:
                        placed = True
                        break
                    if int(tkeys[slot]) == int(EMPTY):
                        tkeys[slot] = key
                        tvals[slot] = val
                        placed = True
                        break
                if not placed:
                    base = _scalar_slot(key, NUM_HASH_FUNCTIONS - 1, m)
                    for distance in range(1, PROBE_LIMIT + 1):
                        slot = (base + distance) % m
                        if int(tkeys[slot]) in (key, int(EMPTY)):
                            tkeys[slot] = key
                            tvals[slot] = val
                            placed = True
                            break
                if not placed:
                    stats[1] += 1
        yield
    return


HT_PESSIMISTIC = KernelDef(
    name="ht_insert_pessimistic",
    params=params(
        "inout:tkeys inout:tvals out:stats in:keys in:vals "
        "in:fail_bitmap scalar:n scalar:m"
    ),
    vec_fn=_ht_pessimistic_vec,
    work_fn=_ht_pessimistic_work,
    ref_fn=_ht_pessimistic_ref,
    source="""
__kernel void ht_insert_pessimistic(__global uint* tkeys, __global uint* tvals,
                                    __global uint* stats,
                                    __global const uint* keys,
                                    __global const uint* vals, uint n, uint m) {
    for (uint i = FIRST(n); i < LAST(n); i += STEP) {
        uint k = keys[i];
        for (int f = 0; f < 6; ++f) {            /* six strong hashes */
            uint s = hash(f, k) % m;
            uint old = atomic_cmpxchg(&tkeys[s], EMPTY, k);
            if (old == EMPTY || old == k) { tvals[s] = vals[i]; goto next; }
        }
        uint s = hash(5, k) % m;                 /* then linear probing */
        for (int d = 1; d <= PROBE_LIMIT; ++d) {
            uint old = atomic_cmpxchg(&tkeys[(s + d) % m], EMPTY, k);
            if (old == EMPTY || old == k) { tvals[(s + d) % m] = vals[i]; goto next; }
        }
        atomic_inc(&stats[1]);                   /* unplaced: restart bigger */
    next:;
    }
}
""",
)


# ---------------------------------------------------------------------------
# probe
# ---------------------------------------------------------------------------

def _ht_probe_vec(ctx, out_vals, found_bitmap, tkeys, tvals, keys, n, m):
    n, m = int(n), int(m)
    probe_keys = keys[:n]
    result = np.full(n, EMPTY, dtype=np.uint32)
    found = np.zeros(n, dtype=bool)
    pending = np.arange(n, dtype=np.int64)
    lookups = 0
    for func in range(NUM_HASH_FUNCTIONS):
        if pending.size == 0:
            break
        slots = hash_slot(probe_keys[pending], func, m)
        occupant = tkeys[slots]
        lookups += int(pending.size)
        hit = occupant == probe_keys[pending]
        result[pending[hit]] = tvals[slots[hit]]
        found[pending[hit]] = True
        pending = pending[~hit]
    if pending.size:
        base = hash_slot(probe_keys[pending], NUM_HASH_FUNCTIONS - 1, m)
        for distance in range(1, PROBE_LIMIT + 1):
            if pending.size == 0:
                break
            slots = (base + distance) % m
            occupant = tkeys[slots]
            lookups += int(pending.size)
            hit = occupant == probe_keys[pending]
            result[pending[hit]] = tvals[slots[hit]]
            found[pending[hit]] = True
            miss_final = occupant == EMPTY  # empty slot terminates the probe
            keep = ~hit & ~miss_final
            pending = pending[keep]
            base = base[keep]
    out_vals[:n] = result
    packed = np.packbits(found, bitorder="little")
    found_bitmap[: packed.size] = packed
    found_bitmap[packed.size :] = 0
    ctx.defines = dict(ctx.defines)
    ctx.defines["_LAST_PROBE_LOOKUPS"] = lookups


#: Tables smaller than this stay resident in on-chip cache during a probe
#: sweep; their lookups are compute- rather than memory-bound.  This is
#: why probing a 100-key join table is so cheap relative to building it
#: (paper §5.2.6: "once the hash-table is built, the actual look-up is
#: highly efficient").
_CACHE_RESIDENT_BYTES = 4 * 1024 * 1024


def _ht_probe_work(ctx, out_vals, found_bitmap, tkeys, tvals, keys, n, m):
    n = int(n)
    lookups = int(ctx.defines.get("_LAST_PROBE_LOOKUPS", n))
    table_bytes = 8 * int(m)
    random = 8 * lookups if table_bytes > _CACHE_RESIDENT_BYTES else 0
    return KernelWork(
        elements=n,
        bytes_read=4 * n,
        bytes_written=4 * n + (n + 7) // 8,
        random_bytes=random,
        ops=10 * lookups,
    )


def _ht_probe_ref(wi, out_vals, found_bitmap, tkeys, tvals, keys, n, m):
    n, m = int(n), int(m)
    for i in wi.partition(n):
        key = int(keys[i])
        value, hit = int(EMPTY), False
        slot = 0
        for func in range(NUM_HASH_FUNCTIONS):
            slot = _scalar_slot(key, func, m)
            if int(tkeys[slot]) == key:
                value, hit = int(tvals[slot]), True
                break
        if not hit:
            base = _scalar_slot(key, NUM_HASH_FUNCTIONS - 1, m)
            for distance in range(1, PROBE_LIMIT + 1):
                slot = (base + distance) % m
                if int(tkeys[slot]) == key:
                    value, hit = int(tvals[slot]), True
                    break
                if int(tkeys[slot]) == int(EMPTY):
                    break
        out_vals[i] = value
        byte, bit = divmod(i, 8)
        if hit:
            found_bitmap[byte] |= np.uint8(1 << bit)
    return
    yield  # pragma: no cover


HT_PROBE = KernelDef(
    name="ht_probe",
    params=params(
        "out:vals out:found_bitmap in:tkeys in:tvals in:keys scalar:n scalar:m"
    ),
    vec_fn=_ht_probe_vec,
    work_fn=_ht_probe_work,
    ref_fn=_ht_probe_ref,
    source="""
__kernel void ht_probe(__global uint* vals, __global uchar* found,
                       __global const uint* tkeys, __global const uint* tvals,
                       __global const uint* keys, uint n, uint m) {
    /* h0..h5, then linear probing until hit or EMPTY */
}
""",
)


LIBRARY = {
    k.name: k for k in (HT_OPTIMISTIC, HT_CHECK, HT_PESSIMISTIC, HT_PROBE)
}
