"""``repro.kernels`` — the hardware-oblivious kernel library (substrate S2).

One set of kernels, written against the kernel programming model, serving
every device: the paper's core design premise.  ``KERNEL_LIBRARY`` is the
complete catalogue handed to :func:`repro.cl.build` for per-device
specialisation.  (Layer map: ARCHITECTURE.md §"repro.kernels".)
"""

from . import aggregation, bitmap, groupby, hashing, join, primitives, radix_sort
from .aggregation import AGG_OPS, accumulators_for, segmented_reduce
from .bitmap import POPCOUNT, count_bits, tail_mask
from .hashing import EMPTY, NUM_HASH_FUNCTIONS, PROBE_LIMIT, TableFull, hash_slot
from .radix_sort import encode_keys, key_kind_for, num_passes
from .selection import COMPARE_OPS, RANGE_OPS, bitmap_nbytes, predicate_mask

from . import selection

#: The full hardware-oblivious kernel catalogue.
KERNEL_LIBRARY = {
    **primitives.LIBRARY,
    **selection.LIBRARY,
    **bitmap.LIBRARY,
    **radix_sort.LIBRARY,
    **hashing.LIBRARY,
    **join.LIBRARY,
    **groupby.LIBRARY,
    **aggregation.LIBRARY,
}

__all__ = [
    "AGG_OPS",
    "COMPARE_OPS",
    "EMPTY",
    "KERNEL_LIBRARY",
    "NUM_HASH_FUNCTIONS",
    "POPCOUNT",
    "PROBE_LIMIT",
    "RANGE_OPS",
    "TableFull",
    "accumulators_for",
    "bitmap_nbytes",
    "count_bits",
    "encode_keys",
    "hash_slot",
    "key_kind_for",
    "num_passes",
    "predicate_mask",
    "segmented_reduce",
    "tail_mask",
]
