"""Parallel primitives: scan, gather, scatter, reduce, element-wise maps.

These are the building blocks the paper's operators are composed from
(prefix sums for write-offset computation [33], gather/scatter [18],
binary reduction [24]).  Every kernel follows the package conventions:

* ``vec_fn`` — vectorised numpy execution ("compiled" code),
* ``work_fn`` — cost-model :class:`~repro.cl.profile.KernelWork`,
* ``ref_fn`` — work-item-level reference semantics (where instructive),
* ``source`` — the pseudo-OpenCL C the kernel corresponds to.
"""

from __future__ import annotations

import numpy as np

from ..cl import KernelDef, KernelWork, params

# Operator tables for the element-wise kernels.  MonetDB's batcalc module
# has one operator per arithmetic op; we keep a single kernel with the op
# as a launch argument (a compile-time constant in real OpenCL).
def _rsub(a, b, out=None, casting="same_kind"):
    """Reversed subtraction: ``b - a`` (scalar-minus-column expressions)."""
    return np.subtract(b, a, out=out, casting=casting)


def _rdiv(a, b, out=None, casting="same_kind"):
    """Reversed division: ``b / a``."""
    return np.divide(b, a, out=out, casting=casting)


def _logical_and(a, b, out=None, casting="same_kind"):
    result = np.logical_and(a, b)
    if out is not None:
        out[...] = result
        return out
    return result.astype(np.uint8)


def _logical_or(a, b, out=None, casting="same_kind"):
    result = np.logical_or(a, b)
    if out is not None:
        out[...] = result
        return out
    return result.astype(np.uint8)


_BINOPS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "intdiv": np.floor_divide,
    "xor": np.bitwise_xor,
    "rsub": _rsub,
    "rdiv": _rdiv,
    "and": _logical_and,
    "or": _logical_or,
}

_REDUCERS = {
    "sum": (np.sum, np.add),
    "min": (np.min, np.minimum),
    "max": (np.max, np.maximum),
}


# ---------------------------------------------------------------------------
# prefix sum (exclusive scan)
# ---------------------------------------------------------------------------

def _prefix_sum_vec(ctx, out, inp, n):
    n = int(n)
    np.cumsum(inp[:n], out=out[:n])
    if n:
        total = out[n - 1]
        out[1:n] = out[: n - 1]
        out[0] = 0
        if out.size > n:  # optional total slot appended by the host
            out[n] = total


def _prefix_sum_work(ctx, out, inp, n):
    n = int(n)
    item = inp.dtype.itemsize
    # Work-efficient scan: ~2n reads + 2n writes across up/down sweeps.
    return KernelWork(
        elements=n,
        bytes_read=2 * n * item,
        bytes_written=2 * n * item,
        ops=2 * n,
    )


def _prefix_sum_ref(wi, out, inp, n):
    """Hillis-Steele scan, one work-group over the whole (small) input.

    A faithful local-memory scan: each step reads the neighbour ``stride``
    away and barriers between steps.  Only used by the reference driver on
    work-group-sized inputs; the host composes larger scans from chunks.
    """
    n = int(n)
    gid = wi.global_id()
    # inclusive scan in-place on a copy staged into 'out'
    if gid < n:
        out[gid] = inp[gid]
    yield
    stride = 1
    while stride < wi.global_size():
        val = out[gid - stride] if gid >= stride and gid < n else None
        yield
        if val is not None:
            out[gid] += val
        yield
        stride *= 2
    # shift to exclusive
    prev = out[gid - 1] if 0 < gid < n else None
    yield
    if gid < n:
        out[gid] = prev if gid else 0
    return


PREFIX_SUM = KernelDef(
    name="prefix_sum",
    params=params("out:res in:inp scalar:n"),
    vec_fn=_prefix_sum_vec,
    work_fn=_prefix_sum_work,
    ref_fn=_prefix_sum_ref,
    source="""
__kernel void prefix_sum(__global T* res, __global const T* inp, uint n) {
    /* work-efficient Blelloch scan over local tiles + tile-offset pass */
}
""",
)


# ---------------------------------------------------------------------------
# gather / scatter
# ---------------------------------------------------------------------------

def _gather_vec(ctx, out, src, idx, n):
    n = int(n)
    np.take(src, idx[:n].astype(np.int64, copy=False), out=out[:n])


def _gather_work(ctx, out, src, idx, n):
    n = int(n)
    return KernelWork(
        elements=n,
        bytes_read=n * idx.dtype.itemsize,
        bytes_written=n * out.dtype.itemsize,
        random_bytes=n * src.dtype.itemsize,
        ops=n,
    )


def _gather_ref(wi, out, src, idx, n):
    for i in wi.partition(int(n)):
        out[i] = src[idx[i]]
    return
    yield  # pragma: no cover - marks this as a generator


GATHER = KernelDef(
    name="gather",
    params=params("out:res in:src in:idx scalar:n"),
    vec_fn=_gather_vec,
    work_fn=_gather_work,
    ref_fn=_gather_ref,
    source="""
__kernel void gather(__global T* res, __global const T* src,
                     __global const uint* idx, uint n) {
    for (uint i = FIRST(n); i < LAST(n); i += STEP)
        res[i] = src[idx[i]];
}
""",
)


def _scatter_vec(ctx, out, src, idx, n):
    n = int(n)
    out[idx[:n].astype(np.int64, copy=False)] = src[:n]


def _scatter_work(ctx, out, src, idx, n):
    n = int(n)
    return KernelWork(
        elements=n,
        bytes_read=n * (src.dtype.itemsize + idx.dtype.itemsize),
        random_bytes=n * out.dtype.itemsize,
        ops=n,
    )


def _scatter_ref(wi, out, src, idx, n):
    for i in wi.partition(int(n)):
        out[idx[i]] = src[i]
    return
    yield  # pragma: no cover


SCATTER = KernelDef(
    name="scatter",
    params=params("inout:res in:src in:idx scalar:n"),
    vec_fn=_scatter_vec,
    work_fn=_scatter_work,
    ref_fn=_scatter_ref,
    source="""
__kernel void scatter(__global T* res, __global const T* src,
                      __global const uint* idx, uint n) {
    for (uint i = FIRST(n); i < LAST(n); i += STEP)
        res[idx[i]] = src[i];
}
""",
)


# ---------------------------------------------------------------------------
# binary reduction (ungrouped aggregation, paper §4.1.7 / [18])
# ---------------------------------------------------------------------------

def _reduce_partial_vec(ctx, partials, inp, n, op):
    """Stage 1: each work-group reduces its partition into one slot."""
    n = int(n)
    reducer, _ = _REDUCERS[op]
    groups = partials.shape[0]
    bounds = np.linspace(0, n, groups + 1, dtype=np.int64)
    identity = _identity_for(op, partials.dtype)
    for g in range(groups):
        lo, hi = bounds[g], bounds[g + 1]
        partials[g] = reducer(inp[lo:hi]) if hi > lo else identity


def _identity_for(op: str, dtype) -> object:
    if op == "sum":
        return dtype.type(0)
    info = np.finfo(dtype) if dtype.kind == "f" else np.iinfo(dtype)
    return info.max if op == "min" else info.min


def _reduce_partial_work(ctx, partials, inp, n, op):
    n = int(n)
    # The 2013-beta Intel SDK failed to vectorise the accumulation loop
    # (paper §5.2.3 measured Ocelot ~30 % behind MP on this operator);
    # the scalar loop costs ~12 issue slots per element, which makes the
    # kernel compute-bound on the CPU while GPUs stay bandwidth-bound.
    return KernelWork(
        elements=n,
        bytes_read=n * inp.dtype.itemsize,
        bytes_written=partials.nbytes,
        ops=12 * n,
    )


def _reduce_partial_ref(wi, partials, inp, n, op):
    """Tree reduction in local memory — the classic binary reduction.

    Each thread accumulates a private value over its partition, then the
    work-group folds values pairwise with barriers between levels.
    Partials are staged through the output slice of this group.
    """
    n = int(n)
    _, pairwise = _REDUCERS[op]
    acc = None
    for i in wi.partition(n):
        acc = inp[i] if acc is None else pairwise(acc, inp[i])
    # Stage private accumulators through a group-local window of `partials`
    # laid out as [groups, local_size] by the reference launcher.
    row = partials[wi.group_id()]
    identity = _identity_for(op, partials.dtype)
    row[wi.local_id()] = identity if acc is None else acc
    yield
    size = wi.local_size() // 2
    while size >= 1:
        if wi.local_id() < size:
            row[wi.local_id()] = pairwise(
                row[wi.local_id()], row[wi.local_id() + size]
            )
        yield
        size //= 2
    return


REDUCE_PARTIAL = KernelDef(
    name="reduce_partial",
    params=params("out:partials in:inp scalar:n scalar:op"),
    vec_fn=_reduce_partial_vec,
    work_fn=_reduce_partial_work,
    source="""
__kernel void reduce_partial(__global ACC* partials, __global const T* inp,
                             uint n) {
    ACC acc = IDENTITY;
    for (uint i = FIRST(n); i < LAST(n); i += STEP) acc = OP(acc, inp[i]);
    __local ACC tile[WG]; tile[lid] = acc; barrier(CLK_LOCAL_MEM_FENCE);
    for (uint s = WG/2; s; s >>= 1) { /* pairwise fold */ }
}
""",
)


def _reduce_final_vec(ctx, out, partials, count, op):
    reducer, _ = _REDUCERS[op]
    out[0] = reducer(partials[: int(count)])


def _reduce_final_work(ctx, out, partials, count, op):
    count = int(count)
    return KernelWork(
        elements=count,
        bytes_read=count * partials.dtype.itemsize,
        bytes_written=out.dtype.itemsize,
        ops=count,
    )


REDUCE_FINAL = KernelDef(
    name="reduce_final",
    params=params("out:res in:partials scalar:count scalar:op"),
    vec_fn=_reduce_final_vec,
    work_fn=_reduce_final_work,
    source="""
__kernel void reduce_final(__global ACC* res, __global const ACC* partials,
                           uint count) { /* single work-group fold */ }
""",
)


# ---------------------------------------------------------------------------
# element-wise maps (MonetDB batcalc equivalents)
# ---------------------------------------------------------------------------

def _ewise_vec(ctx, out, a, b, n, op):
    n = int(n)
    _BINOPS[op](a[:n], b[:n], out=out[:n], casting="unsafe")


def _ewise_work(ctx, out, a, b, n, op):
    n = int(n)
    return KernelWork(
        elements=n,
        bytes_read=n * (a.dtype.itemsize + b.dtype.itemsize),
        bytes_written=n * out.dtype.itemsize,
        ops=n,
    )


def _ewise_ref(wi, out, a, b, n, op):
    fn = _BINOPS[op]
    for i in wi.partition(int(n)):
        out[i] = fn(a[i], b[i])
    return
    yield  # pragma: no cover


EWISE = KernelDef(
    name="ewise",
    params=params("out:res in:a in:b scalar:n scalar:op"),
    vec_fn=_ewise_vec,
    work_fn=_ewise_work,
    ref_fn=_ewise_ref,
    source="""
__kernel void ewise(__global T* res, __global const T* a,
                    __global const T* b, uint n) {
    for (uint i = FIRST(n); i < LAST(n); i += STEP) res[i] = OP(a[i], b[i]);
}
""",
)


def _ewise_scalar_vec(ctx, out, a, n, op, value):
    n = int(n)
    _BINOPS[op](a[:n], a.dtype.type(value), out=out[:n], casting="unsafe")


def _ewise_scalar_work(ctx, out, a, n, op, value):
    n = int(n)
    return KernelWork(
        elements=n,
        bytes_read=n * a.dtype.itemsize,
        bytes_written=n * out.dtype.itemsize,
        ops=n,
    )


def _ewise_scalar_ref(wi, out, a, n, op, value):
    fn = _BINOPS[op]
    for i in wi.partition(int(n)):
        out[i] = fn(a[i], value)
    return
    yield  # pragma: no cover


EWISE_SCALAR = KernelDef(
    name="ewise_scalar",
    params=params("out:res in:a scalar:n scalar:op scalar:value"),
    vec_fn=_ewise_scalar_vec,
    work_fn=_ewise_scalar_work,
    ref_fn=_ewise_scalar_ref,
    source="""
__kernel void ewise_scalar(__global T* res, __global const T* a, uint n,
                           T cnst) {
    res[global_id()] = OP(a[global_id()], cnst);
}
""",
)


# ---------------------------------------------------------------------------
# fill / iota
# ---------------------------------------------------------------------------

def _fill_vec(ctx, out, n, value):
    out[: int(n)] = value


def _fill_work(ctx, out, n, value):
    n = int(n)
    return KernelWork(elements=n, bytes_written=n * out.dtype.itemsize)


FILL = KernelDef(
    name="fill",
    params=params("out:res scalar:n scalar:value"),
    vec_fn=_fill_vec,
    work_fn=_fill_work,
    source="__kernel void fill(__global T* res, uint n, T v) { ... }",
)


def _iota_vec(ctx, out, n, start):
    n = int(n)
    out[:n] = np.arange(start, start + n, dtype=out.dtype)


def _iota_work(ctx, out, n, start):
    n = int(n)
    return KernelWork(elements=n, bytes_written=n * out.dtype.itemsize, ops=n)


def _iota_ref(wi, out, n, start):
    for i in wi.partition(int(n)):
        out[i] = start + i
    return
    yield  # pragma: no cover


IOTA = KernelDef(
    name="iota",
    params=params("out:res scalar:n scalar:start"),
    vec_fn=_iota_vec,
    work_fn=_iota_work,
    ref_fn=_iota_ref,
    source="__kernel void iota(__global T* res, uint n, T s) { ... }",
)


# ---------------------------------------------------------------------------
# comparisons and conditional selection (batcalc.{eq,...,ifthenelse})
# ---------------------------------------------------------------------------

_CMPOPS = {
    "eq": np.equal,
    "ne": np.not_equal,
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
}


def _compare_vv_vec(ctx, out, a, b, n, op):
    n = int(n)
    out[:n] = _CMPOPS[op](a[:n], b[:n]).astype(np.uint8)


def _compare_vv_work(ctx, out, a, b, n, op):
    n = int(n)
    return KernelWork(
        elements=n,
        bytes_read=n * (a.dtype.itemsize + b.dtype.itemsize),
        bytes_written=n,
        ops=n,
    )


def _compare_vv_ref(wi, out, a, b, n, op):
    fn = _CMPOPS[op]
    for i in wi.partition(int(n)):
        out[i] = 1 if fn(a[i], b[i]) else 0
    return
    yield  # pragma: no cover


COMPARE_VV = KernelDef(
    name="compare_vv",
    params=params("out:res in:a in:b scalar:n scalar:op"),
    vec_fn=_compare_vv_vec,
    work_fn=_compare_vv_work,
    ref_fn=_compare_vv_ref,
    source="""
__kernel void compare_vv(__global uchar* res, __global const T* a,
                         __global const T* b, uint n) {
    res[global_id()] = CMP(a[global_id()], b[global_id()]);
}
""",
)


def _compare_vs_vec(ctx, out, a, n, op, value):
    n = int(n)
    out[:n] = _CMPOPS[op](a[:n], a.dtype.type(value)).astype(np.uint8)


def _compare_vs_work(ctx, out, a, n, op, value):
    n = int(n)
    return KernelWork(
        elements=n, bytes_read=n * a.dtype.itemsize, bytes_written=n, ops=n
    )


def _compare_vs_ref(wi, out, a, n, op, value):
    fn = _CMPOPS[op]
    for i in wi.partition(int(n)):
        out[i] = 1 if fn(a[i], value) else 0
    return
    yield  # pragma: no cover


COMPARE_VS = KernelDef(
    name="compare_vs",
    params=params("out:res in:a scalar:n scalar:op scalar:value"),
    vec_fn=_compare_vs_vec,
    work_fn=_compare_vs_work,
    ref_fn=_compare_vs_ref,
    source="""
__kernel void compare_vs(__global uchar* res, __global const T* a, uint n,
                         T cnst) {
    res[global_id()] = CMP(a[global_id()], cnst);
}
""",
)


def _where_vv_vec(ctx, out, cond, a, b, n):
    n = int(n)
    out[:n] = np.where(cond[:n] != 0, a[:n], b[:n])


def _where_vv_work(ctx, out, cond, a, b, n):
    n = int(n)
    return KernelWork(
        elements=n,
        bytes_read=n * (1 + a.dtype.itemsize + b.dtype.itemsize),
        bytes_written=n * out.dtype.itemsize,
        ops=n,
    )


def _where_vv_ref(wi, out, cond, a, b, n):
    for i in wi.partition(int(n)):
        out[i] = a[i] if cond[i] else b[i]
    return
    yield  # pragma: no cover


WHERE_VV = KernelDef(
    name="where_vv",
    params=params("out:res in:cond in:a in:b scalar:n"),
    vec_fn=_where_vv_vec,
    work_fn=_where_vv_work,
    ref_fn=_where_vv_ref,
    source="""
__kernel void where_vv(__global T* res, __global const uchar* cond,
                       __global const T* a, __global const T* b, uint n) {
    res[global_id()] = cond[global_id()] ? a[global_id()] : b[global_id()];
}
""",
)


def _where_vs_vec(ctx, out, cond, a, n, other):
    n = int(n)
    out[:n] = np.where(cond[:n] != 0, a[:n], out.dtype.type(other))


def _where_vs_work(ctx, out, cond, a, n, other):
    n = int(n)
    return KernelWork(
        elements=n,
        bytes_read=n * (1 + a.dtype.itemsize),
        bytes_written=n * out.dtype.itemsize,
        ops=n,
    )


def _where_vs_ref(wi, out, cond, a, n, other):
    for i in wi.partition(int(n)):
        out[i] = a[i] if cond[i] else other
    return
    yield  # pragma: no cover


WHERE_VS = KernelDef(
    name="where_vs",
    params=params("out:res in:cond in:a scalar:n scalar:other"),
    vec_fn=_where_vs_vec,
    work_fn=_where_vs_work,
    ref_fn=_where_vs_ref,
    source="""
__kernel void where_vs(__global T* res, __global const uchar* cond,
                       __global const T* a, uint n, T other) {
    res[global_id()] = cond[global_id()] ? a[global_id()] : other;
}
""",
)


def _where_ss_vec(ctx, out, cond, n, then_v, else_v):
    n = int(n)
    out[:n] = np.where(
        cond[:n] != 0, out.dtype.type(then_v), out.dtype.type(else_v)
    )


def _where_ss_work(ctx, out, cond, n, then_v, else_v):
    n = int(n)
    return KernelWork(
        elements=n,
        bytes_read=n,
        bytes_written=n * out.dtype.itemsize,
        ops=n,
    )


def _where_ss_ref(wi, out, cond, n, then_v, else_v):
    for i in wi.partition(int(n)):
        out[i] = then_v if cond[i] else else_v
    return
    yield  # pragma: no cover


WHERE_SS = KernelDef(
    name="where_ss",
    params=params("out:res in:cond scalar:n scalar:then_v scalar:else_v"),
    vec_fn=_where_ss_vec,
    work_fn=_where_ss_work,
    ref_fn=_where_ss_ref,
    source="""
__kernel void where_ss(__global T* res, __global const uchar* cond, uint n,
                       T tv, T ev) {
    res[global_id()] = cond[global_id()] ? tv : ev;
}
""",
)


LIBRARY = {
    k.name: k
    for k in (
        PREFIX_SUM,
        GATHER,
        SCATTER,
        REDUCE_PARTIAL,
        REDUCE_FINAL,
        EWISE,
        EWISE_SCALAR,
        FILL,
        IOTA,
        COMPARE_VV,
        COMPARE_VS,
        WHERE_VV,
        WHERE_VS,
        WHERE_SS,
    )
}
