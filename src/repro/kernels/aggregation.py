"""Grouped aggregation kernels (paper §4.1.7).

Ungrouped aggregation is the binary reduction in
:mod:`repro.kernels.primitives`.  Grouped aggregation uses the paper's
hierarchical scheme: work-groups build intermediate aggregation tables
over disjoint partitions using atomic operations in local memory, then one
thread per group folds the partials into the final aggregate.

The synchronisation-overhead mitigation the paper describes is modelled
through the work profile: values for each group are spread across
``accumulators`` addresses (chosen inversely proportional to the group
count by the host), so the contention the device model charges falls as
the accumulator count rises.  When the table does not fit into local
memory the host launches the same kernel flagged for global memory, which
doubles the charged atomic traffic (the local-memory discount is gone).

Floating-point atomics are emulated via compare-and-swap on integers, as
required by OpenCL 1.x (paper footnote 7) — the work profile charges
float atomics at twice the integer rate for that reason.
"""

from __future__ import annotations

import numpy as np

from ..cl import KernelDef, KernelWork, params

AGG_OPS = ("sum", "min", "max", "count")


def segmented_reduce(
    gids: np.ndarray, vals: np.ndarray | None, ngroups: int, op: str, dtype
) -> np.ndarray:
    """Per-group reduction of ``vals`` (host-side mirror, used by both the
    vectorised driver and the MonetDB substrate)."""
    ngroups = int(ngroups)
    if op == "count":
        return np.bincount(gids, minlength=ngroups).astype(dtype)
    if op == "sum":
        return np.bincount(gids, weights=vals, minlength=ngroups).astype(dtype)
    out = np.full(ngroups, _identity(op, np.dtype(dtype)), dtype=dtype)
    if gids.size == 0:
        return out
    order = np.argsort(gids, kind="stable")
    sorted_gids = gids[order]
    sorted_vals = vals[order]
    boundaries = np.concatenate(
        ([0], np.nonzero(sorted_gids[1:] != sorted_gids[:-1])[0] + 1)
    )
    reducer = np.minimum if op == "min" else np.maximum
    reduced = reducer.reduceat(sorted_vals, boundaries)
    out[sorted_gids[boundaries]] = reduced
    return out


def _identity(op: str, dtype: np.dtype):
    if op in ("sum", "count"):
        return dtype.type(0)
    info = np.finfo(dtype) if dtype.kind == "f" else np.iinfo(dtype)
    return info.max if op == "min" else info.min


def _grouped_partial_vec(ctx, partials, gids, vals, n, ngroups, op, accums, in_local):
    n = int(n)
    parts, table_width = partials.shape  # host-sized (>= max(ngroups, 1))
    bounds = np.linspace(0, n, parts + 1, dtype=np.int64)
    for part in range(parts):
        lo, hi = bounds[part], bounds[part + 1]
        chunk_vals = None if op == "count" else vals[lo:hi]
        partials[part, :] = segmented_reduce(
            gids[lo:hi], chunk_vals, table_width, op, partials.dtype
        )


def _grouped_partial_work(ctx, partials, gids, vals, n, ngroups, op, accums, in_local):
    n, ngroups, accums = int(n), int(ngroups), int(accums)
    value_bytes = 0 if op == "count" else n * vals.dtype.itemsize
    atomic_ops = n
    if op != "count" and vals.dtype.kind == "f":
        atomic_ops *= 2  # float atomics emulated via integer CAS
    if bool(in_local):
        atomic_ops //= 2  # local-memory atomics run at L1/shared speed
    else:
        atomic_ops *= 2  # global-memory fallback
    # Every work-group accumulates into its own table, so the contended
    # address space is (groups x accumulators) per work-group.
    work_groups = partials.shape[0]
    return KernelWork(
        elements=n,
        bytes_read=n * gids.dtype.itemsize + value_bytes,
        bytes_written=partials.nbytes,
        ops=2 * n,
        atomic_ops=atomic_ops,
        atomic_addresses=max(1, ngroups * accums * work_groups),
    )


def _grouped_partial_ref(wi, partials, gids, vals, n, ngroups, op, accums, in_local):
    """Turn-taking emulation of local-memory atomic accumulation.

    Work-items accumulate privately over their partition, then merge into
    the work-group's partial table one item per turn (barrier-separated),
    which is race-free and order-insensitive for sum/min/max/count.
    """
    n, ngroups = int(n), int(ngroups)
    private: dict[int, object] = {}
    for i in wi.partition(n):
        g = int(gids[i])
        v = 1 if op == "count" else vals[i]
        if g not in private:
            private[g] = v
        elif op in ("sum", "count"):
            private[g] += v
        elif op == "min":
            private[g] = min(private[g], v)
        else:
            private[g] = max(private[g], v)
    row = partials[wi.group_id()]
    for turn in range(wi.local_size()):
        if wi.local_id() == turn:
            for g, v in private.items():
                current = row[g]
                if op in ("sum", "count"):
                    row[g] = current + v
                elif op == "min":
                    row[g] = min(current, v)
                else:
                    row[g] = max(current, v)
        yield
    return


GROUPED_AGG_PARTIAL = KernelDef(
    name="grouped_agg_partial",
    params=params(
        "inout:partials in:gids in:vals scalar:n scalar:ngroups scalar:op "
        "scalar:accums scalar:in_local"
    ),
    vec_fn=_grouped_partial_vec,
    work_fn=_grouped_partial_work,
    ref_fn=_grouped_partial_ref,
    source="""
__kernel void grouped_agg_partial(__global ACC* partials,
                                  __global const uint* gids,
                                  __global const T* vals, uint n,
                                  uint ngroups) {
    __local ACC table[NGROUPS * ACCUMS];     /* or __global fallback */
    for (uint i = FIRST(n); i < LAST(n); i += STEP)
        ATOMIC_OP(&table[gids[i] * ACCUMS + lid % ACCUMS], vals[i]);
    barrier(CLK_LOCAL_MEM_FENCE);
    /* fold the ACCUMS accumulators, write the group partials */
}
""",
)


def _grouped_final_vec(ctx, result, partials, ngroups, op):
    ngroups = int(ngroups)
    if op in ("sum", "count"):
        result[:ngroups] = partials[:, :ngroups].sum(axis=0)
    elif op == "min":
        result[:ngroups] = partials[:, :ngroups].min(axis=0)
    else:
        result[:ngroups] = partials[:, :ngroups].max(axis=0)


def _grouped_final_work(ctx, result, partials, ngroups, op):
    return KernelWork(
        elements=int(ngroups),
        bytes_read=partials.nbytes,
        bytes_written=result.nbytes,
        ops=partials.size,
    )


def _grouped_final_ref(wi, result, partials, ngroups, op):
    parts = partials.shape[0]
    for g in wi.partition(int(ngroups)):
        acc = partials[0][g]
        for p in range(1, parts):
            v = partials[p][g]
            if op in ("sum", "count"):
                acc = acc + v
            elif op == "min":
                acc = min(acc, v)
            else:
                acc = max(acc, v)
        result[g] = acc
    return
    yield  # pragma: no cover


GROUPED_AGG_FINAL = KernelDef(
    name="grouped_agg_final",
    params=params("out:result in:partials scalar:ngroups scalar:op"),
    vec_fn=_grouped_final_vec,
    work_fn=_grouped_final_work,
    ref_fn=_grouped_final_ref,
    source="""
__kernel void grouped_agg_final(__global ACC* result,
                                __global const ACC* partials, uint ngroups) {
    /* one thread per group folds the per-work-group partials */
    uint g = global_id();
    ACC acc = IDENTITY;
    for (uint p = 0; p < PARTS; ++p) acc = OP(acc, partials[p * ngroups + g]);
    result[g] = acc;
}
""",
)


def accumulators_for(ngroups: int, local_mem_bytes: int, acc_itemsize: int = 8):
    """Host policy: accumulators per group, inversely proportional to the
    group count (paper §4.1.7), capped so the table fits local memory.

    Returns ``(accums, fits_local)``.
    """
    ngroups = max(1, int(ngroups))
    accums = max(1, min(512, 2048 // ngroups))
    while accums > 1 and ngroups * accums * acc_itemsize > local_mem_bytes:
        accums //= 2
    fits_local = ngroups * accums * acc_itemsize <= local_mem_bytes
    return accums, fits_local


LIBRARY = {
    k.name: k for k in (GROUPED_AGG_PARTIAL, GROUPED_AGG_FINAL)
}
