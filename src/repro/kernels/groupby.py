"""Grouping kernels (paper §4.1.6).

Two strategies, as in the paper:

* **sorted input** — every thread compares its value with its
  predecessor to flag group boundaries; a prefix sum over the flags then
  yields dense group IDs (the host composes ``group_boundaries`` with the
  ``prefix_sum`` primitive),
* **unsorted input** — a hash table maps each distinct key to a dense
  group ID and the assignment column is built via hash look-ups (the host
  composes the :mod:`repro.kernels.hashing` kernels; see
  :mod:`repro.ocelot.operators.groupby`).

Group IDs are assigned in **ascending key order** — a deterministic
convention shared with the MonetDB substrate so that all four engine
configurations produce bit-identical grouping columns.

Multi-column grouping recursively groups the combination of two
assignment columns (``combine_ids``), exactly as described in the paper.
"""

from __future__ import annotations

import numpy as np

from ..cl import KernelDef, KernelWork, params


def _group_boundaries_vec(ctx, bounds, col, n):
    n = int(n)
    if n:
        bounds[0] = 0
    if n > 1:
        bounds[1:n] = (col[1:n] != col[: n - 1]).astype(bounds.dtype)


def _group_boundaries_work(ctx, bounds, col, n):
    n = int(n)
    return KernelWork(
        elements=n,
        bytes_read=2 * n * col.dtype.itemsize,
        bytes_written=n * bounds.dtype.itemsize,
        ops=n,
    )


def _group_boundaries_ref(wi, bounds, col, n):
    for i in wi.partition(int(n)):
        bounds[i] = 0 if i == 0 else (1 if col[i] != col[i - 1] else 0)
    return
    yield  # pragma: no cover


GROUP_BOUNDARIES = KernelDef(
    name="group_boundaries",
    params=params("out:bounds in:col scalar:n"),
    vec_fn=_group_boundaries_vec,
    work_fn=_group_boundaries_work,
    ref_fn=_group_boundaries_ref,
    source="""
__kernel void group_boundaries(__global uint* bounds, __global const T* col,
                               uint n) {
    uint i = global_id();
    bounds[i] = (i > 0 && col[i] != col[i - 1]) ? 1 : 0;
}
""",
)


def _combine_ids_vec(ctx, out, ids_a, ids_b, n, cardinality_b):
    n = int(n)
    combined = ids_a[:n].astype(np.uint64) * np.uint64(int(cardinality_b))
    combined += ids_b[:n].astype(np.uint64)
    if combined.size and combined.max() >= np.uint64(0xFFFFFFFF):
        raise OverflowError("combined group-id space exceeds uint32")
    out[:n] = combined.astype(out.dtype)


def _combine_ids_work(ctx, out, ids_a, ids_b, n, cardinality_b):
    n = int(n)
    return KernelWork(
        elements=n, bytes_read=8 * n, bytes_written=4 * n, ops=2 * n
    )


def _combine_ids_ref(wi, out, ids_a, ids_b, n, cardinality_b):
    card = int(cardinality_b)
    for i in wi.partition(int(n)):
        out[i] = int(ids_a[i]) * card + int(ids_b[i])
    return
    yield  # pragma: no cover


COMBINE_IDS = KernelDef(
    name="combine_ids",
    params=params("out:res in:ids_a in:ids_b scalar:n scalar:cardinality_b"),
    vec_fn=_combine_ids_vec,
    work_fn=_combine_ids_work,
    ref_fn=_combine_ids_ref,
    source="""
__kernel void combine_ids(__global uint* res, __global const uint* a,
                          __global const uint* b, uint n, uint card_b) {
    res[global_id()] = a[global_id()] * card_b + b[global_id()];
}
""",
)


LIBRARY = {k.name: k for k in (GROUP_BOUNDARIES, COMBINE_IDS)}
