"""Selection kernels (paper §4.1.1, after Wu et al. [37]).

The selection result is encoded as a **bitmap**: each thread evaluates the
predicate on a small chunk of the input — eight four-byte values per
thread, producing one result byte, which the paper found optimal across
architectures.  Bitmaps make the operator's output size independent of
selectivity (Fig. 5(b)) and let complex predicates combine cheaply with
bit operations (:mod:`repro.kernels.bitmap`).

Bit order is little-endian within a byte: element ``8*j + k`` maps to bit
``k`` of byte ``j``.
"""

from __future__ import annotations

import numpy as np

from ..cl import KernelDef, KernelWork, params

#: Predicate vocabulary.  Single-bound comparisons use ``lo``; the interval
#: forms use both bounds with bracket notation for inclusivity, matching
#: MonetDB's ``algebra.select(lo, hi, li, hi)`` semantics.
COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")
RANGE_OPS = ("[]", "[)", "(]", "()")


def predicate_mask(col: np.ndarray, op: str, lo, hi) -> np.ndarray:
    """Boolean mask for predicate ``op`` — shared by both drivers."""
    if op == "<":
        return col < lo
    if op == "<=":
        return col <= lo
    if op == ">":
        return col > lo
    if op == ">=":
        return col >= lo
    if op == "==":
        return col == lo
    if op == "!=":
        return col != lo
    if op == "[]":
        return (col >= lo) & (col <= hi)
    if op == "[)":
        return (col >= lo) & (col < hi)
    if op == "(]":
        return (col > lo) & (col <= hi)
    if op == "()":
        return (col > lo) & (col < hi)
    raise ValueError(f"unknown predicate op {op!r}")


def bitmap_nbytes(n: int) -> int:
    """Bytes needed for an ``n``-element bitmap."""
    return (int(n) + 7) // 8


def _select_vec(ctx, bitmap, col, n, op, lo, hi, anti):
    n = int(n)
    mask = predicate_mask(col[:n], op, lo, hi)
    if anti:
        mask = ~mask
    packed = np.packbits(mask, bitorder="little")
    bitmap[: packed.size] = packed
    bitmap[packed.size :] = 0


def _select_work(ctx, bitmap, col, n, op, lo, hi, anti):
    n = int(n)
    comparisons = 2 * n if op in RANGE_OPS else n
    return KernelWork(
        elements=n,
        bytes_read=n * col.dtype.itemsize,
        bytes_written=bitmap_nbytes(n),
        ops=comparisons,
    )


def _select_ref(wi, bitmap, col, n, op, lo, hi, anti):
    """One byte of the result bitmap per iteration: the paper's
    eight-values-per-thread layout."""
    n = int(n)
    nbytes = bitmap_nbytes(n)
    for j in wi.partition(nbytes):
        byte = 0
        for k in range(8):
            i = 8 * j + k
            if i < n:
                hit = bool(predicate_mask(col[i : i + 1], op, lo, hi)[0])
                if anti:
                    hit = not hit
                if hit:
                    byte |= 1 << k
        bitmap[j] = byte
    return
    yield  # pragma: no cover - generator marker


SELECT_BITMAP = KernelDef(
    name="select_bitmap",
    params=params(
        "out:bitmap in:col scalar:n scalar:op scalar:lo scalar:hi scalar:anti"
    ),
    vec_fn=_select_vec,
    work_fn=_select_work,
    ref_fn=_select_ref,
    source="""
__kernel void select_bitmap(__global uchar* bitmap, __global const T* col,
                            uint n, T lo, T hi) {
    /* eight 4-byte values -> one result byte per thread */
    for (uint j = FIRST(NBYTES(n)); j < LAST(NBYTES(n)); j += STEP) {
        uchar byte = 0;
        for (int k = 0; k < 8; ++k) {
            uint i = 8 * j + k;
            if (i < n && PREDICATE(col[i], lo, hi)) byte |= 1 << k;
        }
        bitmap[j] = byte;
    }
}
""",
)


LIBRARY = {SELECT_BITMAP.name: SELECT_BITMAP}
