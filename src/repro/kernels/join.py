"""Join kernels (paper §4.1.5, after He et al. [20]).

Equi-joins are hash joins over the multi-stage lookup table of [19]: the
build side is radix-sorted into key runs, a hash table maps each distinct
key to its run, and probes expand the runs.  Theta-joins use a
block-nested-loop kernel pair.

Both follow the paper's two-step output scheme when the result size is
unknown: a *count* kernel determines each thread's result cardinality, a
prefix sum turns the counts into unique write offsets, and a *write*
kernel stores the pairs without synchronisation.  (When a tight upper
bound is known — e.g. joining against a key column — the host skips the
count pass, as §4.1.5 describes.)
"""

from __future__ import annotations

import numpy as np

from ..cl import KernelDef, KernelWork, params

THETA_OPS = ("<", "<=", ">", ">=", "==", "!=")

_NLJ_BLOCK = 8192


def _theta_mask(left_block: np.ndarray, right: np.ndarray, op: str) -> np.ndarray:
    lhs = left_block[:, None]
    if op == "<":
        return lhs < right
    if op == "<=":
        return lhs <= right
    if op == ">":
        return lhs > right
    if op == ">=":
        return lhs >= right
    if op == "==":
        return lhs == right
    if op == "!=":
        return lhs != right
    raise ValueError(f"unknown theta op {op!r}")


# ---------------------------------------------------------------------------
# hash-join count / expand
# ---------------------------------------------------------------------------

def _join_counts_vec(ctx, counts, run_counts, run_idx, found_bitmap, n):
    n = int(n)
    found = np.unpackbits(found_bitmap, bitorder="little", count=n).astype(bool)
    result = np.zeros(n, dtype=counts.dtype)
    hit_rows = np.nonzero(found)[0]
    result[hit_rows] = run_counts[run_idx[hit_rows].astype(np.int64)]
    counts[:n] = result


def _join_counts_work(ctx, counts, run_counts, run_idx, found_bitmap, n):
    n = int(n)
    return KernelWork(
        elements=n,
        bytes_read=4 * n + (n + 7) // 8,
        random_bytes=4 * n,
        bytes_written=counts.dtype.itemsize * n,
        ops=2 * n,
    )


def _join_counts_ref(wi, counts, run_counts, run_idx, found_bitmap, n):
    for i in wi.partition(int(n)):
        byte, bit = divmod(i, 8)
        hit = bool(found_bitmap[byte] & (1 << bit))
        counts[i] = run_counts[run_idx[i]] if hit else 0
    return
    yield  # pragma: no cover


JOIN_GATHER_COUNTS = KernelDef(
    name="join_gather_counts",
    params=params(
        "out:counts in:run_counts in:run_idx in:found_bitmap scalar:n"
    ),
    vec_fn=_join_counts_vec,
    work_fn=_join_counts_work,
    ref_fn=_join_counts_ref,
    source="""
__kernel void join_gather_counts(__global uint* counts,
                                 __global const uint* run_counts,
                                 __global const uint* run_idx,
                                 __global const uchar* found, uint n) {
    counts[i] = TESTBIT(found, i) ? run_counts[run_idx[i]] : 0;
}
""",
)


def _join_expand_vec(
    ctx, left_out, right_out, offsets, run_idx, run_starts, run_counts,
    build_oids, left_oids, found_bitmap, n,
):
    n = int(n)
    found = np.unpackbits(found_bitmap, bitorder="little", count=n).astype(bool)
    rows = np.nonzero(found)[0]
    if rows.size == 0:
        return
    runs = run_idx[rows].astype(np.int64)
    cnts = run_counts[runs].astype(np.int64)
    keep = cnts > 0
    rows, runs, cnts = rows[keep], runs[keep], cnts[keep]
    if rows.size == 0:
        return
    offs = offsets[rows].astype(np.int64)
    total = int(cnts.sum())
    left_out[:total] = np.repeat(left_oids[rows], cnts)
    intra = np.arange(total, dtype=np.int64) - np.repeat(offs, cnts)
    right_positions = np.repeat(run_starts[runs].astype(np.int64), cnts) + intra
    right_out[:total] = build_oids[right_positions]


def _join_expand_work(
    ctx, left_out, right_out, offsets, run_idx, run_starts, run_counts,
    build_oids, left_oids, found_bitmap, n,
):
    n = int(n)
    total = left_out.size
    return KernelWork(
        elements=n,
        bytes_read=12 * n + (n + 7) // 8,
        random_bytes=4 * total,
        bytes_written=8 * total,
        ops=n + 2 * total,
    )


def _join_expand_ref(
    wi, left_out, right_out, offsets, run_idx, run_starts, run_counts,
    build_oids, left_oids, found_bitmap, n,
):
    for i in wi.partition(int(n)):
        byte, bit = divmod(i, 8)
        if not (found_bitmap[byte] & (1 << bit)):
            continue
        run = int(run_idx[i])
        cursor = int(offsets[i])
        start = int(run_starts[run])
        for k in range(int(run_counts[run])):
            left_out[cursor + k] = left_oids[i]
            right_out[cursor + k] = build_oids[start + k]
    return
    yield  # pragma: no cover


JOIN_EXPAND = KernelDef(
    name="join_expand",
    params=params(
        "out:left_out out:right_out in:offsets in:run_idx in:run_starts "
        "in:run_counts in:build_oids in:left_oids in:found_bitmap scalar:n"
    ),
    vec_fn=_join_expand_vec,
    work_fn=_join_expand_work,
    ref_fn=_join_expand_ref,
    source="""
__kernel void join_expand(__global uint* lo, __global uint* ro, ...) {
    /* second stage: write matches at the thread's prefix-sum offset */
}
""",
)


# ---------------------------------------------------------------------------
# nested-loop (theta) join
# ---------------------------------------------------------------------------

def _nlj_count_vec(ctx, counts, left, right, nl, nr, op):
    nl, nr = int(nl), int(nr)
    rhs = right[:nr]
    for lo in range(0, nl, _NLJ_BLOCK):
        hi = min(lo + _NLJ_BLOCK, nl)
        mask = _theta_mask(left[lo:hi], rhs, op)
        counts[lo:hi] = mask.sum(axis=1).astype(counts.dtype)


def _nlj_count_work(ctx, counts, left, right, nl, nr, op):
    nl, nr = int(nl), int(nr)
    return KernelWork(
        elements=nl,
        bytes_read=4 * nl + 4 * nl * nr,  # right side rescanned per element
        bytes_written=counts.dtype.itemsize * nl,
        ops=nl * nr,
    )


def _nlj_count_ref(wi, counts, left, right, nl, nr, op):
    nr = int(nr)
    for i in wi.partition(int(nl)):
        counts[i] = int(_theta_mask(left[i : i + 1], right[:nr], op).sum())
    return
    yield  # pragma: no cover


NLJ_COUNT = KernelDef(
    name="nlj_count",
    params=params("out:counts in:left in:right scalar:nl scalar:nr scalar:op"),
    vec_fn=_nlj_count_vec,
    work_fn=_nlj_count_work,
    ref_fn=_nlj_count_ref,
    source="""
__kernel void nlj_count(__global uint* counts, __global const T* left,
                        __global const T* right, uint nl, uint nr) {
    uint c = 0;
    for (uint j = 0; j < nr; ++j) c += PREDICATE(left[i], right[j]);
    counts[i] = c;
}
""",
)


def _nlj_write_vec(
    ctx, left_out, right_out, offsets, left, right, left_oids, right_oids, nl, nr, op
):
    nl, nr = int(nl), int(nr)
    rhs = right[:nr]
    for lo in range(0, nl, _NLJ_BLOCK):
        hi = min(lo + _NLJ_BLOCK, nl)
        mask = _theta_mask(left[lo:hi], rhs, op)
        li, ri = np.nonzero(mask)
        if li.size == 0:
            continue
        rows = lo + li
        cnts = mask.sum(axis=1).astype(np.int64)
        offs = offsets[lo:hi].astype(np.int64)
        positions = np.repeat(offs, cnts) + (
            np.arange(li.size, dtype=np.int64)
            - np.repeat(np.concatenate(([0], np.cumsum(cnts)[:-1])), cnts)
        )
        left_out[positions] = left_oids[rows]
        right_out[positions] = right_oids[ri]


def _nlj_write_work(
    ctx, left_out, right_out, offsets, left, right, left_oids, right_oids, nl, nr, op
):
    nl, nr = int(nl), int(nr)
    total = left_out.size
    return KernelWork(
        elements=nl,
        bytes_read=8 * nl + 4 * nl * nr,
        random_bytes=8 * total,
        ops=nl * nr,
    )


def _nlj_write_ref(
    wi, left_out, right_out, offsets, left, right, left_oids, right_oids, nl, nr, op
):
    nr = int(nr)
    for i in wi.partition(int(nl)):
        cursor = int(offsets[i])
        hits = np.nonzero(_theta_mask(left[i : i + 1], right[:nr], op)[0])[0]
        for j in hits:
            left_out[cursor] = left_oids[i]
            right_out[cursor] = right_oids[j]
            cursor += 1
    return
    yield  # pragma: no cover


NLJ_WRITE = KernelDef(
    name="nlj_write",
    params=params(
        "out:left_out out:right_out in:offsets in:left in:right "
        "in:left_oids in:right_oids scalar:nl scalar:nr scalar:op"
    ),
    vec_fn=_nlj_write_vec,
    work_fn=_nlj_write_work,
    ref_fn=_nlj_write_ref,
    source="""
__kernel void nlj_write(__global uint* lo, __global uint* ro,
                        __global const uint* offsets, ...) {
    uint cursor = offsets[i];
    for (uint j = 0; j < nr; ++j)
        if (PREDICATE(left[i], right[j])) {
            lo[cursor] = left_oids[i]; ro[cursor++] = right_oids[j];
        }
}
""",
)


LIBRARY = {
    k.name: k
    for k in (JOIN_GATHER_COUNTS, JOIN_EXPAND, NLJ_COUNT, NLJ_WRITE)
}
