"""Binary radix sort kernels (paper §4.1.3, after Helluy [22] / Satish [31]).

Each pass over the keys processes ``RADIX_BITS`` bits (a pre-processor
constant: the paper uses 8 on the CPU and 4 on the GPU) in three kernels:

1. ``radix_histogram`` — every thread builds a private histogram of the
   current digit over its contiguous chunk of the input,
2. ``radix_offsets`` — the "shuffle": histograms are transposed so all
   buckets of the same digit are consecutive, and an exclusive prefix sum
   yields the global write offset for every (digit, thread) pair,
3. ``radix_reorder`` — every thread scatters its chunk stably to the
   offsets.

The reorder step requires contiguous per-thread chunks for stability, so
this kernel family always partitions chunk-wise on both device types (the
histogram/scatter locality is what the radix approach buys).  Keys are
bijectively encoded to ``uint32`` so signed integers and IEEE floats sort
correctly (``key_encode``), and the payload permutation is carried through
every pass so the caller can reorder arbitrary columns afterwards.
"""

from __future__ import annotations

import numpy as np

from ..cl import KernelDef, KernelWork, params

KEY_KIND_UINT = 0
KEY_KIND_INT = 1
KEY_KIND_FLOAT = 2

_SIGN = np.uint32(0x80000000)
_SIGN64 = np.uint64(0x8000000000000000)

#: dtype -> (encoding kind, unsigned view dtype, sign mask).  The paper's
#: operator scope is four-byte types; 8-byte keys exist so that aggregate
#: results (``sum`` -> float64/int64) remain sortable (ORDER BY revenue).
_KEY_SPECS = {
    np.dtype(np.uint32): (KEY_KIND_UINT, np.uint32, _SIGN),
    np.dtype(np.int32): (KEY_KIND_INT, np.uint32, _SIGN),
    np.dtype(np.float32): (KEY_KIND_FLOAT, np.uint32, _SIGN),
    np.dtype(np.int64): (KEY_KIND_INT, np.uint64, _SIGN64),
    np.dtype(np.float64): (KEY_KIND_FLOAT, np.uint64, _SIGN64),
    # narrow unsigned payloads (dictionary codes, FOR deltas from
    # repro.compress) zero-extend into uint32 keys — in OpenCL a plain
    # (uint)col[i] widening cast instead of the as_uint reinterpretation
    np.dtype(np.uint8): (KEY_KIND_UINT, np.uint32, _SIGN),
    np.dtype(np.uint16): (KEY_KIND_UINT, np.uint32, _SIGN),
}


def key_kind_for(dtype: np.dtype) -> int:
    """Encoding kind for a column dtype."""
    try:
        return _KEY_SPECS[np.dtype(dtype)][0]
    except KeyError:
        raise TypeError(f"radix sort does not support dtype {dtype}") from None


def key_dtype_for(dtype: np.dtype) -> np.dtype:
    """Unsigned key dtype the column encodes into (uint32 or uint64)."""
    return np.dtype(_KEY_SPECS[np.dtype(dtype)][1])


def key_bits_for(dtype: np.dtype) -> int:
    return key_dtype_for(dtype).itemsize * 8


def encode_keys(col: np.ndarray) -> np.ndarray:
    """Order-preserving bijection into unsigned keys (host-side mirror).

    Floats canonicalise ``-0.0`` to ``+0.0`` first so the key order is
    consistent with comparison-based sorts (where the two are equal).
    """
    kind, udtype, sign = _KEY_SPECS[np.dtype(col.dtype)]
    if kind == KEY_KIND_FLOAT:
        col = col + col.dtype.type(0)  # -0.0 + 0.0 == +0.0
    if col.dtype.itemsize != np.dtype(udtype).itemsize:
        return col.astype(udtype)      # narrow uint: zero-extend
    u = col.view(udtype)
    if kind == KEY_KIND_UINT:
        return u.copy()
    if kind == KEY_KIND_INT:
        return u ^ sign
    negative = (u & sign) != 0
    return np.where(negative, ~u, u ^ sign)


def _key_encode_vec(ctx, out, col, n, kind):
    n, kind = int(n), int(kind)
    sign = _SIGN64 if out.dtype.itemsize == 8 else _SIGN
    if kind == KEY_KIND_FLOAT:
        col = col[:n] + col.dtype.type(0)  # canonicalise -0.0
        u = col.view(out.dtype)
        negative = (u & sign) != 0
        out[:n] = np.where(negative, ~u, u ^ sign)
        return
    if col.dtype.itemsize != out.dtype.itemsize:
        out[:n] = col[:n].astype(out.dtype)    # narrow uint: zero-extend
        return
    u = col[:n].view(out.dtype)
    if kind == KEY_KIND_UINT:
        out[:n] = u
    else:
        np.bitwise_xor(u, sign, out=out[:n])


def _key_encode_work(ctx, out, col, n, kind):
    n = int(n)
    item = out.dtype.itemsize
    return KernelWork(
        elements=n, bytes_read=item * n, bytes_written=item * n, ops=n
    )


def _key_encode_ref(wi, out, col, n, kind):
    kind = int(kind)
    sign = _SIGN64 if out.dtype.itemsize == 8 else _SIGN
    for i in wi.partition(int(n)):
        if kind == KEY_KIND_FLOAT:
            u = np.asarray(col[i] + col.dtype.type(0)).view(out.dtype)[()]
            out[i] = out.dtype.type(~u) if (u & sign) else (u ^ sign)
            continue
        if col.dtype.itemsize != out.dtype.itemsize:
            out[i] = out.dtype.type(col[i])    # narrow uint: zero-extend
            continue
        u = col.view(out.dtype)[i]
        out[i] = u if kind == KEY_KIND_UINT else (u ^ sign)
    return
    yield  # pragma: no cover


KEY_ENCODE = KernelDef(
    name="key_encode",
    params=params("out:ukeys in:col scalar:n scalar:kind"),
    vec_fn=_key_encode_vec,
    work_fn=_key_encode_work,
    ref_fn=_key_encode_ref,
    source="""
__kernel void key_encode(__global uint* ukeys, __global const T* col, uint n) {
    uint u = as_uint(col[i]);
#if KEY_KIND == FLOAT
    ukeys[i] = (u & SIGN) ? ~u : (u ^ SIGN);
#elif KEY_KIND == INT
    ukeys[i] = u ^ SIGN;
#else
    ukeys[i] = u;
#endif
}
""",
)


def _chunk_bounds(n: int, parts: int) -> np.ndarray:
    return np.linspace(0, n, parts + 1, dtype=np.int64)


def _radix_bits(ctx) -> int:
    return int(ctx.defines.get("RADIX_BITS", 8))


def _digits(keys: np.ndarray, shift: int, bits: int) -> np.ndarray:
    mask = (1 << bits) - 1
    shifted = np.right_shift(keys, keys.dtype.type(shift))
    return np.bitwise_and(shifted, keys.dtype.type(mask)).astype(
        np.int64, copy=False
    )


def _radix_histogram_vec(ctx, hist, keys, n, shift, parts):
    n, shift, parts = int(n), int(shift), int(parts)
    bits = _radix_bits(ctx)
    radix = 1 << bits
    digits = _digits(keys[:n], shift, bits)
    # Combined (thread, digit) index -> one bincount for all histograms.
    bounds = _chunk_bounds(n, parts)
    rows = np.searchsorted(bounds[1:], np.arange(n), side="right")
    combined = rows * radix + digits
    counts = np.bincount(combined, minlength=parts * radix)
    hist.reshape(parts, radix)[:, :] = counts.reshape(parts, radix)


def _radix_histogram_work(ctx, hist, keys, n, shift, parts):
    n = int(n)
    return KernelWork(
        elements=n, bytes_read=4 * n, bytes_written=hist.nbytes, ops=n
    )


def _radix_histogram_ref(wi, hist, keys, n, shift, parts):
    bits = int(wi.define("RADIX_BITS", 8))
    radix = 1 << bits
    n, shift, parts = int(n), int(shift), int(parts)
    bounds = _chunk_bounds(n, parts)
    view = hist.reshape(parts, radix)
    for t in wi.partition(parts):
        counts = np.zeros(radix, dtype=hist.dtype)
        for i in range(bounds[t], bounds[t + 1]):
            counts[(int(keys[i]) >> shift) & (radix - 1)] += 1
        view[t, :] = counts
    return
    yield  # pragma: no cover


RADIX_HISTOGRAM = KernelDef(
    name="radix_histogram",
    params=params("out:hist in:keys scalar:n scalar:shift scalar:parts"),
    vec_fn=_radix_histogram_vec,
    work_fn=_radix_histogram_work,
    ref_fn=_radix_histogram_ref,
    source="""
__kernel void radix_histogram(__global uint* hist, __global const uint* keys,
                              uint n, uint shift) {
    uint counts[RADIX] = {0};
    for (uint i = CHUNK_LO; i < CHUNK_HI; ++i)
        counts[(keys[i] >> shift) & (RADIX - 1)]++;
    for (uint d = 0; d < RADIX; ++d) hist[tid * RADIX + d] = counts[d];
}
""",
)


def _radix_offsets_vec(ctx, offsets, hist, parts):
    parts = int(parts)
    radix = hist.size // parts
    transposed = hist.reshape(parts, radix).T.ravel()  # digit-major
    excl = np.concatenate(([0], np.cumsum(transposed)[:-1]))
    offsets.reshape(radix, parts)[:, :] = excl.reshape(radix, parts).astype(
        offsets.dtype
    )


def _radix_offsets_work(ctx, offsets, hist, parts):
    return KernelWork(
        elements=hist.size,
        bytes_read=hist.nbytes,
        bytes_written=offsets.nbytes,
        ops=2 * hist.size,
    )


def _radix_offsets_ref(wi, offsets, hist, parts):
    parts = int(parts)
    radix = hist.size // parts
    if wi.global_id() == 0:
        hist_view = hist.reshape(parts, radix)
        out = offsets.reshape(radix, parts)
        running = 0
        for d in range(radix):
            for t in range(parts):
                out[d, t] = running
                running += int(hist_view[t, d])
    return
    yield  # pragma: no cover


RADIX_OFFSETS = KernelDef(
    name="radix_offsets",
    params=params("out:offsets in:hist scalar:parts"),
    vec_fn=_radix_offsets_vec,
    work_fn=_radix_offsets_work,
    ref_fn=_radix_offsets_ref,
    source="""
__kernel void radix_offsets(__global uint* offsets, __global const uint* hist,
                            uint parts) {
    /* transpose to digit-major order, then exclusive prefix sum */
}
""",
)


def _radix_reorder_vec(ctx, keys_out, payload_out, keys, payload, offsets, n, shift, parts):
    n, shift = int(n), int(shift)
    bits = _radix_bits(ctx)
    # uint16 digits let numpy's stable argsort use its radix path.
    digits = _digits(keys[:n], shift, bits).astype(np.uint16)
    # Stable order by digit == concatenation of the per-thread stable
    # scatters, because chunks are contiguous (module docstring).
    order = np.argsort(digits, kind="stable")
    keys_out[:n] = keys[:n][order]
    payload_out[:n] = payload[:n][order]


def _radix_reorder_work(ctx, keys_out, payload_out, keys, payload, offsets, n, shift, parts):
    n = int(n)
    item = keys.dtype.itemsize + payload.dtype.itemsize
    # The scatter targets RADIX open output streams per thread: mostly
    # sequential cache-line fills, with a small truly-random component.
    return KernelWork(
        elements=n,
        bytes_read=n * item + offsets.nbytes,
        bytes_written=n * item,
        random_bytes=n * 2,
        ops=2 * n,
    )


def _radix_reorder_ref(wi, keys_out, payload_out, keys, payload, offsets, n, shift, parts):
    bits = int(wi.define("RADIX_BITS", 8))
    radix = 1 << bits
    n, shift, parts = int(n), int(shift), int(parts)
    bounds = _chunk_bounds(n, parts)
    table = offsets.reshape(radix, parts)
    for t in wi.partition(parts):
        cursors = table[:, t].astype(np.int64)
        for i in range(bounds[t], bounds[t + 1]):
            d = (int(keys[i]) >> shift) & (radix - 1)
            pos = cursors[d]
            cursors[d] += 1
            keys_out[pos] = keys[i]
            payload_out[pos] = payload[i]
    return
    yield  # pragma: no cover


RADIX_REORDER = KernelDef(
    name="radix_reorder",
    params=params(
        "out:keys_out out:payload_out in:keys in:payload in:offsets "
        "scalar:n scalar:shift scalar:parts"
    ),
    vec_fn=_radix_reorder_vec,
    work_fn=_radix_reorder_work,
    ref_fn=_radix_reorder_ref,
    source="""
__kernel void radix_reorder(__global uint* keys_out, __global uint* pay_out,
                            __global const uint* keys,
                            __global const uint* pay,
                            __global const uint* offsets, uint n, uint shift) {
    uint cursors[RADIX]; /* loaded from offsets[tid] */
    for (uint i = CHUNK_LO; i < CHUNK_HI; ++i) {
        uint d = (keys[i] >> shift) & (RADIX - 1);
        keys_out[cursors[d]] = keys[i];
        pay_out[cursors[d]++] = pay[i];
    }
}
""",
)


def num_passes(bits_per_pass: int, key_bits: int = 32) -> int:
    """Radix passes needed for a full key."""
    return -(-key_bits // bits_per_pass)


LIBRARY = {
    k.name: k
    for k in (KEY_ENCODE, RADIX_HISTOGRAM, RADIX_OFFSETS, RADIX_REORDER)
}
