"""Bitmap algebra and materialisation kernels (paper §4.1.1-4.1.2).

Complex predicates combine selection bitmaps with bit operations; when a
downstream operator (or MonetDB) needs tuple IDs, the bitmap is
materialised into a list of qualifying oids in two steps: a per-partition
set-bit count, a prefix sum over the counts to obtain unique write
offsets, and an offset-addressed write (paper §4.1.2, scan after [33]).
"""

from __future__ import annotations

import numpy as np

from ..cl import KernelDef, KernelWork, params
from .selection import bitmap_nbytes

#: Per-byte population counts, the classic table-lookup popcount.
POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint32)

_BITOPS = {
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
}


def tail_mask(n_bits: int) -> int:
    """Mask for the valid bits of the (possibly partial) final byte."""
    rem = n_bits % 8
    return 0xFF if rem == 0 else (1 << rem) - 1


def _bitmap_binop_vec(ctx, out, a, b, nbytes, op):
    nbytes = int(nbytes)
    _BITOPS[op](a[:nbytes], b[:nbytes], out=out[:nbytes])


def _bitmap_binop_work(ctx, out, a, b, nbytes, op):
    nbytes = int(nbytes)
    return KernelWork(
        elements=nbytes * 8,
        bytes_read=2 * nbytes,
        bytes_written=nbytes,
        ops=nbytes,
    )


def _bitmap_binop_ref(wi, out, a, b, nbytes, op):
    fn = _BITOPS[op]
    for j in wi.partition(int(nbytes)):
        out[j] = fn(a[j], b[j])
    return
    yield  # pragma: no cover


BITMAP_BINOP = KernelDef(
    name="bitmap_binop",
    params=params("out:res in:a in:b scalar:nbytes scalar:op"),
    vec_fn=_bitmap_binop_vec,
    work_fn=_bitmap_binop_work,
    ref_fn=_bitmap_binop_ref,
    source="""
__kernel void bitmap_binop(__global uchar* res, __global const uchar* a,
                           __global const uchar* b, uint nbytes) {
    res[global_id()] = a[global_id()] OP b[global_id()];
}
""",
)


def _bitmap_not_vec(ctx, out, a, n_bits, nbytes):
    nbytes = int(nbytes)
    np.bitwise_not(a[:nbytes], out=out[:nbytes])
    if nbytes:
        out[nbytes - 1] &= tail_mask(int(n_bits))


def _bitmap_not_work(ctx, out, a, n_bits, nbytes):
    nbytes = int(nbytes)
    return KernelWork(
        elements=nbytes * 8, bytes_read=nbytes, bytes_written=nbytes, ops=nbytes
    )


def _bitmap_not_ref(wi, out, a, n_bits, nbytes):
    nbytes = int(nbytes)
    for j in wi.partition(nbytes):
        byte = (~int(a[j])) & 0xFF
        if j == nbytes - 1:
            byte &= tail_mask(int(n_bits))
        out[j] = byte
    return
    yield  # pragma: no cover


BITMAP_NOT = KernelDef(
    name="bitmap_not",
    params=params("out:res in:a scalar:n_bits scalar:nbytes"),
    vec_fn=_bitmap_not_vec,
    work_fn=_bitmap_not_work,
    ref_fn=_bitmap_not_ref,
    source="""
__kernel void bitmap_not(__global uchar* res, __global const uchar* a,
                         uint n_bits, uint nbytes) {
    uchar byte = ~a[global_id()];
    if (global_id() == nbytes - 1) byte &= TAIL_MASK(n_bits);
    res[global_id()] = byte;
}
""",
)


def _partition_bounds(nbytes: int, parts: int) -> np.ndarray:
    return np.linspace(0, nbytes, parts + 1, dtype=np.int64)


def _bitmap_count_vec(ctx, counts, bitmap, nbytes, parts):
    """Per-partition set-bit counts (stage 1 of materialisation)."""
    nbytes, parts = int(nbytes), int(parts)
    bounds = _partition_bounds(nbytes, parts)
    per_byte = POPCOUNT[bitmap[:nbytes]]
    sums = np.add.reduceat(per_byte, bounds[:-1]) if nbytes else np.zeros(parts)
    # reduceat quirk: empty trailing partitions repeat the previous slice.
    sizes = np.diff(bounds)
    counts[:parts] = np.where(sizes > 0, sums, 0)


def _bitmap_count_work(ctx, counts, bitmap, nbytes, parts):
    nbytes = int(nbytes)
    return KernelWork(
        elements=nbytes * 8,
        bytes_read=nbytes,
        bytes_written=int(parts) * counts.dtype.itemsize,
        ops=nbytes,
    )


def _bitmap_count_ref(wi, counts, bitmap, nbytes, parts):
    nbytes, parts = int(nbytes), int(parts)
    bounds = _partition_bounds(nbytes, parts)
    for p in wi.partition(parts):
        total = 0
        for j in range(bounds[p], bounds[p + 1]):
            total += int(POPCOUNT[bitmap[j]])
        counts[p] = total
    return
    yield  # pragma: no cover


BITMAP_COUNT = KernelDef(
    name="bitmap_count",
    params=params("out:counts in:bitmap scalar:nbytes scalar:parts"),
    vec_fn=_bitmap_count_vec,
    work_fn=_bitmap_count_work,
    ref_fn=_bitmap_count_ref,
    source="""
__kernel void bitmap_count(__global uint* counts,
                           __global const uchar* bitmap, uint nbytes) {
    uint total = 0;
    for (uint j = FIRST(nbytes); j < LAST(nbytes); j += STEP)
        total += popcount(bitmap[j]);
    counts[group_id()] = total;   /* after local reduction */
}
""",
)


def _bitmap_write_oids_vec(ctx, oids, bitmap, offsets, n_bits, parts):
    """Stage 3: write positions of set bits at per-partition offsets.

    The vectorised driver emits all set-bit positions in ascending order —
    identical to the concatenation of the per-partition writes, because
    partitions are contiguous and offsets come from the prefix sum.
    """
    n_bits = int(n_bits)
    bits = np.unpackbits(bitmap, bitorder="little", count=n_bits)
    positions = np.nonzero(bits)[0]
    oids[: positions.size] = positions.astype(oids.dtype)


def _bitmap_write_oids_work(ctx, oids, bitmap, offsets, n_bits, parts):
    n_bits = int(n_bits)
    nbytes = bitmap_nbytes(n_bits)
    return KernelWork(
        elements=n_bits,
        bytes_read=nbytes + int(parts) * offsets.dtype.itemsize,
        bytes_written=oids.nbytes,
        ops=n_bits,
    )


def _bitmap_write_oids_ref(wi, oids, bitmap, offsets, n_bits, parts):
    n_bits, parts = int(n_bits), int(parts)
    nbytes = bitmap_nbytes(n_bits)
    bounds = _partition_bounds(nbytes, parts)
    for p in wi.partition(parts):
        cursor = int(offsets[p])
        for j in range(bounds[p], bounds[p + 1]):
            byte = int(bitmap[j])
            for k in range(8):
                if byte & (1 << k):
                    oids[cursor] = 8 * j + k
                    cursor += 1
    return
    yield  # pragma: no cover


BITMAP_WRITE_OIDS = KernelDef(
    name="bitmap_write_oids",
    params=params("out:oids in:bitmap in:offsets scalar:n_bits scalar:parts"),
    vec_fn=_bitmap_write_oids_vec,
    work_fn=_bitmap_write_oids_work,
    ref_fn=_bitmap_write_oids_ref,
    source="""
__kernel void bitmap_write_oids(__global uint* oids,
                                __global const uchar* bitmap,
                                __global const uint* offsets, uint n) {
    uint cursor = offsets[group_id()];
    for (uint j = FIRST(NBYTES(n)); j < LAST(NBYTES(n)); j += STEP)
        for (int k = 0; k < 8; ++k)
            if (bitmap[j] & (1 << k)) oids[cursor++] = 8 * j + k;
}
""",
)


def _oids_to_bitmap_vec(ctx, bitmap, oids, count, n_bits):
    count = int(count)
    bits = np.zeros(int(n_bits), dtype=np.uint8)
    bits[oids[:count].astype(np.int64, copy=False)] = 1
    packed = np.packbits(bits, bitorder="little")
    bitmap[: packed.size] = packed
    bitmap[packed.size :] = 0


def _oids_to_bitmap_work(ctx, bitmap, oids, count, n_bits):
    count = int(count)
    return KernelWork(
        elements=count,
        bytes_read=count * oids.dtype.itemsize,
        bytes_written=bitmap_nbytes(int(n_bits)),
        random_bytes=count,
        ops=count,
    )


OIDS_TO_BITMAP = KernelDef(
    name="oids_to_bitmap",
    params=params("out:bitmap in:oids scalar:count scalar:n_bits"),
    vec_fn=_oids_to_bitmap_vec,
    work_fn=_oids_to_bitmap_work,
    source="""
__kernel void oids_to_bitmap(__global uchar* bitmap,
                             __global const uint* oids, uint count) {
    atomic_or(&bitmap[oids[i] >> 3], 1 << (oids[i] & 7));
}
""",
)


def count_bits(bitmap: np.ndarray, n_bits: int) -> int:
    """Host-side helper: total set bits among the first ``n_bits``."""
    nbytes = bitmap_nbytes(n_bits)
    return int(POPCOUNT[bitmap[:nbytes]].sum())


LIBRARY = {
    k.name: k
    for k in (
        BITMAP_BINOP,
        BITMAP_NOT,
        BITMAP_COUNT,
        BITMAP_WRITE_OIDS,
        OIDS_TO_BITMAP,
    )
}
